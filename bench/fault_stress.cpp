// fault_stress: loop the fault-injection matrix (flavor × pipeline width ×
// fault kind) with rotating seeds, checking after every injected failure
// that checkpoint recovery reproduces the uninterrupted run bit-for-bit —
// the CLI face of src/fault, schedule_lint-style: one line per run, summary
// line at the end, nonzero exit on any failure.
//
//   ./build/bench/fault_stress                 # default 2 rounds
//   ./build/bench/fault_stress --rounds 10     # longer soak
//   ./build/bench/fault_stress --seed 1234     # different fault placements
//   ./build/bench/fault_stress --numeric       # mix data faults (NaN/Inf/
//                                              # bit-flip) with the process
//                                              # faults, guard level 1
//
// Multi-process mode (the transport PRs' soak): real fork()ed workers over
// shared-memory rings or a supervised tcp socket mesh. SIGKILL one worker
// mid-iteration (or, over tcp, inject deterministic network chaos into its
// connection supervisor) and check the elastic recovery loop republishes a
// loss sequence bit-identical to a never-failed in-process reference
// replayed at the widths the run actually used.
//
//   ./build/bench/fault_stress --transport shm
//       rotate the killed rank + iteration across runs
//   ./build/bench/fault_stress --transport shm --kill-rank 1 --at-iter 2
//       pin the death
//   ./build/bench/fault_stress --transport tcp
//       the same SIGKILL soak over the tcp mesh
//   ./build/bench/fault_stress --transport tcp --chaos partition
//       network chaos instead of death; modes: drop (transient link drop,
//       must reconnect with NO downgrade), partition (sticky blackhole,
//       must downgrade like a kill), dup (duplicated frame, seq dedup),
//       truncate (frame cut mid-stream + link drop), stall (frozen socket
//       below the heartbeat timeout). Every mode replays its generations
//       in-process and demands bitwise-identical losses + checkpoint.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "model/gpt.h"
#include "runtime/checkpoint.h"
#include "runtime/pipeline_trainer.h"
#include "runtime/resilient_trainer.h"
#include "runtime/elastic_trainer.h"
#include "tensor/tensor_ops.h"
#include "transport/shm_region.h"
#include "transport/tcp_frame.h"
#include "transport/transport.h"

namespace {

using namespace vocab;

// Small enough that one run takes a fraction of a second, large enough that
// every flavor divides evenly for p in {2, 4} (V-Half needs 2p | layers).
GptConfig stress_config() {
  GptConfig cfg;
  cfg.num_layers = 8;
  cfg.heads = 2;
  cfg.hidden = 32;
  cfg.seq_len = 16;
  cfg.vocab = 53;
  return cfg;
}

std::vector<Sample> microbatches(const SyntheticCorpus& corpus, int iteration, int count) {
  std::vector<Sample> out;
  for (int i = 0; i < count; ++i) out.push_back(corpus.sample(iteration * count + i));
  return out;
}

float weights_diff(const GptWeights& a, const GptWeights& b) {
  float diff = max_abs_diff(a.input_embedding, b.input_embedding);
  diff = std::max(diff, max_abs_diff(a.pos_embedding, b.pos_embedding));
  diff = std::max(diff, max_abs_diff(a.output_weight, b.output_weight));
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    diff = std::max(diff, max_abs_diff(a.layers[l].wq, b.layers[l].wq));
    diff = std::max(diff, max_abs_diff(a.layers[l].w2, b.layers[l].w2));
  }
  return diff;
}

struct RunOutcome {
  bool ok = false;
  std::string detail;
};

RunOutcome run_one(PipelineFlavor flavor, int p, FaultKind kind, std::uint64_t seed,
                   const std::string& ckpt_path) {
  constexpr int kIterations = 4;
  const GptConfig cfg = stress_config();
  const GptWeights init = GptWeights::init(cfg, 100 + static_cast<int>(seed % 1000));
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 7);
  const int m = 2 * p;
  const OptimizerConfig opt = OptimizerConfig::sgd(0.1f);

  WatchdogConfig watchdog;
  watchdog.stall_deadline = std::chrono::milliseconds(500);
  watchdog.poll_interval = std::chrono::milliseconds(10);

  // Seed-rotated placement: one fault of the requested kind somewhere in the
  // middle iterations, on any device, early in its op sequence.
  FaultPlan plan =
      FaultPlan::random(seed, /*count=*/1, p, /*max_iteration=*/kIterations,
                        /*max_op_index=*/8, {kind},
                        watchdog.stall_deadline + std::chrono::milliseconds(2000));
  auto injector = std::make_shared<FaultInjector>(plan);

  PipelineTrainer baseline(init, p, OutputAlgo::Alg1, flavor);
  RecoveryPolicy policy;
  policy.checkpoint_path = ckpt_path;
  policy.enable_watchdog = true;
  policy.watchdog = watchdog;
  ResilientTrainer resilient(init, p, OutputAlgo::Alg1, flavor, policy);
  resilient.set_fault_injector(injector);

  RunOutcome out;
  try {
    for (int it = 0; it < kIterations; ++it) {
      const float l_res = resilient.train_iteration(microbatches(corpus, it, m), opt);
      const float l_base = baseline.train_iteration(microbatches(corpus, it, m), opt);
      if (l_res != l_base) {
        out.detail = "loss diverged at iteration " + std::to_string(it);
        return out;
      }
    }
  } catch (const std::exception& e) {
    out.detail = std::string("unrecovered: ") + e.what();
    return out;
  }
  if (injector->faults_fired() != 1) {
    out.detail = "fault did not fire (plan: " + plan.summary() + ")";
    return out;
  }
  if (resilient.stats().recoveries != 1) {
    out.detail = "expected exactly one recovery, saw " +
                 std::to_string(resilient.stats().recoveries);
    return out;
  }
  const float diff = weights_diff(resilient.export_weights(), baseline.export_weights());
  if (diff != 0.0f) {
    out.detail = "weights diverged by " + std::to_string(diff);
    return out;
  }
  out.ok = true;
  out.detail = plan.faults.front().describe();
  return out;
}

// Data-fault soak: the guard fence (VOCAB_GUARD_LEVEL=1, set by main) turns
// a silent corruption into a clean abort, and recovery replays the iteration
// without the one-shot fault — so a *detected* corruption must leave the run
// bit-identical to the uninterrupted baseline. A bit flip is nastier than an
// injected NaN/Inf: it can explode a gradient to a huge but *finite* value
// that sails through the fence, and once the optimizer bakes it into the
// weights and the checkpoint, no reload can help. That is the anomaly
// detector's case — the grad-norm spike triggers a rollback before the
// poisoned step is checkpointed — so the soak runs with kRollback active and
// fires data faults only after the anomaly windows have warmed up. A flip
// can also *shrink* a value instead, staying below every detector (silent —
// reported, but not a failure of the guard).
RunOutcome run_one_numeric(PipelineFlavor flavor, int p, FaultKind kind,
                           std::uint64_t seed, const std::string& ckpt_path) {
  constexpr int kWarmup = 2;      // anomaly min_samples below
  constexpr int kIterations = 6;  // kWarmup clean + 4 fault-window iterations
  const GptConfig cfg = stress_config();
  const GptWeights init = GptWeights::init(cfg, 100 + static_cast<int>(seed % 1000));
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 7);
  const int m = 2 * p;
  const OptimizerConfig opt = OptimizerConfig::sgd(0.1f);

  FaultPlan plan =
      FaultPlan::random(seed, /*count=*/1, p, /*max_iteration=*/kIterations - kWarmup,
                        /*max_op_index=*/8, {kind});
  for (auto& spec : plan.faults) spec.iteration += kWarmup;
  auto injector = std::make_shared<FaultInjector>(plan);

  PipelineTrainer baseline(init, p, OutputAlgo::Alg1, flavor);
  RecoveryPolicy policy;
  policy.checkpoint_path = ckpt_path;
  policy.anomaly.action = AnomalyAction::kRollback;
  policy.anomaly.min_samples = kWarmup;
  // With only kWarmup accepted samples the MAD can be near zero, making
  // ordinary grad-norm drift look like a huge z-score. The soak hunts
  // *catastrophic* corruption (a bit-flipped gradient is ~1e38, z far beyond
  // any threshold), so a deliberately extreme cutoff rejects cold-window
  // false positives without ever missing an explosion.
  policy.anomaly.threshold = 1e6;
  ResilientTrainer resilient(init, p, OutputAlgo::Alg1, flavor, policy);
  resilient.set_fault_injector(injector);

  RunOutcome out;
  try {
    for (int it = 0; it < kIterations; ++it) {
      // No per-iteration loss compare: a sub-fence bit flip is allowed to
      // diverge silently; the verdict below distinguishes the cases.
      (void)resilient.train_iteration(microbatches(corpus, it, m), opt);
      (void)baseline.train_iteration(microbatches(corpus, it, m), opt);
    }
  } catch (const std::exception& e) {
    out.detail = std::string("unrecovered: ") + e.what();
    return out;
  }
  const int fired = injector->faults_fired();
  const int applied = injector->corruptions_applied();
  if (fired != 1) {
    out.detail = "fault did not fire (plan: " + plan.summary() + ")";
    return out;
  }
  if (applied > fired) {
    out.detail = "corruptions_applied " + std::to_string(applied) + " > faults fired " +
                 std::to_string(fired);
    return out;
  }
  const int recoveries = resilient.stats().recoveries;
  if (recoveries == 0 && applied > 0) {
    // Corruption landed but stayed finite and below the fence. Only a bit
    // flip can do this; an injected NaN/Inf at a guard boundary must trip.
    if (kind != FaultKind::BitFlip) {
      out.detail = "undetected " + std::string(to_string(kind)) + " corruption";
      return out;
    }
    out.ok = true;
    out.detail = "silent sub-fence corruption: " + plan.faults.front().describe();
    return out;
  }
  const float diff = weights_diff(resilient.export_weights(), baseline.export_weights());
  if (diff != 0.0f) {
    out.detail = (recoveries > 0 ? "recovered run" : "clean run (corruption never landed)");
    out.detail += " diverged from baseline by " + std::to_string(diff);
    return out;
  }
  out.ok = true;
  out.detail = (applied > 0 ? "detected+recovered: " : "armed, never landed: ") +
               plan.faults.front().describe();
  return out;
}

// Multi-process soak: hit worker `fault_rank` at global iteration
// `fault_iter` with `kind` — SIGKILL, or one of the tcp network-chaos kinds
// injected into its connection supervisor — let the elastic loop recover,
// then replay every generation in-process (thread backend) at the width the
// elastic run actually used. Checkpoint-before-publish plus stateless SGD
// makes the replay a true never-failed reference: the published loss
// sequence and the final checkpoint must match it bit for bit. A death or a
// sticky partition must downgrade; the transient chaos kinds (drop, dup,
// truncate, stall) must heal inside the supervisor with NO downgrade.
RunOutcome run_one_elastic(PipelineFlavor flavor, int p, FaultKind kind, int fault_rank,
                           std::uint64_t fault_iter, std::uint64_t seed,
                           transport::TransportKind backend, const std::string& ckpt_path) {
  constexpr std::uint64_t kIterations = 4;
  const GptConfig cfg = stress_config();
  const GptWeights init = GptWeights::init(cfg, 100 + static_cast<int>(seed % 1000));
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 7);
  const int m = 2 * p;
  const OptimizerConfig opt = OptimizerConfig::sgd(0.1f);
  const bool expect_downgrade =
      kind == FaultKind::KillProcess || kind == FaultKind::PartitionPeer;

  ElasticOptions options;
  options.checkpoint_path = ckpt_path;
  options.backend = backend;
  options.transport.heartbeat_period = std::chrono::milliseconds(20);
  // Generous relative to the 20ms beat: the soak box may be a single
  // oversubscribed core where a busy worker's supervisor thread can go
  // hundreds of ms between laps — a tight deadline there turns scheduler
  // starvation into spurious partitions, which the transient-chaos checks
  // (no downgrade allowed) would misread as real escalations.
  options.transport.heartbeat_timeout = std::chrono::milliseconds(1500);

  RunOutcome out;
  try {
    ElasticTrainer elastic(init, p, OutputAlgo::Alg1, flavor, options);
    FaultSpec spec;
    spec.kind = kind;
    spec.iteration = fault_iter;
    spec.device = fault_rank;
    spec.op_index = 2;
    spec.element = 0;  // net kinds: target peer (self-hits bump to the next rank)
    if (kind == FaultKind::StallSocket) {
      // Freeze well below the heartbeat timeout: a survivable half-open
      // window, not a partition.
      spec.delay = std::chrono::milliseconds(100);
    }
    spec.note = "soak fault";
    elastic.set_fault_plan(FaultPlan::single(spec));

    const ElasticResult result = elastic.train(
        kIterations,
        [&](std::uint64_t it) { return microbatches(corpus, static_cast<int>(it), m); },
        opt);

    // On any expectation miss, append the generation event log: a soak
    // failure without the coordinator's view of worker exits is undebuggable.
    const auto with_events = [&](std::string detail) {
      for (const std::string& e : result.events) detail += "\n      | " + e;
      return detail;
    };
    if (kind == FaultKind::KillProcess && result.kills != 1) {
      out.detail = with_events("expected exactly one kill, saw " + std::to_string(result.kills));
      return out;
    }
    if (kind == FaultKind::PartitionPeer && (result.partitions < 1 || result.downgrades < 1)) {
      out.detail = with_events("partition did not downgrade (partitions " +
                               std::to_string(result.partitions) + ", downgrades " +
                               std::to_string(result.downgrades) + ")");
      return out;
    }
    if (!expect_downgrade &&
        (result.kills != 0 || result.partitions != 0 || result.downgrades != 0)) {
      out.detail = with_events("transient " + std::string(to_string(kind)) +
                               " escalated: kills=" + std::to_string(result.kills) +
                               " partitions=" + std::to_string(result.partitions) +
                               " downgrades=" + std::to_string(result.downgrades));
      return out;
    }
    if (result.losses.size() != kIterations) {
      out.detail = "run finished " + std::to_string(result.losses.size()) + "/" +
                   std::to_string(kIterations) + " iterations";
      return out;
    }

    // Never-killed reference at the downgraded widths.
    GptWeights weights = init;
    std::vector<float> ref;
    for (std::size_t g = 0; g < result.history.size(); ++g) {
      const std::uint64_t start = result.history[g].start_iteration;
      const std::uint64_t end = g + 1 < result.history.size()
                                    ? result.history[g + 1].start_iteration
                                    : kIterations;
      if (end <= start) continue;  // generation died before completing anything
      PipelineTrainer trainer(std::move(weights), result.history[g].width, OutputAlgo::Alg1,
                              flavor);
      for (std::uint64_t it = start; it < end; ++it) {
        ref.push_back(trainer.train_iteration(microbatches(corpus, static_cast<int>(it), m), opt));
      }
      weights = trainer.export_weights();
    }
    for (std::size_t i = 0; i < kIterations; ++i) {
      if (ref[i] != result.losses[i]) {
        out.detail = "loss diverged from never-killed reference at iteration " +
                     std::to_string(i);
        return out;
      }
    }
    const float diff = weights_diff(load_checkpoint(ckpt_path), weights);
    if (diff != 0.0f) {
      out.detail = "final checkpoint diverged from reference by " + std::to_string(diff);
      return out;
    }
    out.ok = true;
    out.detail = std::string(to_string(kind)) + " rank " + std::to_string(fault_rank) +
                 " @ iter " + std::to_string(fault_iter) + ", downgrades=" +
                 std::to_string(result.downgrades) + ", final width " +
                 std::to_string(result.final_width) + ", generations " +
                 std::to_string(result.generations);
    // A recovery that needed more generations than the taxonomy predicts
    // (2 for a downgrade kind, 1 for a transient) still converged bit-identically,
    // but the extra same-width retries hide aborts worth reading about.
    const std::uint64_t expected_generations = expect_downgrade ? 2 : 1;
    if (result.generations > expected_generations) out.detail = with_events(out.detail);
  } catch (const std::exception& e) {
    out.detail = std::string("unrecovered: ") + e.what();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 2;
  std::uint64_t seed = 1001;
  bool numeric = false;
  std::string transport = "threads";
  std::string chaos;     // tcp mode: drop|partition|dup|truncate|stall ("" = SIGKILL)
  int kill_rank = -1;     // multi-process mode: rank to hit (-1: rotate per run)
  long long at_iter = -1; // multi-process mode: iteration to hit (-1: rotate per run)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--numeric") == 0) {
      numeric = true;
    } else if (std::strcmp(argv[i], "--transport") == 0 && i + 1 < argc) {
      transport = argv[++i];
      if (transport != "threads" && transport != "shm" && transport != "tcp") {
        std::cerr << "fault_stress: unknown transport '" << transport << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = argv[++i];
      if (chaos != "drop" && chaos != "partition" && chaos != "dup" &&
          chaos != "truncate" && chaos != "stall") {
        std::cerr << "fault_stress: unknown chaos mode '" << chaos
                  << "' (drop|partition|dup|truncate|stall)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--kill-rank") == 0 && i + 1 < argc) {
      kill_rank = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--at-iter") == 0 && i + 1 < argc) {
      at_iter = std::atoll(argv[++i]);
    } else {
      std::cerr << "usage: fault_stress [--rounds N] [--seed S] [--numeric]\n"
                   "                    [--transport threads|shm|tcp]\n"
                   "                    [--chaos drop|partition|dup|truncate|stall]\n"
                   "                    [--kill-rank R] [--at-iter N]\n";
      return 2;
    }
  }
  if (!chaos.empty() && transport != "tcp") {
    std::cerr << "fault_stress: --chaos requires --transport tcp\n";
    return 2;
  }

  if (transport == "shm" || transport == "tcp") {
    // Real process death / network chaos + elastic recovery over forked
    // workers. Skips cleanly (exit 0) where the platform lacks support.
    if (!transport::shm_transport_supported()) {
      std::cout << "fault_stress: shared-memory transport unsupported here; skipping\n";
      return 0;
    }
    const bool tcp = transport == "tcp";
    if (tcp && !transport::tcp_transport_supported()) {
      std::cout << "fault_stress: loopback tcp sockets unsupported here; skipping\n";
      return 0;
    }
    FaultKind kind = FaultKind::KillProcess;
    if (chaos == "drop") kind = FaultKind::DropConnection;
    else if (chaos == "partition") kind = FaultKind::PartitionPeer;
    else if (chaos == "dup") kind = FaultKind::DuplicateFrame;
    else if (chaos == "truncate") kind = FaultKind::TruncateFrame;
    else if (chaos == "stall") kind = FaultKind::StallSocket;
    const transport::TransportKind backend =
        tcp ? transport::TransportKind::kTcp : transport::TransportKind::kShm;
    const char* mp_tmpdir = std::getenv("TMPDIR");
    const std::string mp_ckpt =
        std::string(mp_tmpdir != nullptr ? mp_tmpdir : "/tmp") + "/fault_stress_elastic.ckpt";
    // One folded and one vocab-sharded flavor; widths with a halving step
    // available (Baseline 2 -> 1, 1f1b-vocab 4 -> 2).
    const std::vector<std::pair<PipelineFlavor, int>> cases{
        {PipelineFlavor::Baseline1F1B, 2}, {PipelineFlavor::OneFOneBVocab, 4}};
    int runs = 0, failures = 0;
    for (int round = 0; round < rounds; ++round) {
      for (const auto& [flavor, p] : cases) {
        const int rank = (kill_rank >= 0 ? kill_rank : runs) % p;
        const std::uint64_t iter =
            static_cast<std::uint64_t>(at_iter >= 0 ? at_iter : 1 + runs) % 4;
        const std::uint64_t run_seed = seed + static_cast<std::uint64_t>(runs);
        const auto t0 = std::chrono::steady_clock::now();
        const RunOutcome out =
            run_one_elastic(flavor, p, kind, rank, iter, run_seed, backend, mp_ckpt);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        ++runs;
        if (!out.ok) ++failures;
        std::cout << "fault_stress: round " << round << " seed " << run_seed << " "
                  << to_string(flavor) << " p=" << p << " " << transport << "/"
                  << to_string(kind) << " [" << (out.ok ? "ok" : "FAIL") << "] "
                  << out.detail << " (" << static_cast<int>(secs * 1000) << " ms)\n";
      }
    }
    std::cout << "\nfault_stress: " << runs << " elastic run(s), " << failures
              << " failure(s)\n";
    return failures > 0 ? 1 : 0;
  }
  if (numeric) {
    // Every trainer built below (including recovery rebuilds) inherits the
    // fence from the environment.
    ::setenv("VOCAB_GUARD_LEVEL", "1", 1);
  }

  const std::vector<PipelineFlavor> flavors{
      PipelineFlavor::Baseline1F1B, PipelineFlavor::Gpipe, PipelineFlavor::OneFOneBVocab,
      PipelineFlavor::VHalf};
  std::vector<FaultKind> kinds{FaultKind::ThrowInOp, FaultKind::StallDevice,
                               FaultKind::KillThread};
  if (numeric) {
    kinds.push_back(FaultKind::InjectNaN);
    kinds.push_back(FaultKind::InjectInf);
    kinds.push_back(FaultKind::BitFlip);
  }
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string ckpt =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/fault_stress.ckpt";

  int runs = 0, failures = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const PipelineFlavor flavor : flavors) {
      for (const int p : {2, 4}) {
        for (const FaultKind kind : kinds) {
          const std::uint64_t run_seed = seed + static_cast<std::uint64_t>(runs);
          const auto t0 = std::chrono::steady_clock::now();
          const RunOutcome out = is_data_fault(kind)
                                     ? run_one_numeric(flavor, p, kind, run_seed, ckpt)
                                     : run_one(flavor, p, kind, run_seed, ckpt);
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
          ++runs;
          if (!out.ok) ++failures;
          std::cout << "fault_stress: round " << round << " seed " << run_seed << " "
                    << to_string(flavor) << " p=" << p << " " << to_string(kind) << " ["
                    << (out.ok ? "ok" : "FAIL") << "] " << out.detail << " ("
                    << static_cast<int>(secs * 1000) << " ms)\n";
        }
      }
    }
  }
  std::cout << "\nfault_stress: " << runs << " run(s), " << failures << " failure(s)\n";
  return failures > 0 ? 1 : 0;
}
