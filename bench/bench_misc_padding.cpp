// Reproduces the §6.1 padding observation: padding the vocabulary to a
// multiple of 2p improves memory alignment in the vocabulary kernels. The
// paper saw ~8% on 24 devices for 256008 -> 256032. We measure the real CPU
// kernel analogue — shard sizes that are odd/unaligned defeat the matmul's
// blocking — plus the analytical shard-size table.

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/vocab_shard.h"
#include "tensor/tensor_ops.h"

using namespace vocab;

int main() {
  std::printf("=== §6.1: vocabulary padding to a multiple of 2p ===\n\n");

  // Analytical: shard sizes with and without padding on 24 devices.
  const std::int64_t v_raw = 256008;
  const int p = 24;
  std::printf("V = %lld on p = %d devices: unpadded shard = %.3f rows (fractional!),\n",
              static_cast<long long>(v_raw), p, static_cast<double>(v_raw) / p);
  const auto shard = make_shard(v_raw, 0, p);
  std::printf("padded V = %lld -> shard = %lld rows each (multiple of 2)\n\n",
              static_cast<long long>(shard.padded_vocab), static_cast<long long>(shard.size));

  // Kernel-level analogue: logits matmul with aligned vs misaligned shard
  // rows (the padded shape is a multiple of the blocking tile).
  Rng rng(5);
  const std::int64_t n = 128, h = 256;
  const Tensor x = Tensor::randn({n, h}, rng);
  Table t({"shard rows", "aligned?", "logits matmul (ms, best of 5)"});
  for (const std::int64_t rows : {std::int64_t{10667}, std::int64_t{10668}}) {
    const Tensor w = Tensor::randn({rows, h}, rng, 0.1f);
    double best = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const Tensor y = matmul_nt(x, w);
      best = std::min(best, std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count());
    }
    t.add_row({std::to_string(rows), rows % 4 == 0 ? "yes" : "no", fmt_f(best, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(On GPUs the effect is much larger — tensor cores need aligned tiles;\n");
  std::printf("the paper measured ~8%% end-to-end from padding 256008 -> 256032 at p=24.)\n");
  return 0;
}
