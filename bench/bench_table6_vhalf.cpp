// Reproduces Table 6 / Figures 13-14: Baseline vs Vocab-1 on the V-Half
// schedule across 16/24/32 GPUs. The headline claims: Baseline MFU collapses
// with vocabulary size and its per-device memory is wildly imbalanced
// (device 0 holds both whole vocabulary layers in the V placement, OOMing at
// 32 GPUs / 256k); Vocab-1 keeps MFU flat and collapses the min-max memory
// range across devices to a small constant.

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "cost/model_config.h"

using namespace vocab;
using namespace vocab::bench;

int main() {
  std::printf("=== Table 6 / Figures 13+14: comparison of methods on V-Half ===\n\n");

  for (const int gpus : {16, 24, 32}) {
    for (const std::int64_t seq : {std::int64_t{2048}, std::int64_t{4096}}) {
      Table mfu_table({"METHOD", "32K", "64K", "128K", "256K"});
      Table mem_table({"METHOD", "32K", "64K", "128K", "256K"});
      Table range_table({"METHOD", "32K", "64K", "128K", "256K"});
      for (const bool vp : {false, true}) {
        std::vector<std::string> mfu_row{vp ? "vocab-1" : "baseline"};
        std::vector<std::string> mem_row = mfu_row;
        std::vector<std::string> range_row = mfu_row;
        for (const std::int64_t v : paper_vocab_sweep()) {
          const CostModel cm(preset_vhalf(gpus, seq, v), HardwareModel{});
          const RunResult r = run_vhalf(cm, gpus, vp);
          mfu_row.push_back(mfu_cell(r));
          mem_row.push_back(mem_cell(r));
          // Figure 14's shaded area: min..max peak across devices.
          range_row.push_back(fmt_f(r.min_peak_gb, 1) + ".." + fmt_f(r.peak_gb, 1));
        }
        mfu_table.add_row(std::move(mfu_row));
        mem_table.add_row(std::move(mem_row));
        range_table.add_row(std::move(range_row));
      }
      std::printf("--- %dGPU, SEQ LENGTH %lld ---\n", gpus, static_cast<long long>(seq));
      std::printf("MFU (%%):\n%s", mfu_table.to_string().c_str());
      std::printf("PEAK MEMORY (GB, max across devices; * = OOM):\n%s",
                  mem_table.to_string().c_str());
      std::printf("PER-DEVICE PEAK RANGE (GB, min..max — Figure 14 shading):\n%s\n",
                  range_table.to_string().c_str());
    }
  }
  return 0;
}
