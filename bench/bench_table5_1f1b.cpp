// Reproduces Table 5 / Figures 11-12: MFU and peak memory of the five
// methods (Baseline, Redis, Vocab-1, Vocab-2, Interlaced) on the 1F1B
// schedule, across 8/16/32 GPUs, sequence lengths 2048/4096 and vocabulary
// sizes 32k-256k.
//
// Absolute numbers come from the analytical A100 model (see DESIGN.md); the
// paper's *shapes* are the claims under test: Baseline MFU collapses as V
// grows, Redis helps but plateaus, Vocab-1/2 stay flat, Interlaced matches
// Vocab on one node but loses multi-node and needs ~1.5x activations
// (OOMing at 21B / seq 4096 / 32 GPUs).

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "cost/model_config.h"

using namespace vocab;
using namespace vocab::bench;

int main() {
  std::printf("=== Table 5 / Figures 11+12: comparison of methods on 1F1B ===\n");
  std::printf("(simulated A100 cluster; see EXPERIMENTS.md for paper-vs-measured)\n\n");

  for (const int gpus : {8, 16, 32}) {
    for (const std::int64_t seq : {std::int64_t{2048}, std::int64_t{4096}}) {
      Table mfu_table({"METHOD", "32K", "64K", "128K", "256K"});
      Table mem_table({"METHOD", "32K", "64K", "128K", "256K"});
      for (const Method method : all_methods()) {
        std::vector<std::string> mfu_row{to_string(method)};
        std::vector<std::string> mem_row{to_string(method)};
        for (const std::int64_t v : paper_vocab_sweep()) {
          const CostModel cm(preset_1f1b(gpus, seq, v), HardwareModel{});
          const RunResult r = run_1f1b_method(cm, gpus, method);
          mfu_row.push_back(mfu_cell(r));
          mem_row.push_back(mem_cell(r));
        }
        mfu_table.add_row(std::move(mfu_row));
        mem_table.add_row(std::move(mem_row));
      }
      std::printf("--- %dGPU, SEQ LENGTH %lld ---\n", gpus, static_cast<long long>(seq));
      std::printf("MFU (%%):\n%s", mfu_table.to_string().c_str());
      std::printf("PEAK MEMORY (GB, * = exceeds 80GB HBM):\n%s\n",
                  mem_table.to_string().c_str());
    }
  }
  return 0;
}
