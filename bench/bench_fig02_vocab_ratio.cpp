// Reproduces Figure 2 (compute / parameter-memory ratio of the vocabulary
// layers relative to one transformer layer for Gemma2-9B, as the vocabulary
// grows) and prints Appendix A's Table 4 cost formulas evaluated for the
// paper's models. This is the motivation plot: at Gemma2's 256k vocabulary
// the output layer alone is ~5 transformer layers of compute and memory.

#include <cstdio>

#include "common/table.h"
#include "cost/cost_model.h"
#include "cost/model_config.h"

using namespace vocab;

int main() {
  std::printf("=== Figure 2: vocabulary/transformer layer ratios (Gemma2-9B) ===\n\n");

  Table fig2({"VOCAB", "output/xfmr compute", "output/xfmr params", "input/xfmr params"});
  for (const std::int64_t v :
       {std::int64_t{32000}, std::int64_t{64000}, std::int64_t{128000}, std::int64_t{256000}}) {
    const CostModel cm(preset_gemma2_9b(v), HardwareModel{});
    const double xfmr_flops = cm.transformer_total_flops();
    const double xfmr_params = cm.transformer_layer_param_bytes();
    fig2.add_row({fmt_count(v), fmt_f(cm.output_layer_total_flops() / xfmr_flops, 2) + "x",
                  fmt_f(cm.vocab_layer_param_bytes() / xfmr_params, 2) + "x",
                  fmt_f(cm.vocab_layer_param_bytes() / xfmr_params, 2) + "x"});
  }
  std::printf("%s\n", fig2.to_string().c_str());

  std::printf("=== Table 4: per-layer cost formulas (per microbatch) ===\n");
  std::printf("  transformer: bsh(72h+12s) FLOPs, 24h^2 bytes (fp16 params)\n");
  std::printf("  input:       3bsh FLOPs,         2hV bytes\n");
  std::printf("  output:      6bshV FLOPs,        2hV bytes\n\n");
  Table t4({"MODEL", "xfmr FLOPs", "input FLOPs", "output FLOPs", "xfmr params", "vocab params"});
  for (const auto& [name, cfg] :
       {std::pair<const char*, ModelConfig>{"4B (8GPU)", preset_1f1b(8, 2048, 262144)},
        {"10B (16GPU)", preset_1f1b(16, 2048, 262144)},
        {"21B (32GPU)", preset_1f1b(32, 2048, 262144)},
        {"gemma2-9b", preset_gemma2_9b()}}) {
    const CostModel cm(cfg, HardwareModel{});
    t4.add_row({name, fmt_f(cm.transformer_total_flops() / 1e12, 2) + " T",
                fmt_f(cm.input_layer_total_flops() / 1e9, 2) + " G",
                fmt_f(cm.output_layer_total_flops() / 1e12, 2) + " T",
                fmt_count(cfg.transformer_layer_params()),
                fmt_count(cfg.vocab_layer_params())});
  }
  std::printf("%s", t4.to_string().c_str());

  std::printf("\nExpected shape (paper): at 256k vocabulary the output layer costs ~5\n");
  std::printf("transformer layers of compute and parameters for Gemma2-9B.\n");
  return 0;
}
