// Wall-clock A/B of the schedule-driven executor against the synchronous
// naive pipeline: same weights, same data, same devices — the only variable
// is whether microbatches are pipelined per the generated schedules.
//
// Emits BENCH_pipeline.json: per flavor, ns/iteration, speedup over the
// naive baseline, and each device's idle fraction as measured by the
// executor (comm waits inside compute ops count as busy, so the printed
// idle is a lower bound). A second section prices the numeric guardrails:
// the same pipelined run at VOCAB_GUARD_LEVEL 0/1/2, so the fence's cost —
// and level 0's zero-overhead claim — is a number in the JSON, not a
// promise in a doc. An `executor_dispatch` section A/Bs the struct-walking
// executor against the bytecode interpreter (ns/iter + per-device idle) —
// the two backends are bit-identical, so the delta is pure dispatch cost.
// A `transport` section A/Bs the comm backends (threads vs shm rings vs tcp
// loopback sockets) on the same schedule: all three are bit-identical by
// construction, so the deltas price serialization + kernel crossings.
//
// Usage: bench_pipeline_wallclock [--json <path>] [--p <devices>]
//                                 [--m <microbatches>] [--iters <n>]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cost/cost_model.h"
#include "model/gpt.h"
#include "runtime/pipeline_trainer.h"
#include "search/schedule_search.h"
#include "transport/shm_region.h"
#include "transport/shm_transport.h"
#include "transport/tcp_frame.h"
#include "transport/tcp_transport.h"
#include "transport/thread_transport.h"

namespace vocab {
namespace {

using Clock = std::chrono::steady_clock;

struct Flavor {
  const char* key;  // JSON name
  PipelineFlavor flavor;
  OutputAlgo algo;
  int zb_w_delay = 0;  // ZbVocab only; 0 = 1F1B-vocab's peak memory
};

struct Result {
  std::string name;
  double ns_per_iter = 0.0;
  double speedup_vs_naive = 0.0;
  // Measured per-device bubble fraction (executor idle / wall). Comm waits
  // inside compute ops count as busy, so this is a lower bound on the true
  // bubble. Empty for the naive baseline.
  std::vector<double> bubble;
};

GptConfig bench_config(int p) {
  GptConfig cfg;
  cfg.num_layers = 2 * p;  // 2p | L so every flavor (incl. V-Half) runs
  cfg.heads = 2;
  cfg.hidden = 64;
  cfg.seq_len = 32;
  cfg.vocab = 211;  // prime: vocabulary padding on every width
  return cfg;
}

double run_flavor(const GptWeights& weights, const std::vector<Sample>& mbs, int p,
                  const Flavor& f, int iters, std::vector<double>* bubble) {
  PipelineTrainer trainer(weights, p, f.algo, f.flavor);
  if (f.flavor == PipelineFlavor::ZbVocab) {
    ScheduleTuning tuning;
    tuning.zb_w_delay = f.zb_w_delay;
    trainer.set_schedule_tuning(tuning);
  }
  trainer.train_iteration(mbs, 0.05f);  // warmup: builds + caches the executor
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) trainer.train_iteration(mbs, 0.05f);
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count() / iters;
  if (bubble != nullptr) {
    bubble->clear();
    if (const ExecutorStats* stats = trainer.last_executor_stats()) {
      for (int d = 0; d < p; ++d) bubble->push_back(stats->idle_fraction(d));
    }
  }
  return ns;
}

/// ns/iter of the schedule-driven pipeline at each guard level. The trainer
/// reads VOCAB_GUARD_LEVEL at construction, so each level gets a fresh
/// trainer; weights, data and schedule are otherwise identical.
struct GuardOverhead {
  std::string flavor;
  double ns_per_iter[3] = {0.0, 0.0, 0.0};  // level 0 / 1 / 2
};

GuardOverhead run_guard_overhead(const GptWeights& weights, const std::vector<Sample>& mbs,
                                 int p, const Flavor& f, int iters) {
  GuardOverhead g;
  g.flavor = f.key;
  for (int level = 0; level <= 2; ++level) {
    const char level_str[2] = {static_cast<char>('0' + level), '\0'};
    ::setenv("VOCAB_GUARD_LEVEL", level_str, 1);
    g.ns_per_iter[level] = run_flavor(weights, mbs, p, f, iters, nullptr);
  }
  ::unsetenv("VOCAB_GUARD_LEVEL");
  return g;
}

/// Struct-walking executor vs the bytecode interpreter on the same schedule:
/// ns/iter and per-device idle for each backend. The dispatch paths differ
/// (Op-struct traversal vs fetch-decode over compiled instructions with
/// token mailboxes) but the numerics are bit-identical, so any delta here is
/// pure dispatch overhead.
struct DispatchAb {
  std::string flavor;
  double ns_structs = 0.0, ns_program = 0.0;
  std::vector<double> idle_structs, idle_program;
};

DispatchAb run_dispatch_ab(const GptWeights& weights, const std::vector<Sample>& mbs,
                           int p, const Flavor& f, int iters) {
  DispatchAb ab;
  ab.flavor = f.key;
  for (const ExecutorBackend backend : {ExecutorBackend::kStructs, ExecutorBackend::kProgram}) {
    PipelineTrainer trainer(weights, p, f.algo, f.flavor);
    trainer.set_executor_backend(backend);
    trainer.train_iteration(mbs, 0.05f);  // warmup
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) trainer.train_iteration(mbs, 0.05f);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() / iters;
    std::vector<double> idle;
    if (const ExecutorStats* stats = trainer.last_executor_stats()) {
      for (int d = 0; d < p; ++d) idle.push_back(stats->idle_fraction(d));
    }
    if (backend == ExecutorBackend::kStructs) {
      ab.ns_structs = ns;
      ab.idle_structs = std::move(idle);
    } else {
      ab.ns_program = ns;
      ab.idle_program = std::move(idle);
    }
  }
  return ab;
}

/// Comm backends on the same schedule: in-process threads (mutex+condvar
/// queues), shm rings (lock-free SPSC over a shared mapping), and tcp
/// loopback sockets (CRC-framed, supervised). The transport suite asserts
/// all three are bit-identical, so the deltas here price pure serialization
/// and kernel-crossing cost — what a deployment pays to leave one machine.
struct TransportAb {
  std::string flavor;
  double ns_threads = 0.0;
  double ns_shm = 0.0;  // 0 = backend unsupported on this platform
  double ns_tcp = 0.0;  // 0 = backend unsupported on this platform
};

TransportAb run_transport_ab(const GptWeights& weights, const std::vector<Sample>& mbs,
                             int p, const Flavor& f, int iters) {
  TransportAb ab;
  ab.flavor = f.key;
  const auto time_backend = [&](transport::Transport* backend) {
    PipelineTrainer trainer(weights, p, f.algo, f.flavor, backend);
    trainer.train_iteration(mbs, 0.05f);  // warmup
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) trainer.train_iteration(mbs, 0.05f);
    return std::chrono::duration<double, std::nano>(Clock::now() - t0).count() / iters;
  };
  {
    transport::ThreadTransport threads;
    ab.ns_threads = time_backend(&threads);
  }
  if (transport::shm_transport_supported()) {
    transport::ShmTransport shm = transport::ShmTransport::in_process();
    ab.ns_shm = time_backend(&shm);
  }
  if (transport::tcp_transport_supported()) {
    transport::TcpTransport tcp = transport::TcpTransport::in_process();
    ab.ns_tcp = time_backend(&tcp);
  }
  return ab;
}

/// fp32 vs bf16 mixed precision on the same schedule: wall clock, the
/// vocab-shard parameter footprint (the ~2x acceptance number), and the
/// final-iteration loss of each so the bf16-tracks-fp32 claim is recorded
/// next to the cost it buys.
struct MixedPrecisionAb {
  std::string flavor;
  double ns_fp32 = 0.0, ns_bf16 = 0.0;
  std::size_t bytes_fp32 = 0, bytes_bf16 = 0;
  float loss_fp32 = 0.0f, loss_bf16 = 0.0f;
};

MixedPrecisionAb run_mixed_precision(const GptWeights& weights, const std::vector<Sample>& mbs,
                                     int p, const Flavor& f, int iters) {
  MixedPrecisionAb ab;
  ab.flavor = f.key;
  for (const bool bf16 : {false, true}) {
    PipelineTrainer trainer(weights, p, f.algo, f.flavor);
    if (bf16) trainer.set_mixed_precision(MixedPrecisionConfig{});
    float loss = trainer.train_iteration(mbs, 0.05f);  // warmup
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) loss = trainer.train_iteration(mbs, 0.05f);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() / iters;
    (bf16 ? ab.ns_bf16 : ab.ns_fp32) = ns;
    (bf16 ? ab.bytes_bf16 : ab.bytes_fp32) = trainer.vocab_param_bytes();
    (bf16 ? ab.loss_bf16 : ab.loss_fp32) = loss;
  }
  return ab;
}

/// Cost-model-driven schedule search (src/search) on the bench configuration,
/// with each compared schedule then actually executed: predicted bubble
/// fraction (discrete-event simulation) next to the measured one (executor
/// idle). The comparison set is the searched winner, the equal-peak-memory
/// zb-vocab w0 members, and the 1f1b-vocab baselines. On a machine with
/// fewer than p cores the measured column is time-slicing noise — the
/// predicted column is the schedule-quality signal there (see DESIGN.md §10).
struct SearchBenchRow {
  std::string name;
  std::string family;
  OutputAlgo algo = OutputAlgo::Alg1;
  int w_delay = 0;
  bool winner = false;
  double predicted_makespan = 0.0;
  double predicted_bubble = 0.0;  // max over devices
  double peak_microbatches = 0.0;
  double measured_ns = 0.0;
  double measured_bubble = 0.0;  // max over devices
  std::vector<double> measured_bubble_per_device;
};

std::vector<SearchBenchRow> run_schedule_search(const GptWeights& weights,
                                                const std::vector<Sample>& mbs, int p, int m,
                                                int iters) {
  const GptConfig& cfg = weights.config;
  ModelConfig mc;
  mc.name = "bench";
  mc.num_layers = cfg.num_layers;
  mc.attention_heads = cfg.heads;
  mc.hidden = cfg.hidden;
  mc.seq_len = cfg.seq_len;
  mc.vocab = cfg.vocab;
  mc.microbatch = 1;
  mc.num_microbatches = m;
  const CostModel cm(mc, HardwareModel{});

  search::SearchRequest req;
  req.p = p;
  req.runtime_only = true;
  req.include_multi_chunk = false;
  const search::SearchResult found = search::search_schedules(cm, req);
  const search::Candidate* best = found.best();

  std::vector<SearchBenchRow> rows;
  for (const auto& c : found.ranked) {
    const bool is_winner = best != nullptr && &c == best;
    const bool equal_peak_zb = c.family == "zb-vocab" && c.w_delay == 0;
    const bool baseline = c.family == "1f1b-vocab";
    if (!is_winner && !equal_peak_zb && !baseline) continue;
    if (!c.certified) continue;

    SearchBenchRow row;
    row.name = c.name;
    row.family = c.family;
    row.algo = c.algo;
    row.w_delay = c.w_delay;
    row.winner = is_winner;
    row.predicted_makespan = c.predicted_makespan;
    row.predicted_bubble = c.predicted_bubble;
    row.peak_microbatches = c.peak_microbatches;

    Flavor f;
    f.key = row.name.c_str();
    f.flavor = c.family == "zb-vocab"      ? PipelineFlavor::ZbVocab
               : c.family == "gpipe-vocab" ? PipelineFlavor::Gpipe
                                           : PipelineFlavor::OneFOneBVocab;
    f.algo = c.algo;
    f.zb_w_delay = c.w_delay;
    row.measured_ns = run_flavor(weights, mbs, p, f, iters, &row.measured_bubble_per_device);
    for (const double b : row.measured_bubble_per_device) {
      row.measured_bubble = std::max(row.measured_bubble, b);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string render_json(const std::vector<Result>& results, const GuardOverhead& guard,
                        const MixedPrecisionAb& mp, const DispatchAb& dispatch,
                        const TransportAb& tab,
                        const std::vector<SearchBenchRow>& search_rows, int p, int m) {
  // Record the measurement machine: overlap can only buy wall-clock when the
  // p device threads have >= p cores to land on (see DESIGN.md §10).
  const unsigned cores = std::thread::hardware_concurrency();
  std::string out = "{\n  \"p\": " + std::to_string(p) + ", \"m\": " + std::to_string(m) +
                    ", \"cores\": " + std::to_string(cores) + ",\n";
  // Make an oversubscribed measurement self-describing: consumers of the
  // JSON (CI trend lines, the paper tables) must not read a time-sliced run
  // as a pipelining result.
  if (cores < static_cast<unsigned>(p)) {
    out += "  \"warning\": \"" + std::to_string(cores) + " core(s) < p=" + std::to_string(p) +
           " devices; wall-clock numbers are time-slicing noise, expect ~1.0x\",\n";
  }
  out += "  \"flavors\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ns_per_iter\": %.0f, \"speedup_vs_naive\": %.3f, ",
                  r.name.c_str(), r.ns_per_iter, r.speedup_vs_naive);
    out += buf;
    // Measured per-device bubble fraction is first-class; "idle_fraction"
    // repeats it under the historical name for existing consumers.
    double bubble_max = 0.0;
    for (const double b : r.bubble) bubble_max = std::max(bubble_max, b);
    out += "\"bubble_fraction\": [";
    for (std::size_t d = 0; d < r.bubble.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%s%.3f", d > 0 ? ", " : "", r.bubble[d]);
      out += buf;
    }
    out += "], ";
    std::snprintf(buf, sizeof(buf), "\"bubble_fraction_max\": %.3f, ", bubble_max);
    out += buf;
    out += "\"idle_fraction\": [";
    for (std::size_t d = 0; d < r.bubble.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%s%.3f", d > 0 ? ", " : "", r.bubble[d]);
      out += buf;
    }
    out += "]}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  const double base = guard.ns_per_iter[0];
  std::snprintf(buf, sizeof(buf),
                "  \"guard\": {\"flavor\": \"%s\", \"ns_per_iter_level0\": %.0f, "
                "\"ns_per_iter_level1\": %.0f, \"ns_per_iter_level2\": %.0f, ",
                guard.flavor.c_str(), base, guard.ns_per_iter[1], guard.ns_per_iter[2]);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"overhead_level1\": %.4f, \"overhead_level2\": %.4f},\n",
                base > 0.0 ? guard.ns_per_iter[1] / base - 1.0 : 0.0,
                base > 0.0 ? guard.ns_per_iter[2] / base - 1.0 : 0.0);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"mixed_precision\": {\"flavor\": \"%s\", \"ns_per_iter_fp32\": %.0f, "
                "\"ns_per_iter_bf16\": %.0f, ",
                mp.flavor.c_str(), mp.ns_fp32, mp.ns_bf16);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"vocab_param_bytes_fp32\": %zu, \"vocab_param_bytes_bf16\": %zu, ",
                mp.bytes_fp32, mp.bytes_bf16);
  out += buf;
  const double denom = std::max(std::abs(mp.loss_fp32), 1e-12f);
  std::snprintf(buf, sizeof(buf),
                "\"loss_fp32\": %.6f, \"loss_bf16\": %.6f, \"rel_loss_diff\": %.4f}\n",
                static_cast<double>(mp.loss_fp32), static_cast<double>(mp.loss_bf16),
                std::abs(mp.loss_bf16 - mp.loss_fp32) / denom);
  out += buf;
  out.back() = ',';  // keep appending after the mixed_precision object
  out += "\n";
  std::snprintf(buf, sizeof(buf),
                "  \"executor_dispatch\": {\"flavor\": \"%s\", \"ns_per_iter_structs\": %.0f, "
                "\"ns_per_iter_program\": %.0f, \"program_overhead\": %.4f, ",
                dispatch.flavor.c_str(), dispatch.ns_structs, dispatch.ns_program,
                dispatch.ns_structs > 0.0 ? dispatch.ns_program / dispatch.ns_structs - 1.0
                                          : 0.0);
  out += buf;
  const auto idle_array = [&](const char* key, const std::vector<double>& idle) {
    out += std::string("\"") + key + "\": [";
    for (std::size_t d = 0; d < idle.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%s%.3f", d > 0 ? ", " : "", idle[d]);
      out += buf;
    }
    out += "]";
  };
  idle_array("idle_fraction_structs", dispatch.idle_structs);
  out += ", ";
  idle_array("idle_fraction_program", dispatch.idle_program);
  out += "},\n";
  // ns_per_iter 0 = backend unsupported on the measurement machine (shm
  // needs fork+shared mappings, tcp needs loopback sockets); overhead is
  // relative to the threads backend and 0 when the column is absent.
  std::snprintf(buf, sizeof(buf),
                "  \"transport\": {\"flavor\": \"%s\", \"ns_per_iter_threads\": %.0f, "
                "\"ns_per_iter_shm\": %.0f, \"ns_per_iter_tcp\": %.0f, ",
                tab.flavor.c_str(), tab.ns_threads, tab.ns_shm, tab.ns_tcp);
  out += buf;
  std::snprintf(buf, sizeof(buf), "\"shm_overhead\": %.4f, \"tcp_overhead\": %.4f},\n",
                tab.ns_threads > 0.0 && tab.ns_shm > 0.0 ? tab.ns_shm / tab.ns_threads - 1.0
                                                         : 0.0,
                tab.ns_threads > 0.0 && tab.ns_tcp > 0.0 ? tab.ns_tcp / tab.ns_threads - 1.0
                                                         : 0.0);
  out += buf;
  out += "  \"schedule_search\": [\n";
  for (std::size_t i = 0; i < search_rows.size(); ++i) {
    const SearchBenchRow& r = search_rows[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"family\": \"%s\", \"w_delay\": %d, "
                  "\"winner\": %s, ",
                  r.name.c_str(), r.family.c_str(), r.w_delay, r.winner ? "true" : "false");
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"peak_microbatches\": %.2f, \"predicted_bubble\": %.4f, "
                  "\"measured_bubble\": %.4f, ",
                  r.peak_microbatches, r.predicted_bubble, r.measured_bubble);
    out += buf;
    std::snprintf(buf, sizeof(buf), "\"predicted_makespan_ms\": %.3f, \"ns_per_iter\": %.0f, ",
                  r.predicted_makespan * 1e3, r.measured_ns);
    out += buf;
    out += "\"measured_bubble_per_device\": [";
    for (std::size_t d = 0; d < r.measured_bubble_per_device.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%s%.3f", d > 0 ? ", " : "",
                    r.measured_bubble_per_device[d]);
      out += buf;
    }
    out += "]}";
    out += i + 1 < search_rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

int run(int argc, char** argv) {
  // 5 timed iterations (plus warmup) per configuration: at 3 the guard/mp
  // overhead percentages moved by more than the effects being measured.
  int p = 4, m = 8, iters = 5;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const auto intflag = [&](const char* name, int& slot) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        slot = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (intflag("--p", p) || intflag("--m", m) || intflag("--iters", iters)) continue;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[i]);
    return 1;
  }

  const GptConfig cfg = bench_config(p);
  const GptWeights weights = GptWeights::init(cfg, 2025);
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 7);
  std::vector<Sample> mbs;
  for (int i = 0; i < m; ++i) mbs.push_back(corpus.sample(i));

  const std::vector<Flavor> flavors = {
      {"naive", PipelineFlavor::Naive, OutputAlgo::Alg2},
      {"gpipe-vocab-alg2", PipelineFlavor::Gpipe, OutputAlgo::Alg2},
      {"1f1b-vocab-alg1", PipelineFlavor::OneFOneBVocab, OutputAlgo::Alg1},
      {"1f1b-vocab-alg2", PipelineFlavor::OneFOneBVocab, OutputAlgo::Alg2},
      {"v-half-vocab-alg1", PipelineFlavor::VHalf, OutputAlgo::Alg1},
      // Zero-bubble family at w_delay=0: same peak activation memory as the
      // 1f1b-vocab rows above (p+2 / p+1 microbatches).
      {"zb-vocab-alg1-w0", PipelineFlavor::ZbVocab, OutputAlgo::Alg1, 0},
      {"zb-vocab-alg2-w0", PipelineFlavor::ZbVocab, OutputAlgo::Alg2, 0},
      // What the cost-model-driven search picks for this configuration.
      {"auto-alg2", PipelineFlavor::Auto, OutputAlgo::Alg2},
  };

  std::printf("pipeline wall-clock, p=%d m=%d L=%d h=%lld V=%lld (%d iters each)\n", p, m,
              cfg.num_layers, static_cast<long long>(cfg.hidden),
              static_cast<long long>(cfg.vocab), iters);
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < static_cast<unsigned>(p)) {
    // On stderr so a redirected stdout/JSON capture still shows the caveat
    // on the terminal; the JSON itself carries a "warning" field too.
    std::fprintf(stderr,
                 "warning: %u core(s) < p=%d devices — device threads time-slice one machine,\n"
                 "so pipelining cannot beat the synchronous baseline here; expect ~1.0x.\n",
                 cores, p);
  }
  std::vector<Result> results;
  double naive_ns = 0.0;
  for (const Flavor& f : flavors) {
    Result r;
    r.name = f.key;
    r.ns_per_iter = run_flavor(weights, mbs, p, f, iters, &r.bubble);
    if (f.flavor == PipelineFlavor::Naive) naive_ns = r.ns_per_iter;
    r.speedup_vs_naive = naive_ns > 0.0 ? naive_ns / r.ns_per_iter : 0.0;
    std::printf("  %-18s %10.2f ms/iter  speedup %5.2fx", r.name.c_str(),
                r.ns_per_iter / 1e6, r.speedup_vs_naive);
    if (!r.bubble.empty()) {
      std::printf("  bubble [");
      for (std::size_t d = 0; d < r.bubble.size(); ++d) {
        std::printf("%s%.2f", d > 0 ? " " : "", r.bubble[d]);
      }
      std::printf("]");
    }
    std::printf("\n");
    results.push_back(std::move(r));
  }

  // Guard-level pricing on the paper's main schedule.
  const GuardOverhead guard =
      run_guard_overhead(weights, mbs, p, flavors[2], iters);
  std::printf("  guard levels (%s): L0 %.2f ms/iter, L1 %.2f (%+.2f%%), L2 %.2f (%+.2f%%)\n",
              guard.flavor.c_str(), guard.ns_per_iter[0] / 1e6, guard.ns_per_iter[1] / 1e6,
              (guard.ns_per_iter[1] / guard.ns_per_iter[0] - 1.0) * 100.0,
              guard.ns_per_iter[2] / 1e6,
              (guard.ns_per_iter[2] / guard.ns_per_iter[0] - 1.0) * 100.0);

  // Struct-walking vs bytecode-interpreter dispatch on the paper's main
  // schedule (same certified linearization either way — pure dispatch cost).
  const DispatchAb dispatch = run_dispatch_ab(weights, mbs, p, flavors[2], iters);
  std::printf("  executor dispatch (%s): structs %.2f ms/iter, program %.2f ms/iter (%+.2f%%)\n",
              dispatch.flavor.c_str(), dispatch.ns_structs / 1e6, dispatch.ns_program / 1e6,
              dispatch.ns_structs > 0.0
                  ? (dispatch.ns_program / dispatch.ns_structs - 1.0) * 100.0
                  : 0.0);

  // Comm-backend pricing (threads vs shm vs tcp) on the paper's main
  // schedule; unsupported backends print as such and record 0 in the JSON.
  const TransportAb tab = run_transport_ab(weights, mbs, p, flavors[2], iters);
  std::printf("  transport (%s): threads %.2f ms/iter", tab.flavor.c_str(),
              tab.ns_threads / 1e6);
  if (tab.ns_shm > 0.0) {
    std::printf(", shm %.2f (%+.2f%%)", tab.ns_shm / 1e6,
                (tab.ns_shm / tab.ns_threads - 1.0) * 100.0);
  } else {
    std::printf(", shm unsupported");
  }
  if (tab.ns_tcp > 0.0) {
    std::printf(", tcp %.2f (%+.2f%%)", tab.ns_tcp / 1e6,
                (tab.ns_tcp / tab.ns_threads - 1.0) * 100.0);
  } else {
    std::printf(", tcp unsupported");
  }
  std::printf("\n");

  // Schedule search: predicted vs measured bubble fraction for the searched
  // winner, the equal-memory zb-vocab members, and the 1f1b-vocab baselines.
  const std::vector<SearchBenchRow> search_rows =
      run_schedule_search(weights, mbs, p, m, iters);
  std::printf("  schedule search (predicted vs measured bubble, peak mb):\n");
  for (const SearchBenchRow& r : search_rows) {
    std::printf("    %-18s pred %.4f  meas %.4f  peak %5.2f mb%s\n", r.name.c_str(),
                r.predicted_bubble, r.measured_bubble, r.peak_microbatches,
                r.winner ? "  <-- winner" : "");
  }

  // bf16 mixed precision A/B on the same schedule.
  const MixedPrecisionAb mp = run_mixed_precision(weights, mbs, p, flavors[2], iters);
  std::printf("  mixed precision (%s): fp32 %.2f ms/iter, bf16 %.2f ms/iter, "
              "vocab params %zu -> %zu bytes, loss %.4f vs %.4f\n",
              mp.flavor.c_str(), mp.ns_fp32 / 1e6, mp.ns_bf16 / 1e6, mp.bytes_fp32,
              mp.bytes_bf16, static_cast<double>(mp.loss_fp32),
              static_cast<double>(mp.loss_bf16));

  if (json_path) {
    FILE* out = std::fopen(json_path->c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path->c_str());
      return 1;
    }
    const std::string json =
        render_json(results, guard, mp, dispatch, tab, search_rows, p, m);
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("wrote %s\n", json_path->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace vocab

int main(int argc, char** argv) { return vocab::run(argc, argv); }
