// Reproduces Appendix B.2: the cost of the interlaced pipeline's synchronous
// all-reduces. A ~21.5B model on 32 GPUs is trained with (a) the sync
// collectives on the compute stream (true interlaced) and (b) the same
// collectives overlapped on the communication stream. The paper measures a
// 10.95% end-to-end improvement from removing them, concluding interlaced is
// undesirable for multi-node training.

#include <cstdio>

#include "cost/cost_model.h"
#include "schedule/schedule_interlaced.h"
#include "sim/pipeline_sim.h"

using namespace vocab;

int main() {
  std::printf("=== Appendix B.2: interlaced sync all-reduce ablation (21.5B, 32 GPUs) ===\n\n");
  for (const std::int64_t seq : {std::int64_t{2048}, std::int64_t{4096}}) {
    const CostModel cm(preset_b2_21b(seq), HardwareModel{});
    const auto with_sync = simulate(build_interlaced(cm, 32, /*sync=*/true));
    const auto without = simulate(build_interlaced(cm, 32, /*sync=*/false));
    const double speedup = 100.0 * (with_sync.makespan / without.makespan - 1.0);
    std::printf("seq %lld: with sync %.3fs, overlapped %.3fs -> removing the synchronous\n"
                "  all-reduces improves iteration time by %.2f%% (paper: 10.95%%)\n\n",
                static_cast<long long>(seq), with_sync.makespan, without.makespan, speedup);
  }
  return 0;
}
