#include "bench_common.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "schedule/schedule_interlaced.h"
#include "schedule/schedule_vhalf.h"

namespace vocab::bench {

const char* to_string(Method m) {
  switch (m) {
    case Method::Baseline: return "baseline";
    case Method::Redis: return "redis";
    case Method::Vocab1: return "vocab-1";
    case Method::Vocab2: return "vocab-2";
    case Method::Interlaced: return "interlaced";
  }
  return "?";
}

const std::vector<Method>& all_methods() {
  static const std::vector<Method> methods{Method::Baseline, Method::Redis, Method::Vocab1,
                                           Method::Vocab2, Method::Interlaced};
  return methods;
}

namespace {
RunResult summarize(const CostModel& cm, int gpus, const PipelineSchedule& sched) {
  const SimResult sim = simulate(sched, cm.hardware().memory_capacity);
  RunResult r;
  r.makespan = sim.makespan;
  r.mfu = cm.mfu(sim.makespan, gpus);
  r.peak_gb = gib(sim.max_peak_bytes());
  r.min_peak_gb = gib(sim.min_peak_bytes());
  r.oom = sim.any_oom();
  return r;
}
}  // namespace

RunResult run_1f1b_method(const CostModel& cm, int gpus, Method method) {
  switch (method) {
    case Method::Baseline:
      return summarize(cm, gpus,
                       build_1f1b(cm, gpus, uniform_assignment(cm.config().num_layers, gpus),
                                  "baseline"));
    case Method::Redis:
      return summarize(cm, gpus, build_1f1b(cm, gpus, redis_assignment(cm, gpus), "redis"));
    case Method::Vocab1:
      return summarize(cm, gpus, build_1f1b_vocab(cm, gpus, OutputAlgo::Alg1));
    case Method::Vocab2:
      return summarize(cm, gpus, build_1f1b_vocab(cm, gpus, OutputAlgo::Alg2));
    case Method::Interlaced:
      return summarize(cm, gpus, build_interlaced(cm, gpus, /*sync_collectives=*/true));
  }
  return {};
}

RunResult run_vhalf(const CostModel& cm, int gpus, bool vocab_parallel) {
  return summarize(cm, gpus,
                   vocab_parallel ? build_vhalf_vocab(cm, gpus) : build_vhalf(cm, gpus));
}

std::string mfu_cell(const RunResult& r) {
  if (r.oom) return "OOM";
  return fmt_f(100.0 * r.mfu, 2);
}

std::string mem_cell(const RunResult& r) {
  return fmt_f(r.peak_gb, 2) + (r.oom ? "*" : "");
}

double gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void BenchJson::add(KernelRecord r) { records_.push_back(std::move(r)); }

std::string BenchJson::render() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const KernelRecord& r = records_[i];
    // ns_per_iter is a count of nanoseconds: emit it as a full-precision
    // integer, not ostream's 6-significant-digit scientific default, so
    // trajectory diffs between baselines are exact.
    os << "  {\"name\": \"" << json_escape(r.name) << "\", "
       << "\"shape\": \"" << json_escape(r.shape) << "\", "
       << "\"ns_per_iter\": " << static_cast<std::int64_t>(r.ns_per_iter + 0.5) << ", "
       << "\"gflops\": " << r.gflops << ", "
       << "\"gbps\": " << r.gbps << ", "
       << "\"threads\": " << r.threads << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

bool BenchJson::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::cerr << "bench: cannot write " << path << "\n";
    return false;
  }
  f << render();
  return static_cast<bool>(f);
}

std::optional<std::string> consume_json_flag(int& argc, char** argv) {
  std::optional<std::string> path;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return path;
}

}  // namespace vocab::bench
