// Ablations of the design choices DESIGN.md calls out:
//
//  A. Barrier count vs activation memory: Alg1 (2 barriers) vs Alg2 (1)
//     across pipeline widths — each barrier costs one in-flight microbatch.
//  B. Inserted-interval count for Alg1: fewer than the barrier count stalls
//     the pipeline (barriers stop overlapping compute); more only wastes
//     activation memory. The paper's choice (= #barriers) is the knee.
//  C. Fused streaming output layer (§7 future work): transient memory vs
//     chunk size, at numerically identical results.
//  D. Sensitivity of the headline comparison to the kernel-efficiency
//     constant: the Vocab-vs-Baseline ordering is robust across a 4x range.

#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/fused_output_layer.h"
#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "sim/pipeline_sim.h"
#include "tensor/tensor_ops.h"

using namespace vocab;

namespace {

void ablation_barriers() {
  std::printf("--- A. barrier count vs activation memory (V=256k, seq 2048) ---\n");
  Table t({"p", "alg", "barriers", "act peak (microbatches)", "MFU %"});
  for (const int p : {8, 16, 32}) {
    ModelConfig cfg = preset_1f1b(p, 2048, 4096);  // small V isolates activations
    const CostModel cm(cfg, HardwareModel{});
    for (const OutputAlgo algo : {OutputAlgo::Alg1, OutputAlgo::Alg2}) {
      const auto sched = build_1f1b_vocab(cm, p, algo);
      const auto sim = simulate(sched);
      const double act = cm.activation_bytes_per_mb(cfg.num_layers / p);
      t.add_row({std::to_string(p), to_string(algo), std::to_string(num_barriers(algo)),
                 fmt_f((sim.peak_bytes[0] - sched.base_bytes[0]) / act, 2),
                 fmt_f(100 * cm.mfu(sim.makespan, p), 2)});
    }
    t.add_separator();
  }
  std::printf("%s\n", t.to_string().c_str());
}

void ablation_intervals() {
  std::printf("--- B. inserted intervals for Alg1 (8 GPUs, V=256k) ---\n");
  const int p = 8;
  const CostModel cm(preset_1f1b(p, 2048, 262144), HardwareModel{});
  Table t({"inserted intervals", "MFU %", "peak GB", "note"});
  for (const int k : {1, 2, 3, 4}) {
    const auto sched = build_1f1b_vocab(cm, p, OutputAlgo::Alg1, "ablate", k);
    const auto sim = simulate(sched);
    const char* note =
        k < 2 ? "barriers stall compute" : (k == 2 ? "paper's choice" : "wasted memory");
    t.add_row({std::to_string(k), fmt_f(100 * cm.mfu(sim.makespan, p), 2),
               fmt_f(sim.max_peak_bytes() / 1e9 / 1.073, 2), note});
  }
  std::printf("%s\n", t.to_string().c_str());
}

void ablation_fused() {
  std::printf("--- C. fused streaming output layer (n=64, h=128, V=32768) ---\n");
  const std::int64_t n = 64, h = 128, v = 32768;
  Rng rng(9);
  const Tensor x = Tensor::randn({n, h}, rng);
  const Tensor w = Tensor::randn({v, h}, rng, 0.1f);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (auto& tg : targets) tg = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  const OutputLayerResult ref = reference_output_layer(x, w, targets, 1.0f / n);

  Table t({"chunk cols", "transient", "vs unfused", "max |grad diff|"});
  t.add_row({"(unfused)", fmt_bytes(static_cast<double>(unfused_transient_bytes(n, v))), "1.00x",
             "-"});
  for (const std::int64_t chunk : {std::int64_t{512}, std::int64_t{2048}, std::int64_t{8192}}) {
    const FusedOutputResult fused = fused_output_layer(x, w, targets, 1.0f / n, chunk);
    t.add_row({std::to_string(chunk), fmt_bytes(static_cast<double>(fused.peak_transient_bytes)),
               fmt_f(static_cast<double>(fused.peak_transient_bytes) /
                         static_cast<double>(unfused_transient_bytes(n, v)),
                     3) + "x",
               fmt_f(std::max(max_abs_diff(fused.result.grad_x, ref.grad_x),
                              max_abs_diff(fused.result.grad_w, ref.grad_w)),
                     8)});
  }
  std::printf("%s\n", t.to_string().c_str());
}

void ablation_efficiency() {
  std::printf("--- D. sensitivity to the kernel-efficiency constant (8 GPUs, V=256k) ---\n");
  Table t({"overhead FLOPs", "baseline MFU %", "vocab-2 MFU %", "vocab wins?"});
  for (const double o : {2e10, 8e10, 3.2e11}) {
    HardwareModel hw;
    hw.kernel_overhead_flops = o;
    const CostModel cm(preset_1f1b(8, 2048, 262144), hw);
    const auto base =
        simulate(build_1f1b(cm, 8, uniform_assignment(cm.config().num_layers, 8)));
    const auto voc = simulate(build_1f1b_vocab(cm, 8, OutputAlgo::Alg2));
    t.add_row({fmt_f(o / 1e10, 0) + "e10", fmt_f(100 * cm.mfu(base.makespan, 8), 2),
               fmt_f(100 * cm.mfu(voc.makespan, 8), 2),
               voc.makespan < base.makespan ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Ablations of design choices ===\n\n");
  ablation_barriers();
  ablation_intervals();
  ablation_fused();
  ablation_efficiency();
  return 0;
}
