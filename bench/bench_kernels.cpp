// google-benchmark microbenchmarks of the numeric kernels underlying the
// vocabulary-parallel passes: matmuls, softmax variants (safe / streaming /
// partitioned), and the full per-shard output-layer algorithms.

#include <benchmark/benchmark.h>

#include <functional>
#include <thread>

#include "comm/device_group.h"
#include "common/rng.h"
#include "core/online_softmax.h"
#include "core/output_layer_shard.h"
#include "core/reference_output_layer.h"
#include "core/vocab_shard.h"
#include "tensor/tensor_ops.h"

namespace vocab {
namespace {

void BM_MatmulNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(128)->Arg(256);

void BM_SafeSoftmax(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = Tensor::randn({64, state.range(0)}, rng, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(x));
  }
}
BENCHMARK(BM_SafeSoftmax)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_StreamingSoftmax(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = Tensor::randn({64, 32768}, rng, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(streaming_softmax_rows(x, state.range(0)));
  }
}
BENCHMARK(BM_StreamingSoftmax)->Arg(1024)->Arg(4096)->Arg(32768);

void BM_ReferenceOutputLayer(benchmark::State& state) {
  const std::int64_t v = state.range(0);
  Rng rng(4);
  const Tensor x = Tensor::randn({32, 128}, rng);
  const Tensor w = Tensor::randn({v, 128}, rng, 0.2f);
  std::vector<std::int64_t> targets(32);
  for (auto& t : targets) t = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_output_layer(x, w, targets, 1.0f / 32));
  }
}
BENCHMARK(BM_ReferenceOutputLayer)->Arg(4096)->Arg(16384);

void bench_partitioned(benchmark::State& state, OutputAlgo algo) {
  const int p = static_cast<int>(state.range(0));
  const std::int64_t v = 16384, h = 128, n = 32;
  Rng rng(5);
  const Tensor x = Tensor::randn({n, h}, rng);
  const Tensor w = Tensor::randn({v, h}, rng, 0.2f);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (auto& t : targets) t = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  const auto shards = make_all_shards(v, p);
  auto shard_w = [&](const VocabShard& s) {
    Tensor out({s.size, h});
    for (std::int64_t r = 0; r < s.valid_size(); ++r) {
      for (std::int64_t c = 0; c < h; ++c) out.at(r, c) = w.at(s.offset + r, c);
    }
    return out;
  };
  int mb = 0;
  for (auto _ : state) {
    DeviceGroup group(p);
    std::vector<std::thread> threads;
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        OutputLayerShard layer(algo, shards[static_cast<std::size_t>(r)],
                               shard_w(shards[static_cast<std::size_t>(r)]));
        benchmark::DoNotOptimize(layer.run_all(mb, group, x, targets, 1.0f / n));
      });
    }
    for (auto& t : threads) t.join();
    ++mb;
  }
}

void BM_PartitionedNaive(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Naive); }
void BM_PartitionedAlg1(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Alg1); }
void BM_PartitionedAlg2(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Alg2); }
BENCHMARK(BM_PartitionedNaive)->Arg(2)->Arg(4);
BENCHMARK(BM_PartitionedAlg1)->Arg(2)->Arg(4);
BENCHMARK(BM_PartitionedAlg2)->Arg(2)->Arg(4);

}  // namespace
}  // namespace vocab

BENCHMARK_MAIN();
