// google-benchmark microbenchmarks of the numeric kernels underlying the
// vocabulary-parallel passes: matmuls, softmax variants (safe / streaming /
// partitioned), and the full per-shard output-layer algorithms.
//
// Pass `--json <path>` to also emit the results as a machine-readable
// BENCH_kernels.json array (name, shape, ns/iter, GFLOP/s, GB/s, threads) so
// the kernel perf trajectory is recorded across revisions. Compute-bound
// kernels report GFLOP/s; memory-bound ones (softmax) report GB/s.

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "comm/device_group.h"
#include "common/rng.h"
#include "core/online_softmax.h"
#include "core/output_layer_shard.h"
#include "core/reference_output_layer.h"
#include "core/vocab_shard.h"
#include "parallel/thread_pool.h"
#include "tensor/bf16.h"
#include "tensor/tensor_ops.h"

namespace vocab {
namespace {

std::string dims(std::int64_t r, std::int64_t c) {
  return "[" + std::to_string(r) + "," + std::to_string(c) + "]";
}

void BM_MatmulNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(dims(n, n) + "x" + dims(n, n) + "^T");
}
BENCHMARK(BM_MatmulNT)->Arg(64)->Arg(128)->Arg(256)->UseRealTime();

// The acceptance shape from the growth plan: a microbatch of 2048 token
// positions at hidden 1024 against one vocabulary shard of 8192 rows — the
// logits matmul every output-layer S pass performs.
constexpr std::int64_t kLogitsRows = 2048;
constexpr std::int64_t kLogitsHidden = 1024;
constexpr std::int64_t kLogitsShard = 8192;

// Verbatim copy of the seed revision's serial matmul_nt (single-accumulator
// dot product), kept here so BENCH_kernels.json always records the optimized
// kernel against the same baseline it replaced.
Tensor seed_serial_matmul_nt(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::int64_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      pc[i * n + j] = acc;
    }
  }
  return c;
}

void bench_logits_matmul(benchmark::State& state,
                         const std::function<Tensor(const Tensor&, const Tensor&)>& kernel) {
  Rng rng(6);
  const Tensor x = Tensor::randn({kLogitsRows, kLogitsHidden}, rng);
  const Tensor w = Tensor::randn({kLogitsShard, kLogitsHidden}, rng, 0.2f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kLogitsRows * kLogitsShard * kLogitsHidden);
  state.SetLabel(dims(kLogitsRows, kLogitsHidden) + "x" + dims(kLogitsShard, kLogitsHidden) +
                 "^T");
}

void BM_MatmulNT_Logits(benchmark::State& state) { bench_logits_matmul(state, matmul_nt); }
void BM_MatmulNT_LogitsSeedSerial(benchmark::State& state) {
  bench_logits_matmul(state, seed_serial_matmul_nt);
}
BENCHMARK(BM_MatmulNT_Logits)->Unit(benchmark::kMillisecond)->Iterations(3)->UseRealTime();
BENCHMARK(BM_MatmulNT_LogitsSeedSerial)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

// The same logits product against a bf16-stored weight shard — the
// mixed-precision S-pass matmul. Same FLOPs, half the weight-stream bytes.
void BM_MatmulNTBf16_Logits(benchmark::State& state) {
  Rng rng(6);
  const Tensor x = Tensor::randn({kLogitsRows, kLogitsHidden}, rng);
  const Bf16Tensor w =
      Bf16Tensor::from_tensor(Tensor::randn({kLogitsShard, kLogitsHidden}, rng, 0.2f));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt_bf16(x, w));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kLogitsRows * kLogitsShard * kLogitsHidden);
  state.SetLabel(dims(kLogitsRows, kLogitsHidden) + "x" + dims(kLogitsShard, kLogitsHidden) +
                 "^T bf16");
}
BENCHMARK(BM_MatmulNTBf16_Logits)->Unit(benchmark::kMillisecond)->Iterations(3)->UseRealTime();

// Softmax is memory-bound, so its throughput is reported as bytes moved
// (read the logits, write the probabilities) rather than FLOPs.
void BM_SafeSoftmax(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = Tensor::randn({64, state.range(0)}, rng, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(x));
  }
  state.SetBytesProcessed(state.iterations() * 2 * 64 * state.range(0) *
                          static_cast<std::int64_t>(sizeof(float)));
  state.SetLabel(dims(64, state.range(0)));
}
BENCHMARK(BM_SafeSoftmax)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_StreamingSoftmax(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = Tensor::randn({64, 32768}, rng, 4.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(streaming_softmax_rows(x, state.range(0)));
  }
  state.SetBytesProcessed(state.iterations() * 2 * 64 * 32768 *
                          static_cast<std::int64_t>(sizeof(float)));
  state.SetLabel(dims(64, 32768) + " chunk=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_StreamingSoftmax)->Arg(1024)->Arg(4096)->Arg(32768);

// Forward logits (2nVh) + grad_x (2nVh) + grad_w (2nVh): the three matmuls
// dominate; softmax/loss flops are negligible at these shapes.
constexpr std::int64_t output_layer_flops(std::int64_t n, std::int64_t v, std::int64_t h) {
  return 6 * n * v * h;
}

void BM_ReferenceOutputLayer(benchmark::State& state) {
  const std::int64_t v = state.range(0);
  Rng rng(4);
  const Tensor x = Tensor::randn({32, 128}, rng);
  const Tensor w = Tensor::randn({v, 128}, rng, 0.2f);
  std::vector<std::int64_t> targets(32);
  for (auto& t : targets) t = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_output_layer(x, w, targets, 1.0f / 32));
  }
  state.SetItemsProcessed(state.iterations() * output_layer_flops(32, v, 128));
  state.SetLabel(dims(32, 128) + "x" + dims(v, 128) + "^T");
}
BENCHMARK(BM_ReferenceOutputLayer)->Arg(4096)->Arg(16384);

void bench_partitioned(benchmark::State& state, OutputAlgo algo) {
  const int p = static_cast<int>(state.range(0));
  const std::int64_t v = 16384, h = 128, n = 32;
  Rng rng(5);
  const Tensor x = Tensor::randn({n, h}, rng);
  const Tensor w = Tensor::randn({v, h}, rng, 0.2f);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (auto& t : targets) t = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  const auto shards = make_all_shards(v, p);
  auto shard_w = [&](const VocabShard& s) {
    Tensor out({s.size, h});
    for (std::int64_t r = 0; r < s.valid_size(); ++r) {
      for (std::int64_t c = 0; c < h; ++c) out.at(r, c) = w.at(s.offset + r, c);
    }
    return out;
  };
  int mb = 0;
  for (auto _ : state) {
    DeviceGroup group(p);
    std::vector<std::thread> threads;
    for (int r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        OutputLayerShard layer(algo, shards[static_cast<std::size_t>(r)],
                               shard_w(shards[static_cast<std::size_t>(r)]));
        benchmark::DoNotOptimize(layer.run_all(mb, group, x, targets, 1.0f / n));
      });
    }
    for (auto& t : threads) t.join();
    ++mb;
  }
  // The p shards together cover the full [v, h] weight, so the aggregate
  // FLOPs equal the unpartitioned layer's regardless of p.
  state.SetItemsProcessed(state.iterations() * output_layer_flops(n, v, h));
  state.SetLabel(dims(n, h) + "x" + dims(v, h) + "^T p=" + std::to_string(p));
}

void BM_PartitionedNaive(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Naive); }
void BM_PartitionedAlg1(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Alg1); }
void BM_PartitionedAlg2(benchmark::State& state) { bench_partitioned(state, OutputAlgo::Alg2); }
// UseRealTime: the shard work runs on spawned threads, so the default
// CPU-time basis would wildly overstate items/sec.
BENCHMARK(BM_PartitionedNaive)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_PartitionedAlg1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_PartitionedAlg2)->Arg(2)->Arg(4)->UseRealTime();

// Console output as usual, plus a KernelRecord per measured run for --json.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::KernelRecord rec;
      rec.name = run.benchmark_name();
      rec.shape = run.report_label;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rec.ns_per_iter = run.real_accumulated_time / iters * 1e9;
      const auto it = run.counters.find("items_per_second");
      rec.gflops = it == run.counters.end() ? 0.0 : it->second.value / 1e9;
      const auto bytes = run.counters.find("bytes_per_second");
      rec.gbps = bytes == run.counters.end() ? 0.0 : bytes->second.value / 1e9;
      rec.threads = parallel::num_threads();
      json_.add(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const bench::BenchJson& json() const { return json_; }

 private:
  bench::BenchJson json_;
};

}  // namespace
}  // namespace vocab

int main(int argc, char** argv) {
  const auto json_path = vocab::bench::consume_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  vocab::JsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (json_path && !reporter.json().write_file(*json_path)) return 1;
  return 0;
}
