#pragma once

// Shared harness pieces for the per-table / per-figure benchmark binaries.

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "schedule/ops.h"
#include "sim/pipeline_sim.h"

namespace vocab::bench {

/// The five methods compared on 1F1B (paper §6.2).
enum class Method { Baseline, Redis, Vocab1, Vocab2, Interlaced };

[[nodiscard]] const char* to_string(Method m);

/// All five, in the paper's table order.
[[nodiscard]] const std::vector<Method>& all_methods();

/// One simulated experiment outcome.
struct RunResult {
  double mfu = 0.0;        ///< fraction (0..1)
  double peak_gb = 0.0;    ///< max over devices, GiB
  double min_peak_gb = 0.0;///< min over devices, GiB (Figure 14 range)
  double makespan = 0.0;   ///< seconds per iteration
  bool oom = false;        ///< exceeded the HBM capacity
};

/// Build + simulate one 1F1B-family method for the given model.
RunResult run_1f1b_method(const CostModel& cm, int gpus, Method method);

/// Build + simulate V-Half (baseline or +Vocab-1).
RunResult run_vhalf(const CostModel& cm, int gpus, bool vocab_parallel);

/// "46.2" / "OOM" formatting used by the paper's tables.
std::string mfu_cell(const RunResult& r);
std::string mem_cell(const RunResult& r);

/// GiB from bytes.
double gib(double bytes);

// ---- machine-readable benchmark output (--json <path>) ---------------------

/// One measured kernel data point, the unit of the BENCH_kernels.json perf
/// trajectory: which kernel, at what shape, how fast, at what pool width.
struct KernelRecord {
  std::string name;        ///< benchmark name, e.g. "BM_MatmulNT_Logits"
  std::string shape;       ///< operand shapes, e.g. "[2048,1024]x[8192,1024]^T"
  double ns_per_iter = 0;  ///< wall time per iteration
  double gflops = 0;       ///< compute throughput (0 when the bench reports no FLOPs)
  double gbps = 0;         ///< memory throughput, GB/s (0 when the bench reports no bytes)
  int threads = 1;         ///< VOCAB_NUM_THREADS-configured pool width
};

/// Accumulates KernelRecords and renders them as a JSON array.
class BenchJson {
 public:
  void add(KernelRecord r);
  [[nodiscard]] std::string render() const;
  /// Write render() to `path`; returns false (with a stderr note) on failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<KernelRecord> records_;
};

/// Remove a `--json <path>` (or `--json=<path>`) flag from argv and return
/// the path when present, so benchmark binaries can take it alongside the
/// google-benchmark flags.
std::optional<std::string> consume_json_flag(int& argc, char** argv);

}  // namespace vocab::bench
