#pragma once

// Shared harness pieces for the per-table / per-figure benchmark binaries.

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "schedule/ops.h"
#include "sim/pipeline_sim.h"

namespace vocab::bench {

/// The five methods compared on 1F1B (paper §6.2).
enum class Method { Baseline, Redis, Vocab1, Vocab2, Interlaced };

[[nodiscard]] const char* to_string(Method m);

/// All five, in the paper's table order.
[[nodiscard]] const std::vector<Method>& all_methods();

/// One simulated experiment outcome.
struct RunResult {
  double mfu = 0.0;        ///< fraction (0..1)
  double peak_gb = 0.0;    ///< max over devices, GiB
  double min_peak_gb = 0.0;///< min over devices, GiB (Figure 14 range)
  double makespan = 0.0;   ///< seconds per iteration
  bool oom = false;        ///< exceeded the HBM capacity
};

/// Build + simulate one 1F1B-family method for the given model.
RunResult run_1f1b_method(const CostModel& cm, int gpus, Method method);

/// Build + simulate V-Half (baseline or +Vocab-1).
RunResult run_vhalf(const CostModel& cm, int gpus, bool vocab_parallel);

/// "46.2" / "OOM" formatting used by the paper's tables.
std::string mfu_cell(const RunResult& r);
std::string mem_cell(const RunResult& r);

/// GiB from bytes.
double gib(double bytes);

}  // namespace vocab::bench
