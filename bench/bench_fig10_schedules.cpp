// Reproduces Figures 9/10 (building blocks and full 1F1B schedules with
// Vocabulary Parallelism, including the p+2 / p+1 activation-memory
// property), Figure 15 / Appendix B.1 (interlaced lifespan 1.5x) and
// Figure 16's V-Half block analysis.

#include <cstdio>

#include "common/table.h"
#include "cost/cost_model.h"
#include "schedule/building_block.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "schedule/schedule_interlaced.h"
#include "schedule/timeline.h"
#include "sim/pipeline_sim.h"

using namespace vocab;

int main() {
  const int p = 8;
  ModelConfig cfg = preset_1f1b(p, 2048, 262144);
  cfg.num_microbatches = 24;
  const CostModel cm(cfg, HardwareModel{});

  std::printf("=== Figure 10: full 1F1B schedules with Vocabulary Parallelism (p=%d) ===\n\n", p);
  for (const OutputAlgo algo : {OutputAlgo::Alg1, OutputAlgo::Alg2}) {
    const auto sched = build_1f1b_vocab(cm, p, algo);
    const auto sim = simulate(sched);
    std::printf("--- %s (steady-state window) ---\n%s", to_string(algo),
                render_timeline(sched, sim, 110, sim.makespan * 0.45, sim.makespan * 0.75)
                    .c_str());
    // Activation residency measured from the simulator's memory tracker —
    // at a small vocabulary so the S->T shard transients don't blur the
    // count of *transformer* activation microbatches the bound is about.
    ModelConfig small_cfg = cfg;
    small_cfg.vocab = 4096;
    const CostModel small_cm(small_cfg, HardwareModel{});
    const auto small_sched = build_1f1b_vocab(small_cm, p, algo);
    const auto small_sim = simulate(small_sched);
    const double act = small_cm.activation_bytes_per_mb(cfg.num_layers / p);
    const double extra = small_sim.peak_bytes[0] - small_sched.base_bytes[0];
    std::printf("device-0 peak activation state: %.2f microbatch-equivalents "
                "(paper bound: p+%d = %d)\n\n",
                extra / act, num_barriers(algo), p + num_barriers(algo));
  }

  std::printf("=== Figure 9 (analytical): building-block lifespan / interval ===\n");
  Table t({"schedule", "interval (ms)", "lifespan dev0 (ms)", "peak (microbatches)"});
  const auto b1f1b = analyze_1f1b(cm, p);
  const auto bv1 = analyze_1f1b_vocab(cm, p, OutputAlgo::Alg1);
  const auto bv2 = analyze_1f1b_vocab(cm, p, OutputAlgo::Alg2);
  const auto bint = analyze_interlaced(cm, p);
  for (const auto& [name, a] :
       {std::pair<const char*, const BlockAnalysis&>{"1f1b", b1f1b},
        {"1f1b + vocab-1", bv1},
        {"1f1b + vocab-2", bv2},
        {"interlaced", bint}}) {
    t.add_row({name, fmt_f(1000 * a.interval, 2), fmt_f(1000 * a.lifespan[0], 2),
               fmt_f(a.max_peak_microbatches(), 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Appendix B.1: interlaced lifespan / 1F1B lifespan = %.2fx (paper: ~1.5x)\n\n",
              bint.lifespan[0] / b1f1b.lifespan[0]);

  std::printf("=== Figure 16 (analytical): V-Half building block ===\n");
  const auto vh = analyze_vhalf(cm, p);
  Table tv({"device", "lifespan (ms)", "peak (stage-activations)"});
  for (int d = 0; d < p; ++d) {
    tv.add_row({std::to_string(d), fmt_f(1000 * vh.lifespan[static_cast<std::size_t>(d)], 2),
                fmt_f(vh.peak_microbatches()[static_cast<std::size_t>(d)], 2)});
  }
  std::printf("%s", tv.to_string().c_str());
  std::printf("(balanced across devices — the V-shape property; in bytes ~0.56x of 1F1B)\n");
  return 0;
}
