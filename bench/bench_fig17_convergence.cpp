// Reproduces Figure 17 / Appendix E: convergence curves of the vocabulary-
// parallel pipeline implementation against the unpartitioned single-device
// reference (our stand-in for the original Megatron-LM codebase). Real
// numerics on a tiny GPT with identical weights and data: the loss curves
// must coincide up to fp32 reduction-order noise, for both Algorithm 1 and
// Algorithm 2.

#include <cstdio>
#include <cmath>

#include "model/gpt.h"
#include "runtime/pipeline_trainer.h"
#include "runtime/reference_trainer.h"
#include "tensor/tensor_ops.h"

using namespace vocab;

int main() {
  GptConfig cfg;
  cfg.num_layers = 4;
  cfg.heads = 4;
  cfg.hidden = 48;
  cfg.seq_len = 24;
  cfg.vocab = 211;  // prime: exercises padding on every shard count
  constexpr int kIterations = 25;
  constexpr int kMicrobatches = 8;
  constexpr float kLr = 0.25f;
  constexpr int kPipeline = 4;

  const GptWeights weights = GptWeights::init(cfg, 2024);
  ReferenceTrainer reference(weights);
  PipelineTrainer vocab1(weights, kPipeline, OutputAlgo::Alg1);
  PipelineTrainer vocab2(weights, kPipeline, OutputAlgo::Alg2);
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 777);

  std::printf("=== Figure 17: convergence, reference vs vocabulary-parallel (p=%d) ===\n\n",
              kPipeline);
  std::printf("%-6s %-12s %-12s %-12s %-12s %-12s\n", "iter", "reference", "vocab-1",
              "vocab-2", "|d1|", "|d2|");
  double worst1 = 0, worst2 = 0;
  for (int it = 0; it < kIterations; ++it) {
    std::vector<Sample> mbs;
    for (int i = 0; i < kMicrobatches; ++i) mbs.push_back(corpus.sample(it * kMicrobatches + i));
    const float ref = reference.train_iteration(mbs, kLr);
    const float v1 = vocab1.train_iteration(mbs, kLr);
    const float v2 = vocab2.train_iteration(mbs, kLr);
    worst1 = std::max(worst1, static_cast<double>(std::abs(v1 - ref)));
    worst2 = std::max(worst2, static_cast<double>(std::abs(v2 - ref)));
    std::printf("%-6d %-12.6f %-12.6f %-12.6f %-12.2e %-12.2e\n", it, ref, v1, v2,
                std::abs(v1 - ref), std::abs(v2 - ref));
  }
  std::printf("\nmax |loss difference| over %d iterations: vocab-1 %.2e, vocab-2 %.2e\n",
              kIterations, worst1, worst2);
  std::printf("final weight drift vs reference: vocab-1 output %.2e, vocab-2 output %.2e\n",
              max_abs_diff(vocab1.gathered_output_weight(), reference.output_weight()),
              max_abs_diff(vocab2.gathered_output_weight(), reference.output_weight()));
  std::printf("(paper: curves coincide with small numerical differences)\n");
  return 0;
}
