// Reproduces Figure 3: layer redistribution on a ~7B GPT with a 128k
// vocabulary across 8 stages. Redis moves transformer layers off the last
// stage, but the output layer alone already exceeds one stage's transformer
// budget, so imbalance persists — and the parameter memory stays imbalanced
// regardless, because rebalancing is done on compute.

#include <cstdio>

#include "common/table.h"
#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "sim/pipeline_sim.h"

using namespace vocab;

namespace {

void show(const char* name, const CostModel& cm, const LayerAssignment& assign) {
  const int p = assign.num_stages();
  Table t({"stage", "xfmr layers", "compute / mb (ms)", "relative", "param bytes (GB)"});
  double worst = 0;
  for (int s = 0; s < p; ++s) worst = std::max(worst, stage_compute_seconds(cm, assign, s));
  for (int s = 0; s < p; ++s) {
    const double c = stage_compute_seconds(cm, assign, s);
    double params = assign.layers_per_stage[static_cast<std::size_t>(s)] *
                    cm.transformer_layer_param_bytes();
    if (s == 0 && assign.input_on_first) params += cm.vocab_layer_param_bytes();
    if (s == p - 1 && assign.output_on_last) params += cm.vocab_layer_param_bytes();
    t.add_row({std::to_string(s), std::to_string(assign.layers_per_stage[static_cast<std::size_t>(s)]),
               fmt_f(1000 * c, 2), fmt_f(c / worst, 2), fmt_f(params / 1e9, 2)});
  }
  std::printf("%s:\n%s\n", name, t.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("=== Figure 3: transformer layer redistribution, 7B GPT, V=128k, p=8 ===\n\n");
  const CostModel cm(preset_fig3_7b(), HardwareModel{});
  const int p = 8;

  const auto uniform = uniform_assignment(cm.config().num_layers, p);
  const auto redis = redis_assignment(cm, p);
  show("Baseline (uniform 2 layers/stage + whole vocab layers at the ends)", cm, uniform);
  show("Redis (greedy compute balancing)", cm, redis);

  const double out_equiv = (cm.time_output_fwd_full() + cm.time_output_bwd_full()) /
                           (cm.time_f(1) + cm.time_b_full(1));
  const double out_mem = cm.vocab_layer_param_bytes() / cm.transformer_layer_param_bytes();
  std::printf("Output layer equivalent: %.2fx of a transformer layer in compute, "
              "%.2fx in parameter memory\n",
              out_equiv, out_mem);
  std::printf("(paper quotes ~2.4x compute / ~2.6x memory for this configuration)\n\n");

  const auto base_sim = simulate(build_1f1b(cm, p, uniform, "baseline"));
  const auto redis_sim = simulate(build_1f1b(cm, p, redis, "redis"));
  std::printf("Simulated iteration: baseline %.3fs, redis %.3fs (%.1f%% faster), but the\n"
              "last stage still dominates: redis bubble on stage 0 = %.1f%%.\n",
              base_sim.makespan, redis_sim.makespan,
              100.0 * (1.0 - redis_sim.makespan / base_sim.makespan),
              100.0 * redis_sim.bubble_fraction(0));
  return 0;
}
