// Reproduces Figure 1: the repeating pattern of an imbalanced 1F1B pipeline.
// The extra output layer on the last stage slows every microbatch's cycle
// down to the last stage's pace, leaving bubbles on all other devices.
// Rendered as an ASCII timeline of the steady state plus per-device bubble
// fractions.

#include <cstdio>

#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/timeline.h"
#include "sim/pipeline_sim.h"

using namespace vocab;

int main() {
  std::printf("=== Figure 1: bubbles from the extra output layer (1F1B) ===\n\n");

  ModelConfig cfg = preset_1f1b(8, 2048, 262144);
  cfg.num_microbatches = 24;  // few microbatches render better
  const CostModel cm(cfg, HardwareModel{});
  const int p = 8;

  const auto balanced_assign = [] {
    LayerAssignment a = uniform_assignment(32, 8);
    a.input_on_first = false;
    a.output_on_last = false;
    return a;
  }();
  const auto balanced = build_1f1b(cm, p, balanced_assign, "1f1b-no-vocab");
  const auto balanced_sim = simulate(balanced);

  const auto imbalanced = build_1f1b(cm, p, uniform_assignment(32, 8), "1f1b-baseline");
  const auto imbalanced_sim = simulate(imbalanced);

  std::printf("Balanced pipeline (transformer layers only), steady-state window:\n%s\n",
              render_timeline(balanced, balanced_sim, 110, balanced_sim.makespan * 0.4,
                              balanced_sim.makespan * 0.7)
                  .c_str());
  std::printf("Imbalanced pipeline (256k-vocabulary output layer on the last stage):\n%s\n",
              render_timeline(imbalanced, imbalanced_sim, 110, imbalanced_sim.makespan * 0.4,
                              imbalanced_sim.makespan * 0.7)
                  .c_str());

  std::printf("Per-device bubble fraction (%%):\n");
  std::printf("  %-10s", "device:");
  for (int d = 0; d < p; ++d) std::printf("%8d", d);
  std::printf("\n  %-10s", "balanced");
  for (int d = 0; d < p; ++d) std::printf("%8.1f", 100 * balanced_sim.bubble_fraction(d));
  std::printf("\n  %-10s", "imbalanced");
  for (int d = 0; d < p; ++d) std::printf("%8.1f", 100 * imbalanced_sim.bubble_fraction(d));
  std::printf("\n\nIteration time: balanced %.3fs vs imbalanced %.3fs (%.0f%% slower)\n",
              balanced_sim.makespan, imbalanced_sim.makespan,
              100.0 * (imbalanced_sim.makespan / balanced_sim.makespan - 1.0));
  return 0;
}
