// Reproduces Figure 7 (and backs §6.5): the computation order of the output
// layer for a single microbatch under the naive / Algorithm 1 / Algorithm 2
// decompositions, with *measured* wall times of the real CPU kernels in this
// repository and the count of communication barriers each variant needs.

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "comm/device_group.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/output_layer_shard.h"
#include "core/vocab_shard.h"
#include "tensor/tensor_ops.h"

using namespace vocab;

namespace {

void run_ranks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) threads.emplace_back([&, r] { fn(r); });
  for (auto& t : threads) t.join();
}

}  // namespace

int main() {
  const int p = 4;
  const std::int64_t n = 64, h = 192, v = 8192;
  Rng rng(31);
  const Tensor x = Tensor::randn({n, h}, rng);
  const Tensor w = Tensor::randn({v, h}, rng, 0.2f);
  std::vector<std::int64_t> targets(static_cast<std::size_t>(n));
  for (auto& t : targets) t = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(v)));
  const auto shards = make_all_shards(v, p);

  auto shard_w = [&](const VocabShard& s) {
    Tensor out({s.size, h});
    for (std::int64_t r = 0; r < s.valid_size(); ++r) {
      for (std::int64_t c = 0; c < h; ++c) out.at(r, c) = w.at(s.offset + r, c);
    }
    return out;
  };

  std::printf("=== Figure 7: output-layer computation order, one microbatch ===\n");
  std::printf("(p=%d shards, n=%lld tokens, h=%lld, V=%lld; real kernels, best of 3)\n\n",
              p, static_cast<long long>(n), static_cast<long long>(h),
              static_cast<long long>(v));
  std::printf("  naive : F1 |AR max| F2 |AR sum| B |Reduce gradX| (T)   3 barriers\n");
  std::printf("  alg1  : S |== C1: AR max+sum ==| T |== C2: gradX ==|   2 barriers\n");
  std::printf("  alg2  : S (incl. A=softmax'W, B=GW) |== C1: all ==| T  1 barrier\n\n");

  Table t({"variant", "barriers", "collectives", "wall time (ms)", "loss"});
  for (const OutputAlgo algo : {OutputAlgo::Naive, OutputAlgo::Alg1, OutputAlgo::Alg2}) {
    double best = 1e30;
    float loss = 0;
    std::uint64_t colls = 0;
    for (int rep = 0; rep < 3; ++rep) {
      DeviceGroup group(p);
      std::vector<std::unique_ptr<OutputLayerShard>> layers;
      for (int r = 0; r < p; ++r) {
        layers.push_back(std::make_unique<OutputLayerShard>(
            algo, shards[static_cast<std::size_t>(r)], shard_w(shards[static_cast<std::size_t>(r)])));
      }
      const auto start = std::chrono::steady_clock::now();
      run_ranks(p, [&](int r) {
        auto [l, gx] = layers[static_cast<std::size_t>(r)]->run_all(0, group, x, targets,
                                                                    1.0f / static_cast<float>(n));
        if (r == 0) loss = l;
      });
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      best = std::min(best, ms);
      colls = group.completed_collectives();
    }
    t.add_row({to_string(algo), std::to_string(num_barriers(algo)), std::to_string(colls),
               fmt_f(best, 2), fmt_f(loss, 5)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("All variants produce identical losses; Alg2 trades a little extra compute\n");
  std::printf("(the pre-barrier A and B products) for a single communication barrier.\n");
  return 0;
}
