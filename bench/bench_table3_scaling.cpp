// Reproduces Table 3: the scaling factor of the partitioned vocabulary
// layers relative to ideal linear scaling, at V=256k on 8/16/32 GPUs and
// sequence lengths 2048/4096. The factor is
//     time(whole layer on 1 device) / (p * time(one shard on p devices)),
// computed from the kernel-efficiency model: shards are smaller kernels with
// lower utilization, and the input layer additionally pays fixed per-device
// work (constructing the [b,s,h] output) that does not shrink with p.

#include <cstdio>

#include "common/table.h"
#include "core/output_layer_shard.h"
#include "cost/cost_model.h"

using namespace vocab;

namespace {

double output_factor(const CostModel& cm, OutputAlgo algo, int p) {
  // "Original throughput" = the whole unpartitioned layer; Algorithm 2's
  // extra pre-barrier matmul therefore counts against its factor.
  const double whole = cm.time_output_fwd_full() + cm.time_output_bwd_full();
  const double shard = cm.time_output_s(algo, p) + cm.time_output_t(algo, p);
  return whole / (p * shard);
}

double input_factor(const CostModel& cm, int p) {
  const double whole = cm.time_input_shard_fwd(1) + cm.time_input_shard_bwd(1);
  const double shard = cm.time_input_shard_fwd(p) + cm.time_input_shard_bwd(p);
  return whole / (p * shard);
}

}  // namespace

int main() {
  std::printf("=== Table 3: scaling factor of vocabulary layers vs linear (V=256k) ===\n\n");
  Table t({"SEQ", "LAYER", "8GPU", "16GPU", "32GPU"});
  for (const std::int64_t seq : {std::int64_t{2048}, std::int64_t{4096}}) {
    for (const auto& [label, algo] :
         {std::pair<const char*, OutputAlgo>{"OUTPUT-VOCAB-1", OutputAlgo::Alg1},
          {"OUTPUT-VOCAB-2", OutputAlgo::Alg2}}) {
      std::vector<std::string> row{seq == 2048 ? "2048" : "4096", label};
      for (const int p : {8, 16, 32}) {
        const CostModel cm(preset_1f1b(p, seq, 262144), HardwareModel{});
        row.push_back(fmt_f(100.0 * output_factor(cm, algo, p), 2) + "%");
      }
      t.add_row(std::move(row));
    }
    std::vector<std::string> row{seq == 2048 ? "2048" : "4096", "INPUT"};
    for (const int p : {8, 16, 32}) {
      const CostModel cm(preset_1f1b(p, seq, 262144), HardwareModel{});
      row.push_back(fmt_f(100.0 * input_factor(cm, p), 2) + "%");
    }
    t.add_row(std::move(row));
    t.add_separator();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected trends (paper): factors decrease with p; output layers scale far\n");
  std::printf("better than the input layer (whose per-device output-tensor construction\n");
  std::printf("is fixed work); Vocab-2 is slightly below Vocab-1 (extra pre-barrier\n");
  std::printf("matmul); longer sequences scale better.\n");
  return 0;
}
