// schedule_lint: run the static schedule verifier over every generator ×
// (p, vocabulary) configuration and print a diagnostics table — the CLI
// face of src/analysis. A clean run certifies, without simulating, that
// every shipped schedule is deadlock-free, semantically ordered, memory
// balanced, and that the vocabulary schedules hold the paper's peak
// activation closed forms (p / p+1 / p+2 microbatches).
//
//   ./build/bench/schedule_lint            # table + nonzero exit on findings
//   ./build/bench/schedule_lint --csv      # machine-readable
//   ./build/bench/schedule_lint --strict-streams   # also warn on sync
//                                          # collectives (flags interlaced)

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "common/table.h"
#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/ops.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "schedule/schedule_gpipe.h"
#include "schedule/schedule_interlaced.h"
#include "schedule/schedule_vhalf.h"

namespace {

using namespace vocab;

struct Case {
  PipelineSchedule schedule;
  double expected_peak = -1.0;  ///< paper closed form; < 0 when none applies
};

std::vector<Case> build_cases(int p, std::int64_t v) {
  const CostModel cm(preset_1f1b(p, 2048, v), HardwareModel{});
  const LayerAssignment uniform = uniform_assignment(cm.config().num_layers, p);
  std::vector<Case> cases;
  cases.push_back({build_1f1b(cm, p, uniform), static_cast<double>(p)});
  cases.push_back({build_1f1b(cm, p, redis_assignment(cm, p), "redis"), static_cast<double>(p)});
  cases.push_back({build_1f1b_vocab(cm, p, OutputAlgo::Alg1), static_cast<double>(p + 2)});
  cases.push_back({build_1f1b_vocab(cm, p, OutputAlgo::Alg2), static_cast<double>(p + 1)});
  cases.push_back({build_interlaced(cm, p, true), -1.0});
  cases.push_back({build_interlaced(cm, p, false), -1.0});
  cases.push_back({build_gpipe(cm, p, uniform), -1.0});
  cases.push_back({build_gpipe_vocab(cm, p, OutputAlgo::Alg1), -1.0});
  cases.push_back({build_gpipe_vocab(cm, p, OutputAlgo::Alg2), -1.0});
  if (p == 16 || p == 24 || p == 32) {  // the Table-2 presets
    const CostModel vh(preset_vhalf(p, 2048, v), HardwareModel{});
    cases.push_back({build_vhalf(vh, p), -1.0});
    cases.push_back({build_vhalf_vocab(vh, p), -1.0});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool strict_streams = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--strict-streams") == 0) {
      strict_streams = true;
    } else {
      std::cerr << "usage: schedule_lint [--csv] [--strict-streams]\n";
      return 2;
    }
  }

  Table table({"schedule", "p", "vocab", "ops", "peak mb", "errors", "warnings", "status"});
  std::vector<std::string> reports;
  int total_errors = 0;
  int total_warnings = 0;

  for (const int p : {8, 16, 32}) {
    if (p != 8) table.add_separator();
    for (const std::int64_t v : {std::int64_t{32768}, std::int64_t{262144}}) {
      for (const Case& c : build_cases(p, v)) {
        analysis::VerifyOptions opt;
        opt.require_comm_stream_collectives = strict_streams;
        opt.expected_peak_microbatches = c.expected_peak;
        const std::vector<analysis::Diagnostic> diags = analysis::verify(c.schedule, opt);
        int errors = 0, warnings = 0;
        for (const auto& d : diags) {
          (d.severity == analysis::Severity::Error ? errors : warnings)++;
        }
        total_errors += errors;
        total_warnings += warnings;
        const auto peaks = analysis::activation_peak_microbatches(c.schedule);
        double peak = 0.0;
        for (const double x : peaks) peak = std::max(peak, x);
        table.add_row({c.schedule.name, std::to_string(p), fmt_count(v),
                       std::to_string(c.schedule.ops.size()), fmt_f(peak, 1),
                       std::to_string(errors), std::to_string(warnings),
                       diags.empty() ? "ok" : (errors ? "FAIL" : "warn")});
        if (!diags.empty()) {
          // A single root cause repeated per op can produce thousands of
          // diagnostics; show the first few and the count of the rest.
          constexpr std::size_t kMaxShown = 8;
          std::vector<analysis::Diagnostic> shown(
              diags.begin(), diags.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(diags.size(), kMaxShown)));
          std::string r = "-- " + c.schedule.name + " (p=" + std::to_string(p) +
                          ", V=" + std::to_string(v) + ") --\n" +
                          analysis::render_report(shown);
          if (diags.size() > kMaxShown) {
            r += "  ... and " + std::to_string(diags.size() - kMaxShown) +
                 " more diagnostic(s)\n";
          }
          reports.push_back(std::move(r));
        }
      }
    }
  }

  std::cout << (csv ? table.to_csv() : table.to_string());
  for (const std::string& r : reports) std::cout << "\n" << r;
  std::cout << "\nschedule_lint: " << total_errors << " error(s), " << total_warnings
            << " warning(s)\n";
  return total_errors > 0 ? 1 : 0;
}
