// schedule_lint: run the static schedule verifier over every generator ×
// (p, vocabulary) configuration and print a diagnostics table — the CLI
// face of src/analysis and src/program. A clean run certifies, without
// simulating, that every shipped schedule is deadlock-free, semantically
// ordered, memory balanced, and that the vocabulary schedules hold the
// paper's peak activation closed forms (p / p+1 / p+2 microbatches).
//
//   ./build/bench/schedule_lint            # table + nonzero exit on findings
//   ./build/bench/schedule_lint --csv      # machine-readable table
//   ./build/bench/schedule_lint --json     # machine-readable diagnostics
//   ./build/bench/schedule_lint --strict-streams   # also warn on sync
//                                          # collectives (flags interlaced)
//   ./build/bench/schedule_lint --compile  # lower every certified schedule
//                                          # to per-device bytecode (adds
//                                          # instruction-count/hash columns)
//   ./build/bench/schedule_lint --compile --verify-program
//                                          # translation validation: re-prove
//                                          # every invariant on the compiled
//                                          # artifact; nonzero exit on any
//                                          # program diagnostic
//   ./build/bench/schedule_lint --compile --disasm
//                                          # print each program's listing
//   ./build/bench/schedule_lint --search   # cost-model-driven schedule search
//                                          # over the Table-1 presets: ranked
//                                          # candidate table (predicted
//                                          # makespan/bubble/peak + winner);
//                                          # nonzero exit if any ranked
//                                          # schedule fails certification
//
// --json document shape (stable field names, one object per case):
//   {
//     "cases": [
//       {
//         "schedule": "<name>", "p": N, "vocab": N, "ops": N,
//         "peak_microbatches": X, "status": "ok|warn|FAIL",
//         "errors": N, "warnings": N,
//         "diagnostics": [
//           {"severity": "error|warning", "check": "<check-code>",
//            "ops": [ids...], "message": "..."}
//         ],
//         // present with --compile:
//         "program": {
//           "instructions": N, "content_hash": "<16 hex digits>",
//           // present with --verify-program:
//           "errors": N,
//           "diagnostics": [
//             {"severity": "...", "check": "<check-code>", "lane": N,
//              "pc": N, "kernels": [ids...], "message": "..."}
//           ]
//         }
//       }
//     ],
//     "total_errors": N, "total_warnings": N
//   }

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "common/table.h"
#include "cost/cost_model.h"
#include "program/bytecode.h"
#include "program/compiler.h"
#include "program/program_verifier.h"
#include "schedule/layer_assignment.h"
#include "schedule/ops.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "schedule/schedule_gpipe.h"
#include "schedule/schedule_interlaced.h"
#include "schedule/schedule_vhalf.h"
#include "schedule/schedule_zb.h"
#include "search/schedule_search.h"

namespace {

using namespace vocab;

struct Case {
  PipelineSchedule schedule;
  double expected_peak = -1.0;  ///< paper closed form; < 0 when none applies
};

std::vector<Case> build_cases(int p, std::int64_t v) {
  const CostModel cm(preset_1f1b(p, 2048, v), HardwareModel{});
  const LayerAssignment uniform = uniform_assignment(cm.config().num_layers, p);
  std::vector<Case> cases;
  cases.push_back({build_1f1b(cm, p, uniform), static_cast<double>(p)});
  cases.push_back({build_1f1b(cm, p, redis_assignment(cm, p), "redis"), static_cast<double>(p)});
  cases.push_back({build_1f1b_vocab(cm, p, OutputAlgo::Alg1), static_cast<double>(p + 2)});
  cases.push_back({build_1f1b_vocab(cm, p, OutputAlgo::Alg2), static_cast<double>(p + 1)});
  // Zero-bubble family: w_delay=0 members hold the 1F1B-vocab closed forms
  // (p+2 / p+1); each +1 of w_delay defers one more BW cycle, +1/3 mb.
  cases.push_back({build_zb_vocab(cm, p, OutputAlgo::Alg1, "", ZbOptions{0, -1}),
                   static_cast<double>(p + 2)});
  cases.push_back({build_zb_vocab(cm, p, OutputAlgo::Alg2, "", ZbOptions{0, -1}),
                   static_cast<double>(p + 1)});
  cases.push_back({build_zb_vocab(cm, p, OutputAlgo::Alg1, "", ZbOptions{1, -1}),
                   p + 2 + 1.0 / 3.0});
  cases.push_back({build_zb_vocab(cm, p, OutputAlgo::Alg2, "", ZbOptions{2, -1}),
                   p + 1 + 2.0 / 3.0});
  cases.push_back({build_interlaced(cm, p, true), -1.0});
  cases.push_back({build_interlaced(cm, p, false), -1.0});
  cases.push_back({build_gpipe(cm, p, uniform), -1.0});
  cases.push_back({build_gpipe_vocab(cm, p, OutputAlgo::Alg1), -1.0});
  cases.push_back({build_gpipe_vocab(cm, p, OutputAlgo::Alg2), -1.0});
  if (p == 16 || p == 24 || p == 32) {  // the Table-2 presets
    const CostModel vh(preset_vhalf(p, 2048, v), HardwareModel{});
    cases.push_back({build_vhalf(vh, p), -1.0});
    cases.push_back({build_vhalf_vocab(vh, p), -1.0});
  }
  return cases;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string json_int_array(const std::vector<int>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

// --search: run the cost-model-driven schedule search (src/search) over the
// Table-1 presets and dump the ranked candidate table. Exit status is
// nonzero if ANY ranked schedule — winner or not — fails certification.
int run_search(bool csv, bool json) {
  Table table({"rank", "schedule", "p", "vocab", "pred ms", "pred bubble", "peak mb",
               "peak GB", "cert", "winner"});
  std::vector<std::string> json_rows;
  int uncertified = 0;

  for (const int p : {8, 16, 32}) {
    if (p != 8 && !json) table.add_separator();
    for (const std::int64_t v : {std::int64_t{32768}, std::int64_t{262144}}) {
      const CostModel cm(preset_1f1b(p, 2048, v), HardwareModel{});
      search::SearchRequest req;
      req.p = p;
      const search::SearchResult res = search::search_schedules(cm, req);
      const search::Candidate* best = res.best();
      int rank = 0;
      for (const auto& c : res.ranked) {
        ++rank;
        if (!c.certified) ++uncertified;
        const bool winner = best != nullptr && &c == best;
        table.add_row({std::to_string(rank), c.name, std::to_string(p), fmt_count(v),
                       fmt_f(c.predicted_makespan * 1e3, 2), fmt_f(c.predicted_bubble, 4),
                       fmt_f(c.peak_microbatches, 2), fmt_f(c.peak_bytes / 1e9, 2),
                       c.certified ? "yes" : "NO", winner ? "<--" : ""});
        if (json) {
          std::string row = "{\"rank\":" + std::to_string(rank) + ",\"schedule\":\"" +
                            json_escape(c.name) + "\",\"family\":\"" + json_escape(c.family) +
                            "\",\"p\":" + std::to_string(p) +
                            ",\"vocab\":" + std::to_string(v) +
                            ",\"w_delay\":" + std::to_string(c.w_delay) +
                            ",\"predicted_makespan\":" + fmt_f(c.predicted_makespan, 6) +
                            ",\"predicted_bubble\":" + fmt_f(c.predicted_bubble, 6) +
                            ",\"peak_microbatches\":" + fmt_f(c.peak_microbatches, 3) +
                            ",\"peak_bytes\":" + fmt_f(c.peak_bytes, 0) +
                            ",\"certified\":" + (c.certified ? "true" : "false") +
                            ",\"winner\":" + (winner ? "true" : "false");
          if (!c.failure.empty()) row += ",\"failure\":\"" + json_escape(c.failure) + "\"";
          row += "}";
          json_rows.push_back(std::move(row));
        }
      }
    }
  }

  if (json) {
    std::cout << "{\"search\":[";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      if (i) std::cout << ",";
      std::cout << "\n" << json_rows[i];
    }
    std::cout << "\n],\"total_uncertified\":" << uncertified << "}\n";
  } else {
    std::cout << (csv ? table.to_csv() : table.to_string());
    std::cout << "\nschedule_lint --search: " << uncertified << " uncertified candidate(s)\n";
  }
  return uncertified > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool json = false;
  bool strict_streams = false;
  bool compile = false;
  bool disasm = false;
  bool verify_program = false;
  bool do_search = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search") == 0) {
      do_search = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--strict-streams") == 0) {
      strict_streams = true;
    } else if (std::strcmp(argv[i], "--compile") == 0) {
      compile = true;
    } else if (std::strcmp(argv[i], "--disasm") == 0) {
      disasm = true;
    } else if (std::strcmp(argv[i], "--verify-program") == 0) {
      verify_program = true;
    } else {
      std::cerr << "usage: schedule_lint [--csv|--json] [--strict-streams] [--compile] "
                   "[--disasm] [--verify-program] [--search]\n";
      return 2;
    }
  }
  // --disasm and --verify-program operate on compiled programs.
  compile = compile || disasm || verify_program;
  if (do_search) return run_search(csv, json);

  std::vector<std::string> header = {"schedule", "p",      "vocab",    "ops",
                                     "peak mb",  "errors", "warnings", "status"};
  if (compile) {
    header.insert(header.end() - 1, "instrs");
    header.insert(header.end() - 1, "hash");
    if (verify_program) header.insert(header.end() - 1, "prog errs");
  }
  Table table(header);
  std::vector<std::string> reports;
  std::vector<std::string> json_cases;
  int total_errors = 0;
  int total_warnings = 0;

  for (const int p : {8, 16, 32}) {
    if (p != 8 && !json) table.add_separator();
    for (const std::int64_t v : {std::int64_t{32768}, std::int64_t{262144}}) {
      for (const Case& c : build_cases(p, v)) {
        analysis::VerifyOptions opt;
        opt.require_comm_stream_collectives = strict_streams;
        opt.expected_peak_microbatches = c.expected_peak;
        const std::vector<analysis::Diagnostic> diags = analysis::verify(c.schedule, opt);
        int errors = 0, warnings = 0;
        for (const auto& d : diags) {
          (d.severity == analysis::Severity::Error ? errors : warnings)++;
        }
        const auto peaks = analysis::activation_peak_microbatches(c.schedule);
        double peak = 0.0;
        for (const double x : peaks) peak = std::max(peak, x);

        // Lowering + translation validation. Compilation requires a certified
        // source, so a schedule that already failed is reported as skipped.
        std::string instrs = "-";
        std::string hash = "-";
        int prog_errors = 0;
        std::vector<program::ProgramDiagnostic> prog_diags;
        std::string prog_json;
        if (compile && errors == 0) {
          const program::CompiledProgram prog = program::compile_schedule(c.schedule);
          instrs = std::to_string(prog.total_instructions());
          hash = hash_hex(program::content_hash(prog));
          prog_json = "\"program\":{\"instructions\":" + instrs + ",\"content_hash\":\"" +
                      hash + "\"";
          if (verify_program) {
            prog_diags = program::verify_program(prog, &c.schedule);
            for (const auto& d : prog_diags) {
              (d.severity == analysis::Severity::Error ? prog_errors : warnings)++;
            }
            prog_json += ",\"errors\":" + std::to_string(prog_errors) + ",\"diagnostics\":[";
            for (std::size_t i = 0; i < prog_diags.size(); ++i) {
              const auto& d = prog_diags[i];
              if (i) prog_json += ",";
              prog_json += std::string("{\"severity\":\"") +
                           analysis::to_string(d.severity) + "\",\"check\":\"" +
                           program::to_string(d.check) +
                           "\",\"lane\":" + std::to_string(d.lane) +
                           ",\"pc\":" + std::to_string(d.pc) +
                           ",\"kernels\":" + json_int_array(d.kernels) +
                           ",\"message\":\"" + json_escape(d.message) + "\"}";
            }
            prog_json += "]";
          }
          prog_json += "}";
          if (disasm) {
            reports.push_back("-- disassembly: " + c.schedule.name +
                              " (p=" + std::to_string(p) + ", V=" + std::to_string(v) +
                              ") --\n" + program::disassemble(prog));
          }
        }
        total_errors += errors + prog_errors;
        total_warnings += warnings;

        std::vector<std::string> row = {c.schedule.name, std::to_string(p), fmt_count(v),
                                        std::to_string(c.schedule.ops.size()),
                                        fmt_f(peak, 1), std::to_string(errors),
                                        std::to_string(warnings)};
        if (compile) {
          row.push_back(instrs);
          row.push_back(hash);
          if (verify_program) row.push_back(std::to_string(prog_errors));
        }
        row.push_back((diags.empty() && prog_diags.empty())
                          ? "ok"
                          : ((errors + prog_errors) ? "FAIL" : "warn"));
        table.add_row(row);

        if (json) {
          std::string jc = "{\"schedule\":\"" + json_escape(c.schedule.name) +
                           "\",\"p\":" + std::to_string(p) +
                           ",\"vocab\":" + std::to_string(v) +
                           ",\"ops\":" + std::to_string(c.schedule.ops.size()) +
                           ",\"peak_microbatches\":" + fmt_f(peak, 3) + ",\"status\":\"" +
                           ((diags.empty() && prog_diags.empty())
                                ? "ok"
                                : ((errors + prog_errors) ? "FAIL" : "warn")) +
                           "\",\"errors\":" + std::to_string(errors) +
                           ",\"warnings\":" + std::to_string(warnings) +
                           ",\"diagnostics\":[";
          for (std::size_t i = 0; i < diags.size(); ++i) {
            const auto& d = diags[i];
            if (i) jc += ",";
            jc += std::string("{\"severity\":\"") + analysis::to_string(d.severity) +
                  "\",\"check\":\"" + analysis::to_string(d.check) +
                  "\",\"ops\":" + json_int_array(d.ops) + ",\"message\":\"" +
                  json_escape(d.message) + "\"}";
          }
          jc += "]";
          if (!prog_json.empty()) jc += "," + prog_json;
          jc += "}";
          json_cases.push_back(std::move(jc));
        }

        if (!diags.empty() || !prog_diags.empty()) {
          // A single root cause repeated per op can produce thousands of
          // diagnostics; show the first few and the count of the rest.
          constexpr std::size_t kMaxShown = 8;
          std::string r = "-- " + c.schedule.name + " (p=" + std::to_string(p) +
                          ", V=" + std::to_string(v) + ") --\n";
          std::vector<analysis::Diagnostic> shown(
              diags.begin(), diags.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(diags.size(), kMaxShown)));
          r += analysis::render_report(shown);
          if (diags.size() > kMaxShown) {
            r += "  ... and " + std::to_string(diags.size() - kMaxShown) +
                 " more schedule diagnostic(s)\n";
          }
          std::vector<program::ProgramDiagnostic> pshown(
              prog_diags.begin(),
              prog_diags.begin() +
                  static_cast<std::ptrdiff_t>(std::min(prog_diags.size(), kMaxShown)));
          r += program::render_report(pshown);
          if (prog_diags.size() > kMaxShown) {
            r += "  ... and " + std::to_string(prog_diags.size() - kMaxShown) +
                 " more program diagnostic(s)\n";
          }
          reports.push_back(std::move(r));
        }
      }
    }
  }

  if (json) {
    std::cout << "{\"cases\":[";
    for (std::size_t i = 0; i < json_cases.size(); ++i) {
      if (i) std::cout << ",";
      std::cout << "\n" << json_cases[i];
    }
    std::cout << "\n],\"total_errors\":" << total_errors
              << ",\"total_warnings\":" << total_warnings << "}\n";
  } else {
    std::cout << (csv ? table.to_csv() : table.to_string());
    for (const std::string& r : reports) std::cout << "\n" << r;
    std::cout << "\nschedule_lint: " << total_errors << " error(s), " << total_warnings
              << " warning(s)\n";
  }
  return total_errors > 0 ? 1 : 0;
}
