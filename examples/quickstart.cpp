// Quickstart: the paper's core idea in one file.
//
// 1. Build an unpartitioned output layer (softmax cross-entropy over the
//    vocabulary) as ground truth.
// 2. Partition it across 4 simulated devices with Algorithm 2 (one
//    communication barrier) and check the loss and gradients match.
// 3. Compare the 1F1B pipeline schedule with and without Vocabulary
//    Parallelism on a 4B-class model in the discrete-event simulator.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <functional>
#include <thread>

#include "comm/device_group.h"
#include "common/rng.h"
#include "core/output_layer_shard.h"
#include "core/reference_output_layer.h"
#include "core/vocab_shard.h"
#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "sim/pipeline_sim.h"
#include "tensor/tensor_ops.h"

using namespace vocab;

int main() {
  // --- Step 1: ground truth on one device -----------------------------------
  const std::int64_t tokens = 32, hidden = 64, vocab_size = 1000;
  Rng rng(7);
  const Tensor x = Tensor::randn({tokens, hidden}, rng);          // last layer output
  const Tensor w = Tensor::randn({vocab_size, hidden}, rng, 0.2f);  // output embedding
  std::vector<std::int64_t> labels(tokens);
  for (auto& l : labels) l = static_cast<std::int64_t>(rng.uniform_int(vocab_size));

  const OutputLayerResult ref = reference_output_layer(x, w, labels, 1.0f / tokens);
  std::printf("reference loss: %.6f\n", ref.loss);

  // --- Step 2: vocabulary-parallel on 4 devices ------------------------------
  const int p = 4;
  const auto shards = make_all_shards(vocab_size, p);  // pads V to a multiple of 2p
  DeviceGroup group(p);

  std::vector<float> losses(p);
  std::vector<Tensor> grads(p);
  std::vector<std::thread> devices;
  for (int rank = 0; rank < p; ++rank) {
    devices.emplace_back([&, rank] {
      // Each device holds rows [offset, offset+size) of W.
      const VocabShard& shard = shards[static_cast<std::size_t>(rank)];
      Tensor my_w({shard.size, hidden});
      for (std::int64_t r = 0; r < shard.valid_size(); ++r) {
        for (std::int64_t c = 0; c < hidden; ++c) my_w.at(r, c) = w.at(shard.offset + r, c);
      }
      OutputLayerShard layer(OutputAlgo::Alg2, shard, std::move(my_w));
      // S pass -> single C1 barrier -> T pass (paper Algorithm 2).
      auto [loss, grad_x] = layer.run_all(/*microbatch=*/0, group, x, labels, 1.0f / tokens);
      losses[static_cast<std::size_t>(rank)] = loss;
      grads[static_cast<std::size_t>(rank)] = std::move(grad_x);
    });
  }
  for (auto& t : devices) t.join();

  std::printf("vocab-parallel loss (4 shards, 1 barrier): %.6f\n", losses[0]);
  std::printf("max |grad_x difference| vs reference: %.2e\n",
              max_abs_diff(grads[0], ref.grad_x));

  // --- Step 3: does it help a real pipeline? ---------------------------------
  const int gpus = 8;
  const CostModel cm(preset_1f1b(gpus, /*seq=*/2048, /*vocab=*/262144), HardwareModel{});
  const auto baseline =
      simulate(build_1f1b(cm, gpus, uniform_assignment(cm.config().num_layers, gpus)));
  const auto vp = simulate(build_1f1b_vocab(cm, gpus, OutputAlgo::Alg2));
  std::printf("\nsimulated 4B model, 8 GPUs, 256k vocabulary, 128 microbatches:\n");
  std::printf("  1F1B baseline          : %.2fs/iter, MFU %.1f%%\n", baseline.makespan,
              100 * cm.mfu(baseline.makespan, gpus));
  std::printf("  1F1B + vocab-parallel  : %.2fs/iter, MFU %.1f%%  (%.0f%% faster)\n",
              vp.makespan, 100 * cm.mfu(vp.makespan, gpus),
              100.0 * (baseline.makespan / vp.makespan - 1.0));
  return 0;
}
