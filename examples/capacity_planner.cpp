// Example: capacity planning for a training run.
//
// Given a model shape and cluster size, estimate — before buying any GPU
// hours — which schedule fits in memory and what throughput to expect, the
// way the paper's analysis would be used by a practitioner. Sweeps the
// vocabulary size and reports the first configuration that OOMs under each
// method, plus tokens/sec estimates.
//
// Usage: ./build/examples/capacity_planner [gpus] [seq]

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/table.h"
#include "cost/cost_model.h"

using namespace vocab;
using namespace vocab::bench;

int main(int argc, char** argv) {
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t seq = argc > 2 ? std::atoll(argv[2]) : 4096;

  std::printf("capacity plan: %d GPUs (A100-80GB model), sequence length %lld\n\n", gpus,
              static_cast<long long>(seq));

  Table t({"vocab", "method", "tokens/sec", "MFU %", "peak GB", "fits?"});
  for (const std::int64_t v : paper_vocab_sweep()) {
    for (const Method method : {Method::Baseline, Method::Vocab2, Method::Interlaced}) {
      const ModelConfig cfg = preset_1f1b(gpus, seq, v);
      const CostModel cm(cfg, HardwareModel{});
      const RunResult r = run_1f1b_method(cm, gpus, method);
      const double tokens_per_iter =
          static_cast<double>(cfg.num_microbatches) * cfg.tokens_per_microbatch();
      t.add_row({fmt_count(v), to_string(method), fmt_count(static_cast<long long>(
                                                      tokens_per_iter / r.makespan)),
                 fmt_f(100 * r.mfu, 1), fmt_f(r.peak_gb, 1), r.oom ? "NO (OOM)" : "yes"});
    }
    t.add_separator();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Reading the plan: the baseline wastes throughput as the vocabulary grows\n");
  std::printf("and concentrates memory on the first/last stages; vocabulary parallelism\n");
  std::printf("keeps both flat, so the same cluster supports larger vocabularies.\n");
  return 0;
}
