// Example: explore pipeline schedules on the simulated cluster.
//
// Pick a model preset, pipeline width, sequence length and vocabulary size
// and compare the five 1F1B-family methods plus V-Half — iteration time,
// MFU, memory, bubbles — and render a steady-state timeline of any of them.
//
// Usage: ./build/examples/schedule_explorer [gpus] [seq] [vocab_k] [method]
//   gpus: 8 | 16 | 32     (Table 1 presets)
//   method to render: baseline | redis | vocab-1 | vocab-2 | interlaced |
//                     gpipe | gpipe-vocab

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/schedule_1f1b.h"
#include "schedule/schedule_1f1b_vocab.h"
#include "schedule/schedule_gpipe.h"
#include "schedule/schedule_interlaced.h"
#include "schedule/timeline.h"
#include "sim/pipeline_sim.h"

using namespace vocab;

namespace {

PipelineSchedule build_method(const CostModel& cm, int gpus, const char* method) {
  if (std::strcmp(method, "baseline") == 0) {
    return build_1f1b(cm, gpus, uniform_assignment(cm.config().num_layers, gpus), "baseline");
  }
  if (std::strcmp(method, "redis") == 0) {
    return build_1f1b(cm, gpus, redis_assignment(cm, gpus), "redis");
  }
  if (std::strcmp(method, "vocab-1") == 0) return build_1f1b_vocab(cm, gpus, OutputAlgo::Alg1);
  if (std::strcmp(method, "vocab-2") == 0) return build_1f1b_vocab(cm, gpus, OutputAlgo::Alg2);
  if (std::strcmp(method, "interlaced") == 0) return build_interlaced(cm, gpus, true);
  if (std::strcmp(method, "gpipe") == 0) {
    return build_gpipe(cm, gpus, uniform_assignment(cm.config().num_layers, gpus));
  }
  if (std::strcmp(method, "gpipe-vocab") == 0) return build_gpipe_vocab(cm, gpus, OutputAlgo::Alg2);
  std::fprintf(stderr, "unknown method '%s'\n", method);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const int gpus = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::int64_t seq = argc > 2 ? std::atoll(argv[2]) : 2048;
  const std::int64_t vocab_size = (argc > 3 ? std::atoll(argv[3]) : 256) * 1024;
  const char* render = argc > 4 ? argv[4] : "vocab-2";

  ModelConfig cfg = preset_1f1b(gpus, seq, vocab_size);
  const CostModel cm(cfg, HardwareModel{});
  std::printf("model: %s\n\n", cfg.summary().c_str());

  std::printf("%-12s %10s %8s %10s %12s\n", "method", "iter (s)", "MFU %", "peak GB",
              "bubble dev0");
  for (const char* method :
       {"baseline", "redis", "vocab-1", "vocab-2", "interlaced", "gpipe", "gpipe-vocab"}) {
    const auto sched = build_method(cm, gpus, method);
    const auto sim = simulate(sched, cm.hardware().memory_capacity);
    std::printf("%-12s %10.2f %8.1f %10.2f %11.1f%% %s\n", method, sim.makespan,
                100 * cm.mfu(sim.makespan, gpus), sim.max_peak_bytes() / 1e9 / 1.073,
                100 * sim.bubble_fraction(0), sim.any_oom() ? "OOM" : "");
  }

  // Render a steady-state window of the chosen method.
  ModelConfig small = cfg;
  small.num_microbatches = 24;
  const CostModel cm_small(small, HardwareModel{});
  const auto sched = build_method(cm_small, gpus, render);
  const auto sim = simulate(sched);
  std::printf("\nsteady-state timeline of '%s' (F=forward B=backward S/T=vocab passes):\n%s",
              render, render_timeline(sched, sim, 120, sim.makespan * 0.45,
                                      sim.makespan * 0.8)
                          .c_str());
  return 0;
}
