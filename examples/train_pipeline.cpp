// Example: end-to-end vocabulary-parallel training with real numerics.
//
// Trains a tiny GPT on a synthetic Zipf corpus with the multi-threaded
// pipeline trainer (4 devices, Algorithm 2's single-barrier output layer)
// and, side by side, the single-device reference. The losses coincide —
// the paper's Appendix E correctness result — while the vocabulary layers'
// parameters and gradients live sharded across all pipeline devices.
//
// Usage: ./build/examples/train_pipeline [iterations] [pipeline_devices]

#include <cstdio>
#include <cstdlib>

#include "core/output_layer_shard.h"
#include "model/gpt.h"
#include "runtime/pipeline_trainer.h"
#include "runtime/reference_trainer.h"

using namespace vocab;

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 30;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;

  GptConfig cfg;
  cfg.num_layers = 4;
  cfg.heads = 4;
  cfg.hidden = 64;
  cfg.seq_len = 32;
  cfg.vocab = 509;  // prime on purpose: every shard gets padding
  constexpr int kMicrobatches = 8;
  constexpr float kLr = 0.25f;

  std::printf("tiny GPT: %d layers, hidden %lld, vocab %lld, seq %lld; pipeline p=%d\n\n",
              cfg.num_layers, static_cast<long long>(cfg.hidden),
              static_cast<long long>(cfg.vocab), static_cast<long long>(cfg.seq_len), p);

  const GptWeights weights = GptWeights::init(cfg, 42);
  ReferenceTrainer reference(weights);
  PipelineTrainer pipeline(weights, p, OutputAlgo::Alg2);
  SyntheticCorpus corpus(cfg.vocab, cfg.seq_len, 1234);

  std::printf("%-6s %-14s %-14s %s\n", "iter", "pipeline loss", "reference", "|diff|");
  for (int it = 0; it < iterations; ++it) {
    std::vector<Sample> mbs;
    mbs.reserve(kMicrobatches);
    for (int i = 0; i < kMicrobatches; ++i) mbs.push_back(corpus.sample(it * kMicrobatches + i));
    const float pl = pipeline.train_iteration(mbs, kLr);
    const float rl = reference.train_iteration(mbs, kLr);
    if (it % 5 == 0 || it == iterations - 1) {
      std::printf("%-6d %-14.6f %-14.6f %.2e\n", it, pl, rl, std::abs(pl - rl));
    }
  }
  std::printf("\nThe vocabulary-parallel pipeline tracks the reference step for step;\n");
  std::printf("its output/input embeddings are sharded across %d devices (padded V = %lld).\n",
              p, static_cast<long long>(pad_vocab(cfg.vocab, p)));
  return 0;
}
