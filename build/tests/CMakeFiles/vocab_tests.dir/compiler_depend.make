# Empty compiler generated dependencies file for vocab_tests.
# This may be replaced when dependencies are built.
