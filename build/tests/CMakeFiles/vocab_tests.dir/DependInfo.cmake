
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autograd.cpp" "tests/CMakeFiles/vocab_tests.dir/test_autograd.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_autograd.cpp.o.d"
  "/root/repo/tests/test_comm.cpp" "tests/CMakeFiles/vocab_tests.dir/test_comm.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_comm.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/vocab_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core_input_layer.cpp" "tests/CMakeFiles/vocab_tests.dir/test_core_input_layer.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_core_input_layer.cpp.o.d"
  "/root/repo/tests/test_core_output_layer.cpp" "tests/CMakeFiles/vocab_tests.dir/test_core_output_layer.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_core_output_layer.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/vocab_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/vocab_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_gpipe.cpp" "tests/CMakeFiles/vocab_tests.dir/test_gpipe.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_gpipe.cpp.o.d"
  "/root/repo/tests/test_online_softmax.cpp" "tests/CMakeFiles/vocab_tests.dir/test_online_softmax.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_online_softmax.cpp.o.d"
  "/root/repo/tests/test_optimizer_checkpoint.cpp" "tests/CMakeFiles/vocab_tests.dir/test_optimizer_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_optimizer_checkpoint.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/vocab_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_schedule_properties.cpp" "tests/CMakeFiles/vocab_tests.dir/test_schedule_properties.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_schedule_properties.cpp.o.d"
  "/root/repo/tests/test_schedules.cpp" "tests/CMakeFiles/vocab_tests.dir/test_schedules.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_schedules.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/vocab_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/vocab_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/vocab_tests.dir/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/vocab_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vocab_model.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/vocab_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/vocab_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vocab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/vocab_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vocab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vocab_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vocab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vocab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/vocab_schedule_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
