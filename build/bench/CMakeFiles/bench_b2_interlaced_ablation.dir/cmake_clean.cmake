file(REMOVE_RECURSE
  "CMakeFiles/bench_b2_interlaced_ablation.dir/bench_b2_interlaced_ablation.cpp.o"
  "CMakeFiles/bench_b2_interlaced_ablation.dir/bench_b2_interlaced_ablation.cpp.o.d"
  "bench_b2_interlaced_ablation"
  "bench_b2_interlaced_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b2_interlaced_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
