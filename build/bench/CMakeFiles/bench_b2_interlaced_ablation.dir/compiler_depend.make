# Empty compiler generated dependencies file for bench_b2_interlaced_ablation.
# This may be replaced when dependencies are built.
