file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_imbalance.dir/bench_fig01_imbalance.cpp.o"
  "CMakeFiles/bench_fig01_imbalance.dir/bench_fig01_imbalance.cpp.o.d"
  "bench_fig01_imbalance"
  "bench_fig01_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
