# Empty dependencies file for bench_table6_vhalf.
# This may be replaced when dependencies are built.
