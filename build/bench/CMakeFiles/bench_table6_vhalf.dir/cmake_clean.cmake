file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_vhalf.dir/bench_table6_vhalf.cpp.o"
  "CMakeFiles/bench_table6_vhalf.dir/bench_table6_vhalf.cpp.o.d"
  "bench_table6_vhalf"
  "bench_table6_vhalf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_vhalf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
