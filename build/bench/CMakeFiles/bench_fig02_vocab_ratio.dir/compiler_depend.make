# Empty compiler generated dependencies file for bench_fig02_vocab_ratio.
# This may be replaced when dependencies are built.
