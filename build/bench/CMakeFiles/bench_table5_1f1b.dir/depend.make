# Empty dependencies file for bench_table5_1f1b.
# This may be replaced when dependencies are built.
