file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_1f1b.dir/bench_table5_1f1b.cpp.o"
  "CMakeFiles/bench_table5_1f1b.dir/bench_table5_1f1b.cpp.o.d"
  "bench_table5_1f1b"
  "bench_table5_1f1b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_1f1b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
