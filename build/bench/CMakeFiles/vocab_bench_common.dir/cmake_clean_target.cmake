file(REMOVE_RECURSE
  "libvocab_bench_common.a"
)
