file(REMOVE_RECURSE
  "CMakeFiles/vocab_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/vocab_bench_common.dir/bench_common.cpp.o.d"
  "libvocab_bench_common.a"
  "libvocab_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
