# Empty dependencies file for vocab_bench_common.
# This may be replaced when dependencies are built.
