# Empty dependencies file for bench_table3_scaling.
# This may be replaced when dependencies are built.
