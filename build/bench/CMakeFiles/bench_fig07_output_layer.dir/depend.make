# Empty dependencies file for bench_fig07_output_layer.
# This may be replaced when dependencies are built.
