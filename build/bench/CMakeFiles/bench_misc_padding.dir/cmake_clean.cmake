file(REMOVE_RECURSE
  "CMakeFiles/bench_misc_padding.dir/bench_misc_padding.cpp.o"
  "CMakeFiles/bench_misc_padding.dir/bench_misc_padding.cpp.o.d"
  "bench_misc_padding"
  "bench_misc_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misc_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
