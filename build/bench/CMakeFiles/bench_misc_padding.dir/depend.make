# Empty dependencies file for bench_misc_padding.
# This may be replaced when dependencies are built.
