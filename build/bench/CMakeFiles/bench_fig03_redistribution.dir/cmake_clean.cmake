file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_redistribution.dir/bench_fig03_redistribution.cpp.o"
  "CMakeFiles/bench_fig03_redistribution.dir/bench_fig03_redistribution.cpp.o.d"
  "bench_fig03_redistribution"
  "bench_fig03_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
