# Empty dependencies file for bench_fig03_redistribution.
# This may be replaced when dependencies are built.
