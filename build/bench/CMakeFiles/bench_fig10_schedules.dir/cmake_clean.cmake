file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_schedules.dir/bench_fig10_schedules.cpp.o"
  "CMakeFiles/bench_fig10_schedules.dir/bench_fig10_schedules.cpp.o.d"
  "bench_fig10_schedules"
  "bench_fig10_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
