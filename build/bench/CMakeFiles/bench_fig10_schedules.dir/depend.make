# Empty dependencies file for bench_fig10_schedules.
# This may be replaced when dependencies are built.
