# Empty dependencies file for bench_fig17_convergence.
# This may be replaced when dependencies are built.
