file(REMOVE_RECURSE
  "libvocab_tensor.a"
)
