# Empty compiler generated dependencies file for vocab_tensor.
# This may be replaced when dependencies are built.
