file(REMOVE_RECURSE
  "CMakeFiles/vocab_tensor.dir/tensor.cpp.o"
  "CMakeFiles/vocab_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/vocab_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/vocab_tensor.dir/tensor_ops.cpp.o.d"
  "libvocab_tensor.a"
  "libvocab_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
