file(REMOVE_RECURSE
  "CMakeFiles/vocab_schedule.dir/builder.cpp.o"
  "CMakeFiles/vocab_schedule.dir/builder.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/building_block.cpp.o"
  "CMakeFiles/vocab_schedule.dir/building_block.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/layer_assignment.cpp.o"
  "CMakeFiles/vocab_schedule.dir/layer_assignment.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/schedule_1f1b.cpp.o"
  "CMakeFiles/vocab_schedule.dir/schedule_1f1b.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/schedule_1f1b_vocab.cpp.o"
  "CMakeFiles/vocab_schedule.dir/schedule_1f1b_vocab.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/schedule_gpipe.cpp.o"
  "CMakeFiles/vocab_schedule.dir/schedule_gpipe.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/schedule_interlaced.cpp.o"
  "CMakeFiles/vocab_schedule.dir/schedule_interlaced.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/schedule_vhalf.cpp.o"
  "CMakeFiles/vocab_schedule.dir/schedule_vhalf.cpp.o.d"
  "CMakeFiles/vocab_schedule.dir/timeline.cpp.o"
  "CMakeFiles/vocab_schedule.dir/timeline.cpp.o.d"
  "libvocab_schedule.a"
  "libvocab_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
