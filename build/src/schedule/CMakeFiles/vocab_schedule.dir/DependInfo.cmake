
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/builder.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/builder.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/builder.cpp.o.d"
  "/root/repo/src/schedule/building_block.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/building_block.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/building_block.cpp.o.d"
  "/root/repo/src/schedule/layer_assignment.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/layer_assignment.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/layer_assignment.cpp.o.d"
  "/root/repo/src/schedule/schedule_1f1b.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_1f1b.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_1f1b.cpp.o.d"
  "/root/repo/src/schedule/schedule_1f1b_vocab.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_1f1b_vocab.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_1f1b_vocab.cpp.o.d"
  "/root/repo/src/schedule/schedule_gpipe.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_gpipe.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_gpipe.cpp.o.d"
  "/root/repo/src/schedule/schedule_interlaced.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_interlaced.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_interlaced.cpp.o.d"
  "/root/repo/src/schedule/schedule_vhalf.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_vhalf.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/schedule_vhalf.cpp.o.d"
  "/root/repo/src/schedule/timeline.cpp" "src/schedule/CMakeFiles/vocab_schedule.dir/timeline.cpp.o" "gcc" "src/schedule/CMakeFiles/vocab_schedule.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/vocab_schedule_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vocab_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/vocab_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vocab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vocab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vocab_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vocab_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
