file(REMOVE_RECURSE
  "libvocab_schedule.a"
)
