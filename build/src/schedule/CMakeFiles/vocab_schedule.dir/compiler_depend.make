# Empty compiler generated dependencies file for vocab_schedule.
# This may be replaced when dependencies are built.
