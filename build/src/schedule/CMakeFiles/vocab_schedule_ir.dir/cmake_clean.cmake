file(REMOVE_RECURSE
  "CMakeFiles/vocab_schedule_ir.dir/ops.cpp.o"
  "CMakeFiles/vocab_schedule_ir.dir/ops.cpp.o.d"
  "libvocab_schedule_ir.a"
  "libvocab_schedule_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_schedule_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
