# Empty dependencies file for vocab_schedule_ir.
# This may be replaced when dependencies are built.
