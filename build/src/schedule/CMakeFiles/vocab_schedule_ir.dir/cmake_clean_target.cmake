file(REMOVE_RECURSE
  "libvocab_schedule_ir.a"
)
