
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/pipeline_sim.cpp" "src/sim/CMakeFiles/vocab_sim.dir/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/vocab_sim.dir/pipeline_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/vocab_schedule_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vocab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
