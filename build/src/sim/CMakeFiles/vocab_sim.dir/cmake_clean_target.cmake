file(REMOVE_RECURSE
  "libvocab_sim.a"
)
