# Empty dependencies file for vocab_sim.
# This may be replaced when dependencies are built.
