file(REMOVE_RECURSE
  "CMakeFiles/vocab_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/vocab_sim.dir/pipeline_sim.cpp.o.d"
  "libvocab_sim.a"
  "libvocab_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
