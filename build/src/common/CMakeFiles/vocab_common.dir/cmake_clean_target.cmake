file(REMOVE_RECURSE
  "libvocab_common.a"
)
