# Empty dependencies file for vocab_common.
# This may be replaced when dependencies are built.
