file(REMOVE_RECURSE
  "CMakeFiles/vocab_common.dir/error.cpp.o"
  "CMakeFiles/vocab_common.dir/error.cpp.o.d"
  "CMakeFiles/vocab_common.dir/logging.cpp.o"
  "CMakeFiles/vocab_common.dir/logging.cpp.o.d"
  "CMakeFiles/vocab_common.dir/rng.cpp.o"
  "CMakeFiles/vocab_common.dir/rng.cpp.o.d"
  "CMakeFiles/vocab_common.dir/table.cpp.o"
  "CMakeFiles/vocab_common.dir/table.cpp.o.d"
  "libvocab_common.a"
  "libvocab_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
