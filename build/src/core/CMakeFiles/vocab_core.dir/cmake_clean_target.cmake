file(REMOVE_RECURSE
  "libvocab_core.a"
)
