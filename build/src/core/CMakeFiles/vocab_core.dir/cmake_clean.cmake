file(REMOVE_RECURSE
  "CMakeFiles/vocab_core.dir/fused_output_layer.cpp.o"
  "CMakeFiles/vocab_core.dir/fused_output_layer.cpp.o.d"
  "CMakeFiles/vocab_core.dir/input_layer_shard.cpp.o"
  "CMakeFiles/vocab_core.dir/input_layer_shard.cpp.o.d"
  "CMakeFiles/vocab_core.dir/online_softmax.cpp.o"
  "CMakeFiles/vocab_core.dir/online_softmax.cpp.o.d"
  "CMakeFiles/vocab_core.dir/output_layer_shard.cpp.o"
  "CMakeFiles/vocab_core.dir/output_layer_shard.cpp.o.d"
  "CMakeFiles/vocab_core.dir/reference_input_layer.cpp.o"
  "CMakeFiles/vocab_core.dir/reference_input_layer.cpp.o.d"
  "CMakeFiles/vocab_core.dir/reference_output_layer.cpp.o"
  "CMakeFiles/vocab_core.dir/reference_output_layer.cpp.o.d"
  "CMakeFiles/vocab_core.dir/vocab_shard.cpp.o"
  "CMakeFiles/vocab_core.dir/vocab_shard.cpp.o.d"
  "libvocab_core.a"
  "libvocab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
