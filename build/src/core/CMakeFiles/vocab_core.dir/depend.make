# Empty dependencies file for vocab_core.
# This may be replaced when dependencies are built.
