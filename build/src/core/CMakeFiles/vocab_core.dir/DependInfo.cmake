
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fused_output_layer.cpp" "src/core/CMakeFiles/vocab_core.dir/fused_output_layer.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/fused_output_layer.cpp.o.d"
  "/root/repo/src/core/input_layer_shard.cpp" "src/core/CMakeFiles/vocab_core.dir/input_layer_shard.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/input_layer_shard.cpp.o.d"
  "/root/repo/src/core/online_softmax.cpp" "src/core/CMakeFiles/vocab_core.dir/online_softmax.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/online_softmax.cpp.o.d"
  "/root/repo/src/core/output_layer_shard.cpp" "src/core/CMakeFiles/vocab_core.dir/output_layer_shard.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/output_layer_shard.cpp.o.d"
  "/root/repo/src/core/reference_input_layer.cpp" "src/core/CMakeFiles/vocab_core.dir/reference_input_layer.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/reference_input_layer.cpp.o.d"
  "/root/repo/src/core/reference_output_layer.cpp" "src/core/CMakeFiles/vocab_core.dir/reference_output_layer.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/reference_output_layer.cpp.o.d"
  "/root/repo/src/core/vocab_shard.cpp" "src/core/CMakeFiles/vocab_core.dir/vocab_shard.cpp.o" "gcc" "src/core/CMakeFiles/vocab_core.dir/vocab_shard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vocab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vocab_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vocab_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
