file(REMOVE_RECURSE
  "libvocab_cost.a"
)
