file(REMOVE_RECURSE
  "CMakeFiles/vocab_cost.dir/cost_model.cpp.o"
  "CMakeFiles/vocab_cost.dir/cost_model.cpp.o.d"
  "CMakeFiles/vocab_cost.dir/hardware.cpp.o"
  "CMakeFiles/vocab_cost.dir/hardware.cpp.o.d"
  "CMakeFiles/vocab_cost.dir/model_config.cpp.o"
  "CMakeFiles/vocab_cost.dir/model_config.cpp.o.d"
  "libvocab_cost.a"
  "libvocab_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
