# Empty dependencies file for vocab_cost.
# This may be replaced when dependencies are built.
