file(REMOVE_RECURSE
  "libvocab_model.a"
)
