# Empty dependencies file for vocab_model.
# This may be replaced when dependencies are built.
