file(REMOVE_RECURSE
  "CMakeFiles/vocab_model.dir/gpt.cpp.o"
  "CMakeFiles/vocab_model.dir/gpt.cpp.o.d"
  "CMakeFiles/vocab_model.dir/transformer.cpp.o"
  "CMakeFiles/vocab_model.dir/transformer.cpp.o.d"
  "libvocab_model.a"
  "libvocab_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
