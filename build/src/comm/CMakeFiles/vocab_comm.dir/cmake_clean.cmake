file(REMOVE_RECURSE
  "CMakeFiles/vocab_comm.dir/channel.cpp.o"
  "CMakeFiles/vocab_comm.dir/channel.cpp.o.d"
  "CMakeFiles/vocab_comm.dir/device_group.cpp.o"
  "CMakeFiles/vocab_comm.dir/device_group.cpp.o.d"
  "libvocab_comm.a"
  "libvocab_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
