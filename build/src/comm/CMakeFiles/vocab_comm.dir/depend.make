# Empty dependencies file for vocab_comm.
# This may be replaced when dependencies are built.
