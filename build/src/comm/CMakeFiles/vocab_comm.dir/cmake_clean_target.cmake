file(REMOVE_RECURSE
  "libvocab_comm.a"
)
