file(REMOVE_RECURSE
  "libvocab_runtime.a"
)
