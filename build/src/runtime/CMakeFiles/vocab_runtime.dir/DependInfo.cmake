
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/checkpoint.cpp" "src/runtime/CMakeFiles/vocab_runtime.dir/checkpoint.cpp.o" "gcc" "src/runtime/CMakeFiles/vocab_runtime.dir/checkpoint.cpp.o.d"
  "/root/repo/src/runtime/optimizer.cpp" "src/runtime/CMakeFiles/vocab_runtime.dir/optimizer.cpp.o" "gcc" "src/runtime/CMakeFiles/vocab_runtime.dir/optimizer.cpp.o.d"
  "/root/repo/src/runtime/pipeline_trainer.cpp" "src/runtime/CMakeFiles/vocab_runtime.dir/pipeline_trainer.cpp.o" "gcc" "src/runtime/CMakeFiles/vocab_runtime.dir/pipeline_trainer.cpp.o.d"
  "/root/repo/src/runtime/reference_trainer.cpp" "src/runtime/CMakeFiles/vocab_runtime.dir/reference_trainer.cpp.o" "gcc" "src/runtime/CMakeFiles/vocab_runtime.dir/reference_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/vocab_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vocab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/vocab_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vocab_common.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/vocab_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vocab_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
