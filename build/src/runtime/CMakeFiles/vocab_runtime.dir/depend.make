# Empty dependencies file for vocab_runtime.
# This may be replaced when dependencies are built.
