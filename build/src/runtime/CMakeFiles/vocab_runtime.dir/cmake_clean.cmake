file(REMOVE_RECURSE
  "CMakeFiles/vocab_runtime.dir/checkpoint.cpp.o"
  "CMakeFiles/vocab_runtime.dir/checkpoint.cpp.o.d"
  "CMakeFiles/vocab_runtime.dir/optimizer.cpp.o"
  "CMakeFiles/vocab_runtime.dir/optimizer.cpp.o.d"
  "CMakeFiles/vocab_runtime.dir/pipeline_trainer.cpp.o"
  "CMakeFiles/vocab_runtime.dir/pipeline_trainer.cpp.o.d"
  "CMakeFiles/vocab_runtime.dir/reference_trainer.cpp.o"
  "CMakeFiles/vocab_runtime.dir/reference_trainer.cpp.o.d"
  "libvocab_runtime.a"
  "libvocab_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
