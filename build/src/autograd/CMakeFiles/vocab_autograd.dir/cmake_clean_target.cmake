file(REMOVE_RECURSE
  "libvocab_autograd.a"
)
