file(REMOVE_RECURSE
  "CMakeFiles/vocab_autograd.dir/autograd.cpp.o"
  "CMakeFiles/vocab_autograd.dir/autograd.cpp.o.d"
  "libvocab_autograd.a"
  "libvocab_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocab_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
