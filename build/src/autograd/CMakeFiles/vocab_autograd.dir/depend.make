# Empty dependencies file for vocab_autograd.
# This may be replaced when dependencies are built.
