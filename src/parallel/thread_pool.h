#pragma once

// Intra-op parallelism: a fixed-partition thread pool + parallel_for.
//
// This is the CPU stand-in for the intra-device parallelism a real GPU kernel
// gets for free: every simulated device in this reproduction used to run its
// matmuls and softmax passes on a single core. The pool lets the hot kernels
// in tensor_ops / core split their row ranges across VOCAB_NUM_THREADS OS
// threads while keeping results *bit-identical* for any thread count.
//
// Determinism contract
// --------------------
//   parallel_for partitions [begin, end) into chunks whose boundaries depend
//   only on the range size and the grain — never on the number of threads.
//   Kernels built on it assign each output element to exactly one chunk and
//   accumulate in a fixed order within the chunk, so the bytes produced are
//   identical whether the chunks run on 1 thread or 16. This keeps the
//   PipelineTrainer-vs-ReferenceTrainer equivalence checks exact.
//
// Nested-parallelism rule
// -----------------------
//   The PipelineTrainer already runs p device threads; each of them may call
//   into these kernels concurrently. The pool therefore (a) falls back to
//   serial execution when called from one of its own workers (no nested
//   fan-out, no deadlock), and (b) falls back to serial when another thread
//   currently owns the pool (device threads never serialize on each other's
//   math). Serial fallback runs the exact same chunks in chunk order, so the
//   determinism contract is unaffected.
//
// Lifetime: the pool is a lazily-created process-wide singleton; its worker
// count comes from the VOCAB_NUM_THREADS environment variable (default:
// std::thread::hardware_concurrency()). Workers are joined at process exit.
//
// Pool partitioning
// -----------------
//   The schedule executor gives each of its p device threads a *private*
//   pool of width floor(VOCAB_NUM_THREADS / p) so intra-op parallelism
//   composes with inter-device parallelism instead of oversubscribing the
//   machine. A device thread installs its pool with a ScopedPool; while the
//   scope is active, parallel_for on that thread uses the private pool
//   instead of the singleton. ScopedPool(nullptr) forces serial execution
//   (used when p exceeds the pool width). Chunk boundaries are shape-only,
//   so routing through a different pool never changes the bytes produced.

#include <cstdint>
#include <functional>

namespace vocab::parallel {

class ThreadPool {
 public:
  /// The process-wide pool. First call reads VOCAB_NUM_THREADS and spawns
  /// workers; subsequent calls are cheap.
  static ThreadPool& instance();

  /// A private pool of `total_threads` execution width (total_threads - 1
  /// workers + the submitting thread). Install on a device thread with
  /// ScopedPool so parallel_for routes to it instead of the singleton.
  explicit ThreadPool(int total_threads);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (worker threads + the calling thread).
  [[nodiscard]] int num_threads() const;

  /// Reconfigure the pool to `n` total threads (n-1 workers). Waits for any
  /// in-flight job. Primarily a test hook for the determinism sweep; the
  /// normal configuration path is the VOCAB_NUM_THREADS environment variable.
  void set_num_threads(int n);

  /// Run fn(chunk) for every chunk in [0, num_chunks), using the workers plus
  /// the calling thread. Returns false — without running anything — when the
  /// job cannot be parallelized (no workers, called from a pool worker, or
  /// the pool is busy with another caller's job); the caller must then run
  /// the chunks serially. The first exception thrown by any chunk is
  /// rethrown on the calling thread after all chunks finish.
  [[nodiscard]] bool try_run(std::int64_t num_chunks,
                             const std::function<void(std::int64_t)>& fn);

  /// True when the current thread is one of this process's pool workers.
  [[nodiscard]] static bool on_worker_thread();

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
};

/// RAII override of the pool parallel_for uses on the *current thread*.
/// While alive, parallel_for submits to `pool` instead of the process-wide
/// singleton; a null pool forces serial chunk execution (same chunks, same
/// order, same bytes). Scopes nest; destruction restores the previous
/// routing. Used by the schedule executor to give each pipeline device
/// thread its own slice of the machine.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool* pool);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  bool prev_override_;
  ThreadPool* prev_pool_;
};

/// Deterministically partition [begin, end) into chunks of at least `grain`
/// iterations (at most an implementation-fixed chunk count) and run
/// body(chunk_begin, chunk_end) over them, in parallel when the pool is
/// available and serially (in ascending chunk order) otherwise. Chunk
/// boundaries depend only on (end - begin) and grain. Empty ranges return
/// immediately; exceptions from `body` propagate to the caller.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Like parallel_for, but the body also receives the chunk index
/// (0-based, in partition order). Reduction kernels use it to write one
/// partial result per chunk and combine the partials in ascending chunk
/// order on the calling thread — deterministic for any pool width, since
/// the partition is the same shape-only one parallel_for uses.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body);

/// Number of chunks the shape-only partition produces for (end - begin,
/// grain) — the partial-slot count a chunked reduction must allocate.
[[nodiscard]] std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                                      std::int64_t grain);

/// Current total execution width (== ThreadPool::instance().num_threads()).
[[nodiscard]] int num_threads();

/// Test hook: reconfigure the pool width at runtime.
void set_num_threads(int n);

}  // namespace vocab::parallel
