#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/error.h"

namespace vocab::parallel {

namespace {

thread_local bool t_on_worker = false;

// ScopedPool routing state for the current thread: when t_pool_override is
// set, parallel_for uses t_scoped_pool (null = forced serial) instead of the
// process singleton.
thread_local bool t_pool_override = false;
thread_local ThreadPool* t_scoped_pool = nullptr;

// Upper bound on chunks per parallel_for. A fixed constant (not a function of
// the thread count!) so partition boundaries are shape-only; large enough
// that even a wide pool load-balances via the shared chunk counter.
constexpr std::int64_t kMaxChunks = 256;

int env_num_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return static_cast<int>(int_from_env("VOCAB_NUM_THREADS", fallback, 1, 1024));
}

}  // namespace

struct ThreadPool::Impl {
  // One fan-out job. Heap-allocated and shared_ptr-held by every thread that
  // works on it, so a worker that wakes late (or drains slowly) can never
  // touch a newer job's counters: its own job's `next` is monotonically past
  // `total` once the job is complete, and `fn` is only dereferenced for
  // chunks claimed before that point.
  struct Job {
    std::int64_t total = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::exception_ptr error;  // first failure; guarded by the pool mutex
  };

  // Serializes callers: one job in flight at a time. try_run uses try_lock so
  // a busy pool makes concurrent callers (e.g. pipeline device threads) fall
  // back to serial instead of queueing.
  std::mutex submit_mutex;

  // Guards job publication, stop flag, Job::error, and both condition vars.
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;

  std::uint64_t job_id = 0;
  std::shared_ptr<Job> current_job;
  bool stop = false;

  std::vector<std::thread> workers;

  // Pull chunks off the job's counter until it is drained. Runs on both the
  // workers and the submitting thread.
  void drain(Job& job) {
    for (;;) {
      const std::int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.total) break;
      try {
        (*job.fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
        std::lock_guard<std::mutex> lk(m);
        cv_done.notify_all();
      }
    }
  }

  void worker_main() {
    t_on_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || job_id != seen; });
      if (stop) return;
      seen = job_id;
      const std::shared_ptr<Job> job = current_job;
      lk.unlock();
      if (job) drain(*job);
      lk.lock();
    }
  }

  void start_workers(int n_workers) {
    workers.reserve(static_cast<std::size_t>(n_workers));
    for (int i = 0; i < n_workers; ++i) {
      workers.emplace_back([this] { worker_main(); });
    }
  }

  void join_workers() {
    {
      std::lock_guard<std::mutex> lk(m);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& w : workers) w.join();
    workers.clear();
    std::lock_guard<std::mutex> lk(m);
    stop = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  impl_->start_workers(env_num_threads() - 1);
}

ThreadPool::ThreadPool(int total_threads) : impl_(new Impl) {
  VOCAB_CHECK(total_threads >= 1, "thread pool needs at least one thread, got " << total_threads);
  impl_->start_workers(total_threads - 1);
}

ThreadPool::~ThreadPool() {
  impl_->join_workers();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::num_threads() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::set_num_threads(int n) {
  VOCAB_CHECK(n >= 1, "thread pool needs at least one thread, got " << n);
  // Take the submit lock so no job is in flight while workers are replaced.
  std::lock_guard<std::mutex> submit(impl_->submit_mutex);
  impl_->join_workers();
  impl_->start_workers(n - 1);
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

bool ThreadPool::try_run(std::int64_t num_chunks,
                         const std::function<void(std::int64_t)>& fn) {
  if (num_chunks <= 1 || t_on_worker || impl_->workers.empty()) return false;
  if (!impl_->submit_mutex.try_lock()) return false;
  std::lock_guard<std::mutex> submit(impl_->submit_mutex, std::adopt_lock);

  auto job = std::make_shared<Impl::Job>();
  job->total = num_chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->current_job = job;
    ++impl_->job_id;
  }
  impl_->cv_work.notify_all();
  // The submitting thread is a full participant.
  impl_->drain(*job);
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->cv_done.wait(
      lk, [&] { return job->done.load(std::memory_order_acquire) == num_chunks; });
  impl_->current_job.reset();
  if (job->error) {
    std::exception_ptr e = job->error;
    lk.unlock();
    std::rethrow_exception(e);
  }
  return true;
}

namespace {

// Shape-only chunking: boundaries are a function of (n, grain) alone.
// Returns {chunk_size, num_chunks}.
std::pair<std::int64_t, std::int64_t> partition(std::int64_t n, std::int64_t grain) {
  const std::int64_t g = std::max<std::int64_t>(grain, 1);
  std::int64_t chunks = std::min((n + g - 1) / g, kMaxChunks);
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  chunks = (n + chunk - 1) / chunk;
  return {chunk, chunks};
}

}  // namespace

std::int64_t num_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain) {
  const std::int64_t n = end - begin;
  if (n <= 0) return 0;
  return partition(n, grain).second;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const auto [chunk, chunks] = partition(n, grain);
  if (chunks == 1) {
    body(begin, end);
    return;
  }
  const auto run_chunk = [&](std::int64_t c) {
    const std::int64_t b = begin + c * chunk;
    body(b, std::min(b + chunk, end));
  };
  ThreadPool* pool = t_pool_override ? t_scoped_pool : &ThreadPool::instance();
  if (pool == nullptr || !pool->try_run(chunks, run_chunk)) {
    for (std::int64_t c = 0; c < chunks; ++c) run_chunk(c);
  }
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const auto [chunk, chunks] = partition(n, grain);
  const auto run_chunk = [&](std::int64_t c) {
    const std::int64_t b = begin + c * chunk;
    body(c, b, std::min(b + chunk, end));
  };
  if (chunks == 1) {
    run_chunk(0);
    return;
  }
  ThreadPool* pool = t_pool_override ? t_scoped_pool : &ThreadPool::instance();
  if (pool == nullptr || !pool->try_run(chunks, run_chunk)) {
    for (std::int64_t c = 0; c < chunks; ++c) run_chunk(c);
  }
}

ScopedPool::ScopedPool(ThreadPool* pool)
    : prev_override_(t_pool_override), prev_pool_(t_scoped_pool) {
  t_pool_override = true;
  t_scoped_pool = pool;
}

ScopedPool::~ScopedPool() {
  t_pool_override = prev_override_;
  t_scoped_pool = prev_pool_;
}

int num_threads() { return ThreadPool::instance().num_threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_num_threads(n); }

}  // namespace vocab::parallel
