#include "autograd/autograd.h"

#include <cmath>
#include <unordered_set>

#include "common/error.h"
#include "parallel/thread_pool.h"
#include "tensor/tensor_ops.h"

namespace vocab::autograd {

Tensor& Node::ensure_grad() {
  if (grad.empty()) grad = Tensor(value.shape());
  return grad;
}

Var leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

Var param(Tensor value) {
  Var node = leaf(std::move(value), /*requires_grad=*/true);
  node->is_param = true;
  return node;
}

Var constant(Tensor value) { return leaf(std::move(value), false); }

namespace {

/// Which half of the backward pass the current traversal computes. Closures
/// consult wants() so a split traversal skips the other half's FLOPs rather
/// than recomputing (or double-accumulating) them.
enum class GradPhase { kFull, kInput, kWeight };

thread_local GradPhase g_phase = GradPhase::kFull;

/// Does the current phase want a gradient accumulated into `v`?
bool wants(const Var& v) {
  if (!v->requires_grad) return false;
  switch (g_phase) {
    case GradPhase::kFull: return true;
    case GradPhase::kInput: return !v->is_param;
    case GradPhase::kWeight: return v->is_param;
  }
  return true;
}

/// Create an interior node; requires_grad is inherited from parents.
Var make_node(Tensor value, std::vector<Var> parents, std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const auto& p : parents) node->requires_grad |= p->requires_grad;
  node->parents = std::move(parents);
  if (node->requires_grad) node->backward_fn = std::move(backward_fn);
  return node;
}

void accumulate(const Var& node, const Tensor& delta) {
  if (!wants(node)) return;
  add_inplace(node->ensure_grad(), delta);
}

}  // namespace

Var matmul(const Var& a, const Var& b) {
  Tensor out = vocab::matmul(a->value, b->value);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    // dA = dC B^T ; dB = A^T dC (gated per phase so BI/BW split the FLOPs)
    if (wants(a)) accumulate(a, vocab::matmul_nt(n.grad, b->value));
    if (wants(b)) accumulate(b, vocab::matmul_tn(a->value, n.grad));
  });
}

Var matmul_nt(const Var& a, const Var& b) {
  Tensor out = vocab::matmul_nt(a->value, b->value);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    // C = A B^T: dA = dC B ; dB = dC^T A
    if (wants(a)) accumulate(a, vocab::matmul(n.grad, b->value));
    if (wants(b)) accumulate(b, vocab::matmul_tn(n.grad, a->value));
  });
}

Var add(const Var& a, const Var& b) {
  Tensor out = vocab::add(a->value, b->value);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    accumulate(a, n.grad);
    accumulate(b, n.grad);
  });
}

Var add_rowvec(const Var& a, const Var& bias) {
  VOCAB_CHECK(a->value.rank() == 2 && bias->value.rank() == 1 &&
                  bias->value.dim(0) == a->value.dim(1),
              "add_rowvec shape mismatch");
  Tensor out = a->value;
  const std::int64_t m = out.dim(0), nn = out.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < nn; ++j) out.at(i, j) += bias->value.at(j);
  }
  return make_node(std::move(out), {a, bias}, [a, bias](Node& n) {
    accumulate(a, n.grad);
    if (wants(bias)) {
      Tensor db({n.grad.dim(1)});
      for (std::int64_t i = 0; i < n.grad.dim(0); ++i) {
        for (std::int64_t j = 0; j < n.grad.dim(1); ++j) db.at(j) += n.grad.at(i, j);
      }
      add_inplace(bias->ensure_grad(), db);
    }
  });
}

Var mul(const Var& a, const Var& b) {
  Tensor out = vocab::mul(a->value, b->value);
  return make_node(std::move(out), {a, b}, [a, b](Node& n) {
    if (wants(a)) accumulate(a, vocab::mul(n.grad, b->value));
    if (wants(b)) accumulate(b, vocab::mul(n.grad, a->value));
  });
}

Var scale(const Var& a, float s) {
  Tensor out = vocab::scale(a->value, s);
  return make_node(std::move(out), {a}, [a, s](Node& n) {
    if (wants(a)) accumulate(a, vocab::scale(n.grad, s));
  });
}

Var gelu(const Var& a) {
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  constexpr float kB = 0.044715f;
  Tensor out(a->value.shape());
  const float* px = a->value.data();
  float* po = out.data();
  parallel::parallel_for(0, out.numel(), 4096, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) {
      const float x = px[i];
      po[i] = 0.5f * x * (1.0f + std::tanh(kC * (x + kB * x * x * x)));
    }
  });
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!wants(a)) return;
    Tensor da(a->value.shape());
    const float* px = a->value.data();
    const float* pg = n.grad.data();
    float* pd = da.data();
    parallel::parallel_for(0, da.numel(), 4096, [&](std::int64_t e0, std::int64_t e1) {
      for (std::int64_t i = e0; i < e1; ++i) {
        const float x = px[i];
        const float u = kC * (x + kB * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kB * x * x);
        pd[i] = pg[i] * (0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du);
      }
    });
    add_inplace(a->ensure_grad(), da);
  });
}

Var layernorm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  VOCAB_CHECK(x->value.rank() == 2, "layernorm expects [m, n]");
  const std::int64_t m = x->value.dim(0), n = x->value.dim(1);
  VOCAB_CHECK(gamma->value.rank() == 1 && gamma->value.dim(0) == n &&
                  beta->value.rank() == 1 && beta->value.dim(0) == n,
              "layernorm gain/bias must be [n]");
  Tensor out({m, n});
  Tensor xhat({m, n});
  Tensor inv_sigma({m});
  {
    const float* px = x->value.data();
    const float* pgam = gamma->value.data();
    const float* pbet = beta->value.data();
    float* po = out.data();
    float* pxh = xhat.data();
    float* pis = inv_sigma.data();
    parallel::parallel_for(0, m, std::max<std::int64_t>(1, 4096 / n),
                           [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* row = px + i * n;
        double mu = 0.0;
        for (std::int64_t j = 0; j < n; ++j) mu += row[j];
        mu /= static_cast<double>(n);
        double var = 0.0;
        for (std::int64_t j = 0; j < n; ++j) {
          const double dlt = row[j] - mu;
          var += dlt * dlt;
        }
        var /= static_cast<double>(n);
        const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
        pis[i] = is;
        for (std::int64_t j = 0; j < n; ++j) {
          const float xh = (row[j] - static_cast<float>(mu)) * is;
          pxh[i * n + j] = xh;
          po[i * n + j] = pgam[j] * xh + pbet[j];
        }
      }
    });
  }
  return make_node(std::move(out), {x, gamma, beta},
                   [x, gamma, beta, xhat = std::move(xhat),
                    inv_sigma = std::move(inv_sigma)](Node& nd) {
    const std::int64_t m = nd.grad.dim(0), n = nd.grad.dim(1);
    if (wants(gamma) || wants(beta)) {
      Tensor dg({n}), db({n});
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          dg.at(j) += nd.grad.at(i, j) * xhat.at(i, j);
          db.at(j) += nd.grad.at(i, j);
        }
      }
      if (wants(gamma)) add_inplace(gamma->ensure_grad(), dg);
      if (wants(beta)) add_inplace(beta->ensure_grad(), db);
    }
    if (!wants(x)) return;
    Tensor dx({m, n});
    const float* pgam = gamma->value.data();
    const float* pg = nd.grad.data();
    const float* pxh = xhat.data();
    const float* pis = inv_sigma.data();
    float* pdx = dx.data();
    parallel::parallel_for(0, m, std::max<std::int64_t>(1, 4096 / n),
                           [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        // g = gamma * dy; dx = (g - mean(g) - xhat * mean(g * xhat)) / sigma
        double mean_g = 0.0, mean_gx = 0.0;
        for (std::int64_t j = 0; j < n; ++j) {
          const double g = static_cast<double>(pgam[j]) * pg[i * n + j];
          mean_g += g;
          mean_gx += g * pxh[i * n + j];
        }
        mean_g /= static_cast<double>(n);
        mean_gx /= static_cast<double>(n);
        for (std::int64_t j = 0; j < n; ++j) {
          const double g = static_cast<double>(pgam[j]) * pg[i * n + j];
          pdx[i * n + j] = static_cast<float>((g - mean_g - pxh[i * n + j] * mean_gx) *
                                              pis[i]);
        }
      }
    });
    add_inplace(x->ensure_grad(), dx);
  });
}

Var causal_attention(const Var& q, const Var& k, const Var& v, int heads) {
  VOCAB_CHECK(q->value.rank() == 2 && q->value.same_shape(k->value) &&
                  q->value.same_shape(v->value),
              "attention inputs must share shape [s, h]");
  const std::int64_t s = q->value.dim(0), h = q->value.dim(1);
  VOCAB_CHECK(heads > 0 && h % heads == 0, "heads must divide hidden dim");
  const std::int64_t dh = h / heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor out({s, h});
  // Saved attention probabilities per head for the backward pass.
  std::vector<Tensor> probs(static_cast<std::size_t>(heads));
  for (int a = 0; a < heads; ++a) {
    const std::int64_t c0 = a * dh, c1 = c0 + dh;
    const Tensor qa = slice_cols(q->value, c0, c1);
    const Tensor ka = slice_cols(k->value, c0, c1);
    const Tensor va = slice_cols(v->value, c0, c1);
    Tensor scores = vocab::matmul_nt(qa, ka);
    scale_inplace(scores, inv_sqrt);
    // Causal mask: position i attends to j <= i.
    for (std::int64_t i = 0; i < s; ++i) {
      for (std::int64_t j = i + 1; j < s; ++j) scores.at(i, j) = -1e30f;
    }
    Tensor p = vocab::softmax_rows(scores);
    const Tensor ctx = vocab::matmul(p, va);
    for (std::int64_t i = 0; i < s; ++i) {
      for (std::int64_t j = 0; j < dh; ++j) out.at(i, c0 + j) = ctx.at(i, j);
    }
    probs[static_cast<std::size_t>(a)] = std::move(p);
  }

  return make_node(std::move(out), {q, k, v},
                   [q, k, v, heads, dh, inv_sqrt, probs = std::move(probs)](Node& n) {
    // q/k/v are all activations: the whole closure is BI work.
    if (!wants(q) && !wants(k) && !wants(v)) return;
    const std::int64_t s = n.grad.dim(0);
    Tensor dq(q->value.shape()), dk(k->value.shape()), dv(v->value.shape());
    for (int a = 0; a < heads; ++a) {
      const std::int64_t c0 = a * dh, c1 = c0 + dh;
      const Tensor qa = slice_cols(q->value, c0, c1);
      const Tensor ka = slice_cols(k->value, c0, c1);
      const Tensor va = slice_cols(v->value, c0, c1);
      const Tensor dout = slice_cols(n.grad, c0, c1);
      const Tensor& p = probs[static_cast<std::size_t>(a)];
      // dV = P^T dO ; dP = dO V^T
      const Tensor dva = vocab::matmul_tn(p, dout);
      const Tensor dp = vocab::matmul_nt(dout, va);
      // softmax backward: dS = P ⊙ (dP - rowsum(dP ⊙ P))
      Tensor ds({s, s});
      const float* pdp = dp.data();
      const float* pp = p.data();
      float* pds = ds.data();
      parallel::parallel_for(0, s, std::max<std::int64_t>(1, 4096 / s),
                             [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          double dot = 0.0;
          for (std::int64_t j = 0; j <= i; ++j) dot += static_cast<double>(pdp[i * s + j]) * pp[i * s + j];
          for (std::int64_t j = 0; j <= i; ++j) {
            pds[i * s + j] = pp[i * s + j] * (pdp[i * s + j] - static_cast<float>(dot)) * inv_sqrt;
          }
        }
      });
      const Tensor dqa = vocab::matmul(ds, ka);
      const Tensor dka = vocab::matmul_tn(ds, qa);
      for (std::int64_t i = 0; i < s; ++i) {
        for (std::int64_t j = 0; j < dh; ++j) {
          dq.at(i, c0 + j) += dqa.at(i, j);
          dk.at(i, c0 + j) += dka.at(i, j);
          dv.at(i, c0 + j) += dva.at(i, j);
        }
      }
    }
    accumulate(q, dq);
    accumulate(k, dk);
    accumulate(v, dv);
  });
}

Var softmax_rows(const Var& a) {
  Tensor out = vocab::softmax_rows(a->value);
  Tensor saved = out;
  return make_node(std::move(out), {a}, [a, saved = std::move(saved)](Node& n) {
    if (!wants(a)) return;
    const std::int64_t m = n.grad.dim(0), c = n.grad.dim(1);
    Tensor da({m, c});
    const float* pg = n.grad.data();
    const float* psv = saved.data();
    float* pda = da.data();
    parallel::parallel_for(0, m, std::max<std::int64_t>(1, 4096 / c),
                           [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        double dot = 0.0;
        for (std::int64_t j = 0; j < c; ++j) dot += static_cast<double>(pg[i * c + j]) * psv[i * c + j];
        for (std::int64_t j = 0; j < c; ++j) {
          pda[i * c + j] = psv[i * c + j] * (pg[i * c + j] - static_cast<float>(dot));
        }
      }
    });
    add_inplace(a->ensure_grad(), da);
  });
}

Var sum_all(const Var& a) {
  Tensor out({1}, static_cast<float>(vocab::sum_all(a->value)));
  return make_node(std::move(out), {a}, [a](Node& n) {
    if (!wants(a)) return;
    Tensor da(a->value.shape(), n.grad.at(0));
    add_inplace(a->ensure_grad(), da);
  });
}

namespace {

/// Restore the traversal phase even if a closure throws.
struct PhaseScope {
  GradPhase saved;
  explicit PhaseScope(GradPhase phase) : saved(g_phase) { g_phase = phase; }
  ~PhaseScope() { g_phase = saved; }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

/// Shared reverse-mode walk. The topological order is a pure function of the
/// graph structure, so the input and weight passes visit nodes in the exact
/// same sequence — the property that makes the split bit-identical.
void run_backward(const Var& root, const Tensor* seed, GradPhase phase) {
  VOCAB_CHECK(root != nullptr, "backward on null var");
  // Iterative post-order topological sort.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack{{root.get(), 0}};
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  PhaseScope scope(phase);
  if (seed) add_inplace(root->ensure_grad(), *seed);
  // Reverse topological order: children before parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn(*node);
  }
}

}  // namespace

void backward(const Var& root, const Tensor& seed) {
  VOCAB_CHECK(root != nullptr, "backward on null var");
  VOCAB_CHECK(seed.same_shape(root->value), "seed shape must match root value");
  run_backward(root, &seed, GradPhase::kFull);
}

void backward(const Var& root) {
  backward(root, Tensor(root->value.shape(), 1.0f));
}

void backward_input(const Var& root, const Tensor& seed) {
  VOCAB_CHECK(root != nullptr, "backward_input on null var");
  VOCAB_CHECK(seed.same_shape(root->value), "seed shape must match root value");
  run_backward(root, &seed, GradPhase::kInput);
}

void backward_weight(const Var& root) {
  VOCAB_CHECK(root != nullptr, "backward_weight on null var");
  VOCAB_CHECK(!root->grad.empty(),
              "backward_weight requires a prior backward_input on the same tape");
  run_backward(root, nullptr, GradPhase::kWeight);
}

}  // namespace vocab::autograd
