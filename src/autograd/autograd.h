#pragma once

// Minimal reverse-mode automatic differentiation over Tensor.
//
// Used for the transformer blocks of the real-numerics pipeline runtime:
// each pipeline stage builds a small tape per microbatch during its forward
// pass and replays it backward when the gradient arrives from the next
// stage. The vocabulary layers deliberately do NOT use this tape — their
// gradients are the hand-derived equations (3)–(6) of the paper, which is
// the whole point of the S/T pass decomposition.
//
// Design: a Var is a shared handle to a Node holding the value, the
// accumulated gradient, parent edges and a backward closure. backward()
// topologically sorts the reachable graph and pushes gradients to leaves.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

namespace autograd {

struct Node;
using Var = std::shared_ptr<Node>;

/// One value in the computation graph.
struct Node {
  Tensor value;
  Tensor grad;                 ///< same shape as value once backward touches it
  bool requires_grad = false;  ///< leaves: parameters / inputs tracked for grads
  bool is_param = false;       ///< parameter leaf: gradient belongs to the W pass
  std::vector<Var> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// Lazily materialise a zero gradient buffer.
  Tensor& ensure_grad();
};

/// Wrap a tensor as a graph leaf.
Var leaf(Tensor value, bool requires_grad);

/// Wrap a parameter leaf: requires_grad, and its gradient is deferred to the
/// weight pass when the split backward (backward_input / backward_weight) is
/// used. Plain backward() treats it like any other leaf.
Var param(Tensor value);

/// Wrap a constant (no gradient tracked).
Var constant(Tensor value);

// ---- differentiable ops (2-D tensors unless noted) ---------------------------

Var matmul(const Var& a, const Var& b);          ///< [m,k]@[k,n]
Var matmul_nt(const Var& a, const Var& b);       ///< [m,k]@[n,k]^T
Var add(const Var& a, const Var& b);             ///< same shape
Var add_rowvec(const Var& a, const Var& bias);   ///< [m,n] + [n] broadcast
Var mul(const Var& a, const Var& b);             ///< elementwise
Var scale(const Var& a, float s);
Var gelu(const Var& a);                          ///< tanh approximation
/// LayerNorm over the last axis with learnable gain/bias ([n]-shaped).
Var layernorm(const Var& x, const Var& gamma, const Var& beta, float eps = 1e-5f);
/// Multi-head causal self-attention: fused node with a manual backward.
/// q, k, v: [s, h]; heads must divide h. Scores are masked causally.
Var causal_attention(const Var& q, const Var& k, const Var& v, int heads);
/// Row-wise softmax (used in tests; attention uses the fused node).
Var softmax_rows(const Var& a);
/// Sum of all elements -> [1] (loss-style reduction for tests).
Var sum_all(const Var& a);

/// Run reverse-mode accumulation from `root` with seed gradient `seed`
/// (must match root->value's shape). Gradients accumulate (+=) into every
/// requires_grad leaf reachable from root; call zero_grad between steps.
void backward(const Var& root, const Tensor& seed);

/// Convenience: backward from a scalar-like root with seed 1.
void backward(const Var& root);

// ---- split backward (zero-bubble BI/BW decomposition) ------------------------
//
// Zero-bubble schedules split each backward into BI (activation gradients,
// on the pipeline critical path) and BW (parameter gradients, deferrable
// filler work). backward_input() propagates gradients through every
// non-parameter node — after it returns, all activation gradients (including
// the stage input's) are complete, and every interior node holds its full
// upstream gradient. backward_weight() then re-walks the SAME tape in the
// same deterministic order and runs only the parameter-gradient halves of
// each closure, consuming the stashed node gradients. The per-leaf
// accumulation sequences are identical to a single backward() call, so the
// split is bit-identical to the combined pass — the FLOPs merely move.

/// Input half: propagate `seed` from `root` into every non-parameter leaf.
/// Keeps interior gradients alive for the matching backward_weight().
void backward_input(const Var& root, const Tensor& seed);

/// Weight half: accumulate parameter-leaf gradients from the node gradients
/// stashed by a prior backward_input() over the same graph. Must be called
/// at most once per backward_input() (gradients accumulate +=).
void backward_weight(const Var& root);

}  // namespace autograd

}  // namespace vocab
