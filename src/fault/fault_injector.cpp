#include "fault/fault_injector.h"

#include <signal.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace vocab {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::ThrowInOp: return "throw";
    case FaultKind::DelayOp: return "delay";
    case FaultKind::StallDevice: return "stall";
    case FaultKind::KillThread: return "kill";
    case FaultKind::InjectNaN: return "nan";
    case FaultKind::InjectInf: return "inf";
    case FaultKind::BitFlip: return "bitflip";
    case FaultKind::KillProcess: return "kill-process";
    case FaultKind::DropMessage: return "drop-msg";
    case FaultKind::DelayMessage: return "delay-msg";
    case FaultKind::SuppressHeartbeat: return "suppress-heartbeat";
    case FaultKind::DropConnection: return "drop-connection";
    case FaultKind::PartitionPeer: return "partition-peer";
    case FaultKind::DuplicateFrame: return "duplicate-frame";
    case FaultKind::TruncateFrame: return "truncate-frame";
    case FaultKind::StallSocket: return "stall-socket";
  }
  return "?";
}

bool is_data_fault(FaultKind kind) {
  return kind == FaultKind::InjectNaN || kind == FaultKind::InjectInf ||
         kind == FaultKind::BitFlip;
}

bool is_net_fault(FaultKind kind) {
  return kind == FaultKind::DropConnection || kind == FaultKind::PartitionPeer ||
         kind == FaultKind::DuplicateFrame || kind == FaultKind::TruncateFrame ||
         kind == FaultKind::StallSocket;
}

std::string FaultSpec::describe() const {
  std::ostringstream os;
  os << to_string(kind) << "@it" << iteration << ":d" << device << ":op" << op_index;
  if (delay.count() > 0) os << ":" << delay.count() << "ms";
  if (is_data_fault(kind)) os << ":e" << element;
  if (is_net_fault(kind)) os << ":peer" << element;
  if (!note.empty()) os << " (" << note << ")";
  return os.str();
}

FaultPlan FaultPlan::single(FaultSpec spec) {
  FaultPlan plan;
  plan.faults.push_back(std::move(spec));
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int count, int num_devices,
                            std::uint64_t max_iteration, int max_op_index,
                            const std::vector<FaultKind>& kinds,
                            std::chrono::milliseconds delay) {
  FaultPlan plan;
  if (kinds.empty() || count <= 0) return plan;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    FaultSpec spec;
    spec.kind = kinds[static_cast<std::size_t>(rng.uniform_int(kinds.size()))];
    spec.iteration = rng.uniform_int(std::max<std::uint64_t>(max_iteration, 1));
    spec.device = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(std::max(num_devices, 1))));
    spec.op_index = static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(std::max(max_op_index, 1))));
    spec.delay = delay;
    // Only draw an element for data/net faults, so plans over the
    // process-level kinds consume the same rng stream they always did (seed
    // stability; net kinds never appeared in pre-PR-10 plans, so drawing for
    // them cannot shift an existing seed). For net faults the element picks
    // the target peer (mod world at consume time).
    if (is_data_fault(spec.kind) || is_net_fault(spec.kind)) {
      spec.element = rng.uniform_int(std::uint64_t{1} << 20);
    }
    spec.note = "seed " + std::to_string(seed);
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

std::string FaultPlan::summary() const {
  std::ostringstream os;
  os << faults.size() << " fault(s): [";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i > 0) os << ", ";
    os << faults[i].describe();
  }
  os << "]";
  return os.str();
}

namespace {

/// Sleep `total` in kAbortPollInterval slices so an abort elsewhere wakes the
/// sleeping device thread promptly. Returns true if the sleep was cut short.
bool interruptible_sleep(std::chrono::milliseconds total, const AbortToken* token) {
  const auto deadline = std::chrono::steady_clock::now() + total;
  for (;;) {
    if (token != nullptr && token->aborted()) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(std::min(remaining, kAbortPollInterval));
  }
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), fired_(plan_.faults.size(), false) {}

void FaultInjector::begin_iteration(std::uint64_t iteration) {
  std::lock_guard lock(mutex_);
  iteration_ = iteration;
  std::fill(op_counters_.begin(), op_counters_.end(), 0);
  // Disarm any corruption left over from an aborted attempt: the spec is
  // one-shot, so the recovery retry must run clean.
  for (PendingCorruption& p : pending_) p.armed = false;
  for (PendingComm& p : pending_comm_) p = PendingComm{};
}

void FaultInjector::on_op(int device, int op_id, const std::string& label,
                          const AbortToken* token) {
  const FaultSpec* hit = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (device >= static_cast<int>(op_counters_.size())) {
      op_counters_.resize(static_cast<std::size_t>(device) + 1, 0);
    }
    const int index = op_counters_[static_cast<std::size_t>(device)]++;
    for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
      const FaultSpec& spec = plan_.faults[i];
      if (fired_[i] || spec.iteration != iteration_ || spec.device != device ||
          spec.op_index != index) {
        continue;
      }
      fired_[i] = true;
      ++fired_count_;
      hit = &spec;
      break;
    }
  }
  if (hit == nullptr) return;

  std::ostringstream os;
  os << "injected " << hit->describe() << " in op '" << label << "' (id " << op_id
     << ") on device " << device;
  switch (hit->kind) {
    case FaultKind::ThrowInOp:
      throw InjectedFault(os.str());
    case FaultKind::KillThread:
      throw ThreadKilledFault(os.str());
    case FaultKind::DelayOp:
    case FaultKind::StallDevice:
      if (interruptible_sleep(hit->delay, token)) {
        token->throw_if_aborted(os.str());
      }
      return;
    case FaultKind::InjectNaN:
    case FaultKind::InjectInf:
    case FaultKind::BitFlip: {
      std::lock_guard lock(mutex_);
      if (device >= static_cast<int>(pending_.size())) {
        pending_.resize(static_cast<std::size_t>(device) + 1);
      }
      PendingCorruption& p = pending_[static_cast<std::size_t>(device)];
      p.armed = true;
      p.kind = hit->kind;
      p.element = hit->element;
      p.context = os.str();
      return;
    }
    case FaultKind::KillProcess:
      // Genuine peer death: no unwinding, no abort, no flushed buffers. Only
      // meaningful inside a worker process (under the threads transport this
      // takes the whole test process down — plans are responsible for scoping
      // the kind to multi-process runs).
      std::fflush(nullptr);
      ::raise(SIGKILL);
      return;
    case FaultKind::DropMessage:
    case FaultKind::DelayMessage: {
      std::lock_guard lock(mutex_);
      if (device >= static_cast<int>(pending_comm_.size())) {
        pending_comm_.resize(static_cast<std::size_t>(device) + 1);
      }
      PendingComm& p = pending_comm_[static_cast<std::size_t>(device)];
      if (hit->kind == FaultKind::DropMessage) {
        p.drop = true;
      } else {
        p.delay = hit->delay;
      }
      return;
    }
    case FaultKind::SuppressHeartbeat: {
      std::lock_guard lock(mutex_);
      if (device >= static_cast<int>(suppress_until_.size())) {
        suppress_until_.resize(static_cast<std::size_t>(device) + 1);
      }
      suppress_until_[static_cast<std::size_t>(device)] =
          std::chrono::steady_clock::now() + hit->delay;
      return;
    }
    case FaultKind::DropConnection:
    case FaultKind::PartitionPeer:
    case FaultKind::DuplicateFrame:
    case FaultKind::TruncateFrame:
    case FaultKind::StallSocket: {
      std::lock_guard lock(mutex_);
      if (device >= static_cast<int>(pending_net_.size())) {
        pending_net_.resize(static_cast<std::size_t>(device) + 1);
      }
      NetFault fault;
      fault.kind = hit->kind;
      // `element` addresses the peer; avoid self-targeting by skipping past
      // the arming device when the modulus lands on it (world size is not
      // known here, so the supervisor re-mods; self-hits it simply ignores).
      fault.peer = static_cast<int>(hit->element);
      fault.delay = hit->delay;
      fault.context = os.str();
      pending_net_[static_cast<std::size_t>(device)].push_back(std::move(fault));
      return;
    }
  }
}

bool FaultInjector::take_net_fault(int device, NetFault* out) {
  std::lock_guard lock(mutex_);
  if (device < 0 || device >= static_cast<int>(pending_net_.size())) return false;
  auto& queue = pending_net_[static_cast<std::size_t>(device)];
  if (queue.empty()) return false;
  *out = std::move(queue.front());
  queue.erase(queue.begin());
  return true;
}

bool FaultInjector::take_message_drop(int device) {
  std::lock_guard lock(mutex_);
  if (device < 0 || device >= static_cast<int>(pending_comm_.size())) return false;
  PendingComm& p = pending_comm_[static_cast<std::size_t>(device)];
  if (!p.drop) return false;
  p.drop = false;
  return true;
}

std::chrono::milliseconds FaultInjector::take_message_delay(int device) {
  std::lock_guard lock(mutex_);
  if (device < 0 || device >= static_cast<int>(pending_comm_.size())) {
    return std::chrono::milliseconds(0);
  }
  PendingComm& p = pending_comm_[static_cast<std::size_t>(device)];
  const auto delay = p.delay;
  p.delay = std::chrono::milliseconds(0);
  return delay;
}

bool FaultInjector::heartbeat_suppressed(int device) const {
  std::lock_guard lock(mutex_);
  if (device < 0 || device >= static_cast<int>(suppress_until_.size())) return false;
  return std::chrono::steady_clock::now() < suppress_until_[static_cast<std::size_t>(device)];
}

bool FaultInjector::corrupt_pending(int device, float* data, std::int64_t numel) {
  std::lock_guard lock(mutex_);
  if (device < 0 || device >= static_cast<int>(pending_.size())) return false;
  PendingCorruption& p = pending_[static_cast<std::size_t>(device)];
  if (!p.armed || numel <= 0 || data == nullptr) return false;
  const std::int64_t i =
      static_cast<std::int64_t>(p.element % static_cast<std::uint64_t>(numel));
  switch (p.kind) {
    case FaultKind::InjectNaN:
      data[i] = std::numeric_limits<float>::quiet_NaN();
      break;
    case FaultKind::InjectInf:
      data[i] = std::numeric_limits<float>::infinity();
      break;
    case FaultKind::BitFlip: {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &data[i], sizeof(bits));
      bits ^= std::uint32_t{1} << 30;  // top exponent bit: magnitude explosion
      std::memcpy(&data[i], &bits, sizeof(bits));
      break;
    }
    default:
      return false;
  }
  p.armed = false;
  ++corruptions_applied_;
  return true;
}

int FaultInjector::faults_fired() const {
  std::lock_guard lock(mutex_);
  return fired_count_;
}

int FaultInjector::corruptions_applied() const {
  std::lock_guard lock(mutex_);
  return corruptions_applied_;
}

}  // namespace vocab
