#pragma once

// Deterministic fault injection for the pipeline executor.
//
// A FaultPlan is a list of FaultSpecs addressed by (iteration, device,
// op_index) — "the k-th op device d dispatches in iteration i". The
// ScheduleExecutor calls FaultInjector::on_op before dispatching every op;
// when a spec matches, the injector acts out the failure mode:
//
//   ThrowInOp   — throw InjectedFault (a clean op-level exception): exercises
//                 the coordinated-abort path.
//   DelayOp     — sleep `delay` then continue (a slow link / straggler op):
//                 training must tolerate it and stay bit-identical.
//   StallDevice — sleep `delay` (chosen longer than the watchdog's stall
//                 deadline) so the watchdog, not the op, ends the run.
//   KillThread  — throw ThreadKilledFault, which the executor treats as the
//                 thread dying silently (no abort is raised): only the
//                 watchdog can notice the resulting stall.
//   InjectNaN / InjectInf / BitFlip — *data* faults: on_op arms a pending
//                 corruption for the device instead of throwing; the op
//                 runner applies it to the next tensor it hands to
//                 corrupt_pending() (element index chosen by the spec,
//                 modulo the tensor size). This models silent numeric
//                 corruption — bad kernels, flaky HBM — that only the
//                 guard subsystem (src/guard) can detect. A BitFlip flips
//                 the float's bit 30 (top exponent bit), which usually
//                 explodes the magnitude but need not produce NaN/Inf.
//
//   KillProcess / DropMessage / DelayMessage / SuppressHeartbeat — transport
//                 faults for the multi-process (shm) backend: KillProcess
//                 raises SIGKILL on the calling worker (genuine peer death,
//                 detectable only by heartbeat loss / waitpid); the message
//                 kinds arm a one-shot drop/delay that the trainer's next
//                 cross-device send consumes (take_message_drop/delay);
//                 SuppressHeartbeat mutes the worker's beacon for `delay`,
//                 making a live process indistinguishable from a dead one.
//
// Every mode is reproducible: FaultPlan::random derives specs from a seed via
// the library Rng, and fired specs are one-shot so a recovery retry of the
// same iteration does not re-fail.
//
// Iteration bookkeeping is driven by the training loop (begin_iteration),
// not by the trainer internals: a rebuilt trainer must not reset the clock.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "fault/abort_token.h"

namespace vocab {

enum class FaultKind {
  ThrowInOp,
  DelayOp,
  StallDevice,
  KillThread,
  InjectNaN,
  InjectInf,
  BitFlip,
  // Transport-level kinds (multi-process fault tolerance, PR 9):
  KillProcess,        ///< raise(SIGKILL) on the calling process — real peer death
  DropMessage,        ///< arm: the device's next cross-device send is discarded
  DelayMessage,       ///< arm: the device's next cross-device send sleeps `delay` first
  SuppressHeartbeat,  ///< mute the device's heartbeat beacon for `delay` (peer sees loss)
  // Network-chaos kinds (tcp backend, PR 10). on_op arms a one-shot event
  // that the tcp supervisor consumes via take_net_fault; `element` selects
  // the target peer rank (mod world) and `delay` parameterizes StallSocket:
  DropConnection,     ///< close the link to the peer once — transient drop, reconnects
  PartitionPeer,      ///< sticky blackhole to the peer — both directions, never heals
  DuplicateFrame,     ///< transmit the next data-bearing frame to the peer twice
  TruncateFrame,      ///< cut the next frame to the peer mid-header, then drop the link
  StallSocket,        ///< freeze all I/O with the peer for `delay` (half-open window)
};

/// True for the silent data-corruption kinds (armed by on_op, applied by
/// corrupt_pending) as opposed to the process-level kinds (acted out
/// directly inside on_op).
[[nodiscard]] bool is_data_fault(FaultKind kind);

/// True for the network-chaos kinds (armed by on_op, consumed by the tcp
/// supervisor via take_net_fault).
[[nodiscard]] bool is_net_fault(FaultKind kind);

[[nodiscard]] const char* to_string(FaultKind kind);

/// Thrown by a ThrowInOp spec: an op failed cleanly on its device thread.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// Thrown by a KillThread spec; the executor swallows it without aborting so
/// the thread simply disappears mid-schedule.
class ThreadKilledFault : public Error {
 public:
  explicit ThreadKilledFault(const std::string& what) : Error(what) {}
};

/// One planned failure.
struct FaultSpec {
  FaultKind kind = FaultKind::ThrowInOp;
  std::uint64_t iteration = 0;  ///< global training iteration to fire on
  int device = 0;               ///< device thread to hit
  int op_index = 0;             ///< k-th op that device dispatches that iteration
  std::chrono::milliseconds delay{0};  ///< DelayOp / StallDevice duration
  std::uint64_t element = 0;    ///< data faults: flat index (mod numel) to corrupt
  std::string note;             ///< free-form tag echoed into the error message

  [[nodiscard]] std::string describe() const;
};

/// A reproducible set of failures.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  static FaultPlan single(FaultSpec spec);

  /// Seed-driven plan: `count` specs of the given kinds, with iteration in
  /// [0, max_iteration), device in [0, num_devices) and op_index in
  /// [0, max_op_index). Identical for identical arguments on any platform.
  static FaultPlan random(std::uint64_t seed, int count, int num_devices,
                          std::uint64_t max_iteration, int max_op_index,
                          const std::vector<FaultKind>& kinds,
                          std::chrono::milliseconds delay = std::chrono::milliseconds(0));

  [[nodiscard]] std::string summary() const;
};

/// Thread-safe matcher + actor for one FaultPlan. Shared by the training
/// loop (begin_iteration) and the executor's device threads (on_op).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Announce the global iteration about to run and reset the per-device op
  /// counters. Call once per training-loop iteration *attempt*; a recovery
  /// retry of iteration i calls begin_iteration(i) again (one-shot firing
  /// keeps the retry clean).
  void begin_iteration(std::uint64_t iteration);

  /// Executor hook: called on the device thread before dispatching each op.
  /// May throw InjectedFault / ThreadKilledFault / AbortedError, or sleep.
  /// Data-fault specs arm a pending corruption instead of throwing.
  /// `token` (nullable) lets injected sleeps wake early on abort.
  void on_op(int device, int op_id, const std::string& label, const AbortToken* token);

  /// Trainer send hook: consume an armed DropMessage for `device`. Returns
  /// true when the caller should discard the payload instead of sending it —
  /// exercising the retry/timeout path on the receiving side.
  [[nodiscard]] bool take_message_drop(int device);

  /// Trainer send hook: consume an armed DelayMessage for `device`. Returns
  /// the delay to sleep before sending (zero when none is armed).
  [[nodiscard]] std::chrono::milliseconds take_message_delay(int device);

  /// Armed network-chaos event, consumed by the tcp supervisor's duty loop.
  struct NetFault {
    FaultKind kind = FaultKind::DropConnection;
    int peer = 0;                        ///< target peer rank
    std::chrono::milliseconds delay{0};  ///< StallSocket freeze duration
    std::string context;                 ///< for diagnostics / chaos logs
  };

  /// Supervisor hook: pop the oldest armed network fault for `device`
  /// (armed by a DropConnection/PartitionPeer/DuplicateFrame/TruncateFrame/
  /// StallSocket spec firing in on_op). Returns false when none is armed.
  [[nodiscard]] bool take_net_fault(int device, NetFault* out);

  /// Transport beacon hook: true while `device`'s heartbeat is suppressed
  /// (a SuppressHeartbeat spec fired less than its `delay` ago). A muted
  /// beacon looks exactly like a dead process to the peers' watchdogs.
  [[nodiscard]] bool heartbeat_suppressed(int device) const;

  /// Runner hook: apply device `device`'s armed corruption (if any) to the
  /// buffer `data[0..numel)` and disarm it. Returns true when the buffer was
  /// mutated. Buffers are corrupted *before* any guard check, so the fence
  /// sees the poisoned bytes at the op that produced them. An armed
  /// corruption stays pending across ops until a non-empty buffer passes a
  /// corruption point — a matched op with no tensor boundary corrupts the
  /// device's next output instead. (Raw pointer + count rather than Tensor
  /// keeps the fault library below the tensor layer.)
  bool corrupt_pending(int device, float* data, std::int64_t numel);

  [[nodiscard]] int faults_fired() const;
  /// Corruptions actually written into a tensor (<= data faults fired: an
  /// armed corruption on a device with no later tensor boundary that
  /// iteration never lands).
  [[nodiscard]] int corruptions_applied() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct PendingCorruption {
    bool armed = false;
    FaultKind kind = FaultKind::InjectNaN;
    std::uint64_t element = 0;
    std::string context;
  };

  struct PendingComm {
    bool drop = false;
    std::chrono::milliseconds delay{0};
  };

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<bool> fired_;
  std::vector<int> op_counters_;  // per device, within the current iteration
  std::vector<PendingCorruption> pending_;  // per device
  std::vector<PendingComm> pending_comm_;   // per device
  // Armed net-chaos events, per device, FIFO. Unlike pending_comm_ these
  // survive begin_iteration: a partition armed late in iteration i must
  // still strike when the supervisor next polls, even across the boundary.
  std::vector<std::vector<NetFault>> pending_net_;
  // Suppression windows outlive iterations on purpose: heartbeat loss must
  // span at least one timeout to be observable.
  std::vector<std::chrono::steady_clock::time_point> suppress_until_;
  std::uint64_t iteration_ = 0;
  int fired_count_ = 0;
  int corruptions_applied_ = 0;
};

}  // namespace vocab
