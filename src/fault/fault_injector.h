#pragma once

// Deterministic fault injection for the pipeline executor.
//
// A FaultPlan is a list of FaultSpecs addressed by (iteration, device,
// op_index) — "the k-th op device d dispatches in iteration i". The
// ScheduleExecutor calls FaultInjector::on_op before dispatching every op;
// when a spec matches, the injector acts out the failure mode:
//
//   ThrowInOp   — throw InjectedFault (a clean op-level exception): exercises
//                 the coordinated-abort path.
//   DelayOp     — sleep `delay` then continue (a slow link / straggler op):
//                 training must tolerate it and stay bit-identical.
//   StallDevice — sleep `delay` (chosen longer than the watchdog's stall
//                 deadline) so the watchdog, not the op, ends the run.
//   KillThread  — throw ThreadKilledFault, which the executor treats as the
//                 thread dying silently (no abort is raised): only the
//                 watchdog can notice the resulting stall.
//   InjectNaN / InjectInf / BitFlip — *data* faults: on_op arms a pending
//                 corruption for the device instead of throwing; the op
//                 runner applies it to the next tensor it hands to
//                 corrupt_pending() (element index chosen by the spec,
//                 modulo the tensor size). This models silent numeric
//                 corruption — bad kernels, flaky HBM — that only the
//                 guard subsystem (src/guard) can detect. A BitFlip flips
//                 the float's bit 30 (top exponent bit), which usually
//                 explodes the magnitude but need not produce NaN/Inf.
//
// Every mode is reproducible: FaultPlan::random derives specs from a seed via
// the library Rng, and fired specs are one-shot so a recovery retry of the
// same iteration does not re-fail.
//
// Iteration bookkeeping is driven by the training loop (begin_iteration),
// not by the trainer internals: a rebuilt trainer must not reset the clock.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "fault/abort_token.h"

namespace vocab {

enum class FaultKind {
  ThrowInOp,
  DelayOp,
  StallDevice,
  KillThread,
  InjectNaN,
  InjectInf,
  BitFlip,
};

/// True for the silent data-corruption kinds (armed by on_op, applied by
/// corrupt_pending) as opposed to the process-level kinds (acted out
/// directly inside on_op).
[[nodiscard]] bool is_data_fault(FaultKind kind);

[[nodiscard]] const char* to_string(FaultKind kind);

/// Thrown by a ThrowInOp spec: an op failed cleanly on its device thread.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// Thrown by a KillThread spec; the executor swallows it without aborting so
/// the thread simply disappears mid-schedule.
class ThreadKilledFault : public Error {
 public:
  explicit ThreadKilledFault(const std::string& what) : Error(what) {}
};

/// One planned failure.
struct FaultSpec {
  FaultKind kind = FaultKind::ThrowInOp;
  std::uint64_t iteration = 0;  ///< global training iteration to fire on
  int device = 0;               ///< device thread to hit
  int op_index = 0;             ///< k-th op that device dispatches that iteration
  std::chrono::milliseconds delay{0};  ///< DelayOp / StallDevice duration
  std::uint64_t element = 0;    ///< data faults: flat index (mod numel) to corrupt
  std::string note;             ///< free-form tag echoed into the error message

  [[nodiscard]] std::string describe() const;
};

/// A reproducible set of failures.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  static FaultPlan single(FaultSpec spec);

  /// Seed-driven plan: `count` specs of the given kinds, with iteration in
  /// [0, max_iteration), device in [0, num_devices) and op_index in
  /// [0, max_op_index). Identical for identical arguments on any platform.
  static FaultPlan random(std::uint64_t seed, int count, int num_devices,
                          std::uint64_t max_iteration, int max_op_index,
                          const std::vector<FaultKind>& kinds,
                          std::chrono::milliseconds delay = std::chrono::milliseconds(0));

  [[nodiscard]] std::string summary() const;
};

/// Thread-safe matcher + actor for one FaultPlan. Shared by the training
/// loop (begin_iteration) and the executor's device threads (on_op).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Announce the global iteration about to run and reset the per-device op
  /// counters. Call once per training-loop iteration *attempt*; a recovery
  /// retry of iteration i calls begin_iteration(i) again (one-shot firing
  /// keeps the retry clean).
  void begin_iteration(std::uint64_t iteration);

  /// Executor hook: called on the device thread before dispatching each op.
  /// May throw InjectedFault / ThreadKilledFault / AbortedError, or sleep.
  /// Data-fault specs arm a pending corruption instead of throwing.
  /// `token` (nullable) lets injected sleeps wake early on abort.
  void on_op(int device, int op_id, const std::string& label, const AbortToken* token);

  /// Runner hook: apply device `device`'s armed corruption (if any) to the
  /// buffer `data[0..numel)` and disarm it. Returns true when the buffer was
  /// mutated. Buffers are corrupted *before* any guard check, so the fence
  /// sees the poisoned bytes at the op that produced them. An armed
  /// corruption stays pending across ops until a non-empty buffer passes a
  /// corruption point — a matched op with no tensor boundary corrupts the
  /// device's next output instead. (Raw pointer + count rather than Tensor
  /// keeps the fault library below the tensor layer.)
  bool corrupt_pending(int device, float* data, std::int64_t numel);

  [[nodiscard]] int faults_fired() const;
  /// Corruptions actually written into a tensor (<= data faults fired: an
  /// armed corruption on a device with no later tensor boundary that
  /// iteration never lands).
  [[nodiscard]] int corruptions_applied() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct PendingCorruption {
    bool armed = false;
    FaultKind kind = FaultKind::InjectNaN;
    std::uint64_t element = 0;
    std::string context;
  };

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<bool> fired_;
  std::vector<int> op_counters_;  // per device, within the current iteration
  std::vector<PendingCorruption> pending_;  // per device
  std::uint64_t iteration_ = 0;
  int fired_count_ = 0;
  int corruptions_applied_ = 0;
};

}  // namespace vocab
