#include "fault/watchdog.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace vocab {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string WatchdogSnapshot::serialize() const {
  std::ostringstream os;
  os << "watchdog-snapshot v1\n";
  os << "deadline_ms " << stall_deadline_ms << "\n";
  for (const WatchdogDeviceBeat& b : devices) {
    os << "device " << b.device << " op " << b.op_id << " ops " << b.ops_started
       << " silent_ms " << b.silent_ms << " done " << (b.done ? 1 : 0) << "\n";
  }
  for (const WatchdogPeerLink& p : peers) {
    os << "peer " << p.rank << " state " << p.state << " reconnects " << p.reconnects
       << " hb_age_ms " << p.heartbeat_age_ms << "\n";
  }
  os << "comm\n" << comm;
  return os.str();
}

WatchdogSnapshot Watchdog::last_snapshot() const {
  std::lock_guard lock(mutex_);
  return fire_snapshot_;
}

WatchdogSnapshot WatchdogSnapshot::parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  VOCAB_CHECK(std::getline(is, line) && line == "watchdog-snapshot v1",
              "watchdog snapshot: bad header '" << line << "'");
  WatchdogSnapshot snap;
  VOCAB_CHECK(std::getline(is, line) && line.rfind("deadline_ms ", 0) == 0,
              "watchdog snapshot: missing deadline_ms line, got '" << line << "'");
  snap.stall_deadline_ms = std::stoll(line.substr(std::string("deadline_ms ").size()));
  while (std::getline(is, line)) {
    if (line == "comm") {
      std::ostringstream rest;
      rest << is.rdbuf();
      snap.comm = rest.str();
      return snap;
    }
    if (line.rfind("peer ", 0) == 0) {
      WatchdogPeerLink p;
      char state[32] = {0};
      long long hb_age = 0;
      const int got = std::sscanf(line.c_str(), "peer %d state %31s reconnects %d hb_age_ms %lld",
                                  &p.rank, state, &p.reconnects, &hb_age);
      VOCAB_CHECK(got == 4, "watchdog snapshot: malformed peer line '" << line << "'");
      p.state = state;
      p.heartbeat_age_ms = hb_age;
      snap.peers.push_back(std::move(p));
      continue;
    }
    WatchdogDeviceBeat b;
    long long ops = 0;
    long long silent = 0;
    int done = 0;
    const int got = std::sscanf(line.c_str(), "device %d op %d ops %lld silent_ms %lld done %d",
                                &b.device, &b.op_id, &ops, &silent, &done);
    VOCAB_CHECK(got == 5, "watchdog snapshot: malformed device line '" << line << "'");
    b.ops_started = ops;
    b.silent_ms = silent;
    b.done = done != 0;
    snap.devices.push_back(b);
  }
  VOCAB_FAIL("watchdog snapshot: missing comm section");
}

Watchdog::Watchdog(int num_devices, WatchdogConfig config, std::shared_ptr<AbortToken> token,
                   std::function<std::string(int, int)> describe_op,
                   std::function<std::string()> comm_snapshot)
    : config_(config), token_(std::move(token)), describe_op_(std::move(describe_op)),
      comm_snapshot_(std::move(comm_snapshot)),
      beats_(static_cast<std::size_t>(num_devices)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  const std::int64_t t0 = now_ns();
  // Arm every device from "now": a thread that dies (or deadlocks) before its
  // first op still trips the deadline.
  for (Beat& b : beats_) b.last_beat_ns.store(t0, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::heartbeat(int device, int op_id) {
  Beat& b = beats_[static_cast<std::size_t>(device)];
  b.op_id.store(op_id, std::memory_order_relaxed);
  b.ops_started.fetch_add(1, std::memory_order_relaxed);
  b.last_beat_ns.store(now_ns(), std::memory_order_release);
}

void Watchdog::mark_done(int device) {
  beats_[static_cast<std::size_t>(device)].done.store(true, std::memory_order_release);
}

void Watchdog::set_peer_probe(std::function<std::vector<WatchdogPeerLink>()> probe) {
  peer_probe_ = std::move(probe);
}

std::string Watchdog::last_report() const {
  std::lock_guard lock(mutex_);
  return report_;
}

std::string Watchdog::build_report(std::int64_t now) const {
  std::ostringstream os;
  os << "watchdog: stall deadline " << config_.stall_deadline.count() << " ms exceeded\n";
  for (std::size_t d = 0; d < beats_.size(); ++d) {
    const Beat& b = beats_[d];
    const double silent_ms =
        static_cast<double>(now - b.last_beat_ns.load(std::memory_order_acquire)) / 1e6;
    os << "  device " << d << ": ";
    if (b.done.load(std::memory_order_acquire)) {
      os << "done (" << b.ops_started.load(std::memory_order_relaxed) << " ops)";
    } else {
      const int op = b.op_id.load(std::memory_order_relaxed);
      os << (op < 0 ? std::string("no op dispatched yet")
                    : describe_op_ ? describe_op_(static_cast<int>(d), op)
                                   : "op " + std::to_string(op));
      os << ", silent " << static_cast<std::int64_t>(silent_ms) << " ms, "
         << b.ops_started.load(std::memory_order_relaxed) << " ops started";
    }
    os << "\n";
  }
  if (peer_probe_) {
    for (const WatchdogPeerLink& p : peer_probe_()) {
      os << "  peer " << p.rank << ": " << p.state << ", reconnects " << p.reconnects
         << ", hb age " << p.heartbeat_age_ms << " ms\n";
    }
  }
  if (comm_snapshot_) os << comm_snapshot_();
  return os.str();
}

WatchdogSnapshot Watchdog::build_snapshot(std::int64_t now) const {
  WatchdogSnapshot snap;
  snap.stall_deadline_ms = config_.stall_deadline.count();
  for (std::size_t d = 0; d < beats_.size(); ++d) {
    const Beat& b = beats_[d];
    WatchdogDeviceBeat beat;
    beat.device = static_cast<int>(d);
    beat.op_id = b.op_id.load(std::memory_order_relaxed);
    beat.ops_started = b.ops_started.load(std::memory_order_relaxed);
    beat.silent_ms = (now - b.last_beat_ns.load(std::memory_order_acquire)) / 1'000'000;
    beat.done = b.done.load(std::memory_order_acquire);
    snap.devices.push_back(beat);
  }
  if (peer_probe_) snap.peers = peer_probe_();
  if (comm_snapshot_) snap.comm = comm_snapshot_();
  return snap;
}

WatchdogSnapshot Watchdog::snapshot() const { return build_snapshot(now_ns()); }

void Watchdog::loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, config_.poll_interval, [&] { return stop_requested_; })) return;
    if (token_->aborted()) return;

    bool all_done = true;
    int stalled = -1;
    const std::int64_t now = now_ns();
    const std::int64_t deadline_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(config_.stall_deadline).count();
    for (std::size_t d = 0; d < beats_.size(); ++d) {
      const Beat& b = beats_[d];
      if (b.done.load(std::memory_order_acquire)) continue;
      all_done = false;
      if (now - b.last_beat_ns.load(std::memory_order_acquire) > deadline_ns) {
        stalled = static_cast<int>(d);
        break;
      }
    }
    if (all_done) return;
    if (stalled < 0) continue;

    report_ = build_report(now);
    fire_snapshot_ = build_snapshot(now);
    fired_.store(true, std::memory_order_release);
    AbortReason reason;
    reason.device = stalled;
    reason.op_id = beats_[static_cast<std::size_t>(stalled)].op_id.load(std::memory_order_relaxed);
    reason.what = report_;
    token_->abort(std::move(reason));
    return;
  }
}

}  // namespace vocab
