#include "fault/abort_token.h"

namespace vocab {

namespace {

std::string format_aborted(const AbortReason& reason, const std::string& context) {
  std::string msg = "aborted";
  if (!context.empty()) msg += " (" + context + ")";
  msg += ": ";
  if (reason.device >= 0) {
    msg += "origin device " + std::to_string(reason.device);
    if (reason.op_id >= 0) msg += " op " + std::to_string(reason.op_id);
    msg += ": ";
  }
  msg += reason.what.empty() ? std::string("no reason recorded") : reason.what;
  return msg;
}

}  // namespace

AbortedError::AbortedError(const AbortReason& reason, const std::string& context)
    : Error(format_aborted(reason, context)), device_(reason.device), op_id_(reason.op_id) {}

bool AbortToken::abort(AbortReason reason) {
  std::lock_guard lock(mutex_);
  if (aborted_.load(std::memory_order_relaxed)) return false;
  reason_ = std::move(reason);
  // Release: the reason_ write happens-before any acquire load that sees true.
  aborted_.store(true, std::memory_order_release);
  return true;
}

AbortReason AbortToken::reason() const {
  std::lock_guard lock(mutex_);
  return reason_;
}

void AbortToken::throw_if_aborted(const std::string& context) const {
  if (!aborted()) return;
  throw AbortedError(reason(), context);
}

void AbortToken::reset() {
  std::lock_guard lock(mutex_);
  reason_ = AbortReason{};
  aborted_.store(false, std::memory_order_release);
}

}  // namespace vocab
