#pragma once

// Cooperative abort protocol for the multithreaded pipeline runtime.
//
// The first device thread that fails publishes an AbortReason into a shared
// AbortToken; every blocking wait in the communication layer (Channel
// send/recv/recv_tag, DeviceGroup rendezvous) and every op-dispatch loop
// polls the token and throws AbortedError within one poll slice. This turns
// "one op failed, every peer serializes a 30 s DeadlockError" into "all p
// device threads unwind in milliseconds with the originating op attached".
//
// The token is deliberately sticky: once aborted, a trainer that shares it
// stays poisoned until the owner rebuilds the runtime (the recovery path in
// runtime/resilient_trainer reloads the last checkpoint and constructs a
// fresh trainer — and with it a fresh token). reset() exists for tests and
// for owners that can prove no thread is running.

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "common/error.h"

namespace vocab {

/// Who requested the abort and why. device/op_id are -1 when the origin is
/// not a scheduled op (e.g. the watchdog or an external cancel).
struct AbortReason {
  int device = -1;
  int op_id = -1;
  std::string what;
};

/// Thrown by a thread that observes an abort requested elsewhere. Carries the
/// originating device/op so peer stack traces name the real failure instead
/// of their own innocent wait.
class AbortedError : public Error {
 public:
  AbortedError(const AbortReason& reason, const std::string& context);

  [[nodiscard]] int origin_device() const { return device_; }
  [[nodiscard]] int origin_op_id() const { return op_id_; }

 private:
  int device_;
  int op_id_;
};

/// Process-wide (per trainer) abort flag + reason. Thread-safe; the first
/// abort() wins and later calls are ignored.
class AbortToken {
 public:
  /// Request an abort. Returns true if this call set the flag (first caller).
  bool abort(AbortReason reason);

  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Copy of the winning reason (empty AbortReason if not aborted).
  [[nodiscard]] AbortReason reason() const;

  /// Throws AbortedError carrying the reason if the token is aborted.
  void throw_if_aborted(const std::string& context) const;

  /// Re-arm the token. Only safe when no thread can be observing it (tests,
  /// or an owner that has joined every runtime thread).
  void reset();

 private:
  std::atomic<bool> aborted_{false};
  mutable std::mutex mutex_;
  AbortReason reason_;
};

/// Longest interval a blocking comm wait may sleep before re-checking its
/// AbortToken. Bounds abort latency even if a condition-variable notify is
/// lost; every wait in Channel / DeviceGroup slices its timeout by this.
inline constexpr std::chrono::milliseconds kAbortPollInterval{10};

}  // namespace vocab
