#pragma once

// Stall watchdog for the pipeline executor's device threads.
//
// Each device thread heartbeats before dispatching an op; a background
// watchdog thread polls the heartbeats and, when a not-yet-finished device
// has been silent past the stall deadline, assembles a diagnostic snapshot
// (per-device current op + time in op, plus an owner-provided description of
// channel occupancy and collective waiters) and aborts the shared token.
// This is the only mechanism that can end a run whose thread died without
// throwing (FaultKind::KillThread, or a real crash swallowed elsewhere):
// the peers are blocked in receives that will never complete, and the
// watchdog converts that silence into a coordinated AbortedError carrying
// the snapshot.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/abort_token.h"

namespace vocab {

struct WatchdogConfig {
  /// A device silent this long (while unfinished) is declared stalled.
  std::chrono::milliseconds stall_deadline{2000};
  /// Heartbeat poll cadence; also bounds detection latency past the deadline.
  std::chrono::milliseconds poll_interval{25};
};

/// One device's heartbeat state as captured in a WatchdogSnapshot.
struct WatchdogDeviceBeat {
  int device = 0;
  int op_id = -1;              ///< op the device last announced (-1: none yet)
  std::int64_t ops_started = 0;
  std::int64_t silent_ms = 0;  ///< time since the last heartbeat at capture
  bool done = false;
};

/// One transport peer link's connection state as captured in a snapshot —
/// populated via Watchdog::set_peer_probe by connection-supervising backends
/// (tcp); empty for threads/shm. Mirrors transport::PeerStatus.
struct WatchdogPeerLink {
  int rank = -1;
  std::string state;  ///< connecting | connected | reconnecting | dead | done
  int reconnects = 0;
  std::int64_t heartbeat_age_ms = -1;
};

/// Machine-readable form of a stall diagnostic: the per-device beats plus the
/// owner-provided comm state, with a line-oriented serialize/parse round-trip
/// so a coordinator process can persist a worker's report (or ship it across
/// a process boundary) and later re-ingest which op each lane was stuck on —
/// and, over a connection-supervising transport, which peer link was down.
struct WatchdogSnapshot {
  std::int64_t stall_deadline_ms = 0;
  std::vector<WatchdogDeviceBeat> devices;
  std::vector<WatchdogPeerLink> peers;  ///< per-peer link state (tcp); may be empty
  std::string comm;  ///< comm snapshot text, carried verbatim

  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws CheckError on a malformed snapshot.
  /// Accepts snapshots with or without peer lines (older captures).
  [[nodiscard]] static WatchdogSnapshot parse(const std::string& text);
};

class Watchdog {
 public:
  /// `describe_op(device, op_id)` renders a heartbeat for the report;
  /// `comm_snapshot()` (nullable) appends channel/collective state.
  Watchdog(int num_devices, WatchdogConfig config, std::shared_ptr<AbortToken> token,
           std::function<std::string(int, int)> describe_op,
           std::function<std::string()> comm_snapshot);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void start();
  void stop();

  /// Device `device` is about to dispatch op `op_id`. Lock-free.
  void heartbeat(int device, int op_id);

  /// Device `device` finished its sequence (or unwound with an exception that
  /// was reported); the watchdog stops monitoring it.
  void mark_done(int device);

  /// Provide per-peer connection state for snapshots/reports (tcp backend:
  /// transport->peer_status() adapted to WatchdogPeerLink). Call before
  /// start(); the probe runs on the watchdog thread and at snapshot().
  void set_peer_probe(std::function<std::vector<WatchdogPeerLink>()> probe);

  /// Non-empty once the watchdog has declared a stall.
  [[nodiscard]] std::string last_report() const;
  [[nodiscard]] bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Capture the current per-device heartbeat state (plus the comm snapshot)
  /// in machine-readable form. Callable any time, not just after a stall.
  [[nodiscard]] WatchdogSnapshot snapshot() const;
  /// The snapshot captured at the moment the stall fired (empty devices list
  /// if the watchdog never fired).
  [[nodiscard]] WatchdogSnapshot last_snapshot() const;

 private:
  struct Beat {
    std::atomic<std::int64_t> last_beat_ns{0};
    std::atomic<int> op_id{-1};
    std::atomic<std::int64_t> ops_started{0};
    std::atomic<bool> done{false};
  };

  void loop();
  [[nodiscard]] std::string build_report(std::int64_t now_ns) const;
  [[nodiscard]] WatchdogSnapshot build_snapshot(std::int64_t now_ns) const;

  const WatchdogConfig config_;
  std::shared_ptr<AbortToken> token_;
  std::function<std::string(int, int)> describe_op_;
  std::function<std::string()> comm_snapshot_;
  std::function<std::vector<WatchdogPeerLink>()> peer_probe_;
  std::vector<Beat> beats_;

  mutable std::mutex mutex_;  // guards stop_requested_ + report_ and the cv
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::string report_;
  WatchdogSnapshot fire_snapshot_;  // captured when the stall fired
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace vocab
