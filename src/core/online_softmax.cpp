#include "core/online_softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "tensor/simd.h"

namespace vocab {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
}

SoftmaxStats empty_stats() { return {kNegInf, 0.0f}; }

SoftmaxStats stats_of(const float* begin, const float* end) {
  SoftmaxStats s = empty_stats();
  if (begin == end) return s;
  const std::int64_t n = end - begin;
  const simd::Kernels& ks = simd::kernels();
  s.max = ks.reduce_max(begin, n);
  // A fully masked chunk (every logit -inf) is the merge identity; bailing
  // out here keeps exp away from the indeterminate -inf - -inf argument.
  if (s.max == kNegInf) return empty_stats();
  s.sum = static_cast<float>(ks.exp_sum(begin, n, s.max));
  return s;
}

SoftmaxStats merge(SoftmaxStats lhs, SoftmaxStats rhs) {
  if (lhs.sum == 0.0f && lhs.max == kNegInf) return rhs;
  if (rhs.sum == 0.0f && rhs.max == kNegInf) return lhs;
  SoftmaxStats out;
  out.max = std::max(lhs.max, rhs.max);
  out.sum = lhs.sum * std::exp(lhs.max - out.max) + rhs.sum * std::exp(rhs.max - out.max);
  return out;
}

float correction_factor(SoftmaxStats local, SoftmaxStats global) {
  if (local.sum == 0.0f) return 0.0f;  // empty chunk contributes nothing
  VOCAB_CHECK(global.sum > 0.0f, "global softmax sum must be positive");
  // eq. (5): sum'_i * e^{m'_i - m_i} / sum_i
  return local.sum * std::exp(local.max - global.max) / global.sum;
}

std::vector<SoftmaxStats> row_stats(const Tensor& x) {
  VOCAB_CHECK(x.rank() == 2, "row_stats expects a rank-2 tensor");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<SoftmaxStats> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = stats_of(x.data() + i * c, x.data() + (i + 1) * c);
  }
  return out;
}

Tensor streaming_softmax_rows(const Tensor& x, std::int64_t chunk_cols) {
  VOCAB_CHECK(x.rank() == 2, "streaming_softmax_rows expects a rank-2 tensor");
  VOCAB_CHECK(chunk_cols > 0, "chunk_cols must be positive");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  Tensor out({n, c});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = x.data() + i * c;
    // Pass 1: stream the chunks, merging statistics online.
    SoftmaxStats global = empty_stats();
    for (std::int64_t j0 = 0; j0 < c; j0 += chunk_cols) {
      const std::int64_t j1 = std::min(j0 + chunk_cols, c);
      global = merge(global, stats_of(row + j0, row + j1));
    }
    // Pass 2: emit normalized values.
    simd::kernels().exp_scale(row, out.data() + i * c, c, global.max,
                              1.0f / global.sum);
  }
  return out;
}

}  // namespace vocab
