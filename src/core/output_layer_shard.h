#pragma once

// Vocabulary-parallel output layer — the paper's central contribution.
//
// The embedding matrix W [V, h] is partitioned across the vocabulary
// dimension: device d holds W_d [V/p, h] (V padded to a multiple of 2p).
// Forward + backward of softmax cross-entropy is decomposed into *compute
// phases* separated by *communication barriers*:
//
//   Naive  (Fig. 4/6):  F1 |AR max| F2 |AR sum| B |Reduce gradX| T   — 3 barriers
//   Alg. 1 (2 barriers): S |----- C1 -----| T |----- C2 ------|     — 2 barriers
//   Alg. 2 (1 barrier):  S |----- C1 (incl. Reduce gradX) ----| T   — 1 barrier
//
// where S is the paper's forward pass (logits + *local* online softmax),
// T the delayed weight-gradient pass, C1 the lightweight [bs]-sized
// rescaling barrier of eq. (5) and — for Algorithm 2 — the gradX reduce of
// eq. (6) whose matmuls (softmax'(Y)·W and G·W) were pre-computed inside S.
//
// The class exposes the phases individually so pipeline runtimes can place
// the barriers on a communication stream and interleave transformer passes,
// exactly as the paper's scheduler does. A convenience run_all() drives a
// whole microbatch for kernel-level tests/benches.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/vocab_shard.h"
#include "tensor/bf16.h"
#include "tensor/tensor.h"

namespace vocab {

class DeviceGroup;

/// Which output-layer decomposition to run.
enum class OutputAlgo {
  Naive,  ///< safe softmax with global stats; 3 communication barriers
  Alg1,   ///< forward-phase optimization (eq. 5); 2 barriers
  Alg2,   ///< + backward-phase optimization (eq. 6); 1 barrier
};

[[nodiscard]] const char* to_string(OutputAlgo algo);

/// Number of communication barriers the algorithm requires (3 / 2 / 1).
[[nodiscard]] int num_barriers(OutputAlgo algo);

/// Number of compute phases interleaved with those barriers
/// (phases = barriers + 1; phase 0 is S, the last phase is T).
[[nodiscard]] int num_compute_phases(OutputAlgo algo);

/// Index of the barrier after which grad_x is available on every device
/// (Naive: 2, Alg1: 1, Alg2: 0).
[[nodiscard]] int grad_x_ready_barrier(OutputAlgo algo);

/// One device's shard of the output layer, usable for many concurrent
/// in-flight microbatches (keyed by microbatch id) as a pipeline requires.
class OutputLayerShard {
 public:
  /// `weight_shard` is W_d [shard.size, h]. Rows beyond shard.valid_size()
  /// are padding; their logits are masked to -inf and they receive no grads.
  OutputLayerShard(OutputAlgo algo, VocabShard shard, Tensor weight_shard);

  [[nodiscard]] OutputAlgo algo() const { return algo_; }
  [[nodiscard]] const VocabShard& shard() const { return shard_; }
  /// fp32-mode weight accessors; invalid once enable_bf16() ran.
  [[nodiscard]] const Tensor& weight() const;
  [[nodiscard]] Tensor& mutable_weight();

  /// Switch the shard to bf16 weight storage (mixed-precision mode): the
  /// fp32 weight is rounded into a Bf16Tensor and released, halving the
  /// shard's parameter bytes. Gradients stay fp32; the fp32 master copy
  /// lives with the optimizer (ParamOptimizer::step_master). Irreversible;
  /// call before any microbatch is in flight.
  void enable_bf16();
  [[nodiscard]] bool bf16_enabled() const { return bf16_; }
  /// bf16-mode weight accessors; invalid in fp32 mode.
  [[nodiscard]] const Bf16Tensor& weight_bf16() const;
  [[nodiscard]] Bf16Tensor& mutable_weight_bf16();
  /// The weight widened to fp32 (a copy in bf16 mode; exact, since every
  /// bf16 value is an fp32 value). For export / equivalence checks.
  [[nodiscard]] Tensor weight_fp32() const;
  /// Bytes of parameter storage (bf16 mode: half the fp32 figure).
  [[nodiscard]] std::size_t parameter_bytes() const;
  /// Accumulated weight gradient (summed over microbatches since last zero).
  [[nodiscard]] const Tensor& weight_grad() const { return weight_grad_; }
  /// Mutable access for the global grad-norm clip's in-place scaling.
  [[nodiscard]] Tensor& mutable_weight_grad() { return weight_grad_; }
  void zero_weight_grad();

  /// The masked logits of microbatch `mb` (valid between the S phase and the
  /// phase that frees them). Exposed so the executor's guard can fence /
  /// absmax-tap the one tensor most prone to overflow (paper eq. 5-6's
  /// rescaling exists precisely because of it), and so data-fault injection
  /// can corrupt it in place.
  [[nodiscard]] Tensor& mutable_logits(int mb) { return state(mb).logits; }

  /// Begin a microbatch: register inputs. `x` [n, h] is the (broadcast)
  /// output of the last transformer layer; `targets` are *global* vocab ids.
  void start_microbatch(int mb, Tensor x, std::vector<std::int64_t> targets,
                        float grad_scale);

  /// Run compute phase `phase` (0 = S, ..., last = T) for microbatch `mb`.
  void compute_phase(int mb, int phase);

  /// Run communication barrier `barrier` (0-based) for microbatch `mb`.
  /// Every rank of `group` must call with the same mb/barrier order.
  void comm_barrier(int mb, int barrier, DeviceGroup& group);

  /// Mean cross-entropy loss; identical on all ranks. Valid once the barrier
  /// that all-reduces the softmax statistics has run (barrier 1 for Naive,
  /// barrier 0 for Alg1/Alg2).
  [[nodiscard]] float loss(int mb) const;

  /// Gradient w.r.t. x [n, h]; valid after grad_x_ready_barrier(algo()).
  [[nodiscard]] const Tensor& grad_x(int mb) const;

  /// Drop all per-microbatch state (activation memory release).
  void finish_microbatch(int mb);

  /// Number of microbatches currently holding activation state.
  [[nodiscard]] std::size_t live_microbatches() const { return state_.size(); }

  /// Bytes of activation state currently held (for memory assertions).
  [[nodiscard]] std::size_t live_activation_bytes() const;

  /// Convenience: start + all phases/barriers in order for one microbatch.
  /// Leaves the state finished; returns loss and grad_x.
  std::pair<float, Tensor> run_all(int mb, DeviceGroup& group, Tensor x,
                                   std::vector<std::int64_t> targets, float grad_scale);

 private:
  struct MbState {
    Tensor x;                           // [n, h] saved input
    std::vector<std::int64_t> targets;  // global ids
    float grad_scale = 1.0f;
    int phases_done = 0;
    int barriers_done = 0;

    Tensor logits;        // [n, Vp] — freed when no longer needed
    Tensor local_max;     // [n]
    Tensor local_sum;     // [n]
    Tensor global_max;    // [n]
    Tensor global_sum;    // [n]
    Tensor rescale;       // [n] c_i = sum'_i e^{m'_i - m_i} / sum_i
    Tensor softmax_local; // [n, Vp] softmax'(Y)
    Tensor target_logit;  // [n] y_{i, g_i} (local contribution, then global)
    Tensor a;             // Alg2: softmax'(Y) W_d  [n, h]
    Tensor b;             // Alg2: G_d W_d          [n, h]
    Tensor grad_x;        // [n, h]
    float loss = 0.0f;
    bool loss_ready = false;
    bool grad_x_ready = false;
  };

  MbState& state(int mb);
  const MbState& state(int mb) const;

  // Per-algorithm phase bodies.
  void naive_compute(MbState& s, int phase);
  void naive_comm(MbState& s, int barrier, int mb, DeviceGroup& group);
  void alg1_compute(MbState& s, int phase);
  void alg1_comm(MbState& s, int barrier, int mb, DeviceGroup& group);
  void alg2_compute(MbState& s, int phase);
  void alg2_comm(MbState& s, int barrier, int mb, DeviceGroup& group);

  // Shared helpers.
  void compute_logits_masked(MbState& s);       // Y = X W_d^T with padding mask
  void compute_local_stats(MbState& s);         // m', sum', softmax', y_t'
  void finalize_loss(MbState& s);               // from global stats + target logit
  Tensor diff_matrix(const MbState& s) const;   // (softmax(Y) - G_d) * grad_scale

  OutputAlgo algo_;
  VocabShard shard_;
  Tensor weight_;        // [Vp/p, h]; empty in bf16 mode
  Bf16Tensor wbf16_;     // bf16 mode's working weight; empty in fp32 mode
  bool bf16_ = false;
  std::int64_t hidden_ = 0;
  Tensor weight_grad_;   // fp32 in both modes
  std::map<int, MbState> state_;
};

}  // namespace vocab
