#pragma once

// Online (streaming) softmax statistics — Milakov & Gimelshein 2018.
//
// The forward-phase optimization of the paper (eq. 5) is an instance of the
// online-softmax identity: a softmax normalizer computed over a partition of
// the domain can be corrected to the global normalizer with per-row scalars
// only. These primitives implement and expose that identity directly; the
// OutputLayerShard uses the same math inline, and property tests in
// tests/test_online_softmax.cpp verify the algebra on random partitions.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

/// Softmax statistics of (a chunk of) a row: running maximum and the sum of
/// exponentials relative to that maximum.
struct SoftmaxStats {
  float max;  ///< m = max over the chunk (-inf for an empty chunk)
  float sum;  ///< sum of e^{x - max} over the chunk (0 for an empty chunk)
};

/// Stats of an empty chunk (identity element of merge()).
SoftmaxStats empty_stats();

/// Stats of a contiguous span of logits.
SoftmaxStats stats_of(const float* begin, const float* end);

/// Merge two chunk statistics into the statistics of their union:
///   m = max(m1, m2),  sum = s1·e^{m1-m} + s2·e^{m2-m}.
/// Associative and commutative with empty_stats() as identity.
SoftmaxStats merge(SoftmaxStats lhs, SoftmaxStats rhs);

/// The per-row correction factor of eq. (5): given a chunk's local stats and
/// the global stats, softmax_global = softmax_local * correction.
float correction_factor(SoftmaxStats local, SoftmaxStats global);

/// Row-wise stats for a [n, c] tensor, one SoftmaxStats per row.
std::vector<SoftmaxStats> row_stats(const Tensor& x);

/// Full-row softmax computed by streaming over fixed-size column chunks and
/// merging stats — numerically equivalent to safe softmax. Exercises the
/// same code path a fused long-vocabulary kernel would take (paper §7).
Tensor streaming_softmax_rows(const Tensor& x, std::int64_t chunk_cols);

}  // namespace vocab
