#pragma once

// Unpartitioned input embedding layer — the Baseline's first-stage layer and
// the ground truth for InputLayerShard.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

/// Gather rows of `embedding` [V, h] for `tokens`: result [n, h].
Tensor reference_embedding_forward(const Tensor& embedding,
                                   const std::vector<std::int64_t>& tokens);

/// Scatter-add `grad_out` [n, h] into `embedding_grad` [V, h] at `tokens`.
void reference_embedding_backward(Tensor& embedding_grad,
                                  const std::vector<std::int64_t>& tokens,
                                  const Tensor& grad_out);

}  // namespace vocab
