#pragma once

// Fused streaming output layer — the paper's §7 future-work direction.
//
// The Alg2-style decomposition makes it possible to fuse the forward and
// backward of the output layer so the [n, V] softmax matrix is never
// written to main memory (the FlashAttention rationale): stream the
// vocabulary in column chunks, maintain online-softmax statistics on pass
// one, and recompute each chunk's logits on pass two to emit its gradient
// contributions. Peak transient memory drops from O(n·V) to O(n·chunk).
//
// This file implements that kernel for a single device (or one vocabulary
// shard — pass the shard's weight rows and pre-shifted targets) and exposes
// its transient-memory accounting so the saving is testable.

#include <cstdint>
#include <limits>
#include <vector>

#include "core/reference_output_layer.h"
#include "tensor/tensor.h"

namespace vocab {

/// Result plus the high-water mark of transient buffers (logits chunks,
/// softmax chunks) the computation allocated.
struct FusedOutputResult {
  OutputLayerResult result;
  std::size_t peak_transient_bytes = 0;
  /// Largest finite |logit| observed while streaming pass 1 — the numeric
  /// guard's absmax tap for the one tensor the fusion never materialises in
  /// full. NaN unless track_logits_absmax was set.
  float logits_absmax = std::numeric_limits<float>::quiet_NaN();
};

/// Forward + backward of the output layer streaming `chunk_cols` vocabulary
/// columns at a time. Numerically equivalent to reference_output_layer
/// (same safe-softmax statistics, assembled online per eq. 5's identity).
/// `x`: [n, h]; `w`: [V, h]; `targets` in [0, V); requires chunk_cols >= 1.
/// `track_logits_absmax` maintains FusedOutputResult::logits_absmax per
/// chunk (guard level 2 diagnostics); off by default to keep pass 1 lean.
FusedOutputResult fused_output_layer(const Tensor& x, const Tensor& w,
                                     const std::vector<std::int64_t>& targets,
                                     float grad_scale, std::int64_t chunk_cols,
                                     bool track_logits_absmax = false);

/// Transient bytes the *unfused* reference needs (logits + softmax, fp32),
/// for comparison in tests and benches.
std::size_t unfused_transient_bytes(std::int64_t n, std::int64_t v);

}  // namespace vocab
