#pragma once

// Unpartitioned output layer: the ground truth every partitioned algorithm
// is verified against, and the layer the Baseline pipeline keeps whole on
// its last device.
//
// Given the last transformer layer's output X [n, h], embedding weights
// W [V, h] and labels g, it computes (eqs. 1–4 of the paper):
//   Y = X W^T,  softmax over the vocabulary, mean cross-entropy loss,
//   grad_X = (softmax(Y) - G) W * grad_scale,
//   grad_W = (softmax(Y) - G)^T X * grad_scale.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

/// Result of a full forward+backward through the unpartitioned output layer.
struct OutputLayerResult {
  float loss = 0.0f;  ///< mean cross-entropy over the n tokens
  Tensor grad_x;      ///< [n, h]
  Tensor grad_w;      ///< [V, h]
};

/// Forward + backward of the unpartitioned output layer.
/// `x`: [n, h]; `w`: [V, h]; `targets`: n labels in [0, V).
/// `grad_scale` multiplies both gradients (1/n for a mean-reduced loss that
/// is also averaged upstream; callers pick their convention).
OutputLayerResult reference_output_layer(const Tensor& x, const Tensor& w,
                                         const std::vector<std::int64_t>& targets,
                                         float grad_scale);

/// Forward only: mean cross-entropy loss (used by inference-style checks).
float reference_output_loss(const Tensor& x, const Tensor& w,
                            const std::vector<std::int64_t>& targets);

}  // namespace vocab
