#pragma once

// Vocabulary-parallel input (token embedding) layer — paper Appendix C.
//
// The embedding table is partitioned across the vocabulary dimension like
// the output layer. Forward is an independent local gather (unowned tokens
// contribute zero rows) followed by one all-reduce; backward is a broadcast
// of the output gradient from the first pipeline stage followed by a local
// scatter-add into the owned rows. Both communications overlap with
// transformer compute in the schedules, so the layer exposes the local
// compute and the collectives as separate steps.

#include <cstdint>
#include <map>
#include <vector>

#include "core/vocab_shard.h"
#include "tensor/bf16.h"
#include "tensor/tensor.h"

namespace vocab {

class DeviceGroup;

/// One device's shard of the input embedding layer.
class InputLayerShard {
 public:
  /// `embedding_shard` is E_d [shard.size, h]; padding rows are zeroed.
  InputLayerShard(VocabShard shard, Tensor embedding_shard);

  [[nodiscard]] const VocabShard& shard() const { return shard_; }
  /// fp32-mode embedding accessors; invalid once enable_bf16() ran.
  [[nodiscard]] const Tensor& embedding() const;
  [[nodiscard]] Tensor& mutable_embedding();

  /// Switch the shard to bf16 embedding storage (see
  /// OutputLayerShard::enable_bf16). Gradients stay fp32.
  void enable_bf16();
  [[nodiscard]] bool bf16_enabled() const { return bf16_; }
  [[nodiscard]] const Bf16Tensor& embedding_bf16() const;
  [[nodiscard]] Bf16Tensor& mutable_embedding_bf16();
  /// The embedding widened to fp32 (exact copy in bf16 mode).
  [[nodiscard]] Tensor embedding_fp32() const;
  /// Bytes of parameter storage (bf16 mode: half the fp32 figure).
  [[nodiscard]] std::size_t parameter_bytes() const;
  [[nodiscard]] const Tensor& embedding_grad() const { return embedding_grad_; }
  /// Mutable access for the global grad-norm clip's in-place scaling.
  [[nodiscard]] Tensor& mutable_embedding_grad() { return embedding_grad_; }
  void zero_embedding_grad();

  /// Local forward gather for microbatch `mb`: returns the partial
  /// embeddings [n, h] with zero rows for tokens this shard does not own.
  /// Remembers the token ids for the backward pass.
  Tensor forward_local(int mb, std::vector<std::int64_t> tokens);

  /// All-reduce the partial embeddings: after this, `partial` holds the full
  /// embedding output on every rank (the first stage feeds it onward).
  void forward_allreduce(int mb, Tensor& partial, DeviceGroup& group);

  /// Convenience: forward_local + forward_allreduce.
  Tensor forward(int mb, std::vector<std::int64_t> tokens, DeviceGroup& group);

  /// Backward: broadcast `grad_out` [n, h] from `root` (the rank driving the
  /// first transformer layer) and scatter-add into this shard's rows.
  /// On non-root ranks `grad_out` may be empty; it is overwritten.
  void backward(int mb, Tensor& grad_out, int root, DeviceGroup& group);

  /// Local half of backward: scatter-add an already-delivered `grad_out`
  /// into the owned rows (the schedule executor runs the jBC broadcast as a
  /// separate collective op). Releases the microbatch's token ids.
  void backward_local(int mb, const Tensor& grad_out);

  /// Number of microbatches whose token ids are still held.
  [[nodiscard]] std::size_t live_microbatches() const { return tokens_.size(); }

 private:
  VocabShard shard_;
  Tensor embedding_;       // empty in bf16 mode
  Bf16Tensor ebf16_;       // empty in fp32 mode
  bool bf16_ = false;
  std::int64_t hidden_ = 0;
  Tensor embedding_grad_;  // fp32 in both modes
  std::map<int, std::vector<std::int64_t>> tokens_;
};

}  // namespace vocab
