#include "core/vocab_shard.h"

#include <algorithm>

#include "common/error.h"

namespace vocab {

std::int64_t VocabShard::valid_size() const {
  const std::int64_t end = std::min(offset + size, full_vocab);
  return std::max<std::int64_t>(0, end - offset);
}

bool VocabShard::owns(std::int64_t v) const {
  return v >= offset && v < offset + valid_size();
}

std::int64_t VocabShard::to_local(std::int64_t v) const {
  VOCAB_CHECK(owns(v), "vocab id " << v << " not owned by shard [" << offset << ", "
                                   << offset + size << ") of rank " << rank);
  return v - offset;
}

std::int64_t pad_vocab(std::int64_t full_vocab, int world) {
  VOCAB_CHECK(full_vocab > 0, "vocabulary size must be positive");
  VOCAB_CHECK(world >= 1, "world size must be >= 1");
  const std::int64_t align = 2 * static_cast<std::int64_t>(world);
  return (full_vocab + align - 1) / align * align;
}

VocabShard make_shard(std::int64_t full_vocab, int rank, int world) {
  VOCAB_CHECK(rank >= 0 && rank < world, "rank " << rank << " out of range");
  VocabShard s;
  s.rank = rank;
  s.world = world;
  s.full_vocab = full_vocab;
  s.padded_vocab = pad_vocab(full_vocab, world);
  s.size = s.padded_vocab / world;
  s.offset = s.size * rank;
  return s;
}

std::vector<VocabShard> make_all_shards(std::int64_t full_vocab, int world) {
  std::vector<VocabShard> shards;
  shards.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) shards.push_back(make_shard(full_vocab, r, world));
  return shards;
}

}  // namespace vocab
