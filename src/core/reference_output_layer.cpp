#include "core/reference_output_layer.h"

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace vocab {

OutputLayerResult reference_output_layer(const Tensor& x, const Tensor& w,
                                         const std::vector<std::int64_t>& targets,
                                         float grad_scale) {
  VOCAB_CHECK(x.rank() == 2 && w.rank() == 2, "reference_output_layer expects 2-D x and w");
  VOCAB_CHECK(x.dim(1) == w.dim(1),
              "hidden dim mismatch: x " << x.shape_str() << " vs w " << w.shape_str());
  const Tensor logits = matmul_nt(x, w);  // eq. (1): Y = X W^T
  OutputLayerResult out;
  out.loss = cross_entropy_mean(logits, targets);

  Tensor d = softmax_rows(logits);  // eq. (2)
  const Tensor g = one_hot(targets, w.dim(0));
  d = sub(d, g);
  scale_inplace(d, grad_scale);

  out.grad_x = matmul(d, w);     // eq. (3)
  out.grad_w = matmul_tn(d, x);  // eq. (4)
  return out;
}

float reference_output_loss(const Tensor& x, const Tensor& w,
                            const std::vector<std::int64_t>& targets) {
  return cross_entropy_mean(matmul_nt(x, w), targets);
}

}  // namespace vocab
