#include "core/input_layer_shard.h"

#include "comm/device_group.h"
#include "common/error.h"

namespace vocab {

namespace {
std::string tag(int mb, const char* what) {
  return "in:mb" + std::to_string(mb) + ":" + what;
}
}  // namespace

InputLayerShard::InputLayerShard(VocabShard shard, Tensor embedding_shard)
    : shard_(shard), embedding_(std::move(embedding_shard)) {
  VOCAB_CHECK(embedding_.rank() == 2 && embedding_.dim(0) == shard_.size,
              "embedding shard must be [" << shard_.size << ", h], got "
                                          << embedding_.shape_str());
  for (std::int64_t r = shard_.valid_size(); r < shard_.size; ++r) {
    for (std::int64_t c = 0; c < embedding_.dim(1); ++c) embedding_.at(r, c) = 0.0f;
  }
  hidden_ = embedding_.dim(1);
  embedding_grad_ = Tensor(embedding_.shape());
}

void InputLayerShard::zero_embedding_grad() { embedding_grad_.fill(0.0f); }

const Tensor& InputLayerShard::embedding() const {
  VOCAB_CHECK(!bf16_, "fp32 embedding accessor used on a bf16-mode shard");
  return embedding_;
}

Tensor& InputLayerShard::mutable_embedding() {
  VOCAB_CHECK(!bf16_, "fp32 embedding accessor used on a bf16-mode shard");
  return embedding_;
}

void InputLayerShard::enable_bf16() {
  VOCAB_CHECK(!bf16_, "bf16 mode already enabled");
  VOCAB_CHECK(tokens_.empty(), "cannot switch precision with microbatches in flight");
  ebf16_ = Bf16Tensor::from_tensor(embedding_);
  embedding_ = Tensor();
  bf16_ = true;
}

const Bf16Tensor& InputLayerShard::embedding_bf16() const {
  VOCAB_CHECK(bf16_, "bf16 embedding accessor used on an fp32-mode shard");
  return ebf16_;
}

Bf16Tensor& InputLayerShard::mutable_embedding_bf16() {
  VOCAB_CHECK(bf16_, "bf16 embedding accessor used on an fp32-mode shard");
  return ebf16_;
}

Tensor InputLayerShard::embedding_fp32() const {
  return bf16_ ? ebf16_.to_tensor() : embedding_;
}

std::size_t InputLayerShard::parameter_bytes() const {
  return bf16_ ? ebf16_.byte_size()
               : static_cast<std::size_t>(embedding_.numel()) * sizeof(float);
}

Tensor InputLayerShard::forward_local(int mb, std::vector<std::int64_t> tokens) {
  VOCAB_CHECK(!tokens_.contains(mb), "input microbatch " << mb << " already in flight");
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  const std::int64_t h = hidden_;
  Tensor out({n, h});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = tokens[static_cast<std::size_t>(i)];
    VOCAB_CHECK(t >= 0 && t < shard_.full_vocab, "token " << t << " outside vocabulary");
    if (!shard_.owns(t)) continue;
    const std::int64_t r = shard_.to_local(t);
    if (bf16_) {
      simd::kernels().bf16_to_fp32(ebf16_.data() + r * h, &out.at(i, 0), h);
    } else {
      for (std::int64_t c = 0; c < h; ++c) out.at(i, c) = embedding_.at(r, c);
    }
  }
  tokens_.emplace(mb, std::move(tokens));
  return out;
}

void InputLayerShard::forward_allreduce(int mb, Tensor& partial, DeviceGroup& group) {
  group.all_reduce(shard_.rank, partial, ReduceOp::Sum, tag(mb, "fwd"));
}

Tensor InputLayerShard::forward(int mb, std::vector<std::int64_t> tokens, DeviceGroup& group) {
  Tensor out = forward_local(mb, std::move(tokens));
  forward_allreduce(mb, out, group);
  return out;
}

void InputLayerShard::backward(int mb, Tensor& grad_out, int root, DeviceGroup& group) {
  VOCAB_CHECK(tokens_.contains(mb), "input microbatch " << mb << " not started");
  group.broadcast(shard_.rank, root, grad_out, tag(mb, "bwd"));
  backward_local(mb, grad_out);
}

void InputLayerShard::backward_local(int mb, const Tensor& grad_out) {
  const auto it = tokens_.find(mb);
  VOCAB_CHECK(it != tokens_.end(), "input microbatch " << mb << " not started");
  const auto& tokens = it->second;
  VOCAB_CHECK(grad_out.rank() == 2 &&
                  grad_out.dim(0) == static_cast<std::int64_t>(tokens.size()) &&
                  grad_out.dim(1) == hidden_,
              "grad_out shape mismatch: " << grad_out.shape_str());
  const std::int64_t h = hidden_;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::int64_t t = tokens[i];
    if (!shard_.owns(t)) continue;
    const std::int64_t r = shard_.to_local(t);
    for (std::int64_t c = 0; c < h; ++c) {
      embedding_grad_.at(r, c) += grad_out.at(static_cast<std::int64_t>(i), c);
    }
  }
  tokens_.erase(it);
}

}  // namespace vocab
