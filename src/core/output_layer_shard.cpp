#include "core/output_layer_shard.h"

#include <cmath>
#include <limits>

#include "comm/device_group.h"
#include "common/error.h"
#include "parallel/thread_pool.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace vocab {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Grain for intra-op row partitioning: a function of the row width only, so
// chunk boundaries (and results) never depend on the thread count.
std::int64_t stats_grain(std::int64_t row_width) {
  return std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(row_width, 1));
}

std::string tag(int mb, int barrier, const char* what) {
  return "out:mb" + std::to_string(mb) + ":b" + std::to_string(barrier) + ":" + what;
}

// Row-wise softmax' *= rescale over the valid columns (eq. 5 application).
void rescale_softmax_rows(Tensor& softmax_local, const Tensor& rescale, std::int64_t valid) {
  const std::int64_t n = softmax_local.dim(0), cols = softmax_local.dim(1);
  float* psm = softmax_local.data();
  const float* pr = rescale.data();
  parallel::parallel_for(0, n, stats_grain(valid), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float c = pr[i];
      for (std::int64_t j = 0; j < valid; ++j) psm[i * cols + j] *= c;
    }
  });
}
}  // namespace

const char* to_string(OutputAlgo algo) {
  switch (algo) {
    case OutputAlgo::Naive: return "naive";
    case OutputAlgo::Alg1: return "vocab-1";
    case OutputAlgo::Alg2: return "vocab-2";
  }
  return "?";
}

int num_barriers(OutputAlgo algo) {
  switch (algo) {
    case OutputAlgo::Naive: return 3;
    case OutputAlgo::Alg1: return 2;
    case OutputAlgo::Alg2: return 1;
  }
  return 0;
}

int num_compute_phases(OutputAlgo algo) { return num_barriers(algo) + 1; }

int grad_x_ready_barrier(OutputAlgo algo) {
  switch (algo) {
    case OutputAlgo::Naive: return 2;
    case OutputAlgo::Alg1: return 1;
    case OutputAlgo::Alg2: return 0;
  }
  return 0;
}

OutputLayerShard::OutputLayerShard(OutputAlgo algo, VocabShard shard, Tensor weight_shard)
    : algo_(algo), shard_(shard), weight_(std::move(weight_shard)) {
  VOCAB_CHECK(weight_.rank() == 2 && weight_.dim(0) == shard_.size,
              "weight shard must be [" << shard_.size << ", h], got " << weight_.shape_str());
  // Padding rows must be exactly zero so they contribute nothing to any
  // matmul (their logits are additionally excluded from softmax statistics).
  for (std::int64_t r = shard_.valid_size(); r < shard_.size; ++r) {
    for (std::int64_t c = 0; c < weight_.dim(1); ++c) weight_.at(r, c) = 0.0f;
  }
  hidden_ = weight_.dim(1);
  weight_grad_ = Tensor(weight_.shape());
}

void OutputLayerShard::zero_weight_grad() { weight_grad_.fill(0.0f); }

const Tensor& OutputLayerShard::weight() const {
  VOCAB_CHECK(!bf16_, "fp32 weight accessor used on a bf16-mode shard");
  return weight_;
}

Tensor& OutputLayerShard::mutable_weight() {
  VOCAB_CHECK(!bf16_, "fp32 weight accessor used on a bf16-mode shard");
  return weight_;
}

void OutputLayerShard::enable_bf16() {
  VOCAB_CHECK(!bf16_, "bf16 mode already enabled");
  VOCAB_CHECK(state_.empty(), "cannot switch precision with microbatches in flight");
  wbf16_ = Bf16Tensor::from_tensor(weight_);
  weight_ = Tensor();
  bf16_ = true;
}

const Bf16Tensor& OutputLayerShard::weight_bf16() const {
  VOCAB_CHECK(bf16_, "bf16 weight accessor used on an fp32-mode shard");
  return wbf16_;
}

Bf16Tensor& OutputLayerShard::mutable_weight_bf16() {
  VOCAB_CHECK(bf16_, "bf16 weight accessor used on an fp32-mode shard");
  return wbf16_;
}

Tensor OutputLayerShard::weight_fp32() const {
  return bf16_ ? wbf16_.to_tensor() : weight_;
}

std::size_t OutputLayerShard::parameter_bytes() const {
  return bf16_ ? wbf16_.byte_size()
               : static_cast<std::size_t>(weight_.numel()) * sizeof(float);
}

void OutputLayerShard::start_microbatch(int mb, Tensor x, std::vector<std::int64_t> targets,
                                        float grad_scale) {
  VOCAB_CHECK(!state_.contains(mb), "microbatch " << mb << " already in flight");
  VOCAB_CHECK(x.rank() == 2 && x.dim(1) == hidden_,
              "x must be [n, " << hidden_ << "], got " << x.shape_str());
  VOCAB_CHECK(static_cast<std::int64_t>(targets.size()) == x.dim(0),
              "target count must equal token count");
  for (const auto t : targets) {
    VOCAB_CHECK(t >= 0 && t < shard_.full_vocab, "target " << t << " outside vocabulary");
  }
  MbState s;
  s.x = std::move(x);
  s.targets = std::move(targets);
  s.grad_scale = grad_scale;
  state_.emplace(mb, std::move(s));
}

OutputLayerShard::MbState& OutputLayerShard::state(int mb) {
  const auto it = state_.find(mb);
  VOCAB_CHECK(it != state_.end(), "microbatch " << mb << " not started");
  return it->second;
}

const OutputLayerShard::MbState& OutputLayerShard::state(int mb) const {
  const auto it = state_.find(mb);
  VOCAB_CHECK(it != state_.end(), "microbatch " << mb << " not started");
  return it->second;
}

void OutputLayerShard::compute_phase(int mb, int phase) {
  MbState& s = state(mb);
  VOCAB_CHECK(phase == s.phases_done, "compute phase " << phase << " out of order (expected "
                                                       << s.phases_done << ")");
  VOCAB_CHECK(phase == 0 || s.barriers_done >= phase,
              "compute phase " << phase << " requires barrier " << phase - 1 << " first");
  switch (algo_) {
    case OutputAlgo::Naive: naive_compute(s, phase); break;
    case OutputAlgo::Alg1: alg1_compute(s, phase); break;
    case OutputAlgo::Alg2: alg2_compute(s, phase); break;
  }
  ++s.phases_done;
}

void OutputLayerShard::comm_barrier(int mb, int barrier, DeviceGroup& group) {
  MbState& s = state(mb);
  VOCAB_CHECK(barrier == s.barriers_done, "barrier " << barrier << " out of order");
  VOCAB_CHECK(s.phases_done >= barrier + 1,
              "barrier " << barrier << " requires compute phase " << barrier << " first");
  switch (algo_) {
    case OutputAlgo::Naive: naive_comm(s, barrier, mb, group); break;
    case OutputAlgo::Alg1: alg1_comm(s, barrier, mb, group); break;
    case OutputAlgo::Alg2: alg2_comm(s, barrier, mb, group); break;
  }
  ++s.barriers_done;
}

// ---- shared helpers --------------------------------------------------------

void OutputLayerShard::compute_logits_masked(MbState& s) {
  // eq. (1): Y = X W_d^T; bf16 mode streams half the weight bytes.
  s.logits = bf16_ ? matmul_nt_bf16(s.x, wbf16_) : matmul_nt(s.x, weight_);
  // Extract this shard's contribution to the per-token target logit while the
  // logits are live; unowned targets contribute zero and are summed in later.
  const std::int64_t n = s.logits.dim(0);
  s.target_logit = Tensor({n});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = s.targets[static_cast<std::size_t>(i)];
    if (shard_.owns(t)) s.target_logit.at(i) = s.logits.at(i, shard_.to_local(t));
  }
}

void OutputLayerShard::compute_local_stats(MbState& s) {
  // Local (per-shard) online-softmax statistics over *valid* columns only —
  // padding columns are excluded exactly as Megatron masks padded logits.
  const std::int64_t n = s.logits.dim(0);
  const std::int64_t cols = s.logits.dim(1);
  const std::int64_t valid = shard_.valid_size();
  s.local_max = Tensor({n}, kNegInf);
  s.local_sum = Tensor({n});
  s.softmax_local = Tensor({n, cols});
  const float* py = s.logits.data();
  float* psm = s.softmax_local.data();
  float* pmax = s.local_max.data();
  float* psum = s.local_sum.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, n, stats_grain(valid), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* row = py + i * cols;
      const float m = ks.reduce_max(row, valid);
      const double sum = ks.exp_sum(row, valid, m);
      pmax[i] = m;
      psum[i] = static_cast<float>(sum);
      const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0f;
      ks.exp_scale(row, psm + i * cols, valid, m, inv);
      // columns [valid, cols) stay zero
    }
  });
}

void OutputLayerShard::finalize_loss(MbState& s) {
  // loss_i = log(sum_i) + m_i - y_{i, g_i}, averaged over tokens (identical
  // on every rank since all inputs are globally reduced).
  const std::int64_t n = s.global_max.dim(0);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += std::log(static_cast<double>(s.global_sum.at(i))) + s.global_max.at(i) -
           s.target_logit.at(i);
  }
  s.loss = static_cast<float>(acc / static_cast<double>(n));
  s.loss_ready = true;
}

Tensor OutputLayerShard::diff_matrix(const MbState& s) const {
  // D = (softmax(Y) - G_d) * grad_scale, where s.softmax_local already holds
  // the *global* softmax restricted to this shard's columns.
  Tensor d = s.softmax_local;
  const std::int64_t n = d.dim(0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = s.targets[static_cast<std::size_t>(i)];
    if (shard_.owns(t)) d.at(i, shard_.to_local(t)) -= 1.0f;
  }
  scale_inplace(d, s.grad_scale);
  return d;
}

// ---- naive: 3 barriers ------------------------------------------------------

void OutputLayerShard::naive_compute(MbState& s, int phase) {
  const std::int64_t valid = shard_.valid_size();
  switch (phase) {
    case 0: {  // F1: logits + local max
      compute_logits_masked(s);
      const std::int64_t n = s.logits.dim(0), cols = s.logits.dim(1);
      s.local_max = Tensor({n}, kNegInf);
      const float* py = s.logits.data();
      float* pmax = s.local_max.data();
      const simd::Kernels& ks = simd::kernels();
      parallel::parallel_for(0, n, stats_grain(valid), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          pmax[i] = ks.reduce_max(py + i * cols, valid);
        }
      });
      s.global_max = s.local_max;  // reduced in place by barrier 0
      break;
    }
    case 1: {  // F2: exponentials with the *global* max + local sum
      const std::int64_t n = s.logits.dim(0), cols = s.logits.dim(1);
      s.softmax_local = Tensor({n, cols});  // holds exp(Y - m) until barrier 1
      s.local_sum = Tensor({n});
      const float* py = s.logits.data();
      const float* pgm = s.global_max.data();
      float* psm = s.softmax_local.data();
      float* psum = s.local_sum.data();
      const simd::Kernels& ks = simd::kernels();
      parallel::parallel_for(0, n, stats_grain(valid), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          // Emit exp(Y - m) into the softmax buffer, then sum those floats in
          // double — the same value sequence the fused scalar loop produced.
          ks.exp_scale(py + i * cols, psm + i * cols, valid, pgm[i], 1.0f);
          psum[i] = static_cast<float>(ks.reduce_sum(psm + i * cols, valid));
        }
      });
      s.global_sum = s.local_sum;  // reduced in place by barrier 1
      s.logits = Tensor();         // logits no longer needed
      break;
    }
    case 2: {  // B: softmax, then grad_x partial product
      const std::int64_t n = s.softmax_local.dim(0);
      const std::int64_t cols = s.softmax_local.dim(1);
      const float* pgs = s.global_sum.data();
      float* psm = s.softmax_local.data();
      parallel::parallel_for(0, n, stats_grain(valid), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float inv = 1.0f / pgs[i];
          for (std::int64_t j = 0; j < valid; ++j) psm[i * cols + j] *= inv;
        }
      });
      const Tensor d = diff_matrix(s);
      // eq. (3) partial: reduced by barrier 2
      s.grad_x = bf16_ ? matmul_bf16(d, wbf16_) : matmul(d, weight_);
      break;
    }
    case 3: {  // T: weight gradient, arbitrarily delayable
      const Tensor d = diff_matrix(s);
      add_inplace(weight_grad_, matmul_tn(d, s.x));  // eq. (4)
      break;
    }
    default: VOCAB_FAIL("naive has 4 compute phases, got " << phase);
  }
}

void OutputLayerShard::naive_comm(MbState& s, int barrier, int mb, DeviceGroup& group) {
  switch (barrier) {
    case 0:
      group.all_reduce(shard_.rank, s.global_max, ReduceOp::Max, tag(mb, 0, "max"));
      break;
    case 1:
      group.all_reduce(shard_.rank, s.global_sum, ReduceOp::Sum, tag(mb, 1, "sum"));
      group.all_reduce(shard_.rank, s.target_logit, ReduceOp::Sum, tag(mb, 1, "ytgt"));
      finalize_loss(s);
      break;
    case 2:
      group.all_reduce(shard_.rank, s.grad_x, ReduceOp::Sum, tag(mb, 2, "gradx"));
      s.grad_x_ready = true;
      break;
    default: VOCAB_FAIL("naive has 3 barriers, got " << barrier);
  }
}

// ---- Algorithm 1: 2 barriers -------------------------------------------------

void OutputLayerShard::alg1_compute(MbState& s, int phase) {
  switch (phase) {
    case 0: {  // S: logits + local online-softmax statistics
      compute_logits_masked(s);
      compute_local_stats(s);
      s.logits = Tensor();  // freed: softmax' + stats suffice from here on
      break;
    }
    case 1: {  // T: rescale softmax to global (eq. 5), both gradient matmuls
      rescale_softmax_rows(s.softmax_local, s.rescale, shard_.valid_size());
      const Tensor d = diff_matrix(s);
      // partial; reduced in C2
      s.grad_x = bf16_ ? matmul_bf16(d, wbf16_) : matmul(d, weight_);
      add_inplace(weight_grad_, matmul_tn(d, s.x));   // eq. (4)
      s.softmax_local = Tensor();
      s.x = Tensor();
      break;
    }
    case 2:
      break;  // trailing phase is empty: grad_x lands in barrier C2
    default: VOCAB_FAIL("alg1 has 3 compute phases, got " << phase);
  }
}

void OutputLayerShard::alg1_comm(MbState& s, int barrier, int mb, DeviceGroup& group) {
  switch (barrier) {
    case 0: {  // C1: lightweight [bs]-sized statistics exchange (eq. 5)
      s.global_max = s.local_max;
      group.all_reduce(shard_.rank, s.global_max, ReduceOp::Max, tag(mb, 0, "max"));
      const std::int64_t n = s.local_sum.dim(0);
      Tensor scaled_sum({n});
      for (std::int64_t i = 0; i < n; ++i) {
        scaled_sum.at(i) = s.local_sum.at(i) *
                           std::exp(s.local_max.at(i) - s.global_max.at(i));
      }
      s.global_sum = scaled_sum;
      group.all_reduce(shard_.rank, s.global_sum, ReduceOp::Sum, tag(mb, 0, "sum"));
      s.rescale = Tensor({n});
      for (std::int64_t i = 0; i < n; ++i) s.rescale.at(i) = scaled_sum.at(i) / s.global_sum.at(i);
      group.all_reduce(shard_.rank, s.target_logit, ReduceOp::Sum, tag(mb, 0, "ytgt"));
      finalize_loss(s);
      break;
    }
    case 1:  // C2: reduce the input gradient (NCCL AllReduce in the paper)
      group.all_reduce(shard_.rank, s.grad_x, ReduceOp::Sum, tag(mb, 1, "gradx"));
      s.grad_x_ready = true;
      break;
    default: VOCAB_FAIL("alg1 has 2 barriers, got " << barrier);
  }
}

// ---- Algorithm 2: 1 barrier --------------------------------------------------

void OutputLayerShard::alg2_compute(MbState& s, int phase) {
  switch (phase) {
    case 0: {  // S: logits, local stats, and *both* pre-barrier matmuls (eq. 6)
      compute_logits_masked(s);
      compute_local_stats(s);
      s.logits = Tensor();
      // softmax'(Y) W_d
      s.a = bf16_ ? matmul_bf16(s.softmax_local, wbf16_) : matmul(s.softmax_local, weight_);
      // B = G_d W_d is a row gather: row i is W_d[g_i] when this shard owns
      // the label, zero otherwise. bf16 rows widen exactly on load.
      const std::int64_t n = s.x.dim(0), h = hidden_;
      s.b = Tensor({n, h});
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t t = s.targets[static_cast<std::size_t>(i)];
        if (!shard_.owns(t)) continue;
        const std::int64_t r = shard_.to_local(t);
        if (bf16_) {
          simd::kernels().bf16_to_fp32(wbf16_.data() + r * h, &s.b.at(i, 0), h);
        } else {
          for (std::int64_t c = 0; c < h; ++c) s.b.at(i, c) = weight_.at(r, c);
        }
      }
      break;
    }
    case 1: {  // T: global softmax + weight gradient (arbitrarily delayed)
      rescale_softmax_rows(s.softmax_local, s.rescale, shard_.valid_size());
      const Tensor d = diff_matrix(s);
      add_inplace(weight_grad_, matmul_tn(d, s.x));  // eq. (4)
      s.softmax_local = Tensor();
      s.x = Tensor();
      break;
    }
    default: VOCAB_FAIL("alg2 has 2 compute phases, got " << phase);
  }
}

void OutputLayerShard::alg2_comm(MbState& s, int barrier, int mb, DeviceGroup& group) {
  VOCAB_CHECK(barrier == 0, "alg2 has a single barrier");
  // C1: statistics exchange as in Alg. 1 ...
  s.global_max = s.local_max;
  group.all_reduce(shard_.rank, s.global_max, ReduceOp::Max, tag(mb, 0, "max"));
  const std::int64_t n = s.local_sum.dim(0);
  Tensor scaled_sum({n});
  for (std::int64_t i = 0; i < n; ++i) {
    scaled_sum.at(i) = s.local_sum.at(i) * std::exp(s.local_max.at(i) - s.global_max.at(i));
  }
  s.global_sum = scaled_sum;
  group.all_reduce(shard_.rank, s.global_sum, ReduceOp::Sum, tag(mb, 0, "sum"));
  s.rescale = Tensor({n});
  for (std::int64_t i = 0; i < n; ++i) s.rescale.at(i) = scaled_sum.at(i) / s.global_sum.at(i);
  group.all_reduce(shard_.rank, s.target_logit, ReduceOp::Sum, tag(mb, 0, "ytgt"));
  finalize_loss(s);
  // ... plus eq. (6): grad_X = Reduce(A * c - B), only lightweight work here
  // since both matmuls were pre-computed in S.
  const std::int64_t h = s.a.dim(1);
  s.grad_x = Tensor({n, h});
  const float* pr = s.rescale.data();
  const float* pa = s.a.data();
  const float* pb = s.b.data();
  float* pgx = s.grad_x.data();
  const float gscale = s.grad_scale;
  parallel::parallel_for(0, n, stats_grain(h), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float c = pr[i];
      for (std::int64_t col = 0; col < h; ++col) {
        pgx[i * h + col] = (pa[i * h + col] * c - pb[i * h + col]) * gscale;
      }
    }
  });
  group.all_reduce(shard_.rank, s.grad_x, ReduceOp::Sum, tag(mb, 0, "gradx"));
  s.grad_x_ready = true;
  s.a = Tensor();
  s.b = Tensor();
}

// ---- results / lifecycle -----------------------------------------------------

float OutputLayerShard::loss(int mb) const {
  const MbState& s = state(mb);
  VOCAB_CHECK(s.loss_ready, "loss for microbatch " << mb << " not yet reduced");
  return s.loss;
}

const Tensor& OutputLayerShard::grad_x(int mb) const {
  const MbState& s = state(mb);
  VOCAB_CHECK(s.grad_x_ready, "grad_x for microbatch " << mb << " not yet reduced");
  return s.grad_x;
}

void OutputLayerShard::finish_microbatch(int mb) {
  const MbState& s = state(mb);
  VOCAB_CHECK(s.phases_done == num_compute_phases(algo_) &&
                  s.barriers_done == num_barriers(algo_),
              "finishing microbatch " << mb << " before all phases ran");
  state_.erase(mb);
}

std::size_t OutputLayerShard::live_activation_bytes() const {
  std::size_t bytes = 0;
  auto count = [&bytes](const Tensor& t) { bytes += static_cast<std::size_t>(t.numel()) * sizeof(float); };
  for (const auto& [mb, s] : state_) {
    count(s.x);
    count(s.logits);
    count(s.local_max);
    count(s.local_sum);
    count(s.global_max);
    count(s.global_sum);
    count(s.rescale);
    count(s.softmax_local);
    count(s.target_logit);
    count(s.a);
    count(s.b);
    count(s.grad_x);
  }
  return bytes;
}

std::pair<float, Tensor> OutputLayerShard::run_all(int mb, DeviceGroup& group, Tensor x,
                                                   std::vector<std::int64_t> targets,
                                                   float grad_scale) {
  start_microbatch(mb, std::move(x), std::move(targets), grad_scale);
  const int phases = num_compute_phases(algo_);
  const int barriers = num_barriers(algo_);
  for (int i = 0; i < phases; ++i) {
    compute_phase(mb, i);
    if (i < barriers) comm_barrier(mb, i, group);
  }
  const float l = loss(mb);
  Tensor gx = grad_x(mb);
  finish_microbatch(mb);
  return {l, std::move(gx)};
}

}  // namespace vocab
