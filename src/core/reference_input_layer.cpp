#include "core/reference_input_layer.h"

#include "common/error.h"

namespace vocab {

Tensor reference_embedding_forward(const Tensor& embedding,
                                   const std::vector<std::int64_t>& tokens) {
  VOCAB_CHECK(embedding.rank() == 2, "embedding must be [V, h]");
  const std::int64_t v = embedding.dim(0), h = embedding.dim(1);
  const std::int64_t n = static_cast<std::int64_t>(tokens.size());
  Tensor out({n, h});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = tokens[static_cast<std::size_t>(i)];
    VOCAB_CHECK(t >= 0 && t < v, "token " << t << " outside vocabulary of size " << v);
    for (std::int64_t c = 0; c < h; ++c) out.at(i, c) = embedding.at(t, c);
  }
  return out;
}

void reference_embedding_backward(Tensor& embedding_grad,
                                  const std::vector<std::int64_t>& tokens,
                                  const Tensor& grad_out) {
  VOCAB_CHECK(embedding_grad.rank() == 2 && grad_out.rank() == 2 &&
                  grad_out.dim(1) == embedding_grad.dim(1) &&
                  grad_out.dim(0) == static_cast<std::int64_t>(tokens.size()),
              "embedding backward shape mismatch");
  const std::int64_t v = embedding_grad.dim(0), h = embedding_grad.dim(1);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::int64_t t = tokens[i];
    VOCAB_CHECK(t >= 0 && t < v, "token " << t << " outside vocabulary of size " << v);
    for (std::int64_t c = 0; c < h; ++c) {
      embedding_grad.at(t, c) += grad_out.at(static_cast<std::int64_t>(i), c);
    }
  }
}

}  // namespace vocab
