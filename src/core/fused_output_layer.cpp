#include "core/fused_output_layer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/online_softmax.h"
#include "guard/tensor_stats.h"
#include "parallel/thread_pool.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"

namespace vocab {

FusedOutputResult fused_output_layer(const Tensor& x, const Tensor& w,
                                     const std::vector<std::int64_t>& targets,
                                     float grad_scale, std::int64_t chunk_cols,
                                     bool track_logits_absmax) {
  VOCAB_CHECK(x.rank() == 2 && w.rank() == 2 && x.dim(1) == w.dim(1),
              "fused_output_layer expects x [n,h], w [V,h]");
  VOCAB_CHECK(chunk_cols >= 1, "chunk_cols must be >= 1");
  const std::int64_t n = x.dim(0), h = x.dim(1), v = w.dim(0);
  VOCAB_CHECK(static_cast<std::int64_t>(targets.size()) == n, "target count mismatch");
  for (const auto t : targets) {
    VOCAB_CHECK(t >= 0 && t < v, "target " << t << " outside vocabulary");
  }

  FusedOutputResult out;
  out.result.grad_x = Tensor({n, h});
  out.result.grad_w = Tensor({v, h});

  // ---- pass 1: stream chunks, maintain online-softmax statistics ----------
  std::vector<SoftmaxStats> stats(static_cast<std::size_t>(n), empty_stats());
  Tensor target_logit({n});
  std::size_t transient = 0;
  for (std::int64_t c0 = 0; c0 < v; c0 += chunk_cols) {
    const std::int64_t c1 = std::min(c0 + chunk_cols, v);
    const Tensor w_chunk = slice_rows(w, c0, c1);
    const Tensor logits = matmul_nt(x, w_chunk);  // [n, c1-c0]
    transient = std::max(transient,
                         static_cast<std::size_t>((logits.numel() + w_chunk.numel())) *
                             sizeof(float));
    if (track_logits_absmax) {
      const float chunk_absmax = guard::absmax(logits);
      if (!(out.logits_absmax >= chunk_absmax)) out.logits_absmax = chunk_absmax;
    }
    const std::int64_t cols = c1 - c0;
    const float* plogits = logits.data();
    float* ptgt = target_logit.data();
    parallel::parallel_for(0, n, std::max<std::int64_t>(1, 4096 / cols),
                           [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* row = plogits + i * cols;
        stats[static_cast<std::size_t>(i)] =
            merge(stats[static_cast<std::size_t>(i)], stats_of(row, row + cols));
        const std::int64_t t = targets[static_cast<std::size_t>(i)];
        if (t >= c0 && t < c1) ptgt[i] = row[t - c0];
      }
    });
  }

  // Loss from the final statistics: log(sum) + max - y_target, averaged.
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const SoftmaxStats& s = stats[static_cast<std::size_t>(i)];
    loss += std::log(static_cast<double>(s.sum)) + s.max - target_logit.at(i);
  }
  out.result.loss = static_cast<float>(loss / static_cast<double>(n));

  // ---- pass 2: recompute chunks, emit gradient contributions ---------------
  for (std::int64_t c0 = 0; c0 < v; c0 += chunk_cols) {
    const std::int64_t c1 = std::min(c0 + chunk_cols, v);
    const Tensor w_chunk = slice_rows(w, c0, c1);
    Tensor d = matmul_nt(x, w_chunk);  // recomputed logits, reused as D in place
    transient = std::max(transient,
                         static_cast<std::size_t>((2 * d.numel() + w_chunk.numel())) *
                             sizeof(float));
    const std::int64_t cols = c1 - c0;
    float* pd = d.data();
    const simd::Kernels& ks = simd::kernels();
    parallel::parallel_for(0, n, std::max<std::int64_t>(1, 4096 / cols),
                           [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const SoftmaxStats& s = stats[static_cast<std::size_t>(i)];
        float* row = pd + i * cols;
        ks.exp_scale(row, row, cols, s.max, 1.0f / s.sum);  // softmax(Y)_i*
        const std::int64_t t = targets[static_cast<std::size_t>(i)];
        if (t >= c0 && t < c1) row[t - c0] -= 1.0f;  // minus the one-hot G
      }
    });
    scale_inplace(d, grad_scale);
    // grad_x accumulates D_chunk @ W_chunk; grad_w rows for this chunk are
    // D_chunk^T @ X.
    add_inplace(out.result.grad_x, matmul(d, w_chunk));
    const Tensor gw = matmul_tn(d, x);  // [c1-c0, h]
    const float* pgw = gw.data();
    float* pw = out.result.grad_w.data();
    parallel::parallel_for(0, cols, std::max<std::int64_t>(1, 4096 / h),
                           [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t r = r0; r < r1; ++r) {
        std::copy(pgw + r * h, pgw + (r + 1) * h, pw + (c0 + r) * h);
      }
    });
  }

  out.peak_transient_bytes = transient;
  return out;
}

std::size_t unfused_transient_bytes(std::int64_t n, std::int64_t v) {
  // The reference materialises the logits and the softmax, both [n, V] fp32.
  return static_cast<std::size_t>(2 * n * v) * sizeof(float);
}

}  // namespace vocab
