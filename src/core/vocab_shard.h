#pragma once

// Vocabulary partitioning arithmetic.
//
// The paper partitions the vocabulary dimension evenly across all p pipeline
// devices, padding V up to a multiple of 2p for memory alignment (§6.1).
// VocabShard captures one device's slice: [offset, offset + size), of which
// only [offset, valid_end) indexes real vocabulary entries — the rest is
// padding whose logits must be masked out of the softmax.

#include <cstdint>
#include <vector>

namespace vocab {

/// One device's slice of the (padded) vocabulary dimension.
struct VocabShard {
  int rank = 0;                  ///< device index in [0, world)
  int world = 1;                 ///< number of pipeline devices p
  std::int64_t full_vocab = 0;   ///< original (unpadded) V
  std::int64_t padded_vocab = 0; ///< V padded to a multiple of 2p
  std::int64_t offset = 0;       ///< first (padded) vocab index owned
  std::int64_t size = 0;         ///< padded_vocab / world

  /// Number of *real* (non-padding) vocabulary entries in this shard.
  [[nodiscard]] std::int64_t valid_size() const;

  /// True if global vocab id `v` belongs to this shard's real entries.
  [[nodiscard]] bool owns(std::int64_t v) const;

  /// Translate a global vocab id into a local column; requires owns(v).
  [[nodiscard]] std::int64_t to_local(std::int64_t v) const;
};

/// Pad `full_vocab` to a multiple of `2 * world` (paper §6.1).
std::int64_t pad_vocab(std::int64_t full_vocab, int world);

/// Build the shard descriptor for `rank` of `world` devices.
VocabShard make_shard(std::int64_t full_vocab, int rank, int world);

/// Build all `world` shards.
std::vector<VocabShard> make_all_shards(std::int64_t full_vocab, int world);

}  // namespace vocab
