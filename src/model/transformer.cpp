#include "model/transformer.h"

#include "common/error.h"
#include "common/rng.h"
#include "tensor/tensor_ops.h"

namespace vocab {

namespace ag = autograd;

LayerWeights LayerWeights::init(std::int64_t hidden, Rng& rng) {
  constexpr float kStd = 0.02f;
  LayerWeights w;
  w.ln1_g = Tensor({hidden}, 1.0f);
  w.ln1_b = Tensor({hidden});
  w.wq = Tensor::randn({hidden, hidden}, rng, kStd);
  w.wk = Tensor::randn({hidden, hidden}, rng, kStd);
  w.wv = Tensor::randn({hidden, hidden}, rng, kStd);
  w.wo = Tensor::randn({hidden, hidden}, rng, kStd);
  w.ln2_g = Tensor({hidden}, 1.0f);
  w.ln2_b = Tensor({hidden});
  w.w1 = Tensor::randn({hidden, 4 * hidden}, rng, kStd);
  w.b1 = Tensor({4 * hidden});
  w.w2 = Tensor::randn({4 * hidden, hidden}, rng, kStd);
  w.b2 = Tensor({hidden});
  return w;
}

TransformerStack::TransformerStack(std::vector<LayerWeights> layers, int heads)
    : heads_(heads) {
  VOCAB_CHECK(!layers.empty(), "stack needs at least one layer");
  VOCAB_CHECK(heads >= 1, "need at least one attention head");
  layers_.reserve(layers.size());
  for (auto& w : layers) {
    // Parameter leaves: their gradients belong to the weight half of a split
    // (BI/BW) backward, which is what lets zero-bubble schedules defer them.
    LayerVars lv;
    lv.ln1_g = ag::param(std::move(w.ln1_g));
    lv.ln1_b = ag::param(std::move(w.ln1_b));
    lv.wq = ag::param(std::move(w.wq));
    lv.wk = ag::param(std::move(w.wk));
    lv.wv = ag::param(std::move(w.wv));
    lv.wo = ag::param(std::move(w.wo));
    lv.ln2_g = ag::param(std::move(w.ln2_g));
    lv.ln2_b = ag::param(std::move(w.ln2_b));
    lv.w1 = ag::param(std::move(w.w1));
    lv.b1 = ag::param(std::move(w.b1));
    lv.w2 = ag::param(std::move(w.w2));
    lv.b2 = ag::param(std::move(w.b2));
    layers_.push_back(std::move(lv));
  }
}

ag::Var TransformerStack::layer_forward(const LayerVars& lv, const ag::Var& x) const {
  // Pre-LN attention block.
  const ag::Var normed = ag::layernorm(x, lv.ln1_g, lv.ln1_b);
  const ag::Var q = ag::matmul(normed, lv.wq);
  const ag::Var k = ag::matmul(normed, lv.wk);
  const ag::Var v = ag::matmul(normed, lv.wv);
  const ag::Var ctx = ag::causal_attention(q, k, v, heads_);
  const ag::Var attn_out = ag::matmul(ctx, lv.wo);
  const ag::Var h1 = ag::add(x, attn_out);
  // Pre-LN MLP block.
  const ag::Var normed2 = ag::layernorm(h1, lv.ln2_g, lv.ln2_b);
  const ag::Var mlp = ag::matmul(
      ag::gelu(ag::add_rowvec(ag::matmul(normed2, lv.w1), lv.b1)), lv.w2);
  return ag::add(h1, ag::add_rowvec(mlp, lv.b2));
}

Tensor TransformerStack::forward(int mb, const Tensor& x) {
  VOCAB_CHECK(!tapes_.contains(mb), "microbatch " << mb << " already forwarded");
  Tape tape;
  tape.input = ag::leaf(x, true);
  ag::Var cur = tape.input;
  for (const auto& lv : layers_) cur = layer_forward(lv, cur);
  tape.output = cur;
  Tensor out = cur->value;
  tapes_.emplace(mb, std::move(tape));
  return out;
}

Tensor TransformerStack::backward(int mb, const Tensor& grad_out) {
  const auto it = tapes_.find(mb);
  VOCAB_CHECK(it != tapes_.end(), "microbatch " << mb << " has no live tape");
  ag::backward(it->second.output, grad_out);
  Tensor grad_in = it->second.input->grad;
  VOCAB_CHECK(!grad_in.empty(), "input gradient was not produced");
  tapes_.erase(it);
  return grad_in;
}

Tensor TransformerStack::backward_input(int mb, const Tensor& grad_out) {
  const auto it = tapes_.find(mb);
  VOCAB_CHECK(it != tapes_.end(), "microbatch " << mb << " has no live tape");
  ag::backward_input(it->second.output, grad_out);
  Tensor grad_in = it->second.input->grad;
  VOCAB_CHECK(!grad_in.empty(), "input gradient was not produced");
  // The tape stays live: backward_weight(mb) still needs the stashed node
  // gradients (the 1/3 of activation memory the W pass holds on to).
  return grad_in;
}

void TransformerStack::backward_weight(int mb) {
  const auto it = tapes_.find(mb);
  VOCAB_CHECK(it != tapes_.end(), "microbatch " << mb << " has no live tape");
  ag::backward_weight(it->second.output);
  tapes_.erase(it);
}

std::vector<ag::Var> TransformerStack::parameters() const {
  std::vector<ag::Var> out;
  for (const auto& lv : layers_) {
    for (const auto& p : {lv.ln1_g, lv.ln1_b, lv.wq, lv.wk, lv.wv, lv.wo, lv.ln2_g, lv.ln2_b,
                          lv.w1, lv.b1, lv.w2, lv.b2}) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<LayerWeights> TransformerStack::export_layers() const {
  std::vector<LayerWeights> out;
  out.reserve(layers_.size());
  for (const auto& lv : layers_) {
    LayerWeights w;
    w.ln1_g = lv.ln1_g->value;
    w.ln1_b = lv.ln1_b->value;
    w.wq = lv.wq->value;
    w.wk = lv.wk->value;
    w.wv = lv.wv->value;
    w.wo = lv.wo->value;
    w.ln2_g = lv.ln2_g->value;
    w.ln2_b = lv.ln2_b->value;
    w.w1 = lv.w1->value;
    w.b1 = lv.b1->value;
    w.w2 = lv.w2->value;
    w.b2 = lv.b2->value;
    out.push_back(std::move(w));
  }
  return out;
}

void TransformerStack::sgd_step(float lr) {
  for (const auto& p : parameters()) {
    if (p->grad.empty()) continue;
    axpy_inplace(p->value, -lr, p->grad);
    p->grad.fill(0.0f);
  }
}

void TransformerStack::zero_grad() {
  for (const auto& p : parameters()) {
    if (!p->grad.empty()) p->grad.fill(0.0f);
  }
}

}  // namespace vocab
