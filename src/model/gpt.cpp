#include "model/gpt.h"

#include "common/error.h"
#include "common/rng.h"

namespace vocab {

GptWeights GptWeights::init(const GptConfig& cfg, std::uint64_t seed) {
  VOCAB_CHECK(cfg.num_layers >= 1 && cfg.hidden % cfg.heads == 0,
              "invalid GPT config (heads must divide hidden)");
  Rng rng(seed);
  GptWeights w;
  w.config = cfg;
  w.input_embedding = Tensor::randn({cfg.vocab, cfg.hidden}, rng, 0.02f);
  w.pos_embedding = Tensor::randn({cfg.seq_len, cfg.hidden}, rng, 0.02f);
  w.layers.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (int l = 0; l < cfg.num_layers; ++l) {
    w.layers.push_back(LayerWeights::init(cfg.hidden, rng));
  }
  w.output_weight = cfg.tie_embeddings ? w.input_embedding
                                       : Tensor::randn({cfg.vocab, cfg.hidden}, rng, 0.02f);
  return w;
}

SyntheticCorpus::SyntheticCorpus(std::int64_t vocab, std::int64_t seq_len, std::uint64_t seed)
    : vocab_(vocab), seq_len_(seq_len), seed_(seed),
      cdf_(zipf_cdf(static_cast<std::size_t>(vocab), 1.1)) {
  VOCAB_CHECK(vocab >= 4 && seq_len >= 2, "corpus needs vocab >= 4, seq_len >= 2");
}

Sample SyntheticCorpus::sample(int index) const {
  Rng rng(seed_ ^ (0x51ed270b0903cb1fULL * static_cast<std::uint64_t>(index + 1)));
  Sample s;
  s.tokens.resize(static_cast<std::size_t>(seq_len_));
  s.targets.resize(static_cast<std::size_t>(seq_len_));
  std::int64_t prev = static_cast<std::int64_t>(rng.sample_cdf(cdf_));
  for (std::int64_t i = 0; i < seq_len_ + 1; ++i) {
    // Learnable structure: with prob 0.5 the next token is a deterministic
    // function of the previous one, otherwise a fresh Zipf draw.
    std::int64_t tok;
    if (rng.uniform() < 0.5) {
      tok = (prev * 31 + 7) % vocab_;
    } else {
      tok = static_cast<std::int64_t>(rng.sample_cdf(cdf_));
    }
    if (i < seq_len_) s.tokens[static_cast<std::size_t>(i)] = tok;
    if (i > 0) s.targets[static_cast<std::size_t>(i - 1)] = tok;
    prev = tok;
  }
  return s;
}

}  // namespace vocab
