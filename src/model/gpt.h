#pragma once

// Full GPT-like model weights (value type) and the synthetic corpus used by
// the convergence experiments (Appendix E / Figure 17): the paper's customised
// C4 is replaced by a seeded Zipf-distributed token stream — the comparison
// only needs identical data across the implementations being compared.

#include <cstdint>
#include <vector>

#include "model/transformer.h"
#include "tensor/tensor.h"

namespace vocab {

/// Shape of a tiny trainable GPT.
struct GptConfig {
  int num_layers = 4;
  int heads = 4;
  std::int64_t hidden = 64;
  std::int64_t seq_len = 32;
  std::int64_t vocab = 97;  // deliberately not a multiple of 2p
  /// Share the input embedding and output projection weights (§6.1: easy
  /// under Vocabulary Parallelism — both shards live on the same device).
  bool tie_embeddings = false;
};

/// All weights of the model, as plain tensors.
struct GptWeights {
  GptConfig config;
  Tensor input_embedding;   // [V, h]
  Tensor pos_embedding;     // [s, h] (kept whole on the first stage, §6.4)
  std::vector<LayerWeights> layers;
  Tensor output_weight;     // [V, h]; equals input_embedding when tied

  static GptWeights init(const GptConfig& cfg, std::uint64_t seed);
};

/// One training sample: `tokens[i]` predicts `targets[i]` (= tokens[i+1]).
struct Sample {
  std::vector<std::int64_t> tokens;
  std::vector<std::int64_t> targets;
};

/// Deterministic synthetic corpus: Zipf unigram draws with a short-range
/// bigram correlation so the loss actually decreases during training.
class SyntheticCorpus {
 public:
  SyntheticCorpus(std::int64_t vocab, std::int64_t seq_len, std::uint64_t seed);

  /// The `index`-th sample; deterministic in (seed, index).
  [[nodiscard]] Sample sample(int index) const;

 private:
  std::int64_t vocab_;
  std::int64_t seq_len_;
  std::uint64_t seed_;
  std::vector<double> cdf_;
};

}  // namespace vocab
