#pragma once

// Pre-LN transformer layers on the autograd tape, packaged as the per-stage
// stacks the pipeline runtime executes. Microbatch size is 1 (as in all the
// paper's experiments), so activations are [s, h].

#include <cstdint>
#include <map>
#include <vector>

#include "autograd/autograd.h"
#include "tensor/tensor.h"

namespace vocab {

class Rng;

/// Plain-tensor weights of one transformer layer (value type; copyable so a
/// reference model and a pipeline model can start from identical weights).
struct LayerWeights {
  Tensor ln1_g, ln1_b;      // [h]
  Tensor wq, wk, wv, wo;    // [h, h]
  Tensor ln2_g, ln2_b;      // [h]
  Tensor w1, b1;            // [h, 4h], [4h]
  Tensor w2, b2;            // [4h, h], [h]

  /// GPT-2 style init: normals scaled by 0.02, ones/zeros for LN.
  static LayerWeights init(std::int64_t hidden, Rng& rng);
};

/// A contiguous run of transformer layers owned by one pipeline stage.
/// forward() records a tape per microbatch; backward() replays it when the
/// output gradient arrives (possibly much later, as the schedule dictates)
/// and accumulates parameter gradients.
class TransformerStack {
 public:
  TransformerStack(std::vector<LayerWeights> layers, int heads);

  [[nodiscard]] int num_layers() const { return static_cast<int>(layers_.size()); }

  /// Forward one microbatch through all layers; x is [s, h].
  Tensor forward(int mb, const Tensor& x);

  /// Backward for a previously forwarded microbatch; returns grad wrt x.
  Tensor backward(int mb, const Tensor& grad_out);

  /// Zero-bubble split backward, input half (BI): propagates grad_out through
  /// the activations only and returns grad wrt x. The tape stays live until
  /// the matching backward_weight() call. Bit-identical to backward() when
  /// the two halves run back to back.
  Tensor backward_input(int mb, const Tensor& grad_out);

  /// Zero-bubble split backward, weight half (BW): accumulates the deferred
  /// parameter gradients from the tape's stashed node gradients, then frees
  /// the tape. Requires a prior backward_input(mb).
  void backward_weight(int mb);

  /// Microbatches with a live tape (activation memory).
  [[nodiscard]] std::size_t live_microbatches() const { return tapes_.size(); }

  /// SGD: w -= lr * grad on every parameter, then zero the grads.
  void sgd_step(float lr);
  void zero_grad();

  /// Flat view of all parameters (for tests / checkpoint-style comparisons).
  [[nodiscard]] std::vector<autograd::Var> parameters() const;

  /// Copy the current weights back out (checkpointing).
  [[nodiscard]] std::vector<LayerWeights> export_layers() const;

 private:
  struct LayerVars {
    autograd::Var ln1_g, ln1_b, wq, wk, wv, wo, ln2_g, ln2_b, w1, b1, w2, b2;
  };
  struct Tape {
    autograd::Var input;
    autograd::Var output;
  };

  autograd::Var layer_forward(const LayerVars& lv, const autograd::Var& x) const;

  std::vector<LayerVars> layers_;
  int heads_;
  std::map<int, Tape> tapes_;
};

}  // namespace vocab
