#include "schedule/schedule_gpipe.h"

#include <numeric>

#include "common/error.h"
#include "schedule/builder.h"

namespace vocab {

PipelineSchedule build_gpipe(const CostModel& cm, int p, const LayerAssignment& assign,
                             const std::string& name) {
  VOCAB_CHECK(assign.num_stages() == p, "assignment/stage mismatch");
  const int m = cm.config().num_microbatches;
  ScheduleBuilder b(name, p, m);

  std::vector<double> tF(static_cast<std::size_t>(p)), tB(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const int layers = assign.layers_per_stage[static_cast<std::size_t>(d)];
    tF[static_cast<std::size_t>(d)] = cm.time_f(layers);
    tB[static_cast<std::size_t>(d)] = cm.time_b_full(layers);
    if (d == 0 && assign.input_on_first) {
      tF[static_cast<std::size_t>(d)] += cm.time_input_fwd_full();
      tB[static_cast<std::size_t>(d)] += cm.time_input_bwd_full();
    }
    if (d == p - 1 && assign.output_on_last) {
      tF[static_cast<std::size_t>(d)] += cm.time_output_fwd_full();
      tB[static_cast<std::size_t>(d)] += cm.time_output_bwd_full();
    }
  }

  std::vector<std::vector<int>> f_ids(static_cast<std::size_t>(m),
                                      std::vector<int>(static_cast<std::size_t>(p), -1));
  std::vector<std::vector<int>> b_ids = f_ids;
  for (int mb = 0; mb < m; ++mb) {
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = tF[static_cast<std::size_t>(d)];
      op.label = "F" + std::to_string(mb);
      op.alloc_bytes =
          cm.activation_bytes_per_mb(assign.layers_per_stage[static_cast<std::size_t>(d)]);
      if (d == p - 1 && assign.output_on_last) op.alloc_bytes += cm.output_full_transient_bytes();
      if (d > 0) op.deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d - 1)]);
      f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), static_cast<double>(mb));
    }
  }
  // Backward phase, newest microbatch first (LIFO, as in GPipe).
  for (int mb = m - 1; mb >= 0; --mb) {
    for (int d = p - 1; d >= 0; --d) {
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardFull;
      op.microbatch = mb;
      op.duration = tB[static_cast<std::size_t>(d)];
      op.label = "B" + std::to_string(mb);
      op.free_bytes =
          cm.activation_bytes_per_mb(assign.layers_per_stage[static_cast<std::size_t>(d)]);
      if (d == p - 1 && assign.output_on_last) op.free_bytes += cm.output_full_transient_bytes();
      op.deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
      if (d < p - 1) op.deps.push_back(b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d + 1)]);
      b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), static_cast<double>(m + (m - 1 - mb)));
    }
  }

  std::vector<double> base(static_cast<std::size_t>(p), 0.0);
  for (int d = 0; d < p; ++d) {
    base[static_cast<std::size_t>(d)] =
        assign.layers_per_stage[static_cast<std::size_t>(d)] * cm.transformer_layer_param_bytes();
  }
  if (assign.input_on_first) base[0] += cm.vocab_layer_param_bytes();
  if (assign.output_on_last) base[static_cast<std::size_t>(p - 1)] += cm.vocab_layer_param_bytes();
  return b.finalize(std::move(base));
}

PipelineSchedule build_gpipe_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                   const std::string& name) {
  VOCAB_CHECK(algo == OutputAlgo::Alg1 || algo == OutputAlgo::Alg2,
              "vocabulary-parallel schedules use Alg1 or Alg2");
  VOCAB_CHECK(p >= 2, "vocabulary parallelism needs >= 2 devices");
  const int m = cm.config().num_microbatches;
  const LayerAssignment assign = uniform_assignment(cm.config().num_layers, p);
  const int layers = assign.layers_per_stage[0];
  const std::string sched_name =
      name.empty() ? std::string("gpipe-") + to_string(algo) : name;
  ScheduleBuilder b(sched_name, p, m);

  const double tF = cm.time_f(layers);
  const double tB = cm.time_b_full(layers);
  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);
  const double act = cm.activation_bytes_per_mb(layers);
  const double out_state = cm.output_shard_state_bytes(algo, p);
  const double in_state = cm.activation_bytes();

  std::vector<int> all_devices(static_cast<std::size_t>(p));
  std::iota(all_devices.begin(), all_devices.end(), 0);

  std::vector<std::vector<int>> f_ids(static_cast<std::size_t>(m),
                                      std::vector<int>(static_cast<std::size_t>(p), -1));
  std::vector<std::vector<int>> b_ids = f_ids;
  std::vector<std::vector<int>> grad_gate(static_cast<std::size_t>(m));  // per-device gate for B(last)

  for (int mb = 0; mb < m; ++mb) {
    // Input forward (one slot ahead of F(mb)) + all-reduce on its own stream.
    std::vector<int> if_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::InputFwd;
      op.microbatch = mb;
      op.duration = tIF;
      op.label = "i" + std::to_string(mb);
      op.alloc_bytes = in_state;
      // A pipeline-depth ahead: the last devices' lanes are paced by the
      // forward wave, so an i issued just one slot early would chain every
      // microbatch's F(., 0) to the previous wave's completion.
      if_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), mb - p - 0.8);
    }
    std::vector<std::vector<int>> iar_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) iar_deps[static_cast<std::size_t>(d)] = {if_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> iar =
        b.add_collective(all_devices, Stream::CommAlt, cm.time_input_allreduce(p), mb,
                         "iAR" + std::to_string(mb), iar_deps, mb - p - 0.7);

    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = tF;
      op.label = "F" + std::to_string(mb);
      op.alloc_bytes = act;
      op.deps.push_back(d == 0 ? iar[0]
                               : f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d - 1)]);
      f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), static_cast<double>(mb));
    }
    for (int d = 0; d < p; ++d) {
      b.add_free(d == 0 ? f_ids[static_cast<std::size_t>(mb)][0] : iar[static_cast<std::size_t>(d)],
                 in_state);
    }

    // Output layer: C0 broadcast, S; then the barriers. C0(mb) completes
    // only after the forward wave reaches the last stage (~p slots after
    // F(mb, 0)), so S must be *issued* p slots later too — otherwise the
    // in-order lane would stall the whole forward phase on every S.
    std::vector<std::vector<int>> c0_deps(
        static_cast<std::size_t>(p), {f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(p - 1)]});
    const std::vector<int> c0 =
        b.add_collective(all_devices, Stream::Comm, cm.time_x_broadcast(p), mb,
                         "C0." + std::to_string(mb), c0_deps, mb + p + 0.1);
    std::vector<int> s_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::OutputS;
      op.microbatch = mb;
      op.duration = tS;
      op.label = "S" + std::to_string(mb);
      op.alloc_bytes = out_state;
      op.deps.push_back(c0[static_cast<std::size_t>(d)]);
      s_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), mb + p + 0.2);
    }
    std::vector<std::vector<int>> c1_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) c1_deps[static_cast<std::size_t>(d)] = {s_ids[static_cast<std::size_t>(d)]};
    const double c1_time = algo == OutputAlgo::Alg1
                               ? cm.time_stats_allreduce(p)
                               : cm.time_stats_allreduce(p) + cm.time_gradx_allreduce(p);
    const std::vector<int> c1 =
        b.add_collective(all_devices, Stream::Comm, c1_time, mb, "C1." + std::to_string(mb),
                         c1_deps, mb + p + 0.3);

    std::vector<int> t_ids(static_cast<std::size_t>(p));
    auto make_t = [&](double slot) {
      for (int d = 0; d < p; ++d) {
        Op op;
        op.device = d;
        op.kind = OpKind::OutputT;
        op.microbatch = mb;
        op.duration = tT;
        op.label = "T" + std::to_string(mb);
        op.free_bytes = out_state;
        op.deps.push_back(c1[static_cast<std::size_t>(d)]);
        t_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot);
      }
    };
    grad_gate[static_cast<std::size_t>(mb)].resize(static_cast<std::size_t>(p));
    if (algo == OutputAlgo::Alg1) {
      make_t(mb + p + 1.2);
      std::vector<std::vector<int>> c2_deps(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) c2_deps[static_cast<std::size_t>(d)] = {t_ids[static_cast<std::size_t>(d)]};
      grad_gate[static_cast<std::size_t>(mb)] =
          b.add_collective(all_devices, Stream::Comm, cm.time_gradx_allreduce(p), mb,
                           "C2." + std::to_string(mb), c2_deps, mb + p + 1.3);
    } else {
      make_t(mb + p + 1.2);
      grad_gate[static_cast<std::size_t>(mb)] = c1;
    }
  }

  // Backward phase, LIFO; B(mb, p-1) gated on the gradient barrier.
  for (int mb = m - 1; mb >= 0; --mb) {
    for (int d = p - 1; d >= 0; --d) {
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardFull;
      op.microbatch = mb;
      op.duration = tB;
      op.label = "B" + std::to_string(mb);
      op.free_bytes = act;
      op.deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
      op.deps.push_back(d == p - 1
                            ? grad_gate[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]
                            : b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d + 1)]);
      // The backward phase begins only after the last microbatches' S/T
      // slots (mb + p + ...), hence the m + p + 3 base.
      b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), static_cast<double>(m + p + 3 + (m - 1 - mb)));
    }
    // Input backward rides behind B(mb, 0).
    std::vector<std::vector<int>> ibb_deps(static_cast<std::size_t>(p),
                                           {b_ids[static_cast<std::size_t>(mb)][0]});
    const std::vector<int> ibb =
        b.add_collective(all_devices, Stream::CommAlt, cm.time_x_broadcast(p), mb,
                         "jBC" + std::to_string(mb), ibb_deps,
                         m + 2 * p + 3 + (m - 1 - mb) + 0.5);
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::InputBwd;
      op.microbatch = mb;
      op.duration = tIB;
      op.label = "j" + std::to_string(mb);
      op.deps.push_back(ibb[static_cast<std::size_t>(d)]);
      // A pipeline-depth behind its own B wave: jBC(mb) completes only when
      // B(mb, 0) retires, so an earlier slot would serialize the B waves.
      b.add(std::move(op), m + 2 * p + 3 + (m - 1 - mb) + 0.8);
    }
  }

  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 layers * cm.transformer_layer_param_bytes() +
                                     2.0 * cm.vocab_shard_param_bytes(p));
  return b.finalize(std::move(base_bytes));
}

}  // namespace vocab
