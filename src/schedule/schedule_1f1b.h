#pragma once

// Classic 1F1B (PipeDream-flush) schedule generator.
//
// Device d performs p-1-d warmup forwards, then strictly alternates one
// forward / one backward, then drains with backwards. The vocabulary layers
// live whole on the first (input) and last (output) stages, folded into
// those stages' F/B durations — this is the paper's Baseline, and with a
// Redis LayerAssignment it is the Redis baseline.

#include <string>

#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/ops.h"

namespace vocab {

/// Build a 1F1B schedule for `p` devices under `assign`.
PipelineSchedule build_1f1b(const CostModel& cm, int p, const LayerAssignment& assign,
                            const std::string& name = "1f1b");

}  // namespace vocab
