#pragma once

// Pipeline-schedule intermediate representation.
//
// A PipelineSchedule is a set of Ops with explicit dependency edges plus,
// per device, the *issue order* of ops on each of two streams (compute and
// communication) — exactly the information a Megatron-style scheduler hands
// to CUDA: kernels are enqueued in a fixed order per stream, and cross-
// stream / cross-device ordering is enforced only by dependencies (events).
// The discrete-event simulator in src/sim executes this IR; the schedule
// generators in this directory produce it.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vocab {

/// The GPU work queues of each device (paper §6.1: communication groups
/// live on separate streams so barriers overlap with transformer compute;
/// the input-layer collectives get their own stream so they cannot
/// head-of-line block the output-layer barriers).
enum class Stream { Compute = 0, Comm = 1, CommAlt = 2 };

inline constexpr int kNumStreams = 3;

/// Semantic kind of an op (used for rendering and bookkeeping; the sim only
/// cares about duration / deps / stream / collective grouping).
enum class OpKind {
  Forward,         ///< transformer-layer forward of one stage-chunk
  BackwardFull,    ///< combined activation+weight backward (1F1B-style)
  BackwardInput,   ///< activation-gradient backward (split schedules)
  BackwardWeight,  ///< weight-gradient backward (split schedules)
  OutputS,         ///< vocabulary output-layer S pass
  OutputT,         ///< vocabulary output-layer T pass
  InputFwd,        ///< vocabulary input-layer local forward
  InputBwd,        ///< vocabulary input-layer local backward
  Collective,      ///< synchronized group op (all-reduce / broadcast / barrier)
  Sync,            ///< zero-work placeholder (dependency anchor)
};

[[nodiscard]] const char* to_string(OpKind kind);

/// One scheduled operation.
struct Op {
  int id = -1;
  int device = 0;
  Stream stream = Stream::Compute;
  OpKind kind = OpKind::Sync;
  int microbatch = -1;
  int chunk = 0;              ///< virtual-pipeline chunk (V-Half has 2)
  double duration = 0.0;      ///< seconds
  std::vector<int> deps;      ///< op ids that must *finish* before this starts
  int collective = -1;        ///< ops sharing a collective id start & end together
  double alloc_bytes = 0.0;   ///< reserved on this device when the op starts
  double free_bytes = 0.0;    ///< released on this device when the op ends
  std::string label;          ///< short render label, e.g. "F12"
};

/// Per-device issue order.
struct DeviceLanes {
  std::vector<int> compute;   ///< op ids in compute-stream issue order
  std::vector<int> comm;      ///< op ids in comm-stream issue order
  std::vector<int> comm_alt;  ///< op ids on the secondary comm stream

  [[nodiscard]] const std::vector<int>& lane(Stream s) const {
    switch (s) {
      case Stream::Compute: return compute;
      case Stream::Comm: return comm;
      case Stream::CommAlt: return comm_alt;
    }
    return compute;
  }
  [[nodiscard]] std::vector<int>& lane(Stream s) {
    return const_cast<std::vector<int>&>(std::as_const(*this).lane(s));
  }
};

/// A complete schedule for one iteration of one pipeline.
struct PipelineSchedule {
  std::string name;
  int num_devices = 0;
  int num_microbatches = 0;
  std::vector<Op> ops;                 ///< indexed by Op::id
  std::vector<DeviceLanes> devices;    ///< size num_devices
  std::vector<double> base_bytes;      ///< resident (parameter+optimizer) bytes per device

  [[nodiscard]] const Op& op(int id) const { return ops[static_cast<std::size_t>(id)]; }

  /// Sanity-check the IR: ids consistent, deps in range, every op issued on
  /// exactly one lane of its own device, collectives well-formed. Throws
  /// CheckError on violation.
  void validate() const;
};

}  // namespace vocab
