#include "schedule/schedule_1f1b.h"

#include "common/error.h"
#include "schedule/builder.h"

namespace vocab {

PipelineSchedule build_1f1b(const CostModel& cm, int p, const LayerAssignment& assign,
                            const std::string& name) {
  VOCAB_CHECK(assign.num_stages() == p, "assignment has " << assign.num_stages()
                                                          << " stages, need " << p);
  const int m = cm.config().num_microbatches;
  VOCAB_CHECK(m >= p, "1F1B needs at least p microbatches");
  ScheduleBuilder b(name, p, m);

  // Per-device pass durations (vocab layers folded into first/last stage).
  std::vector<double> tF(static_cast<std::size_t>(p)), tB(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const int layers = assign.layers_per_stage[static_cast<std::size_t>(d)];
    tF[static_cast<std::size_t>(d)] = cm.time_f(layers);
    tB[static_cast<std::size_t>(d)] = cm.time_b_full(layers);
    if (d == 0 && assign.input_on_first) {
      tF[static_cast<std::size_t>(d)] += cm.time_input_fwd_full();
      tB[static_cast<std::size_t>(d)] += cm.time_input_bwd_full();
    }
    if (d == p - 1 && assign.output_on_last) {
      tF[static_cast<std::size_t>(d)] += cm.time_output_fwd_full();
      tB[static_cast<std::size_t>(d)] += cm.time_output_bwd_full();
    }
  }

  // Create F/B ops for every (mb, device).
  std::vector<std::vector<int>> f_id(static_cast<std::size_t>(m),
                                     std::vector<int>(static_cast<std::size_t>(p), -1));
  std::vector<std::vector<int>> b_id = f_id;
  // Slots only need to induce per-device order; we assign them from the
  // classic 1F1B issue sequence below, so create ops lazily there.
  auto make_f = [&](int mb, int d, double slot) {
    Op op;
    op.device = d;
    op.kind = OpKind::Forward;
    op.microbatch = mb;
    op.duration = tF[static_cast<std::size_t>(d)];
    op.label = "F" + std::to_string(mb);
    op.alloc_bytes = cm.activation_bytes_per_mb(assign.layers_per_stage[static_cast<std::size_t>(d)]);
    if (d == p - 1 && assign.output_on_last) op.alloc_bytes += cm.output_full_transient_bytes();
    if (d > 0) op.deps.push_back(f_id[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d - 1)]);
    f_id[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] = b.add(std::move(op), slot);
  };
  auto make_b = [&](int mb, int d, double slot) {
    Op op;
    op.device = d;
    op.kind = OpKind::BackwardFull;
    op.microbatch = mb;
    op.duration = tB[static_cast<std::size_t>(d)];
    op.label = "B" + std::to_string(mb);
    op.free_bytes = cm.activation_bytes_per_mb(assign.layers_per_stage[static_cast<std::size_t>(d)]);
    if (d == p - 1 && assign.output_on_last) op.free_bytes += cm.output_full_transient_bytes();
    op.deps.push_back(f_id[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
    if (d < p - 1) op.deps.push_back(b_id[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d + 1)]);
    b_id[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] = b.add(std::move(op), slot);
  };

  // Classic 1F1B issue order. Forwards must exist on device d-1 before the
  // dep is recorded on device d, so emit per device in *stage* order but per
  // the 1F1B sequence; creating F ops stage-by-stage keeps f_id populated.
  // We instead precreate all Fs in (mb, device) order, then all Bs in
  // (mb, reverse device) order, assigning slots from the issue sequence.
  std::vector<std::vector<double>> f_slot(static_cast<std::size_t>(m),
                                          std::vector<double>(static_cast<std::size_t>(p)));
  std::vector<std::vector<double>> b_slot = f_slot;
  for (int d = 0; d < p; ++d) {
    const int warmup = p - 1 - d;
    double slot = 0.0;
    int next_f = 0, next_b = 0;
    for (int i = 0; i < warmup && next_f < m; ++i) {
      f_slot[static_cast<std::size_t>(next_f++)][static_cast<std::size_t>(d)] = slot++;
    }
    while (next_f < m || next_b < m) {
      if (next_f < m) f_slot[static_cast<std::size_t>(next_f++)][static_cast<std::size_t>(d)] = slot++;
      if (next_b < m) b_slot[static_cast<std::size_t>(next_b++)][static_cast<std::size_t>(d)] = slot++;
    }
  }
  for (int mb = 0; mb < m; ++mb) {
    for (int d = 0; d < p; ++d) {
      make_f(mb, d, f_slot[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
    }
  }
  for (int mb = 0; mb < m; ++mb) {
    for (int d = p - 1; d >= 0; --d) {
      make_b(mb, d, b_slot[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
    }
  }

  // Resident bytes: transformer parameters + whole vocab layers where hosted.
  std::vector<double> base(static_cast<std::size_t>(p), 0.0);
  for (int d = 0; d < p; ++d) {
    base[static_cast<std::size_t>(d)] =
        assign.layers_per_stage[static_cast<std::size_t>(d)] * cm.transformer_layer_param_bytes();
  }
  if (assign.input_on_first) base[0] += cm.vocab_layer_param_bytes();
  if (assign.output_on_last) base[static_cast<std::size_t>(p - 1)] += cm.vocab_layer_param_bytes();

  return b.finalize(std::move(base));
}

}  // namespace vocab
