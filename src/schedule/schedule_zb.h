#pragma once

// Zero-bubble vocabulary-parallel schedules (ZB-H1 lineage).
//
// Splits each transformer backward into BI (activation gradients, on the
// pipeline critical path) and BW (parameter gradients, deferrable filler),
// following *Zero Bubble Pipeline Parallelism* (arXiv:2401.10241). The
// backward wave then propagates at tBI per hop instead of tB, and the BW
// passes are packed into the residual intervals alongside the paper's
// vocabulary S/T passes — the same §5.2 bin-packing freedom, with one more
// movable block. The `w_delay` knob is the controllable-memory dial of
// *Pipeline Parallelism with Controllable Memory* (arXiv:2405.15362):
// each +1 cycle of BW deferral holds one more third of a microbatch's
// activations but gives the drain phase another tBW of fill per device.
//
//   w_delay = 0: V-Min-style member — BW runs in the same cycle as its BI,
//                peak activation memory identical to 1F1B-vocab.
//   w_delay > 0: ZB-H1-style members — peak grows by w_delay/3 microbatches.

#include <string>

#include "core/output_layer_shard.h"
#include "cost/cost_model.h"
#include "schedule/ops.h"

namespace vocab {

struct ZbOptions {
  /// Whole cycles each BW lags its BI. 0 keeps 1F1B-vocab's peak memory.
  int w_delay = 1;
  /// Override the inserted-interval count (barrier overlap); -1 = the
  /// algorithm's default (num_barriers), as in build_1f1b_vocab.
  int inserted_intervals = -1;
};

/// Build the zero-bubble vocabulary-parallel schedule for p devices.
/// Requires m >= p microbatches and algo in {Alg1, Alg2}.
PipelineSchedule build_zb_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                const std::string& name = "", ZbOptions opts = {});

}  // namespace vocab
