#include "schedule/ops.h"

#include <map>
#include <set>

#include "common/error.h"

namespace vocab {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Forward: return "F";
    case OpKind::BackwardFull: return "B";
    case OpKind::BackwardInput: return "b";
    case OpKind::BackwardWeight: return "W";
    case OpKind::OutputS: return "S";
    case OpKind::OutputT: return "T";
    case OpKind::InputFwd: return "i";
    case OpKind::InputBwd: return "j";
    case OpKind::Collective: return "C";
    case OpKind::Sync: return ".";
  }
  return "?";
}

void PipelineSchedule::validate() const {
  VOCAB_CHECK(num_devices > 0, "schedule has no devices");
  VOCAB_CHECK(static_cast<int>(devices.size()) == num_devices, "device lane count mismatch");
  VOCAB_CHECK(static_cast<int>(base_bytes.size()) == num_devices, "base_bytes size mismatch");

  const int n = static_cast<int>(ops.size());
  for (int i = 0; i < n; ++i) {
    const Op& o = ops[static_cast<std::size_t>(i)];
    VOCAB_CHECK(o.id == i, "op id " << o.id << " at index " << i);
    VOCAB_CHECK(o.device >= 0 && o.device < num_devices, "op " << i << " device out of range");
    VOCAB_CHECK(o.duration >= 0, "op " << i << " has negative duration");
    VOCAB_CHECK(o.alloc_bytes >= 0 && o.free_bytes >= 0, "op " << i << " negative memory delta");
    for (const int d : o.deps) {
      VOCAB_CHECK(d >= 0 && d < n && d != i, "op " << i << " has invalid dep " << d);
    }
  }

  // Every op appears exactly once, on the correct device's lane of its stream.
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (int dev = 0; dev < num_devices; ++dev) {
    const DeviceLanes& lanes = devices[static_cast<std::size_t>(dev)];
    for (const Stream s : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
      for (const int id : lanes.lane(s)) {
        VOCAB_CHECK(id >= 0 && id < n, "lane references unknown op " << id);
        const Op& o = ops[static_cast<std::size_t>(id)];
        VOCAB_CHECK(o.device == dev, "op " << id << " issued on device " << dev
                                           << " but belongs to " << o.device);
        VOCAB_CHECK(o.stream == s, "op " << id << " issued on wrong stream");
        ++seen[static_cast<std::size_t>(id)];
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    VOCAB_CHECK(seen[static_cast<std::size_t>(i)] == 1,
                "op " << i << " (" << ops[static_cast<std::size_t>(i)].label << ") issued "
                      << seen[static_cast<std::size_t>(i)] << " times");
  }

  // Collectives: each group has one op per participating device, all on the
  // same stream, and appears in the same relative order on every lane
  // (mismatched collective ordering across devices is the classic NCCL
  // deadlock; we reject it statically).
  std::map<int, std::vector<const Op*>> groups;
  for (const Op& o : ops) {
    if (o.collective >= 0) {
      VOCAB_CHECK(o.kind == OpKind::Collective, "collective id on non-collective op " << o.id);
      groups[o.collective].push_back(&o);
    }
  }
  for (const auto& [cid, members] : groups) {
    VOCAB_CHECK(members.size() >= 2, "collective " << cid << " has a single member");
    std::set<int> devs;
    for (const Op* o : members) {
      VOCAB_CHECK(o->stream == members[0]->stream, "collective " << cid << " spans streams");
      VOCAB_CHECK(devs.insert(o->device).second,
                  "collective " << cid << " has two ops on device " << o->device);
    }
  }
  // Relative order check: project each lane onto collective ids and verify
  // all devices see the same subsequence restricted to shared groups.
  std::vector<std::vector<int>> per_device_order(static_cast<std::size_t>(num_devices));
  for (int dev = 0; dev < num_devices; ++dev) {
    for (const Stream s : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
      for (const int id : devices[static_cast<std::size_t>(dev)].lane(s)) {
        if (ops[static_cast<std::size_t>(id)].collective >= 0) {
          per_device_order[static_cast<std::size_t>(dev)].push_back(
              ops[static_cast<std::size_t>(id)].collective);
        }
      }
    }
  }
  for (int a = 0; a < num_devices; ++a) {
    for (int b = a + 1; b < num_devices; ++b) {
      // Extract the subsequence of collectives common to devices a and b.
      std::set<int> on_a(per_device_order[static_cast<std::size_t>(a)].begin(),
                         per_device_order[static_cast<std::size_t>(a)].end());
      std::set<int> on_b(per_device_order[static_cast<std::size_t>(b)].begin(),
                         per_device_order[static_cast<std::size_t>(b)].end());
      std::vector<int> sub_a, sub_b;
      for (const int c : per_device_order[static_cast<std::size_t>(a)]) {
        if (on_b.contains(c)) sub_a.push_back(c);
      }
      for (const int c : per_device_order[static_cast<std::size_t>(b)]) {
        if (on_a.contains(c)) sub_b.push_back(c);
      }
      VOCAB_CHECK(sub_a == sub_b, "devices " << a << " and " << b
                                             << " issue shared collectives in different orders");
    }
  }
}

}  // namespace vocab
