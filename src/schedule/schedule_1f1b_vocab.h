#pragma once

// 1F1B with Vocabulary Parallelism (paper §5, Figures 9/10).
//
// Construction follows the paper's building-block methodology: take 1F1B's
// building block, insert 2 (Algorithm 1) or 1 (Algorithm 2) repeating
// intervals between the last transformer layer's F and B, place the output
// layer's S/T passes (plus the piggybacked input-layer passes, Appendix C)
// inside them, put every communication barrier on the comm stream, and
// repeat the block once per microbatch. Peak activation memory rises by
// exactly the number of communication barriers: p+2 microbatches for
// Algorithm 1, p+1 for Algorithm 2.

#include <string>

#include "core/output_layer_shard.h"
#include "cost/cost_model.h"
#include "schedule/ops.h"

namespace vocab {

/// Build 1F1B + Vocabulary Parallelism for `p` devices.
/// `algo` must be Alg1 (Vocab-1) or Vocab-2 (Alg2). `inserted_intervals`
/// overrides how many repeating intervals separate the last transformer
/// layer's F and B (default: the algorithm's barrier count, the paper's
/// choice); used by the ablation bench to show why fewer stalls and more
/// wastes memory.
PipelineSchedule build_1f1b_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                  const std::string& name = "",
                                  int inserted_intervals = -1);

/// The building-block offsets used by the generator, exposed for the
/// lifespan/interval analysis of Figures 9/10 (see building_block.h).
struct VocabBlockOffsets {
  double interval = 0.0;        ///< per-device work per microbatch
  std::vector<double> f;        ///< F offset per device
  std::vector<double> b;        ///< B offset per device
  double s = 0.0;               ///< S offset (same on all devices)
  std::vector<double> t;        ///< T offset per device
  double c0 = 0.0, c1 = 0.0, c2 = -1.0;  ///< barrier offsets (c2 < 0 for Alg2)
};

VocabBlockOffsets vocab_block_offsets(const CostModel& cm, int p, OutputAlgo algo);

}  // namespace vocab
