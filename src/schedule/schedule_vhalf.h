#pragma once

// V-Half schedule (Qi et al. 2024, "Pipeline Parallelism with Controllable
// Memory") and its Vocabulary-Parallel variant (paper §6.4, Appendix D).
//
// V-shape placement over 2p stages: device d hosts chunk 0 = stage d and
// chunk 1 = stage 2p-1-d, so the first device holds both the first and the
// last stage. Backward is split into activation-gradient (B) and
// weight-gradient (W) passes. The V placement halves and balances the
// activation memory relative to 1F1B — but in the Baseline it also puts
// *both* vocabulary layers on device 0 (input on stage 0, output on stage
// 2p-1), which is exactly the memory hotspot Figure 14 shows.
//
// build_vhalf_vocab integrates Vocab-1 (Algorithm 1) S/T passes following
// the building block of Figure 16.

#include <string>

#include "cost/cost_model.h"
#include "schedule/ops.h"

namespace vocab {

/// Baseline V-Half: whole vocabulary layers on stage 0 / stage 2p-1.
PipelineSchedule build_vhalf(const CostModel& cm, int p, const std::string& name = "vhalf");

/// V-Half + Vocabulary Parallelism (Vocab-1).
PipelineSchedule build_vhalf_vocab(const CostModel& cm, int p,
                                   const std::string& name = "vhalf-vocab-1");

}  // namespace vocab
