#pragma once

// Transformer-layer placement across pipeline stages.
//
// Baseline: uniform layers, whole input layer on the first stage and whole
// output layer on the last. Redis (paper §6.2): greedily redistribute the
// transformer layers to minimize the most loaded stage's compute, following
// Narayanan et al.'s FLOP estimates — the paper's strongest non-vocabulary-
// parallel baseline.

#include <string>
#include <vector>

#include "cost/cost_model.h"

namespace vocab {

/// Which stage hosts which layers.
struct LayerAssignment {
  std::vector<int> layers_per_stage;  ///< transformer layers on each stage
  bool input_on_first = true;         ///< whole input layer on stage 0
  bool output_on_last = true;         ///< whole output layer on last stage

  [[nodiscard]] int total_layers() const;
  [[nodiscard]] int num_stages() const { return static_cast<int>(layers_per_stage.size()); }
};

/// Uniform split (requires p | L, as in all the paper's presets).
LayerAssignment uniform_assignment(int num_layers, int p);

/// Greedy compute-balancing redistribution: repeatedly give the next layer
/// to the currently cheapest stage, where stage 0 is pre-loaded with the
/// input layer's compute and stage p-1 with the output layer's.
LayerAssignment redis_assignment(const CostModel& cm, int p);

/// Per-microbatch forward+backward compute seconds of one stage under an
/// assignment (the quantity Redis balances and Figure 3 plots).
double stage_compute_seconds(const CostModel& cm, const LayerAssignment& assign, int stage);

}  // namespace vocab
