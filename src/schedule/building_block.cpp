#include "schedule/building_block.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "schedule/schedule_1f1b_vocab.h"

namespace vocab {

std::vector<double> BlockAnalysis::peak_microbatches() const {
  std::vector<double> out;
  out.reserve(lifespan.size());
  for (const double l : lifespan) out.push_back(l / interval);
  return out;
}

double BlockAnalysis::max_peak_microbatches() const {
  double best = 0.0;
  for (const double v : peak_microbatches()) best = std::max(best, v);
  return best;
}

BlockAnalysis analyze_1f1b(const CostModel& cm, int p) {
  VOCAB_CHECK(p >= 1, "need >= 1 device");
  const int layers = cm.config().num_layers / p;
  const double tF = cm.time_f(layers);
  const double tB = cm.time_b_full(layers);
  BlockAnalysis a;
  a.interval = tF + tB;
  a.lifespan.resize(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    // F at d·tF; B(p-1) immediately after F(p-1); B wave ascends.
    const double b_end = p * tF + (p - 1 - d) * tB + tB;
    a.lifespan[static_cast<std::size_t>(d)] = b_end - d * tF;
  }
  return a;
}

BlockAnalysis analyze_1f1b_vocab(const CostModel& cm, int p, OutputAlgo algo) {
  const VocabBlockOffsets off = vocab_block_offsets(cm, p, algo);
  const int layers = cm.config().num_layers / p;
  const double tB = cm.time_b_full(layers);
  BlockAnalysis a;
  a.interval = off.interval;
  a.lifespan.resize(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    a.lifespan[static_cast<std::size_t>(d)] =
        off.b[static_cast<std::size_t>(d)] + tB - off.f[static_cast<std::size_t>(d)];
  }
  return a;
}

BlockAnalysis analyze_interlaced(const CostModel& cm, int p) {
  // Appendix B.1: the synchronous TP phases force per-microbatch global
  // rendezvous that absorb the devices' wave stagger as idle time, enlarging
  // the 1F1B lifespan from ~3p to ~4.5p while the interval gains only the
  // vocabulary work.
  const BlockAnalysis base = analyze_1f1b(cm, p);
  BlockAnalysis a;
  a.interval = base.interval + cm.time_output_s(OutputAlgo::Alg1, p) +
               cm.time_output_t(OutputAlgo::Alg1, p) + cm.time_input_shard_fwd(p) +
               cm.time_input_shard_bwd(p) + cm.time_x_broadcast(p) +
               cm.time_stats_allreduce(p) + cm.time_gradx_allreduce(p) +
               cm.time_input_allreduce(p);
  a.lifespan.reserve(base.lifespan.size());
  for (const double l : base.lifespan) a.lifespan.push_back(1.5 * l);
  return a;
}

BlockAnalysis analyze_vhalf(const CostModel& cm, int p) {
  VOCAB_CHECK(p >= 2 && cm.config().num_layers % (2 * p) == 0, "V-Half requires 2p | L");
  const int layers = cm.config().num_layers / (2 * p);
  const double tF = cm.time_f(layers);
  const double tBW = cm.time_b_input(layers) + cm.time_b_weight(layers);
  BlockAnalysis a;
  a.interval = 2.0 * (tF + tBW);
  a.lifespan.resize(static_cast<std::size_t>(p));
  const int stages = 2 * p;
  for (int d = 0; d < p; ++d) {
    // Chunk 0 = stage d, chunk 1 = stage 2p-1-d; F wave straight through,
    // B+W wave straight back. Device memory holds both chunks.
    auto span = [&](int s) {
      const double f_start = s * tF;
      const double b_end = stages * tF + (stages - s) * tBW;
      return b_end - f_start;
    };
    a.lifespan[static_cast<std::size_t>(d)] = span(d) + span(stages - 1 - d);
  }
  return a;
}

}  // namespace vocab
