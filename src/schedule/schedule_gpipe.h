#pragma once

// GPipe (Huang et al. 2019) schedule generator, with and without Vocabulary
// Parallelism — a demonstration of the paper's claim that the S/T-pass
// integration "is naturally generalizable to other schedules" beyond 1F1B
// and V-Half.
//
// GPipe runs all forwards, then all backwards; activation memory is O(m)
// microbatches, which is why 1F1B superseded it — but its simplicity makes
// the vocabulary-pass insertion particularly transparent: every S runs
// during the forward phase as soon as C0 delivers X, and T/C2 stream during
// the backward phase.

#include <string>

#include "core/output_layer_shard.h"
#include "cost/cost_model.h"
#include "schedule/layer_assignment.h"
#include "schedule/ops.h"

namespace vocab {

/// Plain GPipe: vocabulary layers whole on the first/last stages.
PipelineSchedule build_gpipe(const CostModel& cm, int p, const LayerAssignment& assign,
                             const std::string& name = "gpipe");

/// GPipe + Vocabulary Parallelism (Alg1 or Alg2).
PipelineSchedule build_gpipe_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                   const std::string& name = "");

}  // namespace vocab
