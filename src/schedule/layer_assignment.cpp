#include "schedule/layer_assignment.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace vocab {

int LayerAssignment::total_layers() const {
  return std::accumulate(layers_per_stage.begin(), layers_per_stage.end(), 0);
}

LayerAssignment uniform_assignment(int num_layers, int p) {
  VOCAB_CHECK(p >= 1, "need at least one stage");
  VOCAB_CHECK(num_layers % p == 0,
              "uniform assignment requires p | L (got L=" << num_layers << ", p=" << p << ")");
  LayerAssignment a;
  a.layers_per_stage.assign(static_cast<std::size_t>(p), num_layers / p);
  return a;
}

LayerAssignment redis_assignment(const CostModel& cm, int p) {
  VOCAB_CHECK(p >= 1, "need at least one stage");
  const int num_layers = cm.config().num_layers;
  VOCAB_CHECK(num_layers >= p, "fewer layers than stages");

  LayerAssignment a;
  a.layers_per_stage.assign(static_cast<std::size_t>(p), 0);

  // Fixed per-stage cost from the vocabulary layers.
  std::vector<double> cost(static_cast<std::size_t>(p), 0.0);
  cost[0] += cm.time_input_fwd_full() + cm.time_input_bwd_full();
  cost[static_cast<std::size_t>(p - 1)] += cm.time_output_fwd_full() + cm.time_output_bwd_full();

  const double layer_cost = cm.time_f(1) + cm.time_b_full(1);
  // Greedy: every stage needs >= 1 layer (it must host part of the model);
  // then each remaining layer goes to the cheapest stage.
  for (int s = 0; s < p; ++s) {
    a.layers_per_stage[static_cast<std::size_t>(s)] = 1;
    cost[static_cast<std::size_t>(s)] += layer_cost;
  }
  for (int l = p; l < num_layers; ++l) {
    const auto it = std::min_element(cost.begin(), cost.end());
    const auto idx = static_cast<std::size_t>(std::distance(cost.begin(), it));
    ++a.layers_per_stage[idx];
    *it += layer_cost;
  }
  return a;
}

double stage_compute_seconds(const CostModel& cm, const LayerAssignment& assign, int stage) {
  VOCAB_CHECK(stage >= 0 && stage < assign.num_stages(), "stage out of range");
  const int layers = assign.layers_per_stage[static_cast<std::size_t>(stage)];
  double t = cm.time_f(layers) + cm.time_b_full(layers);
  if (stage == 0 && assign.input_on_first) {
    t += cm.time_input_fwd_full() + cm.time_input_bwd_full();
  }
  if (stage == assign.num_stages() - 1 && assign.output_on_last) {
    t += cm.time_output_fwd_full() + cm.time_output_bwd_full();
  }
  return t;
}

}  // namespace vocab
