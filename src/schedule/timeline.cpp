#include "schedule/timeline.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "common/table.h"

namespace vocab {

std::string render_timeline(const PipelineSchedule& schedule, const SimResult& result,
                            int width, double min_time, double max_time) {
  VOCAB_CHECK(width > 0, "width must be positive");
  const double t0 = min_time;
  const double t1 = max_time > 0 ? max_time : result.makespan;
  VOCAB_CHECK(t1 > t0, "empty render window");
  const double bucket = (t1 - t0) / width;

  std::ostringstream oss;
  for (int d = 0; d < schedule.num_devices; ++d) {
    // Coverage per bucket: pick the op kind with the largest overlap.
    std::vector<double> best_overlap(static_cast<std::size_t>(width), 0.0);
    std::vector<char> cell(static_cast<std::size_t>(width), '.');
    for (const int id : schedule.devices[static_cast<std::size_t>(d)].compute) {
      const Op& op = schedule.op(id);
      if (op.duration <= 0) continue;
      const OpInterval& iv = result.times[static_cast<std::size_t>(id)];
      const int lo = std::max(0, static_cast<int>((iv.start - t0) / bucket));
      const int hi = std::min(width - 1, static_cast<int>((iv.end - t0) / bucket));
      for (int k = lo; k <= hi; ++k) {
        const double bs = t0 + k * bucket, be = bs + bucket;
        const double overlap = std::min(be, iv.end) - std::max(bs, iv.start);
        if (overlap > best_overlap[static_cast<std::size_t>(k)]) {
          best_overlap[static_cast<std::size_t>(k)] = overlap;
          cell[static_cast<std::size_t>(k)] = to_string(op.kind)[0];
        }
      }
    }
    oss << "dev" << d << (d < 10 ? " " : "") << " |";
    for (const char c : cell) oss << c;
    oss << "|\n";
  }
  return oss.str();
}

std::string render_summary(const PipelineSchedule& schedule, const SimResult& result) {
  Table t({"device", "busy (s)", "bubble %", "peak mem"});
  for (int d = 0; d < schedule.num_devices; ++d) {
    t.add_row({"dev" + std::to_string(d),
               fmt_f(result.compute_busy[static_cast<std::size_t>(d)], 3),
               fmt_f(100.0 * result.bubble_fraction(d), 1),
               fmt_bytes(result.peak_bytes[static_cast<std::size_t>(d)])});
  }
  std::ostringstream oss;
  oss << schedule.name << ": makespan " << fmt_f(result.makespan, 3) << " s\n" << t.to_string();
  return oss.str();
}

}  // namespace vocab
