#include "schedule/schedule_interlaced.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "schedule/builder.h"
#include "schedule/layer_assignment.h"

namespace vocab {

// The interlaced pipeline alternates PP (transformer) and TP (vocabulary)
// phases. Each microbatch's vocabulary work — broadcast of X, the output
// shard forward, the stats all-reduce, the output shard backward, the gradX
// all-reduce, plus the piggybacked input-layer TP work — is one *globally
// synchronized block* on every device's compute stream, modeled here as a
// single collective "PC" op. That captures interlaced's two defining costs:
// the per-microbatch rendezvous bubbles (Appendix B.2) and the enlarged
// activation lifespan (Appendix B.1, ~1.5x of 1F1B), which we encode by
// delaying each device's B by delta cycles so activations live half a
// pipeline round-trip longer.
PipelineSchedule build_interlaced(const CostModel& cm, int p, bool sync_collectives,
                                  const std::string& name) {
  const int m = cm.config().num_microbatches;
  VOCAB_CHECK(m >= p, "need at least p microbatches");
  VOCAB_CHECK(p >= 2, "interlaced pipeline needs >= 2 devices");
  const LayerAssignment assign = uniform_assignment(cm.config().num_layers, p);
  const int layers = assign.layers_per_stage[0];

  const double tF = cm.time_f(layers);
  const double tB = cm.time_b_full(layers);
  // TP-partitioned vocabulary work per device (same shard matmuls as
  // Vocab-1's S/T, executed synchronously in the critical path).
  const double tOF = cm.time_output_s(OutputAlgo::Alg1, p);
  const double tOB = cm.time_output_t(OutputAlgo::Alg1, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);
  const double sync_time = cm.time_x_broadcast(p) + cm.time_stats_allreduce(p) +
                           cm.time_gradx_allreduce(p) + cm.time_input_allreduce(p) +
                           cm.time_x_broadcast(p);
  const double phase_len = tOF + tOB + tIF + tIB + (sync_collectives ? sync_time : 0.0);

  // Appendix B.1: the per-microbatch global rendezvous align every device's
  // cycle, so the backward wave can only advance one device per interval
  // (any faster would need two serial tB hops inside one interval whose
  // backward budget is a single tB). The activation lifespan therefore
  // stretches to roughly twice 1F1B's — the effect the paper bounds at
  // ~1.5x for its configurations.

  const std::string sched_name =
      name.empty() ? (sync_collectives ? "interlaced" : "interlaced-nosync") : name;
  ScheduleBuilder b(sched_name, p, m);

  const double act = cm.activation_bytes_per_mb(layers);
  const double tp_state = cm.output_shard_state_bytes(OutputAlgo::Alg1, p);

  std::vector<int> all_devices(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) all_devices[static_cast<std::size_t>(d)] = d;

  // Per-device lane index of each op under the steady pattern
  //   [warmup F x w_d] then repeating [F, PC, B]:
  auto warmup = [&](int d) { return p - 1 - d; };
  auto slot_f = [&](int mb, int d) {
    const int w = warmup(d);
    return mb < w ? static_cast<double>(mb) : 3.0 * (mb - w) + w;
  };
  auto slot_pc = [&](int c, int d) { return 3.0 * c + warmup(d) + 1; };
  auto b_cycle = [&](int mb, int d) { return mb + (p - 1 - d); };
  auto slot_b = [&](int mb, int d) { return 3.0 * b_cycle(mb, d) + warmup(d) + 2; };

  std::vector<std::vector<int>> f_ids(static_cast<std::size_t>(m),
                                      std::vector<int>(static_cast<std::size_t>(p), -1));
  std::vector<std::vector<int>> b_ids = f_ids;
  std::vector<std::vector<int>> pc_ids(static_cast<std::size_t>(m));

  for (int mb = 0; mb < m; ++mb) {
    // --- transformer forward wave -------------------------------------------
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = tF;
      op.label = "F" + std::to_string(mb);
      op.alloc_bytes = act;
      if (d > 0) {
        op.deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d - 1)]);
      } else if (mb >= p) {
        // Input TP phase for this microbatch ran inside PC(mb - p).
        op.deps.push_back(pc_ids[static_cast<std::size_t>(mb - p)][0]);
      }
      f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), slot_f(mb, d));
    }

    // --- synchronized vocabulary TP phase PC(mb) ------------------------------
    std::vector<std::vector<int>> pc_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      auto& deps = pc_deps[static_cast<std::size_t>(d)];
      deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(p - 1)]);
      // Input-backward TP piggybacks for the newest microbatch whose
      // B(mb', 0) — the tail of the backward wave — has already retired.
      if (mb - p >= 0) {
        deps.push_back(b_ids[static_cast<std::size_t>(mb - p)][0]);
      }
    }
    std::vector<double> pc_slots(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) pc_slots[static_cast<std::size_t>(d)] = slot_pc(mb, d);
    pc_ids[static_cast<std::size_t>(mb)] =
        b.add_collective(all_devices, Stream::Compute, phase_len, mb,
                         "S" + std::to_string(mb), pc_deps, pc_slots);
    for (int d = 0; d < p; ++d) {
      // Transient TP state (fp32 logits shard etc.) lives inside the phase.
      b.add_alloc(pc_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)], tp_state);
      b.add_free(pc_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)], tp_state);
    }

    // --- backward wave (delayed delta cycles, Appendix B.1) -------------------
    for (int d = p - 1; d >= 0; --d) {
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardFull;
      op.microbatch = mb;
      op.duration = tB;
      op.label = "B" + std::to_string(mb);
      op.free_bytes = act;
      op.deps.push_back(f_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]);
      op.deps.push_back(d == p - 1
                            ? pc_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)]
                            : b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d + 1)]);
      b_ids[static_cast<std::size_t>(mb)][static_cast<std::size_t>(d)] =
          b.add(std::move(op), slot_b(mb, d));
    }
  }

  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 layers * cm.transformer_layer_param_bytes() +
                                     2.0 * cm.vocab_shard_param_bytes(p));
  return b.finalize(std::move(base_bytes));
}

}  // namespace vocab
