#pragma once

// The interlaced pipeline (Lin et al. 2024, nnScaler), the paper's strongest
// prior method: vocabulary layers are parallelized tensor-parallel style
// across all pipeline devices, alternating between TP (vocab) and PP
// (transformer) phases. Every microbatch inserts *synchronous* collectives
// on the compute stream — the broadcast of X, the softmax statistics
// all-reduce and the input-gradient all-reduce — which rendezvous all
// devices and create per-microbatch bubbles (Appendix B.2) and ~1.5x the
// activation lifespan (Appendix B.1 / Figure 15).
//
// `sync_collectives=false` reproduces the B.2 ablation: the same collectives
// moved to the communication stream where they overlap with compute.

#include <string>

#include "cost/cost_model.h"
#include "schedule/ops.h"

namespace vocab {

PipelineSchedule build_interlaced(const CostModel& cm, int p, bool sync_collectives = true,
                                  const std::string& name = "");

}  // namespace vocab
