#pragma once

// Helper for constructing PipelineSchedules from building-block offsets.
//
// Generators create ops with absolute *slot* times (offset + microbatch ×
// interval, per the paper's §5.2 uniform-repetition methodology) and the
// builder sorts each device's lanes by slot to obtain the issue order. The
// simulator then derives real timing purely from dependencies, so the slots
// only need to induce the right *order*, not exact times.

#include <string>
#include <vector>

#include "schedule/ops.h"

namespace vocab {

class ScheduleBuilder {
 public:
  ScheduleBuilder(std::string name, int num_devices, int num_microbatches);

  /// Create an op and record its issue slot. Returns the op id.
  /// `op.id` is assigned by the builder.
  int add(Op op, double slot);

  /// Create one collective group: an op on each device of `devices` with the
  /// given duration and per-device dependency list. Returns the member ids
  /// (parallel to `devices`).
  std::vector<int> add_collective(const std::vector<int>& devices, Stream stream,
                                  double duration, int microbatch, const std::string& label,
                                  const std::vector<std::vector<int>>& per_device_deps,
                                  double slot);

  /// As above with a per-member issue slot (lane positions may differ per
  /// device as long as the relative order of collectives agrees everywhere).
  std::vector<int> add_collective(const std::vector<int>& devices, Stream stream,
                                  double duration, int microbatch, const std::string& label,
                                  const std::vector<std::vector<int>>& per_device_deps,
                                  const std::vector<double>& slots);

  /// Append a dependency to an existing op.
  void add_dep(int op_id, int dep_id);

  /// Add alloc/free bytes to an existing op.
  void add_alloc(int op_id, double bytes);
  void add_free(int op_id, double bytes);

  [[nodiscard]] const Op& op(int id) const;

  /// Sort lanes by slot (ties: microbatch, then creation order) and emit the
  /// validated schedule.
  PipelineSchedule finalize(std::vector<double> base_bytes);

 private:
  std::string name_;
  int num_devices_;
  int num_microbatches_;
  int next_collective_ = 0;
  std::vector<Op> ops_;
  std::vector<double> slots_;  // parallel to ops_
};

}  // namespace vocab
