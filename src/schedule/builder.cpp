#include "schedule/builder.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace vocab {

ScheduleBuilder::ScheduleBuilder(std::string name, int num_devices, int num_microbatches)
    : name_(std::move(name)), num_devices_(num_devices), num_microbatches_(num_microbatches) {
  VOCAB_CHECK(num_devices >= 1, "schedule needs at least one device");
  VOCAB_CHECK(num_microbatches >= 1, "schedule needs at least one microbatch");
}

int ScheduleBuilder::add(Op op, double slot) {
  VOCAB_CHECK(op.device >= 0 && op.device < num_devices_,
              "op device " << op.device << " out of range");
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(std::move(op));
  slots_.push_back(slot);
  return ops_.back().id;
}

std::vector<int> ScheduleBuilder::add_collective(const std::vector<int>& devices, Stream stream,
                                                 double duration, int microbatch,
                                                 const std::string& label,
                                                 const std::vector<std::vector<int>>& per_device_deps,
                                                 double slot) {
  return add_collective(devices, stream, duration, microbatch, label, per_device_deps,
                        std::vector<double>(devices.size(), slot));
}

std::vector<int> ScheduleBuilder::add_collective(const std::vector<int>& devices, Stream stream,
                                                 double duration, int microbatch,
                                                 const std::string& label,
                                                 const std::vector<std::vector<int>>& per_device_deps,
                                                 const std::vector<double>& slots) {
  VOCAB_CHECK(slots.size() == devices.size(), "per-member slot arity mismatch");
  VOCAB_CHECK(devices.size() >= 2, "collective '" << label << "' needs >= 2 participants");
  VOCAB_CHECK(per_device_deps.empty() || per_device_deps.size() == devices.size(),
              "per_device_deps arity mismatch for collective '" << label << "'");
  const int cid = next_collective_++;
  std::vector<int> ids;
  ids.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    Op op;
    op.device = devices[i];
    op.stream = stream;
    op.kind = OpKind::Collective;
    op.microbatch = microbatch;
    op.duration = duration;
    op.collective = cid;
    op.label = label;
    if (!per_device_deps.empty()) op.deps = per_device_deps[i];
    ids.push_back(add(std::move(op), slots[i]));
  }
  return ids;
}

void ScheduleBuilder::add_dep(int op_id, int dep_id) {
  VOCAB_CHECK(op_id >= 0 && op_id < static_cast<int>(ops_.size()), "bad op id " << op_id);
  VOCAB_CHECK(dep_id >= 0 && dep_id < static_cast<int>(ops_.size()), "bad dep id " << dep_id);
  ops_[static_cast<std::size_t>(op_id)].deps.push_back(dep_id);
}

void ScheduleBuilder::add_alloc(int op_id, double bytes) {
  VOCAB_CHECK(op_id >= 0 && op_id < static_cast<int>(ops_.size()), "bad op id " << op_id);
  ops_[static_cast<std::size_t>(op_id)].alloc_bytes += bytes;
}

void ScheduleBuilder::add_free(int op_id, double bytes) {
  VOCAB_CHECK(op_id >= 0 && op_id < static_cast<int>(ops_.size()), "bad op id " << op_id);
  ops_[static_cast<std::size_t>(op_id)].free_bytes += bytes;
}

const Op& ScheduleBuilder::op(int id) const {
  VOCAB_CHECK(id >= 0 && id < static_cast<int>(ops_.size()), "bad op id " << id);
  return ops_[static_cast<std::size_t>(id)];
}

PipelineSchedule ScheduleBuilder::finalize(std::vector<double> base_bytes) {
  PipelineSchedule sched;
  sched.name = name_;
  sched.num_devices = num_devices_;
  sched.num_microbatches = num_microbatches_;
  sched.ops = ops_;
  sched.devices.resize(static_cast<std::size_t>(num_devices_));
  sched.base_bytes = std::move(base_bytes);

  // Stable sort each lane by (slot, microbatch, id).
  std::vector<int> order(ops_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto sa = slots_[static_cast<std::size_t>(a)];
    const auto sb = slots_[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    const auto& oa = ops_[static_cast<std::size_t>(a)];
    const auto& ob = ops_[static_cast<std::size_t>(b)];
    if (oa.microbatch != ob.microbatch) return oa.microbatch < ob.microbatch;
    return a < b;
  });
  for (const int id : order) {
    const Op& o = ops_[static_cast<std::size_t>(id)];
    sched.devices[static_cast<std::size_t>(o.device)].lane(o.stream).push_back(id);
  }

  sched.validate();
  return sched;
}

}  // namespace vocab
