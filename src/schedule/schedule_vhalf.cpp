#include "schedule/schedule_vhalf.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "common/error.h"
#include "schedule/builder.h"

namespace vocab {

namespace {

/// V-shape mapping: stage s of 2p lives on device min(s, 2p-1-s); chunk 0
/// descends the devices, chunk 1 ascends back.
int device_of_stage(int s, int p) { return s < p ? s : 2 * p - 1 - s; }
int chunk_of_stage(int s, int p) { return s < p ? 0 : 1; }

struct VHalfParams {
  int layers_per_stage = 0;
  double tF = 0, tBi = 0, tBw = 0;
  double act = 0;  // activation bytes per mb per stage
};

VHalfParams vhalf_params(const CostModel& cm, int p) {
  VOCAB_CHECK(p >= 2, "V-Half needs >= 2 devices");
  const int L = cm.config().num_layers;
  VOCAB_CHECK(L % (2 * p) == 0, "V-Half requires 2p | L (L=" << L << ", p=" << p << ")");
  VHalfParams v;
  v.layers_per_stage = L / (2 * p);
  v.tF = cm.time_f(v.layers_per_stage);
  v.tBi = cm.time_b_input(v.layers_per_stage);
  v.tBw = cm.time_b_weight(v.layers_per_stage);
  v.act = cm.activation_bytes_per_mb(v.layers_per_stage);
  return v;
}

// ---------------------------------------------------------------------------
// Quantum-grid issue order.
//
// In the cost model the six big per-cycle passes (F, B, W of both chunks)
// all take ~tF, so a device's interval is six tF-sized quanta (plus the
// small vocabulary passes, which ride along inside the quanta's slack). Ops
// are placed on a *global* quantum grid from the wave equations — F wave
// one quantum per stage hop, B+W wave two quanta per stage hop — and each
// device resolves the rare mod-6 collisions by shifting one quantum (the
// shift becomes wave slack the simulator absorbs). Slots are quantum
// indices; real timing comes from the dependency-driven simulation.
// ---------------------------------------------------------------------------

/// Tracks which quanta (mod 6) a device's cycle already uses and assigns the
/// next free one at or after the requested quantum.
class QuantumAllocator {
 public:
  int place(int device, int quantum) {
    auto& used = used_[device];
    while (used.contains(((quantum % 6) + 6) % 6)) ++quantum;
    used.insert(((quantum % 6) + 6) % 6);
    return quantum;
  }

 private:
  std::map<int, std::set<int>> used_;
};

/// Quantum assignment for the six big passes of every stage.
struct BigPassQuanta {
  std::vector<int> f, b, w;  // indexed by stage
};

/// `b_start`: quantum at which the backward wave begins (stage 2p-1's B).
BigPassQuanta assign_quanta(int p, int b_start) {
  const int stages = 2 * p;
  QuantumAllocator alloc;
  BigPassQuanta q;
  q.f.resize(static_cast<std::size_t>(stages));
  q.b.resize(static_cast<std::size_t>(stages));
  q.w.resize(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    q.f[static_cast<std::size_t>(s)] = alloc.place(device_of_stage(s, p), s);
  }
  int cursor = b_start;
  for (int s = stages - 1; s >= 0; --s) {
    const int dev = device_of_stage(s, p);
    q.b[static_cast<std::size_t>(s)] = alloc.place(dev, cursor);
    q.w[static_cast<std::size_t>(s)] = alloc.place(dev, q.b[static_cast<std::size_t>(s)] + 1);
    cursor = q.w[static_cast<std::size_t>(s)] + 1;
  }
  return q;
}

}  // namespace

PipelineSchedule build_vhalf(const CostModel& cm, int p, const std::string& name) {
  const VHalfParams v = vhalf_params(cm, p);
  const int m = cm.config().num_microbatches;
  const int stages = 2 * p;
  ScheduleBuilder b(name, p, m);

  // Device 0 hosts both vocabulary layers whole (stage 0 + stage 2p-1).
  auto f_dur = [&](int s) {
    double t = v.tF;
    if (s == 0) t += cm.time_input_fwd_full();
    if (s == stages - 1) t += cm.time_output_fwd_full();
    return t;
  };
  auto bi_dur = [&](int s) {
    double t = v.tBi;
    if (s == stages - 1) t += cm.time_output_bwd_full();
    return t;
  };
  auto bw_dur = [&](int s) {
    double t = v.tBw;
    if (s == 0) t += cm.time_input_bwd_full();
    return t;
  };

  // Backward wave starts right after the forward wave clears the last stage.
  const BigPassQuanta q = assign_quanta(p, stages + 1);

  for (int mb = 0; mb < m; ++mb) {
    std::vector<int> f_ids(static_cast<std::size_t>(stages));
    std::vector<int> b_ids(static_cast<std::size_t>(stages));
    auto slot = [&](int quantum) { return static_cast<double>(6 * mb + quantum); };
    for (int s = 0; s < stages; ++s) {
      Op op;
      op.device = device_of_stage(s, p);
      op.chunk = chunk_of_stage(s, p);
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = f_dur(s);
      op.label = "F" + std::to_string(mb) + (op.chunk ? "'" : "");
      op.alloc_bytes = v.act;
      if (s == stages - 1) op.alloc_bytes += cm.output_full_transient_bytes();
      if (s > 0) op.deps.push_back(f_ids[static_cast<std::size_t>(s - 1)]);
      f_ids[static_cast<std::size_t>(s)] = b.add(std::move(op), slot(q.f[static_cast<std::size_t>(s)]));
    }
    for (int s = stages - 1; s >= 0; --s) {
      Op op;
      op.device = device_of_stage(s, p);
      op.chunk = chunk_of_stage(s, p);
      op.kind = OpKind::BackwardInput;
      op.microbatch = mb;
      op.duration = bi_dur(s);
      op.label = "B" + std::to_string(mb) + (op.chunk ? "'" : "");
      op.free_bytes = v.act * (2.0 / 3.0);
      if (s == stages - 1) op.free_bytes += cm.output_full_transient_bytes();
      op.deps.push_back(f_ids[static_cast<std::size_t>(s)]);
      if (s < stages - 1) op.deps.push_back(b_ids[static_cast<std::size_t>(s + 1)]);
      b_ids[static_cast<std::size_t>(s)] = b.add(std::move(op), slot(q.b[static_cast<std::size_t>(s)]));
      // Weight-gradient pass right after its B (releases the remaining
      // third of the stage's activations).
      Op w;
      w.device = op.device;
      w.chunk = op.chunk;
      w.kind = OpKind::BackwardWeight;
      w.microbatch = mb;
      w.duration = bw_dur(s);
      w.label = "W" + std::to_string(mb) + (w.chunk ? "'" : "");
      w.free_bytes = v.act / 3.0;
      w.deps.push_back(b_ids[static_cast<std::size_t>(s)]);
      b.add(std::move(w), slot(q.w[static_cast<std::size_t>(s)]));
    }
  }

  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 2.0 * v.layers_per_stage * cm.transformer_layer_param_bytes());
  base_bytes[0] += 2.0 * cm.vocab_layer_param_bytes();  // input + output, whole
  return b.finalize(std::move(base_bytes));
}

PipelineSchedule build_vhalf_vocab(const CostModel& cm, int p, const std::string& name) {
  const VHalfParams v = vhalf_params(cm, p);
  const int m = cm.config().num_microbatches;
  const int stages = 2 * p;
  constexpr OutputAlgo algo = OutputAlgo::Alg1;  // the paper evaluates Vocab-1
  ScheduleBuilder b(name, p, m);

  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);

  std::vector<int> all_devices(static_cast<std::size_t>(p));
  std::iota(all_devices.begin(), all_devices.end(), 0);

  const double out_state = cm.output_shard_state_bytes(algo, p);
  const double in_state = cm.activation_bytes();

  // Figure 16's block: S right after C0; T one interval later (C1
  // overlapped); the backward wave two intervals (12 quanta) after S so C2
  // also overlaps compute.
  const int q_s = stages;
  const int q_t = stages + 6;
  const BigPassQuanta q = assign_quanta(p, stages + 12);

  for (int mb = 0; mb < m; ++mb) {
    auto slot = [&](int quantum, double pri = 0.0) {
      return static_cast<double>(6 * mb + quantum) + pri;
    };

    // Input layer forward, one interval ahead of F(mb, stage 0).
    std::vector<int> if_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::InputFwd;
      op.microbatch = mb;
      op.duration = tIF;
      op.label = "i" + std::to_string(mb);
      op.alloc_bytes = in_state;
      if_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot(-6, 0.1));
    }
    std::vector<std::vector<int>> iar_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) iar_deps[static_cast<std::size_t>(d)] = {if_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> iar = b.add_collective(all_devices, Stream::CommAlt,
                                                  cm.time_input_allreduce(p), mb,
                                                  "iAR" + std::to_string(mb), iar_deps,
                                                  slot(-6, 0.2));

    // Forward wave through all 2p stages.
    std::vector<int> f_ids(static_cast<std::size_t>(stages));
    for (int s = 0; s < stages; ++s) {
      Op op;
      op.device = device_of_stage(s, p);
      op.chunk = chunk_of_stage(s, p);
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = v.tF;
      op.label = "F" + std::to_string(mb) + (op.chunk ? "'" : "");
      op.alloc_bytes = v.act;
      op.deps.push_back(s == 0 ? iar[0] : f_ids[static_cast<std::size_t>(s - 1)]);
      f_ids[static_cast<std::size_t>(s)] = b.add(std::move(op), slot(q.f[static_cast<std::size_t>(s)]));
    }
    for (int d = 0; d < p; ++d) {
      b.add_free(d == 0 ? f_ids[0] : iar[static_cast<std::size_t>(d)], in_state);
    }

    // C0 broadcast, S, C1, T, C2.
    std::vector<std::vector<int>> c0_deps(static_cast<std::size_t>(p),
                                          {f_ids[static_cast<std::size_t>(stages - 1)]});
    const std::vector<int> c0 = b.add_collective(all_devices, Stream::Comm,
                                                 cm.time_x_broadcast(p), mb,
                                                 "C0." + std::to_string(mb), c0_deps,
                                                 slot(q_s, 0.1));
    std::vector<int> s_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::OutputS;
      op.microbatch = mb;
      op.duration = tS;
      op.label = "S" + std::to_string(mb);
      op.alloc_bytes = out_state;
      op.deps.push_back(c0[static_cast<std::size_t>(d)]);
      s_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot(q_s, 0.2));
    }
    std::vector<std::vector<int>> c1_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) c1_deps[static_cast<std::size_t>(d)] = {s_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> c1 = b.add_collective(all_devices, Stream::Comm,
                                                 cm.time_stats_allreduce(p), mb,
                                                 "C1." + std::to_string(mb), c1_deps,
                                                 slot(q_s, 0.3));
    std::vector<int> t_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::OutputT;
      op.microbatch = mb;
      op.duration = tT;
      op.label = "T" + std::to_string(mb);
      op.free_bytes = out_state;
      op.deps.push_back(c1[static_cast<std::size_t>(d)]);
      t_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot(q_t, 0.1));
    }
    std::vector<std::vector<int>> c2_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) c2_deps[static_cast<std::size_t>(d)] = {t_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> c2 = b.add_collective(all_devices, Stream::Comm,
                                                 cm.time_gradx_allreduce(p), mb,
                                                 "C2." + std::to_string(mb), c2_deps,
                                                 slot(q_t, 0.2));

    // Backward wave (B then W per stage).
    std::vector<int> b_ids(static_cast<std::size_t>(stages));
    for (int s = stages - 1; s >= 0; --s) {
      Op op;
      op.device = device_of_stage(s, p);
      op.chunk = chunk_of_stage(s, p);
      op.kind = OpKind::BackwardInput;
      op.microbatch = mb;
      op.duration = v.tBi;
      op.label = "B" + std::to_string(mb) + (op.chunk ? "'" : "");
      op.free_bytes = v.act * (2.0 / 3.0);
      op.deps.push_back(f_ids[static_cast<std::size_t>(s)]);
      if (s == stages - 1) {
        op.deps.push_back(c2[static_cast<std::size_t>(op.device)]);
      } else {
        op.deps.push_back(b_ids[static_cast<std::size_t>(s + 1)]);
      }
      b_ids[static_cast<std::size_t>(s)] = b.add(std::move(op), slot(q.b[static_cast<std::size_t>(s)]));
      Op w;
      w.device = op.device;
      w.chunk = op.chunk;
      w.kind = OpKind::BackwardWeight;
      w.microbatch = mb;
      w.duration = v.tBw;
      w.label = "W" + std::to_string(mb) + (w.chunk ? "'" : "");
      w.free_bytes = v.act / 3.0;
      w.deps.push_back(b_ids[static_cast<std::size_t>(s)]);
      b.add(std::move(w), slot(q.w[static_cast<std::size_t>(s)]));
    }

    // Input backward, one interval after B(stage 0).
    std::vector<std::vector<int>> ibb_deps(static_cast<std::size_t>(p), {b_ids[0]});
    const int q_j = q.w[0] + 1;
    const std::vector<int> ibb = b.add_collective(all_devices, Stream::CommAlt,
                                                  cm.time_x_broadcast(p), mb,
                                                  "jBC" + std::to_string(mb), ibb_deps,
                                                  slot(q_j, 0.1));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::InputBwd;
      op.microbatch = mb;
      op.duration = tIB;
      op.label = "j" + std::to_string(mb);
      op.deps.push_back(ibb[static_cast<std::size_t>(d)]);
      b.add(std::move(op), slot(q_j + 6, 0.2));
    }
  }

  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 2.0 * v.layers_per_stage * cm.transformer_layer_param_bytes() +
                                     2.0 * cm.vocab_shard_param_bytes(p));
  return b.finalize(std::move(base_bytes));
}

}  // namespace vocab
