#pragma once

// Building-block (lifespan / interval) analysis — the methodology of
// Qi et al. 2024 that the paper uses in §5.2 and Appendices B.1/D to reason
// about peak activation memory *analytically*: repeating a per-microbatch
// block with period `interval`, a device whose activations live `lifespan`
// holds ceil(lifespan / interval) microbatches at peak.

#include <vector>

#include "core/output_layer_shard.h"
#include "cost/cost_model.h"

namespace vocab {

/// Analytical per-device activation residency of a schedule family.
struct BlockAnalysis {
  double interval = 0.0;            ///< per-device work per microbatch (s)
  std::vector<double> lifespan;     ///< per device: activation lifetime (s)
  /// lifespan / interval, per device (fractional microbatches).
  [[nodiscard]] std::vector<double> peak_microbatches() const;
  [[nodiscard]] double max_peak_microbatches() const;
};

/// Plain 1F1B: lifespan 3p·tF on the first device, peak = p microbatches
/// when tB = 2 tF.
BlockAnalysis analyze_1f1b(const CostModel& cm, int p);

/// 1F1B + Vocabulary Parallelism: adds exactly num_barriers(algo) intervals
/// to every device's lifespan (the Figure 9 construction).
BlockAnalysis analyze_1f1b_vocab(const CostModel& cm, int p, OutputAlgo algo);

/// Interlaced pipeline: the synchronous TP phases stretch the lifespan to
/// ~1.5x of 1F1B's (Appendix B.1 / Figure 15).
BlockAnalysis analyze_interlaced(const CostModel& cm, int p);

/// V-Half (this repo's V construction): balanced lifespans across devices.
BlockAnalysis analyze_vhalf(const CostModel& cm, int p);

}  // namespace vocab
