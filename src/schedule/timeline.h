#pragma once

// ASCII timeline rendering of simulated schedules — the repo's stand-in for
// the paper's schedule figures (1, 9, 10, 15, 16).

#include <string>

#include "schedule/ops.h"
#include "sim/pipeline_sim.h"

namespace vocab {

/// Render the compute stream of every device as one text row of `width`
/// character buckets over [0, result.makespan]; each bucket shows the kind
/// of the op occupying most of it ('F', 'B', 'S', 'T', ...; '.' = idle).
/// `max_time` > 0 restricts the window (e.g. to a few steady-state
/// intervals).
std::string render_timeline(const PipelineSchedule& schedule, const SimResult& result,
                            int width = 120, double min_time = 0.0, double max_time = 0.0);

/// One-line-per-device summary: busy time, bubble fraction, peak memory.
std::string render_summary(const PipelineSchedule& schedule, const SimResult& result);

}  // namespace vocab
