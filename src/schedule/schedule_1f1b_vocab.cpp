#include "schedule/schedule_1f1b_vocab.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "schedule/builder.h"
#include "schedule/layer_assignment.h"

namespace vocab {

namespace {

// ---------------------------------------------------------------------------
// Per-device steady-state cycle layout.
//
// Each device repeats an interval I = tF + tB + tS + tT + tIF + tIB of work
// per microbatch. F is anchored at position 0 of the device's cycle (device
// d's cycle grid is phase-shifted by phi_d = d*tF — the pipeline skew). The
// backward pass B must satisfy the ascending wave constraint
//     start(B(mb, d)) >= start(B(mb, d+1)) + tB,
// which, because I > tF + tB once vocabulary work exists, forces B's
// position *within* the cycle to rotate from device to device. The paper's
// §5.2 freedom — "output layer passes can be scheduled arbitrarily in each
// pipeline device" — is exactly what makes this feasible: the small passes
// {S, T, i, j} are bin-packed per device into the two gaps the rotated B
// leaves, and B's position is rounded up to the nearest packing boundary
// (the tiny rounding becomes wave slack, not a bubble).
// ---------------------------------------------------------------------------

struct Item {
  char kind;       // 'S', 'T', 'i', 'j'
  double duration;
};

struct DeviceLayout {
  int b_lag = 0;          ///< B(mb) runs in device-local cycle mb + b_lag
  double b_pos = 0.0;     ///< B's position within the cycle
  double global_b = 0.0;  ///< steady-state global start of B(0) on this device
  // Position within the cycle of each small pass, keyed by kind.
  double pos_s = 0, pos_t = 0, pos_i = 0, pos_j = 0;
  int lag_s = 0, lag_t = 0, lag_i = 0, lag_j = 0;
};

double& pos_of(DeviceLayout& dl, char kind) {
  switch (kind) {
    case 'S': return dl.pos_s;
    case 'T': return dl.pos_t;
    case 'i': return dl.pos_i;
    default: return dl.pos_j;
  }
}

/// Pack `items` into gap1 [tF, b_pos) and gap2 [b_pos + tB, I), choosing the
/// smallest feasible b_pos >= `b_pos_req`. Returns the chosen b_pos and
/// writes item positions into `dl`. `forced_gap2_mask` marks items that must
/// come after B (Alg2's delayed T pass); `forced_gap1_mask` marks items that
/// must come before it (Alg1's T, which gates B via barrier C2).
double pack_cycle(DeviceLayout& dl, const std::vector<Item>& items, double tF, double tB,
                  double interval, double b_pos_req, unsigned forced_gap1_mask,
                  unsigned forced_gap2_mask) {
  const auto n = items.size();
  VOCAB_CHECK(n <= 8, "too many small passes to pack");
  double best_pos = -1.0;
  unsigned best_mask = 0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if ((mask & forced_gap2_mask) != 0) continue;   // forced-gap2 items excluded
    if ((mask & forced_gap1_mask) != forced_gap1_mask) continue;  // must include
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) sum += items[i].duration;
    }
    const double pos = tF + sum;
    if (pos + 1e-12 >= b_pos_req && (best_pos < 0 || pos < best_pos)) {
      best_pos = pos;
      best_mask = mask;
    }
  }
  if (best_pos < 0) return -1.0;  // infeasible at this b_pos_req: caller carries
  // Lay out gap1 items after F, then B, then gap2 items.
  double cursor = tF;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (1u << i)) {
      pos_of(dl, items[i].kind) = cursor;
      cursor += items[i].duration;
    }
  }
  cursor = best_pos + tB;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(best_mask & (1u << i))) {
      pos_of(dl, items[i].kind) = cursor;
      cursor += items[i].duration;
    }
  }
  VOCAB_CHECK(cursor <= interval + 1e-9, "cycle overpacked: " << cursor << " > " << interval);
  dl.b_pos = best_pos;
  return best_pos;
}

struct VocabLayout {
  double interval = 0.0;
  double s_global = 0.0;  ///< global steady-state offset of S(0) (all devices)
  int gap = 0;            ///< effective inserted-interval count
  std::vector<DeviceLayout> devices;
};

VocabLayout compute_layout(const CostModel& cm, int p, OutputAlgo algo,
                           int inserted_intervals = -1) {
  VOCAB_CHECK(algo == OutputAlgo::Alg1 || algo == OutputAlgo::Alg2,
              "vocabulary-parallel schedules use Alg1 or Alg2");
  const int layers = cm.config().num_layers / p;
  const double tF = cm.time_f(layers);
  const double tB = cm.time_b_full(layers);
  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);

  VocabLayout lay;
  lay.interval = tF + tB + tS + tT + tIF + tIB;
  const double I = lay.interval;
  lay.s_global = p * tF + cm.time_x_broadcast(p);
  lay.devices.resize(static_cast<std::size_t>(p));

  // §5.2: B on the last stage runs num_barriers(algo) whole intervals after
  // S, so each communication barrier overlaps an interval of other
  // microbatches' compute (peak activation memory grows by exactly that many
  // microbatches: p+2 for Alg1, p+1 for Alg2).
  // Alg1 needs at least one interval: B transitively waits on S -> C1 -> T
  // -> C2, which cannot complete inside B's own cycle.
  const int min_gap = algo == OutputAlgo::Alg1 ? 1 : 0;
  lay.gap = std::max(min_gap, inserted_intervals >= 0 ? inserted_intervals
                                                      : num_barriers(algo));
  const double b_last_global = lay.s_global + lay.gap * I;

  const std::vector<Item> items{{'S', tS}, {'T', tT}, {'i', tIF}, {'j', tIB}};
  // Alg1: S and T both precede B in every lane (items lay out in S-then-T
  // order within the gap), since B transitively waits on both via C2.
  // Alg2's T is free — "arbitrarily delayed" in the paper means it has no
  // consumers, so it may sit anywhere after C1; leaving it packable keeps
  // the B-wave boundaries reachable and releases the S->T shard state early.
  const unsigned forced_gap2 = 0u;
  const unsigned forced_gap1 = algo == OutputAlgo::Alg1 ? 0b0011u : 0u;

  double wave = b_last_global;  // required global start of B on this device
  for (int d = p - 1; d >= 0; --d) {
    DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
    const double phi = d * tF;
    int lag = static_cast<int>(std::floor((wave - phi) / I));
    double pos_req = wave - phi - lag * I;
    if (pos_req < tF) {
      pos_req = tF;  // B can at best follow this cycle's F
    }
    if (pos_req > I - tB + 1e-9) {  // doesn't fit this cycle: carry into next
      ++lag;
      pos_req = tF;
    }
    double pos = pack_cycle(dl, items, tF, tB, I, pos_req, forced_gap1, forced_gap2);
    if (pos < 0) {  // no feasible boundary >= pos_req in this cycle: carry
      ++lag;
      pos = pack_cycle(dl, items, tF, tB, I, tF, forced_gap1, forced_gap2);
      VOCAB_CHECK(pos >= 0, "cycle packing failed even at the cycle head");
    }
    dl.b_lag = lag;
    dl.global_b = phi + lag * I + pos;
    // The rounding slack feeds the wave upstream.
    wave = dl.global_b + tB;

    // Small-pass cycle lags. S(mb) needs C0(mb), done by lay.s_global; with
    // ceil() the hosting cycle starts at or after that, so S never waits.
    dl.lag_s = static_cast<int>(std::ceil((lay.s_global - phi - dl.pos_s) / I - 1e-9));
    if (algo == OutputAlgo::Alg1) {
      // T must start after barrier C1 and *finish early enough* that barrier
      // C2 completes before B(mb, p-1)'s slot at s_global + 2I — otherwise
      // the slowest device's T delays every backward wave. The window is
      // wider than one interval, so a feasible cycle always exists; place T
      // as late as the deadline allows (maximizing C1 overlap).
      const double c1_end = lay.s_global + tS + cm.time_stats_allreduce(p);
      const double deadline = b_last_global - cm.time_gradx_allreduce(p) - tT;
      const int lo = static_cast<int>(std::ceil((c1_end - phi - dl.pos_t) / I - 1e-9));
      const int hi = static_cast<int>(std::floor((deadline - phi - dl.pos_t) / I + 1e-9));
      // T must precede B in this device's issue order (B waits on C2 <- T);
      // with fewer inserted intervals than barriers the deadline window can
      // close — clamp to the latest legal cycle and let the barrier stall,
      // which is exactly the behaviour the interval ablation demonstrates.
      dl.lag_t = std::min(std::max({lo, hi, dl.lag_s}), dl.b_lag);
    } else {
      // Alg2: one interval after S, like Alg1 — early enough to release the
      // S->T shard state quickly, late enough that waiting on C1 can never
      // stall a lane ahead of the forward wave the barrier itself needs.
      dl.lag_t = dl.lag_s + 1;
    }
    // i(mb) must complete (on every device) before F(mb, 0): place it one
    // global interval early.
    dl.lag_i = static_cast<int>(std::floor((-I - phi - dl.pos_i) / I)) + 1;
    lay.devices[static_cast<std::size_t>(d)] = dl;
  }
  // j(mb) follows the jBC broadcast of B(mb, 0)'s gradient.
  const double j_ready = lay.devices[0].global_b + tB + cm.time_x_broadcast(p);
  for (int d = 0; d < p; ++d) {
    DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
    const double phi = d * tF;
    dl.lag_j = static_cast<int>(std::ceil((j_ready - phi - dl.pos_j) / I - 1e-9));
  }
  return lay;
}

}  // namespace

VocabBlockOffsets vocab_block_offsets(const CostModel& cm, int p, OutputAlgo algo) {
  const VocabLayout lay = compute_layout(cm, p, algo);
  const int layers = cm.config().num_layers / p;
  const double tF = cm.time_f(layers);

  VocabBlockOffsets off;
  off.interval = lay.interval;
  off.f.resize(static_cast<std::size_t>(p));
  off.b.resize(static_cast<std::size_t>(p));
  off.t.resize(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
    off.f[static_cast<std::size_t>(d)] = d * tF;
    off.b[static_cast<std::size_t>(d)] = dl.global_b;
    off.t[static_cast<std::size_t>(d)] = d * tF + dl.lag_t * lay.interval + dl.pos_t;
  }
  off.c0 = p * tF;
  off.s = lay.s_global;
  off.c1 = off.s + cm.time_output_s(algo, p);
  off.c2 = algo == OutputAlgo::Alg1 ? off.s + lay.interval + cm.time_output_t(algo, p) : -1.0;
  return off;
}

PipelineSchedule build_1f1b_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                  const std::string& name, int inserted_intervals) {
  const int m = cm.config().num_microbatches;
  VOCAB_CHECK(m >= p, "need at least p microbatches");
  VOCAB_CHECK(p >= 2, "vocabulary parallelism needs >= 2 devices");
  const LayerAssignment assign = uniform_assignment(cm.config().num_layers, p);
  const int layers = assign.layers_per_stage[0];

  const std::string sched_name =
      name.empty() ? std::string("1f1b-") + to_string(algo) : name;
  ScheduleBuilder b(sched_name, p, m);

  const VocabLayout lay = compute_layout(cm, p, algo, inserted_intervals);
  const int gap = lay.gap;
  const double I = lay.interval;
  const double tF = cm.time_f(layers);
  const double tB = cm.time_b_full(layers);
  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);

  std::vector<int> all_devices(static_cast<std::size_t>(p));
  std::iota(all_devices.begin(), all_devices.end(), 0);

  const double act = cm.activation_bytes_per_mb(layers);
  const double out_state = cm.output_shard_state_bytes(algo, p);
  const double in_state = cm.activation_bytes();  // held input-layer output

  // Device-local slot: the op's steady-state time under the packed layout.
  auto slot_of = [&](int d, int mb, int lag, double pos) {
    return d * tF + (mb + lag) * I + pos;
  };

  for (int mb = 0; mb < m; ++mb) {
    // --- input layer forward (well ahead of F(mb, 0), Appendix C) ----------
    std::vector<int> if_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::InputFwd;
      op.microbatch = mb;
      op.duration = tIF;
      op.label = "i" + std::to_string(mb);
      op.alloc_bytes = in_state;
      if_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_i, dl.pos_i));
    }
    std::vector<std::vector<int>> iar_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) iar_deps[static_cast<std::size_t>(d)] = {if_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> iar = b.add_collective(
        all_devices, Stream::CommAlt, cm.time_input_allreduce(p), mb, "iAR" + std::to_string(mb),
        iar_deps, (mb - 1) * I);

    // --- transformer forwards ------------------------------------------------
    std::vector<int> f_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = tF;
      op.label = "F" + std::to_string(mb);
      op.alloc_bytes = act;
      if (d == 0) {
        op.deps.push_back(iar[0]);
      } else {
        op.deps.push_back(f_ids[static_cast<std::size_t>(d - 1)]);
      }
      f_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, 0, 0.0));
    }
    // The held input-layer output is dropped once consumed / all-reduced.
    for (int d = 0; d < p; ++d) {
      b.add_free(d == 0 ? f_ids[0] : iar[static_cast<std::size_t>(d)], in_state);
    }

    // --- C0: broadcast X to all shards --------------------------------------
    std::vector<std::vector<int>> c0_deps(static_cast<std::size_t>(p),
                                          {f_ids[static_cast<std::size_t>(p - 1)]});
    const std::vector<int> c0 =
        b.add_collective(all_devices, Stream::Comm, cm.time_x_broadcast(p), mb,
                         "C0." + std::to_string(mb), c0_deps, p * tF + mb * I);

    // --- S pass on every device ----------------------------------------------
    std::vector<int> s_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::OutputS;
      op.microbatch = mb;
      op.duration = tS;
      op.label = "S" + std::to_string(mb);
      op.alloc_bytes = out_state;
      op.deps.push_back(c0[static_cast<std::size_t>(d)]);
      s_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_s, dl.pos_s));
    }

    // --- C1 barrier ------------------------------------------------------------
    std::vector<std::vector<int>> c1_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) c1_deps[static_cast<std::size_t>(d)] = {s_ids[static_cast<std::size_t>(d)]};
    const double c1_time = algo == OutputAlgo::Alg1
                               ? cm.time_stats_allreduce(p)
                               : cm.time_stats_allreduce(p) + cm.time_gradx_allreduce(p);
    const std::vector<int> c1 =
        b.add_collective(all_devices, Stream::Comm, c1_time, mb, "C1." + std::to_string(mb),
                         c1_deps, lay.s_global + tS + mb * I);

    // --- T passes / C2 / backwards ----------------------------------------------
    std::vector<int> t_ids(static_cast<std::size_t>(p));
    std::vector<int> b_ids(static_cast<std::size_t>(p));
    auto make_t = [&](int d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::OutputT;
      op.microbatch = mb;
      op.duration = tT;
      op.label = "T" + std::to_string(mb);
      op.free_bytes = out_state;
      op.deps.push_back(c1[static_cast<std::size_t>(d)]);
      t_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_t, dl.pos_t));
    };
    auto make_b = [&](int d, int gate_op) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardFull;
      op.microbatch = mb;
      op.duration = tB;
      op.label = "B" + std::to_string(mb);
      op.free_bytes = act;
      op.deps.push_back(f_ids[static_cast<std::size_t>(d)]);
      op.deps.push_back(gate_op);
      b_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.b_lag, dl.b_pos));
    };

    if (algo == OutputAlgo::Alg1) {
      for (int d = 0; d < p; ++d) make_t(d);
      std::vector<std::vector<int>> c2_deps(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) c2_deps[static_cast<std::size_t>(d)] = {t_ids[static_cast<std::size_t>(d)]};
      // C2's comm-lane position must follow every device's T issue slot —
      // place it at the backward wave's start (gap intervals after S).
      const std::vector<int> c2 =
          b.add_collective(all_devices, Stream::Comm, cm.time_gradx_allreduce(p), mb,
                           "C2." + std::to_string(mb), c2_deps,
                           std::max(lay.s_global + gap * I - 0.5 * tT,
                                    lay.s_global + tS + tT) +
                               mb * I);
      for (int d = p - 1; d >= 0; --d) {
        make_b(d, d == p - 1 ? c2[static_cast<std::size_t>(d)]
                             : b_ids[static_cast<std::size_t>(d + 1)]);
      }
    } else {
      for (int d = p - 1; d >= 0; --d) {
        make_b(d, d == p - 1 ? c1[static_cast<std::size_t>(d)]
                             : b_ids[static_cast<std::size_t>(d + 1)]);
      }
      for (int d = 0; d < p; ++d) make_t(d);
    }

    // --- input layer backward ------------------------------------------------
    std::vector<std::vector<int>> ibb_deps(static_cast<std::size_t>(p), {b_ids[0]});
    const std::vector<int> ibb =
        b.add_collective(all_devices, Stream::CommAlt, cm.time_x_broadcast(p), mb,
                         "jBC" + std::to_string(mb), ibb_deps,
                         lay.devices[0].global_b + tB + mb * I);
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::InputBwd;
      op.microbatch = mb;
      op.duration = tIB;
      op.label = "j" + std::to_string(mb);
      op.deps.push_back(ibb[static_cast<std::size_t>(d)]);
      b.add(std::move(op), slot_of(d, mb, dl.lag_j, dl.pos_j));
    }
  }

  // Resident bytes: uniform transformer params + both vocab shards.
  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 layers * cm.transformer_layer_param_bytes() +
                                     2.0 * cm.vocab_shard_param_bytes(p));
  return b.finalize(std::move(base_bytes));
}

}  // namespace vocab
