#include "schedule/schedule_zb.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "schedule/builder.h"
#include "schedule/layer_assignment.h"

namespace vocab {

namespace {

// ---------------------------------------------------------------------------
// Per-device steady-state cycle layout with a split backward.
//
// The cycle of schedule_1f1b_vocab.cpp, with B replaced by BI + BW:
//     I = tF + tBI + tBW + tS + tT + tIF + tIB.
// BI keeps 1F1B-vocab's rotating-wave role — the ascending constraint
//     start(BI(mb, d)) >= start(BI(mb, d+1)) + tBI
// now propagates at tBI per hop (roughly half of tB), which is the
// zero-bubble effect: the drain wave crosses the pipeline twice as fast.
// BW joins the small passes {S, T, i, j} as a fifth packable block, forced
// into the gap after BI (F < BI < BW is the verifier's semantic order), and
// may additionally lag `w_delay` whole cycles — the controllable-memory
// dial: each deferred BW holds one more third of a microbatch's activations.
// ---------------------------------------------------------------------------

struct Item {
  char kind;  // 'S', 'T', 'i', 'j', 'w'
  double duration;
};

struct DeviceLayout {
  int b_lag = 0;          ///< BI(mb) runs in device-local cycle mb + b_lag
  double b_pos = 0.0;     ///< BI's position within the cycle
  double global_b = 0.0;  ///< steady-state global start of BI(0) on this device
  // Position within the cycle of each packable pass, keyed by kind.
  double pos_s = 0, pos_t = 0, pos_i = 0, pos_j = 0, pos_w = 0;
  int lag_s = 0, lag_t = 0, lag_i = 0, lag_j = 0, lag_w = 0;
};

double& pos_of(DeviceLayout& dl, char kind) {
  switch (kind) {
    case 'S': return dl.pos_s;
    case 'T': return dl.pos_t;
    case 'i': return dl.pos_i;
    case 'w': return dl.pos_w;
    default: return dl.pos_j;
  }
}

/// Pack `items` into gap1 [tF, b_pos) and gap2 [b_pos + tBI, I), choosing the
/// smallest feasible b_pos >= `b_pos_req` (identical to the 1F1B-vocab
/// packer, with tBI as the pivot block). Masks force items before/after BI.
double pack_cycle(DeviceLayout& dl, const std::vector<Item>& items, double tF, double tBI,
                  double interval, double b_pos_req, unsigned forced_gap1_mask,
                  unsigned forced_gap2_mask) {
  const auto n = items.size();
  VOCAB_CHECK(n <= 8, "too many small passes to pack");
  double best_pos = -1.0;
  unsigned best_mask = 0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if ((mask & forced_gap2_mask) != 0) continue;                 // must follow BI
    if ((mask & forced_gap1_mask) != forced_gap1_mask) continue;  // must precede BI
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) sum += items[i].duration;
    }
    const double pos = tF + sum;
    if (pos + 1e-12 >= b_pos_req && (best_pos < 0 || pos < best_pos)) {
      best_pos = pos;
      best_mask = mask;
    }
  }
  if (best_pos < 0) return -1.0;  // infeasible at this b_pos_req: caller carries
  double cursor = tF;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (1u << i)) {
      pos_of(dl, items[i].kind) = cursor;
      cursor += items[i].duration;
    }
  }
  cursor = best_pos + tBI;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(best_mask & (1u << i))) {
      pos_of(dl, items[i].kind) = cursor;
      cursor += items[i].duration;
    }
  }
  VOCAB_CHECK(cursor <= interval + 1e-9, "cycle overpacked: " << cursor << " > " << interval);
  dl.b_pos = best_pos;
  return best_pos;
}

struct ZbLayout {
  double interval = 0.0;
  double s_global = 0.0;  ///< global steady-state offset of S(0) (all devices)
  int gap = 0;            ///< effective inserted-interval count
  std::vector<DeviceLayout> devices;
};

ZbLayout compute_layout(const CostModel& cm, int p, OutputAlgo algo, const ZbOptions& opts) {
  VOCAB_CHECK(algo == OutputAlgo::Alg1 || algo == OutputAlgo::Alg2,
              "vocabulary-parallel schedules use Alg1 or Alg2");
  const int layers = cm.config().num_layers / p;
  const double tF = cm.time_f(layers);
  const double tBI = cm.time_b_input(layers);
  const double tBW = cm.time_b_weight(layers);
  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);

  ZbLayout lay;
  lay.interval = tF + tBI + tBW + tS + tT + tIF + tIB;
  const double I = lay.interval;
  lay.s_global = p * tF + cm.time_x_broadcast(p);
  lay.devices.resize(static_cast<std::size_t>(p));

  // Same barrier-overlap reasoning as 1F1B-vocab: BI on the last stage runs
  // `gap` whole intervals after S so the communication barriers overlap
  // other microbatches' compute.
  const int min_gap = algo == OutputAlgo::Alg1 ? 1 : 0;
  lay.gap = std::max(min_gap, opts.inserted_intervals >= 0 ? opts.inserted_intervals
                                                           : num_barriers(algo));
  const double b_last_global = lay.s_global + lay.gap * I;

  // Item order fixes the mask bit layout: w=1, S=2, T=4, i=8, j=16. BW leads
  // the vector so the gap2 cursor lays it out directly after BI — filler work
  // that overlaps the jBC broadcast latency instead of stacking on top of it
  // (j, the only latency-bound gap2 item, must come last in the cycle).
  const std::vector<Item> items{{'w', tBW}, {'S', tS}, {'T', tT}, {'i', tIF}, {'j', tIB}};
  // BW must follow its own BI (semantic order F < BI < BW), so it can never
  // sit in gap1. Alg1 additionally forces S and T before BI (BI waits on C2).
  const unsigned forced_gap2 = 0b00001u;
  const unsigned forced_gap1 = algo == OutputAlgo::Alg1 ? 0b00110u : 0u;

  double wave = b_last_global;  // required global start of BI on this device
  for (int d = p - 1; d >= 0; --d) {
    DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
    const double phi = d * tF;
    int lag = static_cast<int>(std::floor((wave - phi) / I));
    double pos_req = wave - phi - lag * I;
    if (pos_req < tF) {
      pos_req = tF;  // BI can at best follow this cycle's F
    }
    if (pos_req > I - tBI - tBW + 1e-9) {  // BI+BW don't fit: carry into next
      ++lag;
      pos_req = tF;
    }
    double pos = pack_cycle(dl, items, tF, tBI, I, pos_req, forced_gap1, forced_gap2);
    if (pos < 0) {  // no feasible boundary >= pos_req in this cycle: carry
      ++lag;
      pos = pack_cycle(dl, items, tF, tBI, I, tF, forced_gap1, forced_gap2);
      VOCAB_CHECK(pos >= 0, "cycle packing failed even at the cycle head");
    }
    dl.b_lag = lag;
    dl.global_b = phi + lag * I + pos;
    // The rounding slack feeds the wave upstream — at tBI per hop, the
    // zero-bubble speedup over the tB-per-hop 1F1B wave.
    wave = dl.global_b + tBI;

    // BW lags its BI by w_delay whole cycles (0 = same cycle, packed after).
    dl.lag_w = dl.b_lag + opts.w_delay;

    // Small-pass cycle lags, exactly as in the 1F1B-vocab layout.
    dl.lag_s = static_cast<int>(std::ceil((lay.s_global - phi - dl.pos_s) / I - 1e-9));
    if (algo == OutputAlgo::Alg1) {
      const double c1_end = lay.s_global + tS + cm.time_stats_allreduce(p);
      const double deadline = b_last_global - cm.time_gradx_allreduce(p) - tT;
      const int lo = static_cast<int>(std::ceil((c1_end - phi - dl.pos_t) / I - 1e-9));
      const int hi = static_cast<int>(std::floor((deadline - phi - dl.pos_t) / I + 1e-9));
      dl.lag_t = std::min(std::max({lo, hi, dl.lag_s}), dl.b_lag);
    } else {
      dl.lag_t = dl.lag_s + 1;
    }
    dl.lag_i = static_cast<int>(std::floor((-I - phi - dl.pos_i) / I)) + 1;
    lay.devices[static_cast<std::size_t>(d)] = dl;
  }
  // j(mb) follows the jBC broadcast of BI(mb, 0)'s gradient.
  const double j_ready = lay.devices[0].global_b + tBI + cm.time_x_broadcast(p);
  for (int d = 0; d < p; ++d) {
    DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
    const double phi = d * tF;
    dl.lag_j = static_cast<int>(std::ceil((j_ready - phi - dl.pos_j) / I - 1e-9));
  }
  return lay;
}

}  // namespace

PipelineSchedule build_zb_vocab(const CostModel& cm, int p, OutputAlgo algo,
                                const std::string& name, ZbOptions opts) {
  const int m = cm.config().num_microbatches;
  VOCAB_CHECK(m >= p, "need at least p microbatches");
  VOCAB_CHECK(p >= 2, "vocabulary parallelism needs >= 2 devices");
  VOCAB_CHECK(opts.w_delay >= 0 && opts.w_delay <= 8,
              "w_delay must be in [0, 8], got " << opts.w_delay);
  const LayerAssignment assign = uniform_assignment(cm.config().num_layers, p);
  const int layers = assign.layers_per_stage[0];

  const std::string sched_name =
      name.empty() ? std::string("zb-vocab-") + (algo == OutputAlgo::Alg1 ? "1" : "2") + "-w" +
                         std::to_string(opts.w_delay)
                   : name;
  ScheduleBuilder b(sched_name, p, m);

  const ZbLayout lay = compute_layout(cm, p, algo, opts);
  const int gap = lay.gap;
  const double I = lay.interval;
  const double tF = cm.time_f(layers);
  const double tBI = cm.time_b_input(layers);
  const double tBW = cm.time_b_weight(layers);
  const double tS = cm.time_output_s(algo, p);
  const double tT = cm.time_output_t(algo, p);
  const double tIF = cm.time_input_shard_fwd(p);
  const double tIB = cm.time_input_shard_bwd(p);

  std::vector<int> all_devices(static_cast<std::size_t>(p));
  std::iota(all_devices.begin(), all_devices.end(), 0);

  const double act = cm.activation_bytes_per_mb(layers);
  const double out_state = cm.output_shard_state_bytes(algo, p);
  const double in_state = cm.activation_bytes();  // held input-layer output

  auto slot_of = [&](int d, int mb, int lag, double pos) {
    return d * tF + (mb + lag) * I + pos;
  };

  for (int mb = 0; mb < m; ++mb) {
    // --- input layer forward (well ahead of F(mb, 0), Appendix C) ----------
    std::vector<int> if_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::InputFwd;
      op.microbatch = mb;
      op.duration = tIF;
      op.label = "i" + std::to_string(mb);
      op.alloc_bytes = in_state;
      if_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_i, dl.pos_i));
    }
    std::vector<std::vector<int>> iar_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) iar_deps[static_cast<std::size_t>(d)] = {if_ids[static_cast<std::size_t>(d)]};
    const std::vector<int> iar = b.add_collective(
        all_devices, Stream::CommAlt, cm.time_input_allreduce(p), mb, "iAR" + std::to_string(mb),
        iar_deps, (mb - 1) * I);

    // --- transformer forwards ------------------------------------------------
    std::vector<int> f_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      Op op;
      op.device = d;
      op.kind = OpKind::Forward;
      op.microbatch = mb;
      op.duration = tF;
      op.label = "F" + std::to_string(mb);
      op.alloc_bytes = act;
      if (d == 0) {
        op.deps.push_back(iar[0]);
      } else {
        op.deps.push_back(f_ids[static_cast<std::size_t>(d - 1)]);
      }
      f_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, 0, 0.0));
    }
    for (int d = 0; d < p; ++d) {
      b.add_free(d == 0 ? f_ids[0] : iar[static_cast<std::size_t>(d)], in_state);
    }

    // --- C0: broadcast X to all shards --------------------------------------
    std::vector<std::vector<int>> c0_deps(static_cast<std::size_t>(p),
                                          {f_ids[static_cast<std::size_t>(p - 1)]});
    const std::vector<int> c0 =
        b.add_collective(all_devices, Stream::Comm, cm.time_x_broadcast(p), mb,
                         "C0." + std::to_string(mb), c0_deps, p * tF + mb * I);

    // --- S pass on every device ----------------------------------------------
    std::vector<int> s_ids(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::OutputS;
      op.microbatch = mb;
      op.duration = tS;
      op.label = "S" + std::to_string(mb);
      op.alloc_bytes = out_state;
      op.deps.push_back(c0[static_cast<std::size_t>(d)]);
      s_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_s, dl.pos_s));
    }

    // --- C1 barrier ------------------------------------------------------------
    std::vector<std::vector<int>> c1_deps(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) c1_deps[static_cast<std::size_t>(d)] = {s_ids[static_cast<std::size_t>(d)]};
    const double c1_time = algo == OutputAlgo::Alg1
                               ? cm.time_stats_allreduce(p)
                               : cm.time_stats_allreduce(p) + cm.time_gradx_allreduce(p);
    const std::vector<int> c1 =
        b.add_collective(all_devices, Stream::Comm, c1_time, mb, "C1." + std::to_string(mb),
                         c1_deps, lay.s_global + tS + mb * I);

    // --- T passes / C2 / split backwards ---------------------------------------
    std::vector<int> t_ids(static_cast<std::size_t>(p));
    std::vector<int> bi_ids(static_cast<std::size_t>(p));
    auto make_t = [&](int d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::OutputT;
      op.microbatch = mb;
      op.duration = tT;
      op.label = "T" + std::to_string(mb);
      op.free_bytes = out_state;
      op.deps.push_back(c1[static_cast<std::size_t>(d)]);
      t_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.lag_t, dl.pos_t));
    };
    // BI frees the two thirds of the activations the weight pass won't need;
    // BW (below) releases the final third when it consumes the stashed grads.
    auto make_bi = [&](int d, int gate_op) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardInput;
      op.microbatch = mb;
      op.duration = tBI;
      op.label = "B" + std::to_string(mb);
      op.free_bytes = act * (2.0 / 3.0);
      op.deps.push_back(f_ids[static_cast<std::size_t>(d)]);
      op.deps.push_back(gate_op);
      bi_ids[static_cast<std::size_t>(d)] = b.add(std::move(op), slot_of(d, mb, dl.b_lag, dl.b_pos));
    };

    if (algo == OutputAlgo::Alg1) {
      for (int d = 0; d < p; ++d) make_t(d);
      std::vector<std::vector<int>> c2_deps(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) c2_deps[static_cast<std::size_t>(d)] = {t_ids[static_cast<std::size_t>(d)]};
      const std::vector<int> c2 =
          b.add_collective(all_devices, Stream::Comm, cm.time_gradx_allreduce(p), mb,
                           "C2." + std::to_string(mb), c2_deps,
                           std::max(lay.s_global + gap * I - 0.5 * tT,
                                    lay.s_global + tS + tT) +
                               mb * I);
      for (int d = p - 1; d >= 0; --d) {
        make_bi(d, d == p - 1 ? c2[static_cast<std::size_t>(d)]
                              : bi_ids[static_cast<std::size_t>(d + 1)]);
      }
    } else {
      for (int d = p - 1; d >= 0; --d) {
        make_bi(d, d == p - 1 ? c1[static_cast<std::size_t>(d)]
                              : bi_ids[static_cast<std::size_t>(d + 1)]);
      }
      for (int d = 0; d < p; ++d) make_t(d);
    }

    // --- deferred weight passes ------------------------------------------------
    // Per-device lane slots are monotone in mb (equal lags), so each stage's
    // BW ops execute in microbatch order — the property that keeps parameter
    // gradient accumulation bit-identical to the combined backward.
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::BackwardWeight;
      op.microbatch = mb;
      op.duration = tBW;
      op.label = "W" + std::to_string(mb);
      op.free_bytes = act / 3.0;
      op.deps.push_back(bi_ids[static_cast<std::size_t>(d)]);
      b.add(std::move(op), slot_of(d, mb, dl.lag_w, dl.pos_w));
    }

    // --- input layer backward ------------------------------------------------
    std::vector<std::vector<int>> ibb_deps(static_cast<std::size_t>(p), {bi_ids[0]});
    const std::vector<int> ibb =
        b.add_collective(all_devices, Stream::CommAlt, cm.time_x_broadcast(p), mb,
                         "jBC" + std::to_string(mb), ibb_deps,
                         lay.devices[0].global_b + tBI + mb * I);
    for (int d = 0; d < p; ++d) {
      const DeviceLayout& dl = lay.devices[static_cast<std::size_t>(d)];
      Op op;
      op.device = d;
      op.kind = OpKind::InputBwd;
      op.microbatch = mb;
      op.duration = tIB;
      op.label = "j" + std::to_string(mb);
      op.deps.push_back(ibb[static_cast<std::size_t>(d)]);
      b.add(std::move(op), slot_of(d, mb, dl.lag_j, dl.pos_j));
    }
  }

  std::vector<double> base_bytes(static_cast<std::size_t>(p),
                                 layers * cm.transformer_layer_param_bytes() +
                                     2.0 * cm.vocab_shard_param_bytes(p));
  return b.finalize(std::move(base_bytes));
}

}  // namespace vocab
