#pragma once

// Communication group standing in for NCCL.
//
// Each simulated pipeline device is an OS thread (or, under the shm
// transport's multi-process mode, an OS process); a DeviceGroup provides the
// collectives the paper's algorithms need: AllReduce(max), AllReduce(sum),
// Reduce(sum), Broadcast and Barrier. Semantics mirror NCCL:
//   * every rank must call the same collectives in the same order;
//   * calls block until all ranks arrive (rendezvous) and the data is ready.
//
// Since the transport layer landed, DeviceGroup is a facade over a pluggable
// transport::Collective backend selected by VOCAB_TRANSPORT (default: the
// in-process thread rendezvous, bit-identical to the historical
// implementation).
//
// Robustness features NCCL does not give you, which make scheduling bugs
// observable in tests:
//   * every call carries a string tag; mismatched tags across ranks throw
//     CheckError instead of silently reducing unrelated buffers;
//   * waits time out (configurable, default from VOCAB_COMM_TIMEOUT_MS) and
//     throw DeadlockError, so a schedule that deadlocks fails the test
//     instead of hanging it;
//   * an optional shared AbortToken (set_abort_token) unblocks every waiting
//     rank within milliseconds of a failure anywhere in the runtime, as an
//     AbortedError naming the originating op.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/channel.h"  // facade neighbors share the transport include
#include "fault/abort_token.h"
#include "tensor/tensor.h"
#include "transport/transport.h"

namespace vocab {

/// Rendezvous collective communicator over `world_size` participants.
/// Thread-safe: each rank must be driven by exactly one thread at a time.
class DeviceGroup {
 public:
  /// Backed by `transport` (default: the VOCAB_TRANSPORT-selected backend).
  explicit DeviceGroup(int world_size,
                       std::chrono::milliseconds timeout = kCommTimeoutFromEnv,
                       transport::Transport* transport = nullptr);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  [[nodiscard]] int world_size() const { return impl_->world_size(); }

  /// Share the runtime's abort token; every rendezvous wait observes it.
  void set_abort_token(std::shared_ptr<AbortToken> token);

  /// Block until all ranks arrive.
  void barrier(int rank, const std::string& tag);

  /// In-place all-reduce: after return every rank's `data` holds the
  /// elementwise reduction across ranks. All ranks must pass equal shapes.
  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag);

  /// In-place reduce to `root`: root's `data` holds the reduction, other
  /// ranks' buffers are unchanged. (The paper implements this as NCCL
  /// AllReduce to balance communication volume; we keep the true semantics
  /// and note the volume distinction in the cost model.)
  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag);

  /// Broadcast root's `data` to every rank (shapes adopted from root).
  void broadcast(int rank, int root, Tensor& data, const std::string& tag);

  /// Concatenate each rank's rows in rank order: every rank receives the
  /// [sum_rows, cols] result. Requires equal column counts.
  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag);

  /// Number of collectives completed so far (for tests).
  [[nodiscard]] std::uint64_t completed_collectives() const;

  /// Ranks currently blocked inside a rendezvous. Abort-hygiene tests assert
  /// this is empty after a failed iteration has been torn down — a non-empty
  /// result means a device thread leaked mid-collective.
  [[nodiscard]] std::vector<int> waiting_ranks() const;

  /// One-line rendezvous snapshot: arrived count + per-rank waiting tags
  /// (for watchdog reports).
  [[nodiscard]] std::string describe() const;

 private:
  std::unique_ptr<transport::Collective> impl_;
};

}  // namespace vocab
