#pragma once

// Thread-backed communication group standing in for NCCL.
//
// Each simulated pipeline device is an OS thread; a DeviceGroup provides the
// collectives the paper's algorithms need: AllReduce(max), AllReduce(sum),
// Reduce(sum), Broadcast and Barrier. Semantics mirror NCCL:
//   * every rank must call the same collectives in the same order;
//   * calls block until all ranks arrive (rendezvous) and the data is ready.
//
// Robustness features NCCL does not give you, which make scheduling bugs
// observable in tests:
//   * every call carries a string tag; mismatched tags across ranks throw
//     CheckError instead of silently reducing unrelated buffers;
//   * waits time out (configurable, default from VOCAB_COMM_TIMEOUT_MS) and
//     throw DeadlockError, so a schedule that deadlocks fails the test
//     instead of hanging it;
//   * an optional shared AbortToken (set_abort_token) unblocks every waiting
//     rank within milliseconds of a failure anywhere in the runtime, as an
//     AbortedError naming the originating op.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/channel.h"  // default_comm_timeout / kCommTimeoutFromEnv
#include "fault/abort_token.h"
#include "tensor/tensor.h"

namespace vocab {

/// Reduction operator for all_reduce / reduce.
enum class ReduceOp { Sum, Max };

/// Rendezvous collective communicator over `world_size` participant threads.
/// Thread-safe: each rank must be driven by exactly one thread at a time.
class DeviceGroup {
 public:
  explicit DeviceGroup(int world_size,
                       std::chrono::milliseconds timeout = kCommTimeoutFromEnv);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  [[nodiscard]] int world_size() const { return world_size_; }

  /// Share the runtime's abort token; every rendezvous wait observes it.
  void set_abort_token(std::shared_ptr<AbortToken> token);

  /// Block until all ranks arrive.
  void barrier(int rank, const std::string& tag);

  /// In-place all-reduce: after return every rank's `data` holds the
  /// elementwise reduction across ranks. All ranks must pass equal shapes.
  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag);

  /// In-place reduce to `root`: root's `data` holds the reduction, other
  /// ranks' buffers are unchanged. (The paper implements this as NCCL
  /// AllReduce to balance communication volume; we keep the true semantics
  /// and note the volume distinction in the cost model.)
  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag);

  /// Broadcast root's `data` to every rank (shapes adopted from root).
  void broadcast(int rank, int root, Tensor& data, const std::string& tag);

  /// Concatenate each rank's rows in rank order: every rank receives the
  /// [sum_rows, cols] result. Requires equal column counts.
  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag);

  /// Number of collectives completed so far (for tests).
  [[nodiscard]] std::uint64_t completed_collectives() const;

  /// Ranks currently blocked inside a rendezvous. Abort-hygiene tests assert
  /// this is empty after a failed iteration has been torn down — a non-empty
  /// result means a device thread leaked mid-collective.
  [[nodiscard]] std::vector<int> waiting_ranks() const;

  /// One-line rendezvous snapshot: arrived count + per-rank waiting tags
  /// (for watchdog reports).
  [[nodiscard]] std::string describe() const;

 private:
  struct Slot {
    Tensor* tensor = nullptr;
    const Tensor* const_tensor = nullptr;
  };

  // Runs `leader_fn` on the last-arriving rank, between the arrival phase and
  // the departure phase. Throws DeadlockError on timeout, AbortedError when
  // the shared token aborts, CheckError on tag or shape mismatch detected at
  // rendezvous.
  template <typename LeaderFn>
  void rendezvous(int rank, const std::string& tag, const char* kind, LeaderFn&& leader_fn);

  void check_rank(int rank) const;

  const int world_size_;
  const std::chrono::milliseconds timeout_;
  std::shared_ptr<AbortToken> abort_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::vector<std::string> tags_;
  std::vector<bool> waiting_;
  int arrived_ = 0;
  int departed_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t completed_ = 0;
  std::string failure_;  // non-empty once a rendezvous has failed

  // Scratch owned by the group, used by leader functions.
  Tensor gather_result_;
};

}  // namespace vocab
