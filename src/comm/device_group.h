#pragma once

// Thread-backed communication group standing in for NCCL.
//
// Each simulated pipeline device is an OS thread; a DeviceGroup provides the
// collectives the paper's algorithms need: AllReduce(max), AllReduce(sum),
// Reduce(sum), Broadcast and Barrier. Semantics mirror NCCL:
//   * every rank must call the same collectives in the same order;
//   * calls block until all ranks arrive (rendezvous) and the data is ready.
//
// Two robustness features NCCL does not give you, which make scheduling bugs
// observable in tests:
//   * every call carries a string tag; mismatched tags across ranks throw
//     CheckError instead of silently reducing unrelated buffers;
//   * waits time out (configurable) and throw DeadlockError, so a schedule
//     that deadlocks fails the test instead of hanging it.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

/// Reduction operator for all_reduce / reduce.
enum class ReduceOp { Sum, Max };

/// Rendezvous collective communicator over `world_size` participant threads.
/// Thread-safe: each rank must be driven by exactly one thread at a time.
class DeviceGroup {
 public:
  explicit DeviceGroup(int world_size,
                       std::chrono::milliseconds timeout = std::chrono::seconds(30));

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  [[nodiscard]] int world_size() const { return world_size_; }

  /// Block until all ranks arrive.
  void barrier(int rank, const std::string& tag);

  /// In-place all-reduce: after return every rank's `data` holds the
  /// elementwise reduction across ranks. All ranks must pass equal shapes.
  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag);

  /// In-place reduce to `root`: root's `data` holds the reduction, other
  /// ranks' buffers are unchanged. (The paper implements this as NCCL
  /// AllReduce to balance communication volume; we keep the true semantics
  /// and note the volume distinction in the cost model.)
  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag);

  /// Broadcast root's `data` to every rank (shapes adopted from root).
  void broadcast(int rank, int root, Tensor& data, const std::string& tag);

  /// Concatenate each rank's rows in rank order: every rank receives the
  /// [sum_rows, cols] result. Requires equal column counts.
  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag);

  /// Number of collectives completed so far (for tests).
  [[nodiscard]] std::uint64_t completed_collectives() const;

 private:
  struct Slot {
    Tensor* tensor = nullptr;
    const Tensor* const_tensor = nullptr;
  };

  // Runs `leader_fn` on the last-arriving rank, between the arrival phase and
  // the departure phase. Throws DeadlockError on timeout, CheckError on tag
  // or shape mismatch detected at rendezvous.
  template <typename LeaderFn>
  void rendezvous(int rank, const std::string& tag, const char* kind, LeaderFn&& leader_fn);

  void check_rank(int rank) const;

  const int world_size_;
  const std::chrono::milliseconds timeout_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::vector<std::string> tags_;
  int arrived_ = 0;
  int departed_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t completed_ = 0;
  std::string failure_;  // non-empty once a rendezvous has failed

  // Scratch owned by the group, used by leader functions.
  Tensor gather_result_;
};

}  // namespace vocab
