#pragma once

// Point-to-point channel between adjacent pipeline stages.
//
// Stage i sends activations forward to stage i+1 and gradients backward to
// stage i-1 through a pair of these. A Channel is a bounded FIFO of tagged
// tensors; pops block (with deadlock timeout) until the matching message
// arrives, mirroring NCCL send/recv pairing on a P2P connection.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>

#include "tensor/tensor.h"

namespace vocab {

/// A tensor in flight between two pipeline stages.
struct Message {
  std::string tag;  ///< e.g. "fwd:mb3" — identifies microbatch + direction
  Tensor payload;
};

/// Bounded blocking FIFO of Messages. Single producer / single consumer in
/// the pipeline runtime, but safe for multiple of either.
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024,
                   std::chrono::milliseconds timeout = std::chrono::seconds(30));

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue; blocks if the channel is full. Throws DeadlockError on timeout.
  void send(std::string tag, Tensor payload);

  /// Dequeue the front message; blocks until one is available.
  Message recv();

  /// Dequeue the front message and check its tag matches `expected_tag` —
  /// a mismatch means the schedule ordered sends and recvs inconsistently.
  Tensor recv_expect(const std::string& expected_tag);

  /// Dequeue the message whose tag equals `tag`, regardless of queue
  /// position. Blocks (with deadlock timeout) until it arrives. This is the
  /// mailbox primitive the schedule executor uses: with non-blocking sends,
  /// heterogeneous messages (activations of one chunk, gradients of another)
  /// can interleave on the same channel in any order.
  Tensor recv_tag(const std::string& tag);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  mutable std::mutex mutex_;
  std::condition_variable cv_send_;
  std::condition_variable cv_recv_;
  std::deque<Message> queue_;
};

}  // namespace vocab
