#pragma once

// Point-to-point channel between adjacent pipeline stages.
//
// Stage i sends activations forward to stage i+1 and gradients backward to
// stage i-1 through a pair of these. A Channel is a bounded FIFO of tagged
// tensors; pops block (with deadlock timeout) until the matching message
// arrives, mirroring NCCL send/recv pairing on a P2P connection.
//
// Since the transport layer landed, Channel is a facade over a pluggable
// transport::Mailbox backend: the in-process thread rendezvous (default,
// bit-identical to the historical implementation) or shared-memory ring
// buffers that work across fork() (VOCAB_TRANSPORT=shm). The public API and
// error texts are unchanged; DeadlockError reports additionally name the
// backend and peer heartbeat ages so a hang is attributable to a dead peer
// vs. a schedule bug.
//
// Fault protocol: a channel may share an AbortToken with the rest of the
// runtime (set_abort_token). Blocking waits slice their timeout into
// kAbortPollInterval chunks and re-check the token, so the first device
// failure anywhere unblocks every waiter here within milliseconds as an
// AbortedError — instead of each peer serializing a full DeadlockError
// timeout.

#include <chrono>
#include <memory>
#include <string>

#include "fault/abort_token.h"
#include "tensor/tensor.h"
#include "transport/transport.h"

namespace vocab {

/// Bounded blocking FIFO of Messages. Single producer / single consumer in
/// the pipeline runtime, but safe for multiple of either.
class Channel {
 public:
  /// Backed by `transport` (default: the VOCAB_TRANSPORT-selected backend).
  explicit Channel(std::size_t capacity = 1024,
                   std::chrono::milliseconds timeout = kCommTimeoutFromEnv,
                   transport::Transport* transport = nullptr);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Share the runtime's abort token; every blocking wait observes it.
  void set_abort_token(std::shared_ptr<AbortToken> token);

  /// Enqueue; blocks if the channel is full. Throws DeadlockError on timeout,
  /// AbortedError if the shared token aborts while waiting.
  void send(std::string tag, Tensor payload);

  /// Dequeue the front message; blocks until one is available.
  Message recv();

  /// Dequeue the front message and check its tag matches `expected_tag` —
  /// a mismatch means the schedule ordered sends and recvs inconsistently.
  Tensor recv_expect(const std::string& expected_tag);

  /// Dequeue the message whose tag equals `tag`, regardless of queue
  /// position. Blocks (with deadlock timeout) until it arrives. This is the
  /// mailbox primitive the schedule executor uses: with non-blocking sends,
  /// heterogeneous messages (activations of one chunk, gradients of another)
  /// can interleave on the same channel in any order.
  Tensor recv_tag(const std::string& tag);

  /// Drop every queued message (recovery: drain stale in-flight traffic).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::chrono::milliseconds timeout() const { return timeout_; }

  /// One-line occupancy + queued-tags + transport snapshot (for watchdog
  /// reports and DeadlockError diagnostics).
  [[nodiscard]] std::string describe() const;

 private:
  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  std::unique_ptr<transport::Mailbox> impl_;
};

}  // namespace vocab
