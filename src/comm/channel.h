#pragma once

// Point-to-point channel between adjacent pipeline stages.
//
// Stage i sends activations forward to stage i+1 and gradients backward to
// stage i-1 through a pair of these. A Channel is a bounded FIFO of tagged
// tensors; pops block (with deadlock timeout) until the matching message
// arrives, mirroring NCCL send/recv pairing on a P2P connection.
//
// Fault protocol: a channel may share an AbortToken with the rest of the
// runtime (set_abort_token). Blocking waits slice their timeout into
// kAbortPollInterval chunks and re-check the token, so the first device
// failure anywhere unblocks every waiter here within milliseconds as an
// AbortedError — instead of each peer serializing a full DeadlockError
// timeout.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "fault/abort_token.h"
#include "tensor/tensor.h"

namespace vocab {

/// Default timeout for Channel / DeviceGroup waits: VOCAB_COMM_TIMEOUT_MS
/// from the environment when set to a positive integer, else 30 s.
[[nodiscard]] std::chrono::milliseconds default_comm_timeout();

/// Sentinel: "resolve the timeout from default_comm_timeout() at use".
inline constexpr std::chrono::milliseconds kCommTimeoutFromEnv{-1};

/// A tensor in flight between two pipeline stages.
struct Message {
  std::string tag;  ///< e.g. "fwd:mb3" — identifies microbatch + direction
  Tensor payload;
};

/// Bounded blocking FIFO of Messages. Single producer / single consumer in
/// the pipeline runtime, but safe for multiple of either.
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024,
                   std::chrono::milliseconds timeout = kCommTimeoutFromEnv);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Share the runtime's abort token; every blocking wait observes it.
  void set_abort_token(std::shared_ptr<AbortToken> token);

  /// Enqueue; blocks if the channel is full. Throws DeadlockError on timeout,
  /// AbortedError if the shared token aborts while waiting.
  void send(std::string tag, Tensor payload);

  /// Dequeue the front message; blocks until one is available.
  Message recv();

  /// Dequeue the front message and check its tag matches `expected_tag` —
  /// a mismatch means the schedule ordered sends and recvs inconsistently.
  Tensor recv_expect(const std::string& expected_tag);

  /// Dequeue the message whose tag equals `tag`, regardless of queue
  /// position. Blocks (with deadlock timeout) until it arrives. This is the
  /// mailbox primitive the schedule executor uses: with non-blocking sends,
  /// heterogeneous messages (activations of one chunk, gradients of another)
  /// can interleave on the same channel in any order.
  Tensor recv_tag(const std::string& tag);

  /// Drop every queued message (recovery: drain stale in-flight traffic).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::chrono::milliseconds timeout() const { return timeout_; }

  /// One-line occupancy + queued-tags snapshot (for watchdog reports).
  [[nodiscard]] std::string describe() const;

 private:
  // Wait until `ready()` under `lock`, polling the abort token each slice.
  // `verb` + `tag` contextualize the DeadlockError / AbortedError.
  template <typename Ready>
  void wait_or_throw(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                     const char* verb, const std::string& tag, Ready&& ready);

  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  std::shared_ptr<AbortToken> abort_;
  mutable std::mutex mutex_;
  std::condition_variable cv_send_;
  std::condition_variable cv_recv_;
  std::deque<Message> queue_;
};

}  // namespace vocab
