#include "comm/channel.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/env.h"
#include "common/error.h"

namespace vocab {

std::chrono::milliseconds default_comm_timeout() {
  // Read the environment every call: tests toggle VOCAB_COMM_TIMEOUT_MS
  // between channel constructions, and construction is not a hot path.
  // Parsing is strict — garbage or a non-positive value fails fast instead
  // of silently meaning "30 seconds" (common/env.h).
  return std::chrono::milliseconds(positive_int_from_env("VOCAB_COMM_TIMEOUT_MS", 30000));
}

namespace {

// Render queue occupancy + queued tags for DeadlockError messages, so a
// timed-out send/recv names the messages actually in flight instead of
// leaving the schedule bug to a debugger. Requires the channel mutex held.
std::string describe_queue(const std::deque<Message>& queue, std::size_t capacity) {
  std::ostringstream os;
  os << "occupancy " << queue.size() << "/" << capacity << ", queued tags [";
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < std::min(queue.size(), kMaxListed); ++i) {
    if (i > 0) os << ", ";
    os << "'" << queue[i].tag << "'";
  }
  if (queue.size() > kMaxListed) os << ", ... +" << queue.size() - kMaxListed << " more";
  os << "]";
  return os.str();
}

}  // namespace

Channel::Channel(std::size_t capacity, std::chrono::milliseconds timeout)
    : capacity_(capacity),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout) {
  VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
}

void Channel::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

template <typename Ready>
void Channel::wait_or_throw(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                            const char* verb, const std::string& tag, Ready&& ready) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  for (;;) {
    if (ready()) return;
    if (abort_ != nullptr && abort_->aborted()) {
      throw AbortedError(abort_->reason(),
                         std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      throw DeadlockError(std::string("channel ") + verb + " timed out waiting for tag '" +
                          tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                          std::to_string(timeout_.count()) + " ms): " +
                          describe_queue(queue_, capacity_));
    }
    cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(deadline - now,
                                                                    kAbortPollInterval));
  }
}

void Channel::send(std::string tag, Tensor payload) {
  std::unique_lock lock(mutex_);
  wait_or_throw(lock, cv_send_, "send (full)", tag,
                [&] { return queue_.size() < capacity_; });
  queue_.push_back(Message{std::move(tag), std::move(payload)});
  cv_recv_.notify_all();
}

Message Channel::recv() {
  std::unique_lock lock(mutex_);
  wait_or_throw(lock, cv_recv_, "recv (empty)", "<front>", [&] { return !queue_.empty(); });
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  cv_send_.notify_all();
  return msg;
}

Tensor Channel::recv_expect(const std::string& expected_tag) {
  Message msg = recv();
  VOCAB_CHECK(msg.tag == expected_tag,
              "channel tag mismatch: expected '" << expected_tag << "' got '" << msg.tag << "'");
  return std::move(msg.payload);
}

Tensor Channel::recv_tag(const std::string& tag) {
  std::unique_lock lock(mutex_);
  auto find = [&] { return std::find_if(queue_.begin(), queue_.end(),
                                        [&](const Message& m) { return m.tag == tag; }); };
  auto it = queue_.end();
  wait_or_throw(lock, cv_recv_, "recv", tag, [&] { return (it = find()) != queue_.end(); });
  Tensor payload = std::move(it->payload);
  queue_.erase(it);
  cv_send_.notify_all();
  return payload;
}

void Channel::clear() {
  std::lock_guard lock(mutex_);
  queue_.clear();
  cv_send_.notify_all();
}

std::size_t Channel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::string Channel::describe() const {
  std::lock_guard lock(mutex_);
  return describe_queue(queue_, capacity_);
}

}  // namespace vocab
