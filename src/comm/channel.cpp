#include "comm/channel.h"

#include "common/error.h"

namespace vocab {

Channel::Channel(std::size_t capacity, std::chrono::milliseconds timeout)
    : capacity_(capacity), timeout_(timeout) {
  VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
}

void Channel::send(std::string tag, Tensor payload) {
  std::unique_lock lock(mutex_);
  if (!cv_send_.wait_for(lock, timeout_, [&] { return queue_.size() < capacity_; })) {
    throw DeadlockError("channel send timed out (full) for tag '" + tag + "'");
  }
  queue_.push_back(Message{std::move(tag), std::move(payload)});
  cv_recv_.notify_one();
}

Message Channel::recv() {
  std::unique_lock lock(mutex_);
  if (!cv_recv_.wait_for(lock, timeout_, [&] { return !queue_.empty(); })) {
    throw DeadlockError("channel recv timed out (empty)");
  }
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  cv_send_.notify_one();
  return msg;
}

Tensor Channel::recv_expect(const std::string& expected_tag) {
  Message msg = recv();
  VOCAB_CHECK(msg.tag == expected_tag,
              "channel tag mismatch: expected '" << expected_tag << "' got '" << msg.tag << "'");
  return std::move(msg.payload);
}

std::size_t Channel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace vocab
