#include "comm/channel.h"

#include "common/error.h"

namespace vocab {

Channel::Channel(std::size_t capacity, std::chrono::milliseconds timeout,
                 transport::Transport* transport)
    : capacity_(capacity),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout) {
  transport::Transport& backend =
      transport != nullptr ? *transport : transport::default_transport();
  impl_ = backend.make_mailbox(capacity, timeout_);
}

void Channel::set_abort_token(std::shared_ptr<AbortToken> token) {
  impl_->set_abort_token(std::move(token));
}

void Channel::send(std::string tag, Tensor payload) {
  impl_->send(std::move(tag), std::move(payload));
}

Message Channel::recv() { return impl_->recv(); }

Tensor Channel::recv_expect(const std::string& expected_tag) {
  Message msg = recv();
  VOCAB_CHECK(msg.tag == expected_tag,
              "channel tag mismatch: expected '" << expected_tag << "' got '" << msg.tag << "'");
  return std::move(msg.payload);
}

Tensor Channel::recv_tag(const std::string& tag) { return impl_->recv_tag(tag); }

void Channel::clear() { impl_->clear(); }

std::size_t Channel::size() const { return impl_->size(); }

std::string Channel::describe() const { return impl_->describe(); }

}  // namespace vocab
