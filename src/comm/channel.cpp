#include "comm/channel.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace vocab {

namespace {

// Render queue occupancy + queued tags for DeadlockError messages, so a
// timed-out send/recv names the messages actually in flight instead of
// leaving the schedule bug to a debugger. Requires the channel mutex held.
std::string describe_queue(const std::deque<Message>& queue, std::size_t capacity) {
  std::ostringstream os;
  os << "occupancy " << queue.size() << "/" << capacity << ", queued tags [";
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < std::min(queue.size(), kMaxListed); ++i) {
    if (i > 0) os << ", ";
    os << "'" << queue[i].tag << "'";
  }
  if (queue.size() > kMaxListed) os << ", ... +" << queue.size() - kMaxListed << " more";
  os << "]";
  return os.str();
}

}  // namespace

Channel::Channel(std::size_t capacity, std::chrono::milliseconds timeout)
    : capacity_(capacity), timeout_(timeout) {
  VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
}

void Channel::send(std::string tag, Tensor payload) {
  std::unique_lock lock(mutex_);
  if (!cv_send_.wait_for(lock, timeout_, [&] { return queue_.size() < capacity_; })) {
    throw DeadlockError("channel send timed out (full) for tag '" + tag + "': " +
                        describe_queue(queue_, capacity_));
  }
  queue_.push_back(Message{std::move(tag), std::move(payload)});
  cv_recv_.notify_all();
}

Message Channel::recv() {
  std::unique_lock lock(mutex_);
  if (!cv_recv_.wait_for(lock, timeout_, [&] { return !queue_.empty(); })) {
    throw DeadlockError("channel recv timed out (empty): " + describe_queue(queue_, capacity_));
  }
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  cv_send_.notify_all();
  return msg;
}

Tensor Channel::recv_expect(const std::string& expected_tag) {
  Message msg = recv();
  VOCAB_CHECK(msg.tag == expected_tag,
              "channel tag mismatch: expected '" << expected_tag << "' got '" << msg.tag << "'");
  return std::move(msg.payload);
}

Tensor Channel::recv_tag(const std::string& tag) {
  std::unique_lock lock(mutex_);
  auto find = [&] { return std::find_if(queue_.begin(), queue_.end(),
                                        [&](const Message& m) { return m.tag == tag; }); };
  auto it = queue_.end();
  if (!cv_recv_.wait_for(lock, timeout_, [&] { return (it = find()) != queue_.end(); })) {
    throw DeadlockError("channel recv timed out waiting for tag '" + tag + "': " +
                        describe_queue(queue_, capacity_));
  }
  Tensor payload = std::move(it->payload);
  queue_.erase(it);
  cv_send_.notify_all();
  return payload;
}

std::size_t Channel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace vocab
