#include "comm/device_group.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace vocab {

namespace {

void reduce_into(Tensor& acc, const Tensor& contrib, ReduceOp op) {
  VOCAB_CHECK(acc.same_shape(contrib),
              "collective shape mismatch: " << acc.shape_str() << " vs " << contrib.shape_str());
  float* pa = acc.data();
  const float* pb = contrib.data();
  const std::int64_t n = acc.numel();
  if (op == ReduceOp::Sum) {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) pa[i] = std::max(pa[i], pb[i]);
  }
}

}  // namespace

DeviceGroup::DeviceGroup(int world_size, std::chrono::milliseconds timeout)
    : world_size_(world_size),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
      slots_(static_cast<std::size_t>(std::max(world_size, 1))),
      tags_(static_cast<std::size_t>(std::max(world_size, 1))),
      waiting_(static_cast<std::size_t>(std::max(world_size, 1)), false) {
  VOCAB_CHECK(world_size >= 1, "world_size must be >= 1, got " << world_size);
}

void DeviceGroup::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

void DeviceGroup::check_rank(int rank) const {
  VOCAB_CHECK(rank >= 0 && rank < world_size_,
              "rank " << rank << " out of range [0, " << world_size_ << ")");
}

template <typename LeaderFn>
void DeviceGroup::rendezvous(int rank, const std::string& tag, const char* kind,
                             LeaderFn&& leader_fn) {
  check_rank(rank);
  std::unique_lock lock(mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  waiting_[static_cast<std::size_t>(rank)] = true;
  struct WaitingGuard {
    std::vector<bool>& waiting;
    std::size_t rank;
    ~WaitingGuard() { waiting[rank] = false; }
  } waiting_guard{waiting_, static_cast<std::size_t>(rank)};

  // Wait until `pred`, slicing the timeout so the shared abort token is
  // observed within kAbortPollInterval even if a notify is missed.
  auto timed_wait = [&](auto&& pred) {
    for (;;) {
      if (pred()) return;
      if (abort_ != nullptr && abort_->aborted()) {
        if (failure_.empty()) failure_ = "aborted during " + std::string(kind) + " '" + tag + "'";
        cv_.notify_all();
        throw AbortedError(abort_->reason(), std::string(kind) + " '" + tag + "' on rank " +
                                                 std::to_string(rank) + " interrupted");
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
        failure_ = std::string("deadlock: rank ") + std::to_string(rank) + " timed out in " +
                   kind + " '" + tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                   std::to_string(timeout_.count()) + " ms; arrived " +
                   std::to_string(arrived_) + "/" + std::to_string(world_size_) + ")";
        cv_.notify_all();
        throw DeadlockError(failure_);
      }
      cv_.wait_for(lock, std::min<std::chrono::steady_clock::duration>(deadline - now,
                                                                       kAbortPollInterval));
    }
  };

  if (!failure_.empty()) throw DeadlockError("communicator poisoned: " + failure_);

  // Wait for the previous collective to fully drain before joining.
  timed_wait([&] { return departed_ == 0 || !failure_.empty(); });
  if (!failure_.empty()) throw DeadlockError("communicator poisoned: " + failure_);

  const std::uint64_t my_gen = generation_;
  tags_[static_cast<std::size_t>(rank)] = tag;
  ++arrived_;

  if (arrived_ == world_size_) {
    // Leader: validate tags, run the collective body, release everyone.
    for (int r = 0; r < world_size_; ++r) {
      if (tags_[static_cast<std::size_t>(r)] != tag) {
        failure_ = std::string("collective mismatch in ") + kind + ": rank " +
                   std::to_string(rank) + " tag '" + tag + "' vs rank " + std::to_string(r) +
                   " tag '" + tags_[static_cast<std::size_t>(r)] + "'";
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
        throw CheckError(failure_);
      }
    }
    try {
      leader_fn();
    } catch (const std::exception& e) {
      failure_ = std::string(kind) + " '" + tag + "' failed: " + e.what();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      throw;
    }
    ++completed_;
    arrived_ = 0;
    departed_ = world_size_;
    ++generation_;
    cv_.notify_all();
  } else {
    timed_wait([&] { return generation_ != my_gen || !failure_.empty(); });
    if (!failure_.empty()) throw DeadlockError("collective aborted: " + failure_);
  }

  --departed_;
  if (departed_ == 0) cv_.notify_all();
}

void DeviceGroup::barrier(int rank, const std::string& tag) {
  rendezvous(rank, tag, "barrier", [] {});
}

void DeviceGroup::all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) {
  check_rank(rank);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "all_reduce", [&] {
    Tensor acc = *slots_[0].tensor;
    for (int r = 1; r < world_size_; ++r) reduce_into(acc, *slots_[static_cast<std::size_t>(r)].tensor, op);
    for (int r = 0; r < world_size_; ++r) *slots_[static_cast<std::size_t>(r)].tensor = acc;
  });
}

void DeviceGroup::reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag) {
  check_rank(rank);
  check_rank(root);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "reduce", [&] {
    Tensor acc = *slots_[0].tensor;
    for (int r = 1; r < world_size_; ++r) reduce_into(acc, *slots_[static_cast<std::size_t>(r)].tensor, op);
    *slots_[static_cast<std::size_t>(root)].tensor = std::move(acc);
  });
}

void DeviceGroup::broadcast(int rank, int root, Tensor& data, const std::string& tag) {
  check_rank(rank);
  check_rank(root);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "broadcast", [&] {
    const Tensor& src = *slots_[static_cast<std::size_t>(root)].tensor;
    for (int r = 0; r < world_size_; ++r) {
      if (r != root) *slots_[static_cast<std::size_t>(r)].tensor = src;
    }
  });
}

Tensor DeviceGroup::all_gather_rows(int rank, const Tensor& data, const std::string& tag) {
  check_rank(rank);
  Tensor out;
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].const_tensor = &data;
    slots_[static_cast<std::size_t>(rank)].tensor = &out;
  }
  rendezvous(rank, tag, "all_gather_rows", [&] {
    std::int64_t total_rows = 0;
    const std::int64_t cols = slots_[0].const_tensor->dim(1);
    for (int r = 0; r < world_size_; ++r) {
      const Tensor& t = *slots_[static_cast<std::size_t>(r)].const_tensor;
      VOCAB_CHECK(t.rank() == 2 && t.dim(1) == cols, "all_gather_rows column mismatch");
      total_rows += t.dim(0);
    }
    Tensor gathered({total_rows, cols});
    std::int64_t row = 0;
    for (int r = 0; r < world_size_; ++r) {
      const Tensor& t = *slots_[static_cast<std::size_t>(r)].const_tensor;
      std::copy(t.data(), t.data() + t.numel(), gathered.data() + row * cols);
      row += t.dim(0);
    }
    for (int r = 0; r < world_size_; ++r) *slots_[static_cast<std::size_t>(r)].tensor = gathered;
  });
  return out;
}

std::uint64_t DeviceGroup::completed_collectives() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

std::vector<int> DeviceGroup::waiting_ranks() const {
  std::lock_guard lock(mutex_);
  std::vector<int> out;
  for (int r = 0; r < world_size_; ++r) {
    if (waiting_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

std::string DeviceGroup::describe() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "arrived " << arrived_ << "/" << world_size_ << ", departed " << departed_
     << ", completed " << completed_ << ", waiters [";
  bool first = true;
  for (int r = 0; r < world_size_; ++r) {
    if (!waiting_[static_cast<std::size_t>(r)]) continue;
    if (!first) os << ", ";
    first = false;
    os << "r" << r << ":'" << tags_[static_cast<std::size_t>(r)] << "'";
  }
  os << "]";
  if (!failure_.empty()) os << ", failure: " << failure_;
  return os.str();
}

}  // namespace vocab
