#include "comm/device_group.h"

namespace vocab {

DeviceGroup::DeviceGroup(int world_size, std::chrono::milliseconds timeout,
                         transport::Transport* transport) {
  transport::Transport& backend =
      transport != nullptr ? *transport : transport::default_transport();
  impl_ = backend.make_collective(world_size, timeout);
}

void DeviceGroup::set_abort_token(std::shared_ptr<AbortToken> token) {
  impl_->set_abort_token(std::move(token));
}

void DeviceGroup::barrier(int rank, const std::string& tag) { impl_->barrier(rank, tag); }

void DeviceGroup::all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) {
  impl_->all_reduce(rank, data, op, tag);
}

void DeviceGroup::reduce(int rank, int root, Tensor& data, ReduceOp op,
                         const std::string& tag) {
  impl_->reduce(rank, root, data, op, tag);
}

void DeviceGroup::broadcast(int rank, int root, Tensor& data, const std::string& tag) {
  impl_->broadcast(rank, root, data, tag);
}

Tensor DeviceGroup::all_gather_rows(int rank, const Tensor& data, const std::string& tag) {
  return impl_->all_gather_rows(rank, data, tag);
}

std::uint64_t DeviceGroup::completed_collectives() const {
  return impl_->completed_collectives();
}

std::vector<int> DeviceGroup::waiting_ranks() const { return impl_->waiting_ranks(); }

std::string DeviceGroup::describe() const { return impl_->describe(); }

}  // namespace vocab
