#include "guard/tensor_stats.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "parallel/thread_pool.h"

namespace vocab::guard {

namespace {

// Grain for the flat scans: cheap per-element work, so large chunks.
constexpr std::int64_t kStatsGrain = 4096;

}  // namespace

TensorStats tensor_stats(const Tensor& t) {
  TensorStats total;
  total.count = t.numel();
  if (t.numel() == 0) return total;
  const float* x = t.data();
  const std::int64_t slots = parallel::num_chunks(0, t.numel(), kStatsGrain);
  std::vector<TensorStats> partial(static_cast<std::size_t>(slots));
  parallel::parallel_for_chunked(
      0, t.numel(), kStatsGrain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        TensorStats s;
        for (std::int64_t i = b; i < e; ++i) {
          const float v = x[i];
          if (!std::isfinite(v)) {
            ++s.nonfinite;
            continue;
          }
          const float a = std::fabs(v);
          if (a > s.absmax) s.absmax = a;
          s.sq_norm += static_cast<double>(v) * static_cast<double>(v);
        }
        partial[static_cast<std::size_t>(c)] = s;
      });
  // Combine in ascending chunk order on the calling thread.
  for (const TensorStats& s : partial) {
    total.nonfinite += s.nonfinite;
    if (s.absmax > total.absmax) total.absmax = s.absmax;
    total.sq_norm += s.sq_norm;
  }
  return total;
}

std::int64_t nonfinite_count(const Tensor& t) {
  if (t.numel() == 0) return 0;
  const float* x = t.data();
  const std::int64_t slots = parallel::num_chunks(0, t.numel(), kStatsGrain);
  std::vector<std::int64_t> partial(static_cast<std::size_t>(slots), 0);
  parallel::parallel_for_chunked(
      0, t.numel(), kStatsGrain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        std::int64_t n = 0;
        for (std::int64_t i = b; i < e; ++i) {
          if (!std::isfinite(x[i])) ++n;
        }
        partial[static_cast<std::size_t>(c)] = n;
      });
  std::int64_t total = 0;
  for (const std::int64_t n : partial) total += n;
  return total;
}

float absmax(const Tensor& t) {
  if (t.numel() == 0) return 0.0f;
  const float* x = t.data();
  const std::int64_t slots = parallel::num_chunks(0, t.numel(), kStatsGrain);
  std::vector<float> partial(static_cast<std::size_t>(slots), 0.0f);
  parallel::parallel_for_chunked(
      0, t.numel(), kStatsGrain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        float m = 0.0f;
        for (std::int64_t i = b; i < e; ++i) {
          const float a = std::fabs(x[i]);
          if (std::isfinite(a) && a > m) m = a;
        }
        partial[static_cast<std::size_t>(c)] = m;
      });
  float total = 0.0f;
  for (const float m : partial) {
    if (m > total) total = m;
  }
  return total;
}

double squared_norm(const Tensor& t) {
  if (t.numel() == 0) return 0.0;
  const float* x = t.data();
  const std::int64_t slots = parallel::num_chunks(0, t.numel(), kStatsGrain);
  std::vector<double> partial(static_cast<std::size_t>(slots), 0.0);
  parallel::parallel_for_chunked(
      0, t.numel(), kStatsGrain,
      [&](std::int64_t c, std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          s += static_cast<double>(x[i]) * static_cast<double>(x[i]);
        }
        partial[static_cast<std::size_t>(c)] = s;
      });
  double total = 0.0;
  for (const double s : partial) total += s;
  return total;
}

void row_squared_norms(const Tensor& m, std::int64_t row0, std::int64_t row1, float* out) {
  VOCAB_CHECK(m.rank() == 2, "row_squared_norms needs a rank-2 tensor, got " << m.shape_str());
  VOCAB_CHECK(0 <= row0 && row0 <= row1 && row1 <= m.dim(0),
              "row range [" << row0 << ", " << row1 << ") out of bounds for " << m.shape_str());
  const std::int64_t cols = m.dim(1);
  const float* x = m.data();
  // One row per iteration; each row is a serial left-to-right double sum, so
  // the per-row value is independent of which device owns the row.
  parallel::parallel_for(row0, row1, 8, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t r = b; r < e; ++r) {
      const float* row = x + r * cols;
      double s = 0.0;
      for (std::int64_t c = 0; c < cols; ++c) {
        s += static_cast<double>(row[c]) * static_cast<double>(row[c]);
      }
      out[r - row0] = static_cast<float>(s);
    }
  });
}

}  // namespace vocab::guard
