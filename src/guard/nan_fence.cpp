#include "guard/nan_fence.h"

#include <sstream>

#include "common/env.h"
#include "guard/tensor_stats.h"

namespace vocab::guard {

GuardLevel guard_level_from_env() {
  return static_cast<GuardLevel>(int_from_env("VOCAB_GUARD_LEVEL", 0, 0, 2));
}

NanFence::NanFence(int num_devices, GuardLevel level) : level_(level) {
  VOCAB_CHECK(num_devices >= 1, "NanFence needs at least one device, got " << num_devices);
  devices_ = std::vector<DeviceGuard>(static_cast<std::size_t>(num_devices));
}

void NanFence::begin_op(int device, const std::string& label, int microbatch) {
  if (!active()) return;
  DeviceGuard& g = devices_.at(static_cast<std::size_t>(device));
  std::lock_guard<std::mutex> lk(g.mutex);
  g.current_label = label;
  g.current_microbatch = microbatch;
}

void NanFence::check(int device, const Tensor& t, const char* what) {
  if (!active()) return;
  DeviceGuard& g = devices_.at(static_cast<std::size_t>(device));
  const TensorStats s = tensor_stats(t);
  std::string label;
  int microbatch = -1;
  {
    std::lock_guard<std::mutex> lk(g.mutex);
    ++g.checks;
    if (level_ == GuardLevel::kFull && s.absmax > g.absmax) g.absmax = s.absmax;
    if (s.finite()) return;
    label = g.current_label;
    microbatch = g.current_microbatch;
    if (g.failure.empty()) {
      std::ostringstream oss;
      oss << "non-finite " << what << " (" << s.nonfinite << "/" << s.count
          << " elements) at op '" << label << "' microbatch " << microbatch
          << " on device " << device;
      g.failure = oss.str();
    }
  }
  std::ostringstream oss;
  oss << "NaN fence tripped: non-finite " << what << " (" << s.nonfinite << " of "
      << s.count << " elements) produced by op '" << label << "' (microbatch "
      << microbatch << ") on device " << device;
  throw NonFiniteError(oss.str(), device, label, microbatch);
}

void NanFence::observe_absmax(int device, float value) {
  if (level_ != GuardLevel::kFull) return;
  DeviceGuard& g = devices_.at(static_cast<std::size_t>(device));
  std::lock_guard<std::mutex> lk(g.mutex);
  if (value > g.absmax) g.absmax = value;
}

std::string NanFence::verdict(int device) const {
  const DeviceGuard& g = devices_.at(static_cast<std::size_t>(device));
  std::lock_guard<std::mutex> lk(g.mutex);
  return g.failure.empty() ? "ok" : g.failure;
}

std::int64_t NanFence::checks(int device) const {
  const DeviceGuard& g = devices_.at(static_cast<std::size_t>(device));
  std::lock_guard<std::mutex> lk(g.mutex);
  return g.checks;
}

std::string NanFence::describe() const {
  std::ostringstream oss;
  oss << "NanFence level=" << static_cast<int>(level_) << "\n";
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const DeviceGuard& g = devices_[d];
    std::lock_guard<std::mutex> lk(g.mutex);
    oss << "  device " << d << ": checks=" << g.checks << " op='" << g.current_label
        << "' mb=" << g.current_microbatch;
    if (level_ == GuardLevel::kFull) oss << " absmax=" << g.absmax;
    oss << " verdict=" << (g.failure.empty() ? "ok" : g.failure) << "\n";
  }
  return oss.str();
}

}  // namespace vocab::guard
