#pragma once

// NaN/Inf fences at schedule-op boundaries.
//
// A NanFence is shared by all device threads of one pipeline. The executor
// announces each op before dispatch (begin_op), and the op runners hand the
// fence their freshly produced tensors (check). The fence scans each tensor
// once; the first non-finite value raises NonFiniteError carrying the exact
// (device, op label, microbatch) attribution — the op whose *output* first
// went bad, not wherever the poison eventually surfaced.
//
// Levels (VOCAB_GUARD_LEVEL, default 0):
//   0 kOff    fence fully disabled; active() is false and the executor makes
//             zero guard calls — the hot loop is untouched.
//   1 kFence  non-finite scans at op boundaries.
//   2 kFull   level 1 plus absmax tracking per device (visible in describe()
//             and in watchdog snapshots) for drift diagnosis.
//
// Thread model: begin_op/check/observe_absmax are called only by device d's
// own executor thread for device d; cross-device reads (verdict, describe)
// take the per-device mutex. One device tripping the fence does not stop the
// others by itself — the raised error reaches the executor's abort path,
// which poisons the shared AbortToken exactly like any other op failure.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "tensor/tensor.h"

namespace vocab::guard {

enum class GuardLevel : int {
  kOff = 0,
  kFence = 1,
  kFull = 2,
};

/// Strictly parse VOCAB_GUARD_LEVEL: unset -> kOff; "0"/"1"/"2" -> the level;
/// anything else (garbage, negative, out of range) throws CheckError.
[[nodiscard]] GuardLevel guard_level_from_env();

/// Raised when a fence finds a non-finite value. Carries the attribution the
/// acceptance criteria require: which device, which schedule op, which
/// microbatch, and what was being checked.
class NonFiniteError : public Error {
 public:
  NonFiniteError(const std::string& what, int device, std::string op_label, int microbatch)
      : Error(what), device_(device), op_label_(std::move(op_label)), microbatch_(microbatch) {}

  [[nodiscard]] int device() const { return device_; }
  [[nodiscard]] const std::string& op_label() const { return op_label_; }
  [[nodiscard]] int microbatch() const { return microbatch_; }

 private:
  int device_;
  std::string op_label_;
  int microbatch_;
};

/// Per-pipeline NaN/Inf fence; see the file comment for the protocol.
class NanFence {
 public:
  NanFence(int num_devices, GuardLevel level);

  [[nodiscard]] GuardLevel level() const { return level_; }
  [[nodiscard]] bool active() const { return level_ != GuardLevel::kOff; }

  /// Announce the op device `device`'s thread is about to run. Cheap: stores
  /// the attribution used if a subsequent check on that device fails.
  void begin_op(int device, const std::string& label, int microbatch);

  /// Scan `t`; throws NonFiniteError attributed to the current op of
  /// `device` if any element is NaN or +/-Inf. `what` names the tensor
  /// ("fwd activation", "grad", ...) in the error message. No-op when the
  /// fence is inactive. At kFull also records the running absmax.
  void check(int device, const Tensor& t, const char* what);

  /// kFull only: fold a precomputed absmax (e.g. the fused output layer's
  /// logits tap) into device `device`'s running maximum without a rescan.
  void observe_absmax(int device, float value);

  /// "ok" / the first failure string for the device — watchdog snapshots
  /// embed this so a stall caused by a numeric abort is diagnosable.
  [[nodiscard]] std::string verdict(int device) const;

  /// Count of tensors scanned on `device` (test hook: proves placement).
  [[nodiscard]] std::int64_t checks(int device) const;

  /// Multi-line per-device summary (level, current op, checks, absmax,
  /// verdict).
  [[nodiscard]] std::string describe() const;

 private:
  struct DeviceGuard {
    mutable std::mutex mutex;
    std::string current_label = "<none>";
    int current_microbatch = -1;
    std::int64_t checks = 0;
    float absmax = 0.0f;      // kFull only
    std::string failure;      // empty until the fence trips
  };

  GuardLevel level_;
  std::vector<DeviceGuard> devices_;
};

}  // namespace vocab::guard
