#include "guard/anomaly.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace vocab::guard {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace

AnomalyDetector::AnomalyDetector(std::size_t window, std::size_t min_samples, double threshold)
    : window_(window), min_samples_(min_samples), threshold_(threshold) {
  VOCAB_CHECK(window >= 1, "anomaly window must be at least 1, got " << window);
  VOCAB_CHECK(min_samples >= 1 && min_samples <= window,
              "min_samples must be in [1, window], got " << min_samples);
  VOCAB_CHECK(threshold > 0.0, "anomaly threshold must be positive, got " << threshold);
}

bool AnomalyDetector::is_spike(double v) const {
  if (!std::isfinite(v)) return true;
  if (values_.size() < min_samples_) return false;
  const std::vector<double> window(values_.begin(), values_.end());
  const double med = median_of(window);
  std::vector<double> dev;
  dev.reserve(window.size());
  for (const double x : window) dev.push_back(std::fabs(x - med));
  const double mad = median_of(std::move(dev));
  // Robust sigma, floored so a flat window (mad == 0) tolerates fp jitter.
  const double sigma = std::max(1.4826 * mad, 1e-3 * (1.0 + std::fabs(med)));
  return std::fabs(v - med) > threshold_ * sigma;
}

bool AnomalyDetector::observe(double v) {
  if (is_spike(v)) {
    ++spikes_;
    return true;
  }
  values_.push_back(v);
  if (values_.size() > window_) values_.pop_front();
  return false;
}

double AnomalyDetector::median() const {
  return median_of(std::vector<double>(values_.begin(), values_.end()));
}

std::string AnomalyDetector::describe() const {
  std::vector<double> window(values_.begin(), values_.end());
  const double med = median_of(window);
  std::vector<double> dev;
  dev.reserve(window.size());
  for (const double x : window) dev.push_back(std::fabs(x - med));
  const double mad = median_of(std::move(dev));
  std::ostringstream oss;
  oss << "n=" << values_.size() << " median=" << med << " mad=" << mad
      << " spikes=" << spikes_ << " window=[";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << values_[i];
  }
  oss << "]";
  return oss.str();
}

void AnomalyDetector::reset() {
  values_.clear();
  spikes_ = 0;
}

}  // namespace vocab::guard
