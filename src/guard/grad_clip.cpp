#include "guard/grad_clip.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vocab::guard {

double total_squared_norm(const std::vector<float>& units) {
  double total = 0.0;
  for (const float u : units) total += static_cast<double>(u);
  return total;
}

ClipResult clip_decision(const std::vector<float>& units, float max_norm) {
  ClipResult r;
  r.norm = static_cast<float>(std::sqrt(total_squared_norm(units)));
  if (max_norm > 0.0f && r.norm > max_norm) r.scale = max_norm / r.norm;
  return r;
}

PipelineSchedule with_clip_collective(const PipelineSchedule& s) {
  if (s.num_devices < 2) return s;
  PipelineSchedule out = s;
  int clip_collective = 0;
  for (const Op& op : out.ops) clip_collective = std::max(clip_collective, op.collective + 1);
  const int base_id = static_cast<int>(out.ops.size());
  for (int d = 0; d < out.num_devices; ++d) {
    Op op;
    op.id = base_id + d;
    op.device = d;
    op.stream = Stream::Comm;
    op.kind = OpKind::Collective;
    op.microbatch = -1;
    op.duration = 1e-7;
    op.collective = clip_collective;
    op.label = "clipAR";
    for (const Stream stream : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
      const std::vector<int>& lane = out.devices[static_cast<std::size_t>(d)].lane(stream);
      if (!lane.empty()) op.deps.push_back(lane.back());
    }
    VOCAB_CHECK(!op.deps.empty(), "device " << d << " has no ops to anchor the clip all-reduce");
    out.devices[static_cast<std::size_t>(d)].comm.push_back(op.id);
    out.ops.push_back(std::move(op));
  }
  out.validate();
  return out;
}

}  // namespace vocab::guard
