#pragma once

// Deterministic tensor statistics for the numeric guardrails.
//
// Three single-pass kernels — finite count, absolute maximum, squared norm —
// built on the parallel_for chunk partition: each chunk produces one partial
// on its own slot and the partials are combined in ascending chunk order on
// the calling thread. Chunk boundaries are shape-only, so every statistic is
// bit-identical for any pool width (the same contract the numeric kernels in
// tensor_ops obey).
//
// The squared norm accumulates in double within each chunk and across the
// chunk combine, so it is also the canonical per-unit kernel of the
// cross-shard gradient clip (guard/grad_clip.h): any layout that computes
// the norm of the same bytes gets the same double back.

#include <cstdint>

#include "tensor/tensor.h"

namespace vocab::guard {

/// One pass worth of statistics over a tensor.
struct TensorStats {
  std::int64_t count = 0;      ///< elements scanned
  std::int64_t nonfinite = 0;  ///< NaN or +/-Inf elements
  float absmax = 0.0f;         ///< max |x| over the finite elements
  double sq_norm = 0.0;        ///< sum x^2 (double accumulation, chunk order)

  [[nodiscard]] bool finite() const { return nonfinite == 0; }
};

/// All statistics in one deterministic pass.
[[nodiscard]] TensorStats tensor_stats(const Tensor& t);

/// Number of NaN / +/-Inf elements.
[[nodiscard]] std::int64_t nonfinite_count(const Tensor& t);

/// Max |x| over the finite elements (0 for an empty tensor).
[[nodiscard]] float absmax(const Tensor& t);

/// Sum of squares, double accumulation in chunk order. Deterministic for any
/// pool width and equal for any two tensors holding the same flat bytes.
[[nodiscard]] double squared_norm(const Tensor& t);

/// Per-row squared norms of rows [row0, row1) of a rank-2 tensor `m`,
/// written to out[0 .. row1-row0). Each row is accumulated serially
/// left-to-right in double then rounded to float — the canonical per-row
/// unit value of the gradient clip, independent of how rows are sharded.
void row_squared_norms(const Tensor& m, std::int64_t row0, std::int64_t row1, float* out);

}  // namespace vocab::guard
