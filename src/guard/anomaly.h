#pragma once

// Rolling median + MAD anomaly detection for loss / grad-norm streams.
//
// A detector keeps a window of the last `window` *accepted* observations.
// An incoming value is a spike when it is non-finite (always, even before
// the window warms up) or when it deviates from the window median by more
// than `threshold` robust standard deviations, where the robust sigma is
// 1.4826 * MAD floored at a small relative epsilon so a perfectly flat
// window does not flag ordinary fp jitter. Spikes are NOT admitted to the
// window — one poisoned batch cannot drag the baseline toward itself and
// mask a second fault.
//
// Determinism: the verdict is a pure function of the accepted-value history,
// so a replayed run (ResilientTrainer's rollback path) reproduces the same
// skip/rollback decisions.

#include <cstddef>
#include <deque>
#include <string>

namespace vocab::guard {

class AnomalyDetector {
 public:
  /// `window`: max accepted samples kept; `min_samples`: accepted samples
  /// required before finite values can be flagged; `threshold`: robust
  /// z-score above which a value is a spike.
  AnomalyDetector(std::size_t window, std::size_t min_samples, double threshold);

  /// Classify `v` and, when it is not a spike, admit it to the window.
  /// Returns true when `v` is a spike.
  bool observe(double v);

  /// Classify without mutating the window.
  [[nodiscard]] bool is_spike(double v) const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::size_t spikes() const { return spikes_; }

  /// Median of the accepted window (0 when empty).
  [[nodiscard]] double median() const;

  /// One-line dump: "n=5 median=2.1 mad=0.3 spikes=1 window=[...]" — embedded
  /// in watchdog stall snapshots.
  [[nodiscard]] std::string describe() const;

  void reset();

 private:
  std::size_t window_;
  std::size_t min_samples_;
  double threshold_;
  std::deque<double> values_;
  std::size_t spikes_ = 0;
};

}  // namespace vocab::guard
