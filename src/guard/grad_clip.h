#pragma once

// Cross-shard global gradient-norm clipping.
//
// The hard part of clipping under vocabulary parallelism is not the norm —
// it is making the clipped run *bit-identical* to ReferenceTrainer's single-
// device clip even though the vocab matrices are row-sharded across p
// devices and the all-reduce may combine partials in any order. The trick:
//
//   1. Define a canonical *unit vector*: one float per clip unit, in a fixed
//      global order — every stack parameter tensor (layer-major, the
//      TransformerStack::parameters() order), then the position embedding,
//      then one unit per vocabulary row of the output weight (tied runs use
//      the combined output+input gradient rows), then — untied only — one
//      unit per input-embedding row. Each unit value is the squared norm of
//      that unit's gradient bytes, accumulated serially in double and
//      rounded to float (guard/tensor_stats.h kernels).
//   2. Every rank fills ONLY the units it owns into a zero-filled vector and
//      the group all-reduces it with Sum. Each element is x + 0 + ... + 0,
//      which is exact in floating point *regardless of reduction order* —
//      the all-reduce cannot introduce nondeterminism.
//   3. Every rank then reduces the unit vector to the total in a fixed
//      sequential double sum (total_squared_norm) and derives norm/scale.
//
// ReferenceTrainer computes the identical unit vector on one device, so the
// norm and scale match bit-for-bit whenever the gradients match bit-for-bit.
//
// with_clip_collective() makes the clip's all-reduce part of the *verified*
// schedule: it appends one "clipAR" Collective op per device (comm stream,
// shared collective id, depending on the last op of each of the device's
// lanes), so the executed schedule — clip included — still passes the static
// verifier's collective-order certification.

#include <cstdint>
#include <vector>

#include "schedule/ops.h"

namespace vocab::guard {

/// Canonical unit indexing for one model configuration. `vocab` is the
/// *valid* (unpadded) vocabulary size — shard padding rows carry no unit.
struct ClipUnitLayout {
  int num_layers = 0;  ///< total transformer layers in the model
  std::int64_t vocab = 0;
  bool tied = true;

  /// Tensors per transformer layer in TransformerStack::parameters() order:
  /// ln1_g, ln1_b, wq, wk, wv, wo, ln2_g, ln2_b, w1, b1, w2, b2.
  static constexpr int kParamsPerLayer = 12;

  [[nodiscard]] std::int64_t num_stack_units() const {
    return static_cast<std::int64_t>(num_layers) * kParamsPerLayer;
  }
  /// Unit of parameter `param` (0..11) of global layer `layer`.
  [[nodiscard]] std::int64_t stack_unit(int layer, int param) const {
    return static_cast<std::int64_t>(layer) * kParamsPerLayer + param;
  }
  [[nodiscard]] std::int64_t pos_unit() const { return num_stack_units(); }
  /// Unit of output-weight row `v` (tied: the combined out+in grad row).
  [[nodiscard]] std::int64_t output_row_unit(std::int64_t v) const {
    return pos_unit() + 1 + v;
  }
  /// Unit of input-embedding row `v`. Untied layouts only.
  [[nodiscard]] std::int64_t input_row_unit(std::int64_t v) const {
    return pos_unit() + 1 + vocab + v;
  }
  [[nodiscard]] std::int64_t total_units() const {
    return pos_unit() + 1 + vocab * (tied ? 1 : 2);
  }
};

/// Outcome of the clip decision. scale == 1 when no clipping is needed.
struct ClipResult {
  float norm = 0.0f;
  float scale = 1.0f;
};

/// Sequential double sum of the unit vector, in canonical (index) order.
[[nodiscard]] double total_squared_norm(const std::vector<float>& units);

/// norm = sqrt(sum units); scale = max_norm / norm when max_norm > 0 and the
/// norm exceeds it, else 1. Pure function of (units, max_norm).
[[nodiscard]] ClipResult clip_decision(const std::vector<float>& units, float max_norm);

/// A copy of `s` with one "clipAR" Collective op appended per device: comm
/// stream, a fresh shared collective id, microbatch -1, equal durations, and
/// deps on the last op of each of the device's non-empty lanes — i.e. the
/// clip all-reduce runs strictly after every scheduled op, in a globally
/// consistent position, and the result still passes verify(). Schedules with
/// a single device are returned unchanged (a one-member collective is not a
/// collective; the trainer clips locally in the optimizer phase).
[[nodiscard]] PipelineSchedule with_clip_collective(const PipelineSchedule& s);

}  // namespace vocab::guard
