#pragma once

// Free-function kernels over Tensor.
//
// These are the CPU stand-ins for the CUDA kernels in the paper's Megatron
// implementation. Matmuls are written against 2-D tensors; batched shapes are
// flattened by the caller ([b, s, h] -> [b*s, h]), matching how Megatron's
// vocabulary layers treat the token axis.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace vocab {

class Bf16Tensor;

// ---- matrix products -------------------------------------------------------

/// C = A @ B. A: [m, k], B: [k, n] -> [m, n]. Blocked i-k-j loop.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A @ B^T. A: [m, k], B: [n, k] -> [m, n]. This is the logits product
/// Y = X W^T of eq. (1) when B is a vocabulary-sharded embedding matrix.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A^T @ B. A: [k, m], B: [k, n] -> [m, n]. Used for weight gradients
/// (eq. 4): grad_W = (softmax(Y) - G)^T X.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A @ B with B stored as bf16 ([k, n]); B elements widen exactly to
/// fp32 on load, accumulation is fp32. The mixed-precision grad_x product
/// D @ W_d against a bf16 weight shard.
Tensor matmul_bf16(const Tensor& a, const Bf16Tensor& b);

/// C = A @ B^T with B stored as bf16 ([n, k]). The mixed-precision logits
/// product Y = X W^T against a bf16 vocabulary shard — halves the weight
/// bytes streamed per token.
Tensor matmul_nt_bf16(const Tensor& a, const Bf16Tensor& b);

// ---- elementwise -----------------------------------------------------------

/// a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);
/// a * b elementwise (same shape).
Tensor mul(const Tensor& a, const Tensor& b);
/// a * s.
Tensor scale(const Tensor& a, float s);
/// In-place a += b.
void add_inplace(Tensor& a, const Tensor& b);
/// In-place a += s * b (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);
/// In-place a *= s.
void scale_inplace(Tensor& a, float s);

// ---- row reductions (over the last axis of a 2-D tensor) -------------------

/// Per-row maximum: [m, n] -> [m].
Tensor row_max(const Tensor& a);
/// Per-row sum: [m, n] -> [m].
Tensor row_sum(const Tensor& a);
/// Per-row sum of exp(a_ij - m_i) given per-row maxima m: [m, n], [m] -> [m].
Tensor row_exp_sum(const Tensor& a, const Tensor& maxima);

// ---- softmax / cross-entropy ----------------------------------------------

/// Numerically safe row softmax, eq. (2).
Tensor softmax_rows(const Tensor& logits);

/// Row softmax computed against externally supplied per-row max and exp-sum.
/// This is the partitioned softmax'(Y) of Algorithms 1 and 2, where the
/// statistics come from a vocabulary shard (local) or an all-reduce (global).
Tensor softmax_rows_with_stats(const Tensor& logits, const Tensor& maxima,
                               const Tensor& sums);

/// Mean negative log-likelihood of `targets` under row-softmaxed logits.
/// targets[i] indexes into row i's columns.
float cross_entropy_mean(const Tensor& logits, const std::vector<std::int64_t>& targets);

/// One-hot matrix G of eq. (3)/(4): [rows, classes] with G[i, targets[i]] = 1.
/// Target values outside [0, classes) contribute an all-zero row — exactly
/// the behaviour a vocabulary shard needs for labels owned by other shards.
Tensor one_hot(const std::vector<std::int64_t>& targets, std::int64_t classes);

// ---- misc ------------------------------------------------------------------

/// Transposed copy of a 2-D tensor.
Tensor transpose(const Tensor& a);

/// Rows [begin, end) of a 2-D tensor as a copy.
Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end);

/// Columns [begin, end) of a 2-D tensor as a copy.
Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end);

/// Max absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True if all |a-b| <= atol + rtol * |b| elementwise.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);

/// Sum of all elements.
double sum_all(const Tensor& a);

/// L2 norm of all elements.
double l2_norm(const Tensor& a);

}  // namespace vocab
