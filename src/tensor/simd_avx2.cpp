// AVX2 + FMA kernel table. Compiled with -mavx2 -mfma regardless of the
// project-wide arch flags; the dispatcher only installs it after
// __builtin_cpu_supports confirms the CPU executes it.
//
// Element-consistency (simd.h contract, rule 2): every output element is
// produced by the same per-element operation sequence no matter which code
// path — register-blocked body, single-row edge, or remainder loop — emitted
// it. Vector FMAs are matched by std::fma / fmaf in the scalar tails, and the
// polynomial exp has a scalar twin with the identical operation order, so
// tail elements round exactly like vector-lane elements.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {

namespace {

// ---- shared helpers --------------------------------------------------------

// Fixed lane-reduction tree: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

inline float hmax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// Fixed double-lane tree for the 2x4 double accumulators used by the sums.
inline double hsum_pd(__m256d a, __m256d b) {
  const __m256d s = _mm256_add_pd(a, b);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  __m128d t = _mm_add_pd(lo, hi);
  t = _mm_add_sd(t, _mm_unpackhi_pd(t, t));
  return _mm_cvtsd_f64(t);
}

// Widen 8 bf16 values (exact).
inline __m256 bf16_load8(const std::uint16_t* p) {
  const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i w = _mm256_cvtepu16_epi32(h);
  return _mm256_castsi256_ps(_mm256_slli_epi32(w, 16));
}

inline float bf16_load1(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Single dot product; defines the per-element sequence every matmul_nt path
// must reproduce: 8-wide FMA accumulation, hsum8 tree, fmaf tail.
inline float dot(const float* a, const float* b, std::int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t l = 0;
  for (; l + 8 <= k; l += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + l), _mm256_loadu_ps(b + l), acc);
  }
  float s = hsum8(acc);
  for (; l < k; ++l) s = std::fma(a[l], b[l], s);
  return s;
}

inline float dot_bf16(const float* a, const std::uint16_t* b, std::int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t l = 0;
  for (; l + 8 <= k; l += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + l), bf16_load8(b + l), acc);
  }
  float s = hsum8(acc);
  for (; l < k; ++l) s = std::fma(a[l], bf16_load1(b[l]), s);
  return s;
}

// ---- matmul_nt: C = A @ B^T ------------------------------------------------
//
// Cache tiling: A-row tiles of 16 against four-row B panels (the panel — four
// contiguous rows of row-major B — stays L1/L2 resident across the tile).
// Register blocking: 2 A rows x 4 B rows = 8 accumulator registers in the
// k-loop. Every C element still equals dot(arow, brow, k) bit for bit.
void mm_nt(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      std::int64_t i = ib;
      for (; i + 2 <= ie; i += 2) {
        const float* a0 = a + i * k;
        const float* a1 = a0 + k;
        __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
        __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
        __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
        __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
        std::int64_t l = 0;
        for (; l + 8 <= k; l += 8) {
          const __m256 va0 = _mm256_loadu_ps(a0 + l);
          const __m256 va1 = _mm256_loadu_ps(a1 + l);
          __m256 vb = _mm256_loadu_ps(b0 + l);
          c00 = _mm256_fmadd_ps(va0, vb, c00);
          c10 = _mm256_fmadd_ps(va1, vb, c10);
          vb = _mm256_loadu_ps(b1 + l);
          c01 = _mm256_fmadd_ps(va0, vb, c01);
          c11 = _mm256_fmadd_ps(va1, vb, c11);
          vb = _mm256_loadu_ps(b2 + l);
          c02 = _mm256_fmadd_ps(va0, vb, c02);
          c12 = _mm256_fmadd_ps(va1, vb, c12);
          vb = _mm256_loadu_ps(b3 + l);
          c03 = _mm256_fmadd_ps(va0, vb, c03);
          c13 = _mm256_fmadd_ps(va1, vb, c13);
        }
        float s00 = hsum8(c00), s01 = hsum8(c01), s02 = hsum8(c02), s03 = hsum8(c03);
        float s10 = hsum8(c10), s11 = hsum8(c11), s12 = hsum8(c12), s13 = hsum8(c13);
        for (; l < k; ++l) {
          const float x0 = a0[l], x1 = a1[l];
          s00 = std::fma(x0, b0[l], s00);
          s01 = std::fma(x0, b1[l], s01);
          s02 = std::fma(x0, b2[l], s02);
          s03 = std::fma(x0, b3[l], s03);
          s10 = std::fma(x1, b0[l], s10);
          s11 = std::fma(x1, b1[l], s11);
          s12 = std::fma(x1, b2[l], s12);
          s13 = std::fma(x1, b3[l], s13);
        }
        float* crow0 = c + i * n + j;
        float* crow1 = crow0 + n;
        crow0[0] = s00;
        crow0[1] = s01;
        crow0[2] = s02;
        crow0[3] = s03;
        crow1[0] = s10;
        crow1[1] = s11;
        crow1[2] = s12;
        crow1[3] = s13;
      }
      for (; i < ie; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n + j;
        crow[0] = dot(arow, b0, k);
        crow[1] = dot(arow, b1, k);
        crow[2] = dot(arow, b2, k);
        crow[3] = dot(arow, b3, k);
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot(a + i * k, brow, k);
      }
    }
  }
}

// bf16-B variant: 1 A row x 4 B rows (B bandwidth is already halved; the
// simpler blocking keeps the decode in registers).
void mm_nt_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint16_t* b0 = b + j * k;
      const std::uint16_t* b1 = b0 + k;
      const std::uint16_t* b2 = b1 + k;
      const std::uint16_t* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = a + i * k;
        __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
        __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
        std::int64_t l = 0;
        for (; l + 8 <= k; l += 8) {
          const __m256 va = _mm256_loadu_ps(arow + l);
          c0 = _mm256_fmadd_ps(va, bf16_load8(b0 + l), c0);
          c1 = _mm256_fmadd_ps(va, bf16_load8(b1 + l), c1);
          c2 = _mm256_fmadd_ps(va, bf16_load8(b2 + l), c2);
          c3 = _mm256_fmadd_ps(va, bf16_load8(b3 + l), c3);
        }
        float s0 = hsum8(c0), s1 = hsum8(c1), s2 = hsum8(c2), s3 = hsum8(c3);
        for (; l < k; ++l) {
          const float av = arow[l];
          s0 = std::fma(av, bf16_load1(b0[l]), s0);
          s1 = std::fma(av, bf16_load1(b1[l]), s1);
          s2 = std::fma(av, bf16_load1(b2[l]), s2);
          s3 = std::fma(av, bf16_load1(b3[l]), s3);
        }
        float* crow = c + i * n + j;
        crow[0] = s0;
        crow[1] = s1;
        crow[2] = s2;
        crow[3] = s3;
      }
    }
    for (; j < n; ++j) {
      const std::uint16_t* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot_bf16(a + i * k, brow, k);
      }
    }
  }
}

// ---- matmul: C += A @ B ----------------------------------------------------
//
// Per output row: four broadcast A elements against four contiguous B rows,
// j vectorized by 8. Per-element sequence (both vector lane and fmaf tail):
//   crow[j] += fma(a1, b1[j], a0*b0[j]) + fma(a3, b3[j], a2*b2[j])
void mm_nn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const float* b0 = b + l * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      const __m256 va0 = _mm256_set1_ps(a0);
      const __m256 va1 = _mm256_set1_ps(a1);
      const __m256 va2 = _mm256_set1_ps(a2);
      const __m256 va3 = _mm256_set1_ps(a3);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 m01 =
            _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1 + j),
                            _mm256_mul_ps(va0, _mm256_loadu_ps(b0 + j)));
        const __m256 m23 =
            _mm256_fmadd_ps(va3, _mm256_loadu_ps(b3 + j),
                            _mm256_mul_ps(va2, _mm256_loadu_ps(b2 + j)));
        _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                 _mm256_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(a1, b1[j], a0 * b0[j]);
        const float m23 = std::fma(a3, b3[j], a2 * b2[j]);
        crow[j] += m01 + m23;
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const float* brow = b + l * n;
      const __m256 vav = _mm256_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j, _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                                   _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void mm_nn_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const std::uint16_t* b0 = b + l * n;
      const std::uint16_t* b1 = b0 + n;
      const std::uint16_t* b2 = b1 + n;
      const std::uint16_t* b3 = b2 + n;
      const __m256 va0 = _mm256_set1_ps(a0);
      const __m256 va1 = _mm256_set1_ps(a1);
      const __m256 va2 = _mm256_set1_ps(a2);
      const __m256 va3 = _mm256_set1_ps(a3);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 m01 = _mm256_fmadd_ps(va1, bf16_load8(b1 + j),
                                           _mm256_mul_ps(va0, bf16_load8(b0 + j)));
        const __m256 m23 = _mm256_fmadd_ps(va3, bf16_load8(b3 + j),
                                           _mm256_mul_ps(va2, bf16_load8(b2 + j)));
        _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                 _mm256_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(a1, bf16_load1(b1[j]), a0 * bf16_load1(b0[j]));
        const float m23 = std::fma(a3, bf16_load1(b3[j]), a2 * bf16_load1(b2[j]));
        crow[j] += m01 + m23;
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const std::uint16_t* brow = b + l * n;
      const __m256 vav = _mm256_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j, _mm256_fmadd_ps(vav, bf16_load8(brow + j),
                                                   _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, bf16_load1(brow[j]), crow[j]);
    }
  }
}

// ---- matmul_tn: C += A^T @ B -----------------------------------------------
void mm_tn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k) {
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    const float* a0 = a + l * m;
    const float* a1 = a0 + m;
    const float* a2 = a1 + m;
    const float* a3 = a2 + m;
    const float* b0 = b + l * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v0 = a0[i], v1 = a1[i], v2 = a2[i], v3 = a3[i];
      const __m256 vv0 = _mm256_set1_ps(v0);
      const __m256 vv1 = _mm256_set1_ps(v1);
      const __m256 vv2 = _mm256_set1_ps(v2);
      const __m256 vv3 = _mm256_set1_ps(v3);
      float* crow = c + i * n;
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 m01 =
            _mm256_fmadd_ps(vv1, _mm256_loadu_ps(b1 + j),
                            _mm256_mul_ps(vv0, _mm256_loadu_ps(b0 + j)));
        const __m256 m23 =
            _mm256_fmadd_ps(vv3, _mm256_loadu_ps(b3 + j),
                            _mm256_mul_ps(vv2, _mm256_loadu_ps(b2 + j)));
        _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j),
                                                 _mm256_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(v1, b1[j], v0 * b0[j]);
        const float m23 = std::fma(v3, b3[j], v2 * b2[j]);
        crow[j] += m01 + m23;
      }
    }
  }
  for (; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      const __m256 vav = _mm256_set1_ps(av);
      float* crow = c + i * n;
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j, _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                                   _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

// ---- reductions ------------------------------------------------------------

float r_max(const float* x, std::int64_t n) {
  if (n == 0) return -std::numeric_limits<float>::infinity();
  if (n < 8) {
    float best = x[0];
    for (std::int64_t j = 1; j < n; ++j) best = std::max(best, x[j]);
    return best;
  }
  __m256 m = _mm256_loadu_ps(x);
  std::int64_t l = 8;
  for (; l + 8 <= n; l += 8) m = _mm256_max_ps(m, _mm256_loadu_ps(x + l));
  float best = hmax8(m);
  for (; l < n; ++l) best = std::max(best, x[l]);
  return best;
}

double r_sum(const float* x, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 v = _mm256_loadu_ps(x + l);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double s = hsum_pd(acc0, acc1);
  for (; l < n; ++l) s += x[l];
  return s;
}

// ---- exp -------------------------------------------------------------------
//
// Cephes-style single-precision exp (avx_mathfun coefficients): range-reduce
// by log2(e), degree-5 polynomial in the reduced argument, scale by 2^n via
// exponent-bit construction. Inputs below kExpLo flush to exactly 0 — masked
// -inf logits must contribute nothing and receive zero gradient. exp_scalar
// below is the bit-exact twin used for remainder elements.

constexpr float kExpHi = 88.3762626647950f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2E = 1.44269504088896341f;
constexpr float kExpC1 = 0.693359375f;
constexpr float kExpC2 = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500E-4f;
constexpr float kExpP1 = 1.3981999507E-3f;
constexpr float kExpP2 = 8.3334519073E-3f;
constexpr float kExpP3 = 4.1665795894E-2f;
constexpr float kExpP4 = 1.6666665459E-1f;
constexpr float kExpP5 = 5.0000001201E-1f;

inline __m256 exp8(__m256 x) {
  const __m256 flush = _mm256_cmp_ps(x, _mm256_set1_ps(kExpLo), _CMP_LT_OQ);
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2E), _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC1), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC2), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(kExpP0);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP1));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP2));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP3));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP4));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP5));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2 =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7F)), 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(pow2));
  return _mm256_andnot_ps(flush, y);
}

// Bit-exact scalar twin of exp8: same ops in the same order, every
// multiply-add fused (std::fma == vfmadd lane), clamps written to mirror
// minps/maxps operand-order NaN semantics.
inline float exp_scalar(float x) {
  if (x < kExpLo) return 0.0f;
  x = (x < kExpHi) ? x : kExpHi;
  x = (x > kExpLo) ? x : kExpLo;
  float fx = std::fma(x, kLog2E, 0.5f);
  fx = std::floor(fx);
  x = std::fma(-fx, kExpC1, x);
  x = std::fma(-fx, kExpC2, x);
  const float z = x * x;
  float y = kExpP0;
  y = std::fma(y, x, kExpP1);
  y = std::fma(y, x, kExpP2);
  y = std::fma(y, x, kExpP3);
  y = std::fma(y, x, kExpP4);
  y = std::fma(y, x, kExpP5);
  y = std::fma(y, z, x);
  y = y + 1.0f;
  const int n = static_cast<int>(fx);
  std::uint32_t pow2_bits = static_cast<std::uint32_t>(n + 0x7F) << 23;
  float pow2;
  std::memcpy(&pow2, &pow2_bits, sizeof(pow2));
  return y * pow2;
}

double e_sum(const float* x, std::int64_t n, float shift) {
  const __m256 vshift = _mm256_set1_ps(shift);
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 e = exp8(_mm256_sub_ps(_mm256_loadu_ps(x + l), vshift));
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
  }
  double s = hsum_pd(acc0, acc1);
  for (; l < n; ++l) s += exp_scalar(x[l] - shift);
  return s;
}

void e_scale(const float* x, float* out, std::int64_t n, float shift, float scale) {
  const __m256 vshift = _mm256_set1_ps(shift);
  const __m256 vscale = _mm256_set1_ps(scale);
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 e = exp8(_mm256_sub_ps(_mm256_loadu_ps(x + l), vshift));
    _mm256_storeu_ps(out + l, _mm256_mul_ps(e, vscale));
  }
  for (; l < n; ++l) out[l] = exp_scalar(x[l] - shift) * scale;
}

// ---- conversions / guards --------------------------------------------------

void f32_to_b16(const float* src, std::uint16_t* dst, std::int64_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i inf_bits = _mm256_set1_epi32(0x7F800000);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i round = _mm256_set1_epi32(0x7FFF);
  const __m256i quiet = _mm256_set1_epi32(0x0040);
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + l));
    const __m256i is_nan =
        _mm256_cmpgt_epi32(_mm256_and_si256(u, abs_mask), inf_bits);
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(u, 16), one);
    const __m256i rounded =
        _mm256_srli_epi32(_mm256_add_epi32(u, _mm256_add_epi32(round, lsb)), 16);
    const __m256i nan16 = _mm256_or_si256(_mm256_srli_epi32(u, 16), quiet);
    const __m256i res = _mm256_blendv_epi8(rounded, nan16, is_nan);
    const __m256i packed = _mm256_packus_epi32(res, res);
    const __m128i lo = _mm256_castsi256_si128(packed);
    const __m128i hi = _mm256_extracti128_si256(packed, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + l),
                     _mm_unpacklo_epi64(lo, hi));
  }
  for (; l < n; ++l) {
    std::uint32_t u;
    std::memcpy(&u, src + l, sizeof(u));
    if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
      dst[l] = static_cast<std::uint16_t>((u >> 16) | 0x0040u);
    } else {
      u += 0x7FFFu + ((u >> 16) & 1u);
      dst[l] = static_cast<std::uint16_t>(u >> 16);
    }
  }
}

// NaN check via cmpgt on signed ints: (u & 0x7FFFFFFF) > 0x7F800000 works
// because abs bits of any float fit in a non-negative signed int32.

void b16_to_f32(const std::uint16_t* src, float* dst, std::int64_t n) {
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    _mm256_storeu_ps(dst + l, bf16_load8(src + l));
  }
  for (; l < n; ++l) dst[l] = bf16_load1(src[l]);
}

std::int64_t nonfinite(const float* x, std::int64_t n) {
  const __m256i exp_mask = _mm256_set1_epi32(0x7F800000);
  __m256i cnt = _mm256_setzero_si256();
  std::int64_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256i u = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + l));
    const __m256i hit =
        _mm256_cmpeq_epi32(_mm256_and_si256(u, exp_mask), exp_mask);
    cnt = _mm256_sub_epi32(cnt, hit);
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), cnt);
  std::int64_t count = 0;
  for (const std::int32_t v : lanes) count += v;
  for (; l < n; ++l) {
    std::uint32_t u;
    std::memcpy(&u, x + l, sizeof(u));
    count += ((u & 0x7F800000u) == 0x7F800000u) ? 1 : 0;
  }
  return count;
}

}  // namespace

const Kernels* avx2_table() {
  static const Kernels table = {
      &mm_nn,  &mm_nt,       &mm_tn,      &mm_nn_bf16, &mm_nt_bf16, &r_max,
      &r_sum,  &e_sum,       &e_scale,    &f32_to_b16, &b16_to_f32,
      &nonfinite,
  };
  return &table;
}

}  // namespace vocab::simd::detail

#else  // build without AVX2+FMA codegen: no AVX2 table.

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {
const Kernels* avx2_table() { return nullptr; }
}  // namespace vocab::simd::detail

#endif
