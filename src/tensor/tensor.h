#pragma once

// Dense fp32 tensor with value semantics.
//
// This is the numeric substrate standing in for the paper's CUDA tensors: a
// row-major float32 buffer plus shape. Operations live in tensor_ops.h. The
// design follows the CppCoreGuidelines preference for regular value types —
// copying copies the data; moves are cheap.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace vocab {

class Rng;

/// Row-major dense float32 tensor of rank 1..4.
class Tensor {
 public:
  /// Empty (rank-1, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape. All dims must be positive.
  explicit Tensor(std::vector<std::int64_t> shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(std::vector<std::int64_t> shape, float fill);

  /// Tensor adopting `values` (size must match the shape's element count).
  Tensor(std::vector<std::int64_t> shape, std::vector<float> values);

  static Tensor zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::int64_t> shape, float v) { return {std::move(shape), v}; }

  /// Gaussian-initialised tensor (mean 0, given stddev) from a seeded Rng.
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng, float stddev = 1.0f);

  /// Uniform tensor in [lo, hi).
  static Tensor rand_uniform(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi);

  [[nodiscard]] const std::vector<std::int64_t>& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] std::int64_t dim(int i) const;
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Flat element access with bounds check.
  [[nodiscard]] float& at(std::int64_t i);
  [[nodiscard]] float at(std::int64_t i) const;

  /// 2-D element access with bounds check (requires rank 2).
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c);
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const;

  /// Reshape in place; element count must be preserved.
  Tensor& reshape(std::vector<std::int64_t> shape);

  /// A copy reshaped to the given shape.
  [[nodiscard]] Tensor reshaped(std::vector<std::int64_t> shape) const;

  /// Set every element to `v`.
  void fill(float v);

  /// Human-readable summary ("Tensor[4, 8]").
  [[nodiscard]] std::string shape_str() const;

  /// True if shapes are identical.
  [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace vocab
