// NEON (aarch64) kernel table: a conservative fallback that vectorizes the
// matmul and bf16-conversion kernels with 4-lane FMA and reuses the scalar
// reference kernels for the reductions/exp (those are bandwidth-bound at
// NEON widths anyway). Same element-consistency discipline as the x86
// tables: vfmaq lanes are matched by std::fma tails.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {

namespace {

// Fixed tree: (l0+l2) + (l1+l3).
inline float hsum4(float32x4_t v) {
  const float32x2_t lo = vget_low_f32(v);
  const float32x2_t hi = vget_high_f32(v);
  const float32x2_t s = vadd_f32(lo, hi);
  return vget_lane_f32(s, 0) + vget_lane_f32(s, 1);
}

inline float32x4_t bf16_load4(const std::uint16_t* p) {
  const uint16x4_t h = vld1_u16(p);
  const uint32x4_t w = vshll_n_u16(h, 16);
  return vreinterpretq_f32_u32(w);
}

inline float bf16_load1(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

inline float dot(const float* a, const float* b, std::int64_t k) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + l), vld1q_f32(b + l));
  }
  float s = hsum4(acc);
  for (; l < k; ++l) s = std::fma(a[l], b[l], s);
  return s;
}

inline float dot_bf16(const float* a, const std::uint16_t* b, std::int64_t k) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + l), bf16_load4(b + l));
  }
  float s = hsum4(acc);
  for (; l < k; ++l) s = std::fma(a[l], bf16_load1(b[l]), s);
  return s;
}

void mm_nt(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = a + i * k;
        float32x4_t c0 = vdupq_n_f32(0.0f), c1 = vdupq_n_f32(0.0f);
        float32x4_t c2 = vdupq_n_f32(0.0f), c3 = vdupq_n_f32(0.0f);
        std::int64_t l = 0;
        for (; l + 4 <= k; l += 4) {
          const float32x4_t va = vld1q_f32(arow + l);
          c0 = vfmaq_f32(c0, va, vld1q_f32(b0 + l));
          c1 = vfmaq_f32(c1, va, vld1q_f32(b1 + l));
          c2 = vfmaq_f32(c2, va, vld1q_f32(b2 + l));
          c3 = vfmaq_f32(c3, va, vld1q_f32(b3 + l));
        }
        float s0 = hsum4(c0), s1 = hsum4(c1), s2 = hsum4(c2), s3 = hsum4(c3);
        for (; l < k; ++l) {
          const float av = arow[l];
          s0 = std::fma(av, b0[l], s0);
          s1 = std::fma(av, b1[l], s1);
          s2 = std::fma(av, b2[l], s2);
          s3 = std::fma(av, b3[l], s3);
        }
        float* crow = c + i * n + j;
        crow[0] = s0;
        crow[1] = s1;
        crow[2] = s2;
        crow[3] = s3;
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot(a + i * k, brow, k);
      }
    }
  }
}

void mm_nt_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint16_t* b0 = b + j * k;
      const std::uint16_t* b1 = b0 + k;
      const std::uint16_t* b2 = b1 + k;
      const std::uint16_t* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = a + i * k;
        float32x4_t c0 = vdupq_n_f32(0.0f), c1 = vdupq_n_f32(0.0f);
        float32x4_t c2 = vdupq_n_f32(0.0f), c3 = vdupq_n_f32(0.0f);
        std::int64_t l = 0;
        for (; l + 4 <= k; l += 4) {
          const float32x4_t va = vld1q_f32(arow + l);
          c0 = vfmaq_f32(c0, va, bf16_load4(b0 + l));
          c1 = vfmaq_f32(c1, va, bf16_load4(b1 + l));
          c2 = vfmaq_f32(c2, va, bf16_load4(b2 + l));
          c3 = vfmaq_f32(c3, va, bf16_load4(b3 + l));
        }
        float s0 = hsum4(c0), s1 = hsum4(c1), s2 = hsum4(c2), s3 = hsum4(c3);
        for (; l < k; ++l) {
          const float av = arow[l];
          s0 = std::fma(av, bf16_load1(b0[l]), s0);
          s1 = std::fma(av, bf16_load1(b1[l]), s1);
          s2 = std::fma(av, bf16_load1(b2[l]), s2);
          s3 = std::fma(av, bf16_load1(b3[l]), s3);
        }
        float* crow = c + i * n + j;
        crow[0] = s0;
        crow[1] = s1;
        crow[2] = s2;
        crow[3] = s3;
      }
    }
    for (; j < n; ++j) {
      const std::uint16_t* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot_bf16(a + i * k, brow, k);
      }
    }
  }
}

void mm_nn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t l = 0; l < k; ++l) {
      const float av = arow[l];
      const float* brow = b + l * n;
      const float32x4_t vav = vdupq_n_f32(av);
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        vst1q_f32(crow + j, vfmaq_f32(vld1q_f32(crow + j), vav, vld1q_f32(brow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void mm_nn_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t l = 0; l < k; ++l) {
      const float av = arow[l];
      const std::uint16_t* brow = b + l * n;
      const float32x4_t vav = vdupq_n_f32(av);
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        vst1q_f32(crow + j, vfmaq_f32(vld1q_f32(crow + j), vav, bf16_load4(brow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, bf16_load1(brow[j]), crow[j]);
    }
  }
}

void mm_tn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k) {
  for (std::int64_t l = 0; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      const float32x4_t vav = vdupq_n_f32(av);
      float* crow = c + i * n;
      std::int64_t j = 0;
      for (; j + 4 <= n; j += 4) {
        vst1q_f32(crow + j, vfmaq_f32(vld1q_f32(crow + j), vav, vld1q_f32(brow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void f32_to_b16(const float* src, std::uint16_t* dst, std::int64_t n) {
  for (std::int64_t l = 0; l < n; ++l) {
    std::uint32_t u;
    std::memcpy(&u, src + l, sizeof(u));
    if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
      dst[l] = static_cast<std::uint16_t>((u >> 16) | 0x0040u);
    } else {
      u += 0x7FFFu + ((u >> 16) & 1u);
      dst[l] = static_cast<std::uint16_t>(u >> 16);
    }
  }
}

void b16_to_f32(const std::uint16_t* src, float* dst, std::int64_t n) {
  std::int64_t l = 0;
  for (; l + 4 <= n; l += 4) vst1q_f32(dst + l, bf16_load4(src + l));
  for (; l < n; ++l) dst[l] = bf16_load1(src[l]);
}

}  // namespace

const Kernels* neon_table() {
  static const Kernels table = {
      &mm_nn,        &mm_nt,        &mm_tn,   &mm_nn_bf16, &mm_nt_bf16,
      &s_reduce_max, &s_reduce_sum, &s_exp_sum, &s_exp_scale,
      &f32_to_b16,   &b16_to_f32,   &s_nonfinite_count,
  };
  return &table;
}

}  // namespace vocab::simd::detail

#else  // non-aarch64 build: no NEON table.

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {
const Kernels* neon_table() { return nullptr; }
}  // namespace vocab::simd::detail

#endif
