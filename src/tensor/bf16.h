#pragma once

// Header-only bfloat16 storage type + a bf16 tensor container.
//
// bf16 is fp32 with the bottom 16 mantissa bits dropped: same exponent range
// (so no new overflow behaviour versus fp32 — only precision loss), 8 bits of
// significand. That makes it the natural *storage and wire* format for the
// paper's vocabulary layers: shard weights and S/T-pass activations halve
// their 2hV footprint and their all-reduce/pipeline payloads, while every
// arithmetic op still runs in fp32 (values are widened on load, exactly).
//
// Following the c10 Half idiom (SNIPPETS.md Snippet 3), arithmetic on bf16
// promotes to float and returns float — the type never does half-precision
// math, so there is no second rounding mode to reason about. Conversion to
// bf16 rounds to nearest-even and keeps NaNs quiet; conversion back is exact.
// Both directions are value-exact across SIMD levels (integer bit
// manipulation), so mixed-precision state never depends on dispatch.

#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace vocab {

namespace bf16_detail {

/// fp32 -> bf16 bits, round-to-nearest-even; NaN payload is truncated but
/// forced quiet so it cannot become an infinity.
inline std::uint16_t bits_from_float(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  u += 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

/// bf16 bits -> fp32 (exact: every bf16 value is an fp32 value).
inline float float_from_bits(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

}  // namespace bf16_detail

/// One bfloat16 value. Storage-only: loads widen to float, arithmetic is
/// float arithmetic.
struct bf16 {
  std::uint16_t bits = 0;

  bf16() = default;
  explicit bf16(float f) : bits(bf16_detail::bits_from_float(f)) {}
  operator float() const { return bf16_detail::float_from_bits(bits); }

  static bf16 from_bits(std::uint16_t b) {
    bf16 h;
    h.bits = b;
    return h;
  }
};

inline float operator+(bf16 a, bf16 b) { return static_cast<float>(a) + static_cast<float>(b); }
inline float operator-(bf16 a, bf16 b) { return static_cast<float>(a) - static_cast<float>(b); }
inline float operator*(bf16 a, bf16 b) { return static_cast<float>(a) * static_cast<float>(b); }
inline float operator/(bf16 a, bf16 b) { return static_cast<float>(a) / static_cast<float>(b); }
inline bool operator==(bf16 a, bf16 b) { return static_cast<float>(a) == static_cast<float>(b); }

/// Dense row-major bf16 tensor: the storage twin of Tensor for vocab-shard
/// parameters and stage-boundary activations. Conversions go through the
/// active SIMD level's bulk kernels (bit-identical across levels).
class Bf16Tensor {
 public:
  Bf16Tensor() = default;

  explicit Bf16Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
    std::int64_t n = 1;
    for (const std::int64_t d : shape_) n *= d;
    data_.assign(static_cast<std::size_t>(n < 0 ? 0 : n), 0);
  }

  /// Round an fp32 tensor into bf16 storage.
  static Bf16Tensor from_tensor(const Tensor& t) {
    Bf16Tensor h(t.shape());
    simd::kernels().fp32_to_bf16(t.data(), h.data(), t.numel());
    return h;
  }

  /// Widen back to fp32 (exact).
  [[nodiscard]] Tensor to_tensor() const {
    Tensor t(shape_);
    simd::kernels().bf16_to_fp32(data(), t.data(), t.numel());
    return t;
  }

  /// Overwrite the stored values from a same-shaped fp32 tensor.
  void assign_from(const Tensor& t) {
    shape_ = t.shape();
    data_.resize(static_cast<std::size_t>(t.numel()));
    simd::kernels().fp32_to_bf16(t.data(), data(), t.numel());
  }

  [[nodiscard]] const std::vector<std::int64_t>& shape() const { return shape_; }
  [[nodiscard]] std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  [[nodiscard]] std::int64_t dim(std::int64_t i) const { return shape_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] std::size_t byte_size() const { return data_.size() * sizeof(std::uint16_t); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::uint16_t* data() { return data_.data(); }
  [[nodiscard]] const std::uint16_t* data() const { return data_.data(); }

 private:
  std::vector<std::int64_t> shape_;
  std::vector<std::uint16_t> data_;
};

}  // namespace vocab
