// AVX-512 (F/BW/DQ/VL) kernel table: the AVX2 algorithms at 16 lanes, with
// mask registers for the blends. Same element-consistency discipline — the
// scalar tails are fused-FMA twins of the vector lanes, so an element's bits
// do not depend on which path produced it.

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {

namespace {

// ---- shared helpers --------------------------------------------------------

inline float hsum8_avx(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// Fixed tree: halves first, then the 8-lane tree.
inline float hsum16(__m512 v) {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm512_extractf32x8_ps(v, 1);
  return hsum8_avx(_mm256_add_ps(lo, hi));
}

inline float hmax16(__m512 v) {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm512_extractf32x8_ps(v, 1);
  const __m256 m8 = _mm256_max_ps(lo, hi);
  const __m128 l = _mm256_castps256_ps128(m8);
  const __m128 h = _mm256_extractf128_ps(m8, 1);
  __m128 s = _mm_max_ps(l, h);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

inline double hsum_pd16(__m512d a, __m512d b) {
  const __m512d s = _mm512_add_pd(a, b);
  const __m256d lo = _mm512_castpd512_pd256(s);
  const __m256d hi = _mm512_extractf64x4_pd(s, 1);
  const __m256d q = _mm256_add_pd(lo, hi);
  const __m128d l = _mm256_castpd256_pd128(q);
  const __m128d h = _mm256_extractf128_pd(q, 1);
  __m128d t = _mm_add_pd(l, h);
  t = _mm_add_sd(t, _mm_unpackhi_pd(t, t));
  return _mm_cvtsd_f64(t);
}

inline __m512 bf16_load16(const std::uint16_t* p) {
  const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m512i w = _mm512_cvtepu16_epi32(h);
  return _mm512_castsi512_ps(_mm512_slli_epi32(w, 16));
}

inline float bf16_load1(std::uint16_t h) {
  const std::uint32_t u = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

inline float dot(const float* a, const float* b, std::int64_t k) {
  __m512 acc = _mm512_setzero_ps();
  std::int64_t l = 0;
  for (; l + 16 <= k; l += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + l), _mm512_loadu_ps(b + l), acc);
  }
  float s = hsum16(acc);
  for (; l < k; ++l) s = std::fma(a[l], b[l], s);
  return s;
}

inline float dot_bf16(const float* a, const std::uint16_t* b, std::int64_t k) {
  __m512 acc = _mm512_setzero_ps();
  std::int64_t l = 0;
  for (; l + 16 <= k; l += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + l), bf16_load16(b + l), acc);
  }
  float s = hsum16(acc);
  for (; l < k; ++l) s = std::fma(a[l], bf16_load1(b[l]), s);
  return s;
}

// ---- matmul_nt: C = A @ B^T ------------------------------------------------

void mm_nt(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      std::int64_t i = ib;
      for (; i + 2 <= ie; i += 2) {
        const float* a0 = a + i * k;
        const float* a1 = a0 + k;
        __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
        __m512 c02 = _mm512_setzero_ps(), c03 = _mm512_setzero_ps();
        __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
        __m512 c12 = _mm512_setzero_ps(), c13 = _mm512_setzero_ps();
        std::int64_t l = 0;
        for (; l + 16 <= k; l += 16) {
          const __m512 va0 = _mm512_loadu_ps(a0 + l);
          const __m512 va1 = _mm512_loadu_ps(a1 + l);
          __m512 vb = _mm512_loadu_ps(b0 + l);
          c00 = _mm512_fmadd_ps(va0, vb, c00);
          c10 = _mm512_fmadd_ps(va1, vb, c10);
          vb = _mm512_loadu_ps(b1 + l);
          c01 = _mm512_fmadd_ps(va0, vb, c01);
          c11 = _mm512_fmadd_ps(va1, vb, c11);
          vb = _mm512_loadu_ps(b2 + l);
          c02 = _mm512_fmadd_ps(va0, vb, c02);
          c12 = _mm512_fmadd_ps(va1, vb, c12);
          vb = _mm512_loadu_ps(b3 + l);
          c03 = _mm512_fmadd_ps(va0, vb, c03);
          c13 = _mm512_fmadd_ps(va1, vb, c13);
        }
        float s00 = hsum16(c00), s01 = hsum16(c01), s02 = hsum16(c02), s03 = hsum16(c03);
        float s10 = hsum16(c10), s11 = hsum16(c11), s12 = hsum16(c12), s13 = hsum16(c13);
        for (; l < k; ++l) {
          const float x0 = a0[l], x1 = a1[l];
          s00 = std::fma(x0, b0[l], s00);
          s01 = std::fma(x0, b1[l], s01);
          s02 = std::fma(x0, b2[l], s02);
          s03 = std::fma(x0, b3[l], s03);
          s10 = std::fma(x1, b0[l], s10);
          s11 = std::fma(x1, b1[l], s11);
          s12 = std::fma(x1, b2[l], s12);
          s13 = std::fma(x1, b3[l], s13);
        }
        float* crow0 = c + i * n + j;
        float* crow1 = crow0 + n;
        crow0[0] = s00;
        crow0[1] = s01;
        crow0[2] = s02;
        crow0[3] = s03;
        crow1[0] = s10;
        crow1[1] = s11;
        crow1[2] = s12;
        crow1[3] = s13;
      }
      for (; i < ie; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n + j;
        crow[0] = dot(arow, b0, k);
        crow[1] = dot(arow, b1, k);
        crow[2] = dot(arow, b2, k);
        crow[3] = dot(arow, b3, k);
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot(a + i * k, brow, k);
      }
    }
  }
}

void mm_nt_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 16;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint16_t* b0 = b + j * k;
      const std::uint16_t* b1 = b0 + k;
      const std::uint16_t* b2 = b1 + k;
      const std::uint16_t* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        const float* arow = a + i * k;
        __m512 c0 = _mm512_setzero_ps(), c1 = _mm512_setzero_ps();
        __m512 c2 = _mm512_setzero_ps(), c3 = _mm512_setzero_ps();
        std::int64_t l = 0;
        for (; l + 16 <= k; l += 16) {
          const __m512 va = _mm512_loadu_ps(arow + l);
          c0 = _mm512_fmadd_ps(va, bf16_load16(b0 + l), c0);
          c1 = _mm512_fmadd_ps(va, bf16_load16(b1 + l), c1);
          c2 = _mm512_fmadd_ps(va, bf16_load16(b2 + l), c2);
          c3 = _mm512_fmadd_ps(va, bf16_load16(b3 + l), c3);
        }
        float s0 = hsum16(c0), s1 = hsum16(c1), s2 = hsum16(c2), s3 = hsum16(c3);
        for (; l < k; ++l) {
          const float av = arow[l];
          s0 = std::fma(av, bf16_load1(b0[l]), s0);
          s1 = std::fma(av, bf16_load1(b1[l]), s1);
          s2 = std::fma(av, bf16_load1(b2[l]), s2);
          s3 = std::fma(av, bf16_load1(b3[l]), s3);
        }
        float* crow = c + i * n + j;
        crow[0] = s0;
        crow[1] = s1;
        crow[2] = s2;
        crow[3] = s3;
      }
    }
    for (; j < n; ++j) {
      const std::uint16_t* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot_bf16(a + i * k, brow, k);
      }
    }
  }
}

// ---- matmul: C += A @ B ----------------------------------------------------

void mm_nn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const float* b0 = b + l * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      const __m512 va0 = _mm512_set1_ps(a0);
      const __m512 va1 = _mm512_set1_ps(a1);
      const __m512 va2 = _mm512_set1_ps(a2);
      const __m512 va3 = _mm512_set1_ps(a3);
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m512 m01 =
            _mm512_fmadd_ps(va1, _mm512_loadu_ps(b1 + j),
                            _mm512_mul_ps(va0, _mm512_loadu_ps(b0 + j)));
        const __m512 m23 =
            _mm512_fmadd_ps(va3, _mm512_loadu_ps(b3 + j),
                            _mm512_mul_ps(va2, _mm512_loadu_ps(b2 + j)));
        _mm512_storeu_ps(crow + j, _mm512_add_ps(_mm512_loadu_ps(crow + j),
                                                 _mm512_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(a1, b1[j], a0 * b0[j]);
        const float m23 = std::fma(a3, b3[j], a2 * b2[j]);
        crow[j] += m01 + m23;
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const float* brow = b + l * n;
      const __m512 vav = _mm512_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        _mm512_storeu_ps(crow + j, _mm512_fmadd_ps(vav, _mm512_loadu_ps(brow + j),
                                                   _mm512_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

void mm_nn_bf16(const float* a, const std::uint16_t* b, float* c, std::int64_t i0,
                std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const std::uint16_t* b0 = b + l * n;
      const std::uint16_t* b1 = b0 + n;
      const std::uint16_t* b2 = b1 + n;
      const std::uint16_t* b3 = b2 + n;
      const __m512 va0 = _mm512_set1_ps(a0);
      const __m512 va1 = _mm512_set1_ps(a1);
      const __m512 va2 = _mm512_set1_ps(a2);
      const __m512 va3 = _mm512_set1_ps(a3);
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m512 m01 = _mm512_fmadd_ps(va1, bf16_load16(b1 + j),
                                           _mm512_mul_ps(va0, bf16_load16(b0 + j)));
        const __m512 m23 = _mm512_fmadd_ps(va3, bf16_load16(b3 + j),
                                           _mm512_mul_ps(va2, bf16_load16(b2 + j)));
        _mm512_storeu_ps(crow + j, _mm512_add_ps(_mm512_loadu_ps(crow + j),
                                                 _mm512_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(a1, bf16_load1(b1[j]), a0 * bf16_load1(b0[j]));
        const float m23 = std::fma(a3, bf16_load1(b3[j]), a2 * bf16_load1(b2[j]));
        crow[j] += m01 + m23;
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const std::uint16_t* brow = b + l * n;
      const __m512 vav = _mm512_set1_ps(av);
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        _mm512_storeu_ps(crow + j, _mm512_fmadd_ps(vav, bf16_load16(brow + j),
                                                   _mm512_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, bf16_load1(brow[j]), crow[j]);
    }
  }
}

// ---- matmul_tn: C += A^T @ B -----------------------------------------------

void mm_tn(const float* a, const float* b, float* c, std::int64_t i0,
           std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k) {
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    const float* a0 = a + l * m;
    const float* a1 = a0 + m;
    const float* a2 = a1 + m;
    const float* a3 = a2 + m;
    const float* b0 = b + l * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v0 = a0[i], v1 = a1[i], v2 = a2[i], v3 = a3[i];
      const __m512 vv0 = _mm512_set1_ps(v0);
      const __m512 vv1 = _mm512_set1_ps(v1);
      const __m512 vv2 = _mm512_set1_ps(v2);
      const __m512 vv3 = _mm512_set1_ps(v3);
      float* crow = c + i * n;
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m512 m01 =
            _mm512_fmadd_ps(vv1, _mm512_loadu_ps(b1 + j),
                            _mm512_mul_ps(vv0, _mm512_loadu_ps(b0 + j)));
        const __m512 m23 =
            _mm512_fmadd_ps(vv3, _mm512_loadu_ps(b3 + j),
                            _mm512_mul_ps(vv2, _mm512_loadu_ps(b2 + j)));
        _mm512_storeu_ps(crow + j, _mm512_add_ps(_mm512_loadu_ps(crow + j),
                                                 _mm512_add_ps(m01, m23)));
      }
      for (; j < n; ++j) {
        const float m01 = std::fma(v1, b1[j], v0 * b0[j]);
        const float m23 = std::fma(v3, b3[j], v2 * b2[j]);
        crow[j] += m01 + m23;
      }
    }
  }
  for (; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      const __m512 vav = _mm512_set1_ps(av);
      float* crow = c + i * n;
      std::int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        _mm512_storeu_ps(crow + j, _mm512_fmadd_ps(vav, _mm512_loadu_ps(brow + j),
                                                   _mm512_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] = std::fma(av, brow[j], crow[j]);
    }
  }
}

// ---- reductions ------------------------------------------------------------

float r_max(const float* x, std::int64_t n) {
  if (n == 0) return -std::numeric_limits<float>::infinity();
  if (n < 16) {
    float best = x[0];
    for (std::int64_t j = 1; j < n; ++j) best = std::max(best, x[j]);
    return best;
  }
  __m512 m = _mm512_loadu_ps(x);
  std::int64_t l = 16;
  for (; l + 16 <= n; l += 16) m = _mm512_max_ps(m, _mm512_loadu_ps(x + l));
  float best = hmax16(m);
  for (; l < n; ++l) best = std::max(best, x[l]);
  return best;
}

double r_sum(const float* x, std::int64_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512 v = _mm512_loadu_ps(x + l);
    acc0 = _mm512_add_pd(acc0, _mm512_cvtps_pd(_mm512_castps512_ps256(v)));
    acc1 = _mm512_add_pd(acc1, _mm512_cvtps_pd(_mm512_extractf32x8_ps(v, 1)));
  }
  double s = hsum_pd16(acc0, acc1);
  for (; l < n; ++l) s += x[l];
  return s;
}

// ---- exp -------------------------------------------------------------------

constexpr float kExpHi = 88.3762626647950f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2E = 1.44269504088896341f;
constexpr float kExpC1 = 0.693359375f;
constexpr float kExpC2 = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500E-4f;
constexpr float kExpP1 = 1.3981999507E-3f;
constexpr float kExpP2 = 8.3334519073E-3f;
constexpr float kExpP3 = 4.1665795894E-2f;
constexpr float kExpP4 = 1.6666665459E-1f;
constexpr float kExpP5 = 5.0000001201E-1f;

inline __m512 exp16(__m512 x) {
  const __mmask16 flush =
      _mm512_cmp_ps_mask(x, _mm512_set1_ps(kExpLo), _CMP_LT_OQ);
  x = _mm512_min_ps(x, _mm512_set1_ps(kExpHi));
  x = _mm512_max_ps(x, _mm512_set1_ps(kExpLo));
  __m512 fx = _mm512_fmadd_ps(x, _mm512_set1_ps(kLog2E), _mm512_set1_ps(0.5f));
  fx = _mm512_roundscale_ps(fx, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(kExpC1), x);
  x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(kExpC2), x);
  const __m512 z = _mm512_mul_ps(x, x);
  __m512 y = _mm512_set1_ps(kExpP0);
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP1));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP2));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP3));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP4));
  y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(kExpP5));
  y = _mm512_fmadd_ps(y, z, x);
  y = _mm512_add_ps(y, _mm512_set1_ps(1.0f));
  const __m512i n = _mm512_cvtps_epi32(fx);
  const __m512i pow2 =
      _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(0x7F)), 23);
  y = _mm512_mul_ps(y, _mm512_castsi512_ps(pow2));
  return _mm512_mask_blend_ps(flush, y, _mm512_setzero_ps());
}

inline float exp_scalar(float x) {
  if (x < kExpLo) return 0.0f;
  x = (x < kExpHi) ? x : kExpHi;
  x = (x > kExpLo) ? x : kExpLo;
  float fx = std::fma(x, kLog2E, 0.5f);
  fx = std::floor(fx);
  x = std::fma(-fx, kExpC1, x);
  x = std::fma(-fx, kExpC2, x);
  const float z = x * x;
  float y = kExpP0;
  y = std::fma(y, x, kExpP1);
  y = std::fma(y, x, kExpP2);
  y = std::fma(y, x, kExpP3);
  y = std::fma(y, x, kExpP4);
  y = std::fma(y, x, kExpP5);
  y = std::fma(y, z, x);
  y = y + 1.0f;
  const int n = static_cast<int>(fx);
  const std::uint32_t pow2_bits = static_cast<std::uint32_t>(n + 0x7F) << 23;
  float pow2;
  std::memcpy(&pow2, &pow2_bits, sizeof(pow2));
  return y * pow2;
}

double e_sum(const float* x, std::int64_t n, float shift) {
  const __m512 vshift = _mm512_set1_ps(shift);
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512 e = exp16(_mm512_sub_ps(_mm512_loadu_ps(x + l), vshift));
    acc0 = _mm512_add_pd(acc0, _mm512_cvtps_pd(_mm512_castps512_ps256(e)));
    acc1 = _mm512_add_pd(acc1, _mm512_cvtps_pd(_mm512_extractf32x8_ps(e, 1)));
  }
  double s = hsum_pd16(acc0, acc1);
  for (; l < n; ++l) s += exp_scalar(x[l] - shift);
  return s;
}

void e_scale(const float* x, float* out, std::int64_t n, float shift, float scale) {
  const __m512 vshift = _mm512_set1_ps(shift);
  const __m512 vscale = _mm512_set1_ps(scale);
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512 e = exp16(_mm512_sub_ps(_mm512_loadu_ps(x + l), vshift));
    _mm512_storeu_ps(out + l, _mm512_mul_ps(e, vscale));
  }
  for (; l < n; ++l) out[l] = exp_scalar(x[l] - shift) * scale;
}

// ---- conversions / guards --------------------------------------------------

void f32_to_b16(const float* src, std::uint16_t* dst, std::int64_t n) {
  const __m512i abs_mask = _mm512_set1_epi32(0x7FFFFFFF);
  const __m512i inf_bits = _mm512_set1_epi32(0x7F800000);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i round = _mm512_set1_epi32(0x7FFF);
  const __m512i quiet = _mm512_set1_epi32(0x0040);
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512i u =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + l));
    const __mmask16 is_nan =
        _mm512_cmpgt_epi32_mask(_mm512_and_si512(u, abs_mask), inf_bits);
    const __m512i lsb = _mm512_and_si512(_mm512_srli_epi32(u, 16), one);
    const __m512i rounded =
        _mm512_srli_epi32(_mm512_add_epi32(u, _mm512_add_epi32(round, lsb)), 16);
    const __m512i nan16 = _mm512_or_si512(_mm512_srli_epi32(u, 16), quiet);
    const __m512i res = _mm512_mask_blend_epi32(is_nan, rounded, nan16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + l),
                        _mm512_cvtepi32_epi16(res));
  }
  for (; l < n; ++l) {
    std::uint32_t u;
    std::memcpy(&u, src + l, sizeof(u));
    if ((u & 0x7FFFFFFFu) > 0x7F800000u) {
      dst[l] = static_cast<std::uint16_t>((u >> 16) | 0x0040u);
    } else {
      u += 0x7FFFu + ((u >> 16) & 1u);
      dst[l] = static_cast<std::uint16_t>(u >> 16);
    }
  }
}

void b16_to_f32(const std::uint16_t* src, float* dst, std::int64_t n) {
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    _mm512_storeu_ps(dst + l, bf16_load16(src + l));
  }
  for (; l < n; ++l) dst[l] = bf16_load1(src[l]);
}

std::int64_t nonfinite(const float* x, std::int64_t n) {
  const __m512i exp_mask = _mm512_set1_epi32(0x7F800000);
  std::int64_t count = 0;
  std::int64_t l = 0;
  for (; l + 16 <= n; l += 16) {
    const __m512i u = _mm512_loadu_si512(reinterpret_cast<const void*>(x + l));
    const __mmask16 hit =
        _mm512_cmpeq_epi32_mask(_mm512_and_si512(u, exp_mask), exp_mask);
    count += __builtin_popcount(static_cast<unsigned>(hit));
  }
  for (; l < n; ++l) {
    std::uint32_t u;
    std::memcpy(&u, x + l, sizeof(u));
    count += ((u & 0x7F800000u) == 0x7F800000u) ? 1 : 0;
  }
  return count;
}

}  // namespace

const Kernels* avx512_table() {
  static const Kernels table = {
      &mm_nn,  &mm_nt,       &mm_tn,      &mm_nn_bf16, &mm_nt_bf16, &r_max,
      &r_sum,  &e_sum,       &e_scale,    &f32_to_b16, &b16_to_f32,
      &nonfinite,
  };
  return &table;
}

}  // namespace vocab::simd::detail

#else  // build without AVX-512 codegen: no AVX-512 table.

#include "tensor/simd_tables.h"

namespace vocab::simd::detail {
const Kernels* avx512_table() { return nullptr; }
}  // namespace vocab::simd::detail

#endif
