#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "parallel/thread_pool.h"
#include "tensor/bf16.h"
#include "tensor/simd.h"

namespace vocab {

namespace {

void check_rank2(const Tensor& t, const char* who) {
  VOCAB_CHECK(t.rank() == 2, who << " requires a rank-2 tensor, got " << t.shape_str());
}

// Minimum work per parallel_for chunk, in inner-loop steps. Grains derived
// from it depend only on the problem shape, keeping chunk boundaries (and
// therefore results) independent of the thread count.
constexpr std::int64_t kGrainSteps = 32 * 1024;

std::int64_t row_grain(std::int64_t steps_per_row) {
  return std::max<std::int64_t>(1, kGrainSteps / std::max<std::int64_t>(steps_per_row, 1));
}

// The inner loops live in the runtime-dispatched kernel tables (tensor/simd.h).
// The table is resolved on the calling thread, before the parallel_for, so
// worker threads never consult dispatch state; kernels are invoked per chunk
// and chunk boundaries are shape-only, preserving thread-width determinism.

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  VOCAB_CHECK(b.dim(0) == k, "matmul inner dims mismatch: " << a.shape_str() << " @ " << b.shape_str());
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallel over output rows; the kernel accumulates four B rows per pass so
  // C traffic drops 4x and the j-loop stays elementwise (vector-friendly).
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    ks.matmul_rows(pa, pb, pc, i0, i1, n, k);
  });
  return c;
}

Tensor matmul_bf16(const Tensor& a, const Bf16Tensor& b) {
  check_rank2(a, "matmul_bf16");
  VOCAB_CHECK(b.rank() == 2, "matmul_bf16 requires a rank-2 bf16 tensor");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  VOCAB_CHECK(b.dim(0) == k, "matmul_bf16 inner dims mismatch: " << a.shape_str()
                                                                 << " @ bf16[" << b.dim(0)
                                                                 << ", " << b.dim(1) << "]");
  Tensor c({m, n});
  const float* pa = a.data();
  const std::uint16_t* pb = b.data();
  float* pc = c.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    ks.matmul_bf16_rows(pa, pb, pc, i0, i1, n, k);
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  VOCAB_CHECK(b.dim(1) == k, "matmul_nt inner dims mismatch: " << a.shape_str() << " @ " << b.shape_str() << "^T");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Row-times-row dot products, parallel over A rows; the kernel's A-row
  // tiles keep each four-row B panel resident across the tile instead of
  // streaming the whole of B once per A row.
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    ks.matmul_nt_rows(pa, pb, pc, i0, i1, n, k);
  });
  return c;
}

Tensor matmul_nt_bf16(const Tensor& a, const Bf16Tensor& b) {
  check_rank2(a, "matmul_nt_bf16");
  VOCAB_CHECK(b.rank() == 2, "matmul_nt_bf16 requires a rank-2 bf16 tensor");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  VOCAB_CHECK(b.dim(1) == k, "matmul_nt_bf16 inner dims mismatch: " << a.shape_str()
                                                                    << " @ bf16[" << b.dim(0)
                                                                    << ", " << b.dim(1) << "]^T");
  Tensor c({m, n});
  const float* pa = a.data();
  const std::uint16_t* pb = b.data();
  float* pc = c.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    ks.matmul_nt_bf16_rows(pa, pb, pc, i0, i1, n, k);
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  VOCAB_CHECK(b.dim(0) == k, "matmul_tn inner dims mismatch: " << a.shape_str() << "^T @ " << b.shape_str());
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Rank-1 update accumulation, parallel over output rows (columns of A).
  // The kernel applies four updates per pass so every C row is touched k/4
  // times, not k times; the j-loop is elementwise and vectorizes.
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(k * n), [&](std::int64_t i0, std::int64_t i1) {
    ks.matmul_tn_rows(pa, pb, pc, i0, i1, m, n, k);
  });
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "add shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  add_inplace(c, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "sub shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  parallel::parallel_for(0, c.numel(), kGrainSteps, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) pc[i] -= pb[i];
  });
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "mul shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  parallel::parallel_for(0, c.numel(), kGrainSteps, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) pc[i] *= pb[i];
  });
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  scale_inplace(c, s);
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "add_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  parallel::parallel_for(0, a.numel(), kGrainSteps, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) pa[i] += pb[i];
  });
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "axpy_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  parallel::parallel_for(0, a.numel(), kGrainSteps, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) pa[i] += s * pb[i];
  });
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  parallel::parallel_for(0, a.numel(), kGrainSteps, [&](std::int64_t e0, std::int64_t e1) {
    for (std::int64_t i = e0; i < e1; ++i) pa[i] *= s;
  });
}

Tensor row_max(const Tensor& a) {
  check_rank2(a, "row_max");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data();
  float* po = out.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) po[i] = ks.reduce_max(pa + i * n, n);
  });
  return out;
}

Tensor row_sum(const Tensor& a) {
  check_rank2(a, "row_sum");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data();
  float* po = out.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      po[i] = static_cast<float>(ks.reduce_sum(pa + i * n, n));
    }
  });
  return out;
}

Tensor row_exp_sum(const Tensor& a, const Tensor& maxima) {
  check_rank2(a, "row_exp_sum");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  VOCAB_CHECK(maxima.rank() == 1 && maxima.dim(0) == m, "row_exp_sum stats shape mismatch");
  Tensor out({m});
  const float* pa = a.data();
  const float* pm = maxima.data();
  float* po = out.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      po[i] = static_cast<float>(ks.exp_sum(pa + i * n, n, pm[i]));
    }
  });
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  const Tensor m = row_max(logits);
  const Tensor s = row_exp_sum(logits, m);
  return softmax_rows_with_stats(logits, m, s);
}

Tensor softmax_rows_with_stats(const Tensor& logits, const Tensor& maxima, const Tensor& sums) {
  check_rank2(logits, "softmax_rows_with_stats");
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  VOCAB_CHECK(maxima.rank() == 1 && maxima.dim(0) == m, "softmax stats (max) shape mismatch");
  VOCAB_CHECK(sums.rank() == 1 && sums.dim(0) == m, "softmax stats (sum) shape mismatch");
  Tensor out({m, n});
  const float* pl = logits.data();
  const float* pm = maxima.data();
  const float* ps = sums.data();
  float* po = out.data();
  const simd::Kernels& ks = simd::kernels();
  parallel::parallel_for(0, m, row_grain(n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      ks.exp_scale(pl + i * n, po + i * n, n, pm[i], 1.0f / ps[i]);
    }
  });
  return out;
}

float cross_entropy_mean(const Tensor& logits, const std::vector<std::int64_t>& targets) {
  check_rank2(logits, "cross_entropy_mean");
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  VOCAB_CHECK(static_cast<std::int64_t>(targets.size()) == m,
              "target count " << targets.size() << " != rows " << m);
  const Tensor maxima = row_max(logits);
  const Tensor sums = row_exp_sum(logits, maxima);
  double loss = 0.0;
  const float* pl = logits.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    VOCAB_CHECK(t >= 0 && t < n, "target " << t << " out of range [0, " << n << ")");
    // -log softmax = log(sum) + max - logit
    loss += std::log(static_cast<double>(sums.at(i))) + maxima.at(i) - pl[i * n + t];
  }
  return static_cast<float>(loss / static_cast<double>(m));
}

Tensor one_hot(const std::vector<std::int64_t>& targets, std::int64_t classes) {
  VOCAB_CHECK(classes > 0, "one_hot requires classes > 0");
  const std::int64_t m = static_cast<std::int64_t>(targets.size());
  Tensor g({m, classes});
  float* pg = g.data();
  parallel::parallel_for(0, m, row_grain(1), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int64_t t = targets[static_cast<std::size_t>(i)];
      if (t >= 0 && t < classes) pg[i * classes + t] = 1.0f;
    }
  });
  return g;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  float* po = out.data();
  parallel::parallel_for(0, m, row_grain(n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
    }
  });
  return out;
}

Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end) {
  check_rank2(a, "slice_rows");
  VOCAB_CHECK(0 <= begin && begin < end && end <= a.dim(0),
              "slice_rows range [" << begin << ", " << end << ") invalid for " << a.shape_str());
  const std::int64_t n = a.dim(1);
  Tensor out({end - begin, n});
  std::copy(a.data() + begin * n, a.data() + end * n, out.data());
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  check_rank2(a, "slice_cols");
  VOCAB_CHECK(0 <= begin && begin < end && end <= a.dim(1),
              "slice_cols range [" << begin << ", " << end << ") invalid for " << a.shape_str());
  const std::int64_t m = a.dim(0), n = a.dim(1), w = end - begin;
  Tensor out({m, w});
  for (std::int64_t i = 0; i < m; ++i) {
    std::copy(a.data() + i * n + begin, a.data() + i * n + end, out.data() + i * w);
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(pa[i] - pb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(pa[i] - pb[i]) > atol + rtol * std::abs(pb[i])) return false;
  }
  return true;
}

double sum_all(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += pa[i];
  return acc;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(pa[i]) * pa[i];
  return std::sqrt(acc);
}

}  // namespace vocab
