#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vocab {

namespace {

void check_rank2(const Tensor& t, const char* who) {
  VOCAB_CHECK(t.rank() == 2, who << " requires a rank-2 tensor, got " << t.shape_str());
}

constexpr std::int64_t kBlock = 64;  // cache-blocking tile edge

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  VOCAB_CHECK(b.dim(0) == k, "matmul inner dims mismatch: " << a.shape_str() << " @ " << b.shape_str());
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, m);
    for (std::int64_t l0 = 0; l0 < k; l0 += kBlock) {
      const std::int64_t l1 = std::min(l0 + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        for (std::int64_t l = l0; l < l1; ++l) {
          const float av = pa[i * k + l];
          if (av == 0.0f) continue;
          const float* brow = pb + l * n;
          float* crow = pc + i * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  VOCAB_CHECK(b.dim(1) == k, "matmul_nt inner dims mismatch: " << a.shape_str() << " @ " << b.shape_str() << "^T");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Row-times-row dot products: both operands are traversed contiguously.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::int64_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
      pc[i * n + j] = acc;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  VOCAB_CHECK(b.dim(0) == k, "matmul_tn inner dims mismatch: " << a.shape_str() << "^T @ " << b.shape_str());
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Accumulate rank-1 updates; both inner traversals are contiguous.
  for (std::int64_t l = 0; l < k; ++l) {
    const float* arow = pa + l * m;
    const float* brow = pb + l * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "add shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  add_inplace(c, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "sub shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < c.numel(); ++i) pc[i] -= pb[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "mul shape mismatch: " << a.shape_str() << " vs " << b.shape_str());
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < c.numel(); ++i) pc[i] *= pb[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  scale_inplace(c, s);
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "add_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "axpy_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= s;
}

Tensor row_max(const Tensor& a) {
  check_rank2(a, "row_max");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float best = pa[i * n];
    for (std::int64_t j = 1; j < n; ++j) best = std::max(best, pa[i * n + j]);
    out.at(i) = best;
  }
  return out;
}

Tensor row_sum(const Tensor& a) {
  check_rank2(a, "row_sum");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data();
  for (std::int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) acc += pa[i * n + j];
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

Tensor row_exp_sum(const Tensor& a, const Tensor& maxima) {
  check_rank2(a, "row_exp_sum");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  VOCAB_CHECK(maxima.rank() == 1 && maxima.dim(0) == m, "row_exp_sum stats shape mismatch");
  Tensor out({m});
  const float* pa = a.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float mi = maxima.at(i);
    double acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) acc += std::exp(static_cast<double>(pa[i * n + j] - mi));
    out.at(i) = static_cast<float>(acc);
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  const Tensor m = row_max(logits);
  const Tensor s = row_exp_sum(logits, m);
  return softmax_rows_with_stats(logits, m, s);
}

Tensor softmax_rows_with_stats(const Tensor& logits, const Tensor& maxima, const Tensor& sums) {
  check_rank2(logits, "softmax_rows_with_stats");
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  VOCAB_CHECK(maxima.rank() == 1 && maxima.dim(0) == m, "softmax stats (max) shape mismatch");
  VOCAB_CHECK(sums.rank() == 1 && sums.dim(0) == m, "softmax stats (sum) shape mismatch");
  Tensor out({m, n});
  const float* pl = logits.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float mi = maxima.at(i);
    const float inv = 1.0f / sums.at(i);
    for (std::int64_t j = 0; j < n; ++j) {
      po[i * n + j] = std::exp(pl[i * n + j] - mi) * inv;
    }
  }
  return out;
}

float cross_entropy_mean(const Tensor& logits, const std::vector<std::int64_t>& targets) {
  check_rank2(logits, "cross_entropy_mean");
  const std::int64_t m = logits.dim(0), n = logits.dim(1);
  VOCAB_CHECK(static_cast<std::int64_t>(targets.size()) == m,
              "target count " << targets.size() << " != rows " << m);
  const Tensor maxima = row_max(logits);
  const Tensor sums = row_exp_sum(logits, maxima);
  double loss = 0.0;
  const float* pl = logits.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    VOCAB_CHECK(t >= 0 && t < n, "target " << t << " out of range [0, " << n << ")");
    // -log softmax = log(sum) + max - logit
    loss += std::log(static_cast<double>(sums.at(i))) + maxima.at(i) - pl[i * n + t];
  }
  return static_cast<float>(loss / static_cast<double>(m));
}

Tensor one_hot(const std::vector<std::int64_t>& targets, std::int64_t classes) {
  VOCAB_CHECK(classes > 0, "one_hot requires classes > 0");
  const std::int64_t m = static_cast<std::int64_t>(targets.size());
  Tensor g({m, classes});
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    if (t >= 0 && t < classes) g.at(i, t) = 1.0f;
  }
  return g;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::int64_t begin, std::int64_t end) {
  check_rank2(a, "slice_rows");
  VOCAB_CHECK(0 <= begin && begin < end && end <= a.dim(0),
              "slice_rows range [" << begin << ", " << end << ") invalid for " << a.shape_str());
  const std::int64_t n = a.dim(1);
  Tensor out({end - begin, n});
  std::copy(a.data() + begin * n, a.data() + end * n, out.data());
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t begin, std::int64_t end) {
  check_rank2(a, "slice_cols");
  VOCAB_CHECK(0 <= begin && begin < end && end <= a.dim(1),
              "slice_cols range [" << begin << ", " << end << ") invalid for " << a.shape_str());
  const std::int64_t m = a.dim(0), n = a.dim(1), w = end - begin;
  Tensor out({m, w});
  for (std::int64_t i = 0; i < m; ++i) {
    std::copy(a.data() + i * n + begin, a.data() + i * n + end, out.data() + i * w);
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  VOCAB_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::abs(pa[i] - pb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(pa[i] - pb[i]) > atol + rtol * std::abs(pb[i])) return false;
  }
  return true;
}

double sum_all(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += pa[i];
  return acc;
}

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(pa[i]) * pa[i];
  return std::sqrt(acc);
}

}  // namespace vocab
