#include "tensor/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/env.h"
#include "common/error.h"
#include "tensor/bf16.h"
#include "tensor/simd_tables.h"

namespace vocab::simd {

namespace detail {

namespace {

// The scalar kernels below are verbatim ports of the pre-SIMD tensor_ops
// inner loops: fixed kLanes accumulator chains, the fixed horizontal_sum
// reduction tree, and the four-way register blocking. Keeping them bit-exact
// is what makes VOCAB_SIMD=scalar the cross-ISA reference.
constexpr std::int64_t kLanes = 8;

float horizontal_sum(const float* l) {
  // Fixed reduction tree — part of the determinism contract.
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

void dot4(const float* a, const float* b0, const float* b1, const float* b2,
          const float* b3, std::int64_t k, float* out) {
  float l0[kLanes] = {}, l1[kLanes] = {}, l2[kLanes] = {}, l3[kLanes] = {};
  std::int64_t l = 0;
  for (; l + kLanes <= k; l += kLanes) {
    for (std::int64_t v = 0; v < kLanes; ++v) {
      const float av = a[l + v];
      l0[v] += av * b0[l + v];
      l1[v] += av * b1[l + v];
      l2[v] += av * b2[l + v];
      l3[v] += av * b3[l + v];
    }
  }
  float acc0 = horizontal_sum(l0), acc1 = horizontal_sum(l1);
  float acc2 = horizontal_sum(l2), acc3 = horizontal_sum(l3);
  for (; l < k; ++l) {
    const float av = a[l];
    acc0 += av * b0[l];
    acc1 += av * b1[l];
    acc2 += av * b2[l];
    acc3 += av * b3[l];
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

float dot1(const float* a, const float* b, std::int64_t k) {
  float lanes[kLanes] = {};
  std::int64_t l = 0;
  for (; l + kLanes <= k; l += kLanes) {
    for (std::int64_t v = 0; v < kLanes; ++v) lanes[v] += a[l + v] * b[l + v];
  }
  float acc = horizontal_sum(lanes);
  for (; l < k; ++l) acc += a[l] * b[l];
  return acc;
}

// bf16-B twins of dot4/dot1: identical accumulation structure, with each B
// element widened (exactly) on load.
void dot4_bf16(const float* a, const std::uint16_t* b0, const std::uint16_t* b1,
               const std::uint16_t* b2, const std::uint16_t* b3, std::int64_t k,
               float* out) {
  float l0[kLanes] = {}, l1[kLanes] = {}, l2[kLanes] = {}, l3[kLanes] = {};
  std::int64_t l = 0;
  for (; l + kLanes <= k; l += kLanes) {
    for (std::int64_t v = 0; v < kLanes; ++v) {
      const float av = a[l + v];
      l0[v] += av * bf16_detail::float_from_bits(b0[l + v]);
      l1[v] += av * bf16_detail::float_from_bits(b1[l + v]);
      l2[v] += av * bf16_detail::float_from_bits(b2[l + v]);
      l3[v] += av * bf16_detail::float_from_bits(b3[l + v]);
    }
  }
  float acc0 = horizontal_sum(l0), acc1 = horizontal_sum(l1);
  float acc2 = horizontal_sum(l2), acc3 = horizontal_sum(l3);
  for (; l < k; ++l) {
    const float av = a[l];
    acc0 += av * bf16_detail::float_from_bits(b0[l]);
    acc1 += av * bf16_detail::float_from_bits(b1[l]);
    acc2 += av * bf16_detail::float_from_bits(b2[l]);
    acc3 += av * bf16_detail::float_from_bits(b3[l]);
  }
  out[0] = acc0;
  out[1] = acc1;
  out[2] = acc2;
  out[3] = acc3;
}

float dot1_bf16(const float* a, const std::uint16_t* b, std::int64_t k) {
  float lanes[kLanes] = {};
  std::int64_t l = 0;
  for (; l + kLanes <= k; l += kLanes) {
    for (std::int64_t v = 0; v < kLanes; ++v) {
      lanes[v] += a[l + v] * bf16_detail::float_from_bits(b[l + v]);
    }
  }
  float acc = horizontal_sum(lanes);
  for (; l < k; ++l) acc += a[l] * bf16_detail::float_from_bits(b[l]);
  return acc;
}

}  // namespace

void s_matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                   std::int64_t i1, std::int64_t n, std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const float* b0 = b + l * n;
      const float* b1 = b0 + n;
      const float* b2 = b1 + n;
      const float* b3 = b2 + n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const float* brow = b + l * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void s_matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                      std::int64_t i1, std::int64_t n, std::int64_t k) {
  constexpr std::int64_t kRowTile = 32;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        dot4(a + i * k, b0, b1, b2, b3, k, c + i * n + j);
      }
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot1(a + i * k, brow, k);
      }
    }
  }
}

void s_matmul_tn_rows(const float* a, const float* b, float* c, std::int64_t i0,
                      std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k) {
  std::int64_t l = 0;
  for (; l + 4 <= k; l += 4) {
    const float* a0 = a + l * m;
    const float* a1 = a0 + m;
    const float* a2 = a1 + m;
    const float* a3 = a2 + m;
    const float* b0 = b + l * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v0 = a0[i], v1 = a1[i], v2 = a2[i], v3 = a3[i];
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += (v0 * b0[j] + v1 * b1[j]) + (v2 * b2[j] + v3 * b3[j]);
      }
    }
  }
  for (; l < k; ++l) {
    const float* arow = a + l * m;
    const float* brow = b + l * n;
    for (std::int64_t i = i0; i < i1; ++i) {
      const float av = arow[i];
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void s_matmul_bf16_rows(const float* a, const std::uint16_t* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t n,
                        std::int64_t k) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t l = 0;
    for (; l + 4 <= k; l += 4) {
      const float a0 = arow[l], a1 = arow[l + 1], a2 = arow[l + 2], a3 = arow[l + 3];
      const std::uint16_t* b0 = b + l * n;
      const std::uint16_t* b1 = b0 + n;
      const std::uint16_t* b2 = b1 + n;
      const std::uint16_t* b3 = b2 + n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += (a0 * bf16_detail::float_from_bits(b0[j]) +
                    a1 * bf16_detail::float_from_bits(b1[j])) +
                   (a2 * bf16_detail::float_from_bits(b2[j]) +
                    a3 * bf16_detail::float_from_bits(b3[j]));
      }
    }
    for (; l < k; ++l) {
      const float av = arow[l];
      const std::uint16_t* brow = b + l * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * bf16_detail::float_from_bits(brow[j]);
      }
    }
  }
}

void s_matmul_nt_bf16_rows(const float* a, const std::uint16_t* b, float* c,
                           std::int64_t i0, std::int64_t i1, std::int64_t n,
                           std::int64_t k) {
  constexpr std::int64_t kRowTile = 32;
  for (std::int64_t ib = i0; ib < i1; ib += kRowTile) {
    const std::int64_t ie = std::min(ib + kRowTile, i1);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::uint16_t* b0 = b + j * k;
      const std::uint16_t* b1 = b0 + k;
      const std::uint16_t* b2 = b1 + k;
      const std::uint16_t* b3 = b2 + k;
      for (std::int64_t i = ib; i < ie; ++i) {
        dot4_bf16(a + i * k, b0, b1, b2, b3, k, c + i * n + j);
      }
    }
    for (; j < n; ++j) {
      const std::uint16_t* brow = b + j * k;
      for (std::int64_t i = ib; i < ie; ++i) {
        c[i * n + j] = dot1_bf16(a + i * k, brow, k);
      }
    }
  }
}

float s_reduce_max(const float* x, std::int64_t n) {
  if (n == 0) return -std::numeric_limits<float>::infinity();
  float best = x[0];
  for (std::int64_t j = 1; j < n; ++j) best = std::max(best, x[j]);
  return best;
}

double s_reduce_sum(const float* x, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t j = 0; j < n; ++j) acc += x[j];
  return acc;
}

double s_exp_sum(const float* x, std::int64_t n, float shift) {
  double acc = 0.0;
  for (std::int64_t j = 0; j < n; ++j) {
    acc += std::exp(static_cast<double>(x[j] - shift));
  }
  return acc;
}

void s_exp_scale(const float* x, float* out, std::int64_t n, float shift, float scale) {
  for (std::int64_t j = 0; j < n; ++j) {
    out[j] = std::exp(x[j] - shift) * scale;
  }
}

void s_fp32_to_bf16(const float* src, std::uint16_t* dst, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] = bf16_detail::bits_from_float(src[j]);
}

void s_bf16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) dst[j] = bf16_detail::float_from_bits(src[j]);
}

std::int64_t s_nonfinite_count(const float* x, std::int64_t n) {
  std::int64_t count = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    std::uint32_t u;
    std::memcpy(&u, x + j, sizeof(u));
    count += ((u & 0x7F800000u) == 0x7F800000u) ? 1 : 0;
  }
  return count;
}

const Kernels& scalar_table() {
  static const Kernels table = {
      &s_matmul_rows,    &s_matmul_nt_rows,      &s_matmul_tn_rows,
      &s_matmul_bf16_rows, &s_matmul_nt_bf16_rows,
      &s_reduce_max,     &s_reduce_sum,          &s_exp_sum,
      &s_exp_scale,      &s_fp32_to_bf16,        &s_bf16_to_fp32,
      &s_nonfinite_count,
  };
  return table;
}

}  // namespace detail

namespace {

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl");
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &detail::scalar_table();
    case Level::kNeon:
      return detail::neon_table();
    case Level::kAvx2:
      return detail::avx2_table();
    case Level::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

Level resolve_from_env() {
  const std::string v =
      choice_from_env("VOCAB_SIMD", "auto", {"auto", "avx512", "avx2", "neon", "scalar"});
  if (v == "auto") {
    for (const Level l : {Level::kAvx512, Level::kAvx2, Level::kNeon}) {
      if (level_supported(l)) return l;
    }
    return Level::kScalar;
  }
  Level want = Level::kScalar;
  if (v == "scalar") {
    want = Level::kScalar;
  } else if (v == "neon") {
    want = Level::kNeon;
  } else if (v == "avx2") {
    want = Level::kAvx2;
  } else {
    want = Level::kAvx512;
  }
  VOCAB_CHECK(level_supported(want),
              "VOCAB_SIMD=" << v << " requested but "
                            << (table_for(want) == nullptr
                                    ? "this build does not carry its kernels"
                                    : "this CPU does not support it"));
  return want;
}

// Process-wide test override; -1 means "use the env/CPU resolution".
std::atomic<int> g_override{-1};

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "?";
}

bool level_supported(Level level) {
  return cpu_supports(level) && table_for(level) != nullptr;
}

std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (const Level l : {Level::kScalar, Level::kNeon, Level::kAvx2, Level::kAvx512}) {
    if (level_supported(l)) out.push_back(l);
  }
  return out;
}

Level active_level() {
  const int ov = g_override.load(std::memory_order_acquire);
  if (ov >= 0) return static_cast<Level>(ov);
  static const Level resolved = resolve_from_env();
  return resolved;
}

const Kernels& kernels() { return *table_for(active_level()); }

const Kernels& kernels_for(Level level) {
  VOCAB_CHECK(level_supported(level),
              "SIMD level '" << to_string(level) << "' unsupported on this build/CPU");
  return *table_for(level);
}

ScopedLevel::ScopedLevel(Level level) {
  VOCAB_CHECK(level_supported(level),
              "SIMD level '" << to_string(level) << "' unsupported on this build/CPU");
  prev_ = g_override.exchange(static_cast<int>(level), std::memory_order_acq_rel);
}

ScopedLevel::~ScopedLevel() { g_override.store(prev_, std::memory_order_release); }

}  // namespace vocab::simd
