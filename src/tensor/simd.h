#pragma once

// Runtime-dispatched SIMD kernel layer.
//
// The hot inner loops of tensor_ops / core used to rely on the compiler
// auto-vectorizing fixed-lane scalar code under VOCAB_NATIVE_ARCH. This layer
// makes the vector width explicit: each instruction-set level provides a
// table of microkernels (packed, cache-tiled, register-blocked matmuls plus
// the row-reduction / exp / conversion kernels the softmax and
// cross-entropy paths stream through), and the active table is selected once
// at runtime from CPU detection and the VOCAB_SIMD environment knob:
//
//   VOCAB_SIMD=auto    (default) best level this CPU supports
//   VOCAB_SIMD=avx512  require AVX-512 (F/BW/DQ/VL); error if unsupported
//   VOCAB_SIMD=avx2    require AVX2+FMA; error if unsupported
//   VOCAB_SIMD=neon    require NEON (aarch64); error if unsupported
//   VOCAB_SIMD=scalar  portable reference kernels
//
// Determinism contract (extends the thread-pool contract)
// ------------------------------------------------------
// 1. Per level, results are bit-identical for any thread-pool width: kernels
//    are called per parallel_for chunk whose boundaries are shape-only, and
//    no kernel's output bytes depend on the chunk it ran in.
// 2. Per level, kernels are *element-consistent*: the value of one output
//    element depends only on its mathematical inputs (the dot-product
//    operands, the exp argument), never on where the element sits in the
//    array. Register-blocked paths, unrolled tails and remainder loops all
//    replicate the same per-element operation sequence (hardware-FMA tails
//    use std::fma to match the vector lanes). This is what keeps a
//    vocabulary-sharded run bit-identical to the unsharded reference for
//    the kernels where the math itself is shard-local (logits, softmax
//    emission, weight gradients).
// 3. The scalar level reproduces the pre-SIMD fixed-lane kernels bit for bit
//    and is the cross-ISA reference: every other level may round
//    differently (FMA contraction, float polynomial exp), but scalar output
//    is identical on any machine.
//
// Different levels are therefore different numerics (documented, tested),
// while a fixed level is fully deterministic.

#include <cstdint>
#include <vector>

namespace vocab::simd {

/// Instruction-set level of a kernel table, in ascending preference order.
enum class Level : int {
  kScalar = 0,  ///< portable fixed-lane reference (the pre-SIMD kernels)
  kNeon = 1,    ///< aarch64 NEON (matmul + conversion kernels vectorized)
  kAvx2 = 2,    ///< x86-64 AVX2 + FMA
  kAvx512 = 3,  ///< x86-64 AVX-512 F/BW/DQ/VL
};

[[nodiscard]] const char* to_string(Level level);

/// True when this build carries the level's kernels *and* the CPU executes
/// them. kScalar is always supported.
[[nodiscard]] bool level_supported(Level level);

/// Supported levels in ascending order (always starts with kScalar).
[[nodiscard]] std::vector<Level> supported_levels();

/// The level resolved from VOCAB_SIMD + CPU detection, cached after the
/// first call. Throws CheckError for an unknown VOCAB_SIMD value or a level
/// this build/CPU cannot execute.
[[nodiscard]] Level active_level();

/// Kernel table of one level. Matmul kernels compute a row range of the
/// output so callers keep threading (parallel_for over rows) outside;
/// reduction/exp kernels process one contiguous span. All pointers may be
/// unaligned.
struct Kernels {
  /// Rows [i0, i1) of C += A @ B. A: [m, k], B: [k, n], C: [m, n] (C rows
  /// must be zero or valid partial sums; accumulation order over k is fixed).
  void (*matmul_rows)(const float* a, const float* b, float* c, std::int64_t i0,
                      std::int64_t i1, std::int64_t n, std::int64_t k);

  /// Rows [i0, i1) of C = A @ B^T. A: [m, k], B: [n, k], C: [m, n].
  void (*matmul_nt_rows)(const float* a, const float* b, float* c, std::int64_t i0,
                         std::int64_t i1, std::int64_t n, std::int64_t k);

  /// Rows [i0, i1) of C += A^T @ B. A: [k, m], B: [k, n], C: [m, n]; the row
  /// range indexes columns of A.
  void (*matmul_tn_rows)(const float* a, const float* b, float* c, std::int64_t i0,
                         std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k);

  /// Rows [i0, i1) of C += A @ B with B stored as bf16 bits [k, n].
  void (*matmul_bf16_rows)(const float* a, const std::uint16_t* b, float* c,
                           std::int64_t i0, std::int64_t i1, std::int64_t n,
                           std::int64_t k);

  /// Rows [i0, i1) of C = A @ B^T with B stored as bf16 bits [n, k].
  void (*matmul_nt_bf16_rows)(const float* a, const std::uint16_t* b, float* c,
                              std::int64_t i0, std::int64_t i1, std::int64_t n,
                              std::int64_t k);

  /// Maximum over x[0..n) (-inf for n == 0).
  float (*reduce_max)(const float* x, std::int64_t n);

  /// Sum over x[0..n), double accumulation.
  double (*reduce_sum)(const float* x, std::int64_t n);

  /// Sum of exp(x[i] - shift) over x[0..n), double accumulation. Arguments
  /// below the exp underflow cutoff (including -inf from masked logits)
  /// contribute exactly 0.
  double (*exp_sum)(const float* x, std::int64_t n, float shift);

  /// out[i] = exp(x[i] - shift) * scale (same flush-to-zero rule). May alias
  /// x == out.
  void (*exp_scale)(const float* x, float* out, std::int64_t n, float shift,
                    float scale);

  /// dst[i] = bf16(src[i]), round-to-nearest-even, NaN kept quiet.
  void (*fp32_to_bf16)(const float* src, std::uint16_t* dst, std::int64_t n);

  /// dst[i] = float(src[i]) (exact).
  void (*bf16_to_fp32)(const std::uint16_t* src, float* dst, std::int64_t n);

  /// Number of NaN / +/-Inf values in x[0..n). Integer-exact: identical at
  /// every level.
  std::int64_t (*nonfinite_count)(const float* x, std::int64_t n);
};

/// The active level's table. Resolve once on the calling thread (before a
/// parallel_for) and capture the reference, so worker threads never consult
/// dispatch state.
[[nodiscard]] const Kernels& kernels();

/// A specific level's table (test / cross-checking hook). Throws CheckError
/// when the level is unsupported.
[[nodiscard]] const Kernels& kernels_for(Level level);

/// Test hook: override the active level process-wide while alive (install
/// from the main thread only, with no kernels in flight). Restores the
/// previous state on destruction.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  int prev_;  // encoded previous override (-1: none)
};

}  // namespace vocab::simd
