#include "tensor/tensor.h"

#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace vocab {

namespace {

std::int64_t checked_numel(const std::vector<std::int64_t>& shape) {
  VOCAB_CHECK(!shape.empty() && shape.size() <= 4,
              "tensor rank must be 1..4, got " << shape.size());
  std::int64_t n = 1;
  for (const auto d : shape) {
    VOCAB_CHECK(d > 0, "tensor dims must be positive");
    VOCAB_CHECK(n <= (std::int64_t{1} << 40) / d, "tensor too large");
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(checked_numel(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<std::int64_t> shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(checked_numel(shape_)), fill) {}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  VOCAB_CHECK(static_cast<std::int64_t>(data_.size()) == checked_numel(shape_),
              "value count " << data_.size() << " does not match shape");
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::int64_t Tensor::dim(int i) const {
  VOCAB_CHECK(i >= 0 && i < rank(), "dim index " << i << " out of range for rank " << rank());
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
  VOCAB_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  VOCAB_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  VOCAB_CHECK(rank() == 2, "2-D access on rank-" << rank() << " tensor");
  VOCAB_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
              "index (" << r << "," << c << ") out of range " << shape_str());
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

Tensor& Tensor::reshape(std::vector<std::int64_t> shape) {
  VOCAB_CHECK(checked_numel(shape) == numel(),
              "reshape must preserve element count");
  shape_ = std::move(shape);
  return *this;
}

Tensor Tensor::reshaped(std::vector<std::int64_t> shape) const {
  Tensor copy = *this;
  copy.reshape(std::move(shape));
  return copy;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

std::string Tensor::shape_str() const {
  std::ostringstream oss;
  oss << "Tensor[";
  for (std::size_t i = 0; i < shape_.size(); ++i) oss << (i ? ", " : "") << shape_[i];
  oss << "]";
  return oss.str();
}

}  // namespace vocab
