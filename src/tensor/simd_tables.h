#pragma once

// Internal glue between the dispatch layer (simd.cpp) and the per-ISA
// translation units (simd_avx2.cpp, simd_avx512.cpp, simd_neon.cpp). Each TU
// is compiled with its own -m flags and exports its table — or nullptr when
// the build targets a different architecture. The scalar reference kernels
// are also exported so ISA tables can fall back to them entry-by-entry
// (NEON only vectorizes the matmul + conversion kernels, for example).
//
// Not part of the public API; include simd.h instead.

#include "tensor/simd.h"

namespace vocab::simd::detail {

/// Table for the ISA, or nullptr when this build cannot execute it. (CPU
/// support is checked separately by the dispatcher.)
[[nodiscard]] const Kernels* avx2_table();
[[nodiscard]] const Kernels* avx512_table();
[[nodiscard]] const Kernels* neon_table();

/// The scalar reference table (always available).
[[nodiscard]] const Kernels& scalar_table();

// Individual scalar kernels, reusable as fallback entries in ISA tables.
void s_matmul_rows(const float* a, const float* b, float* c, std::int64_t i0,
                   std::int64_t i1, std::int64_t n, std::int64_t k);
void s_matmul_nt_rows(const float* a, const float* b, float* c, std::int64_t i0,
                      std::int64_t i1, std::int64_t n, std::int64_t k);
void s_matmul_tn_rows(const float* a, const float* b, float* c, std::int64_t i0,
                      std::int64_t i1, std::int64_t m, std::int64_t n, std::int64_t k);
void s_matmul_bf16_rows(const float* a, const std::uint16_t* b, float* c,
                        std::int64_t i0, std::int64_t i1, std::int64_t n,
                        std::int64_t k);
void s_matmul_nt_bf16_rows(const float* a, const std::uint16_t* b, float* c,
                           std::int64_t i0, std::int64_t i1, std::int64_t n,
                           std::int64_t k);
float s_reduce_max(const float* x, std::int64_t n);
double s_reduce_sum(const float* x, std::int64_t n);
double s_exp_sum(const float* x, std::int64_t n, float shift);
void s_exp_scale(const float* x, float* out, std::int64_t n, float shift, float scale);
void s_fp32_to_bf16(const float* src, std::uint16_t* dst, std::int64_t n);
void s_bf16_to_fp32(const std::uint16_t* src, float* dst, std::int64_t n);
std::int64_t s_nonfinite_count(const float* x, std::int64_t n);

}  // namespace vocab::simd::detail
