#pragma once

// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic data) flows
// through Rng so that experiments are exactly reproducible from a seed. The
// generator is SplitMix64 for seeding + xoshiro256** for the stream — small,
// fast, and identical across platforms (unlike std:: distributions).

#include <cstdint>
#include <vector>

namespace vocab {

/// Deterministic, platform-stable pseudo random number generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic pairing).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Sample an index from a discrete distribution given cumulative weights.
  /// `cdf` must be non-decreasing with cdf.back() > 0.
  std::size_t sample_cdf(const std::vector<double>& cdf);

  /// Derive an independent child generator (for per-device streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Build a Zipf-like (power law) cumulative distribution over `n` outcomes
/// with exponent `alpha`; used to generate realistic token frequencies.
std::vector<double> zipf_cdf(std::size_t n, double alpha);

}  // namespace vocab
