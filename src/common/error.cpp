#include "common/error.h"

namespace vocab::detail {

void throw_check_failure(const char* file, int line, const char* expr,
                         const std::string& message) {
  std::ostringstream oss;
  oss << "Check failed: " << expr;
  if (!message.empty()) oss << " — " << message;
  oss << " (" << file << ":" << line << ")";
  throw CheckError(oss.str());
}

}  // namespace vocab::detail
