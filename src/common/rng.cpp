#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace vocab {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  VOCAB_CHECK(n > 0, "uniform_int requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::size_t Rng::sample_cdf(const std::vector<double>& cdf) {
  VOCAB_CHECK(!cdf.empty() && cdf.back() > 0, "cdf must be non-empty with positive mass");
  const double target = uniform() * cdf.back();
  // Binary search for first element >= target.
  std::size_t lo = 0, hi = cdf.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Rng Rng::split() {
  Rng child(0);
  // Children derive state from fresh draws, statistically independent streams.
  for (auto& s : child.s_) s = next_u64();
  return child;
}

std::vector<double> zipf_cdf(std::size_t n, double alpha) {
  VOCAB_CHECK(n > 0, "zipf_cdf requires n > 0");
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf[i] = acc;
  }
  return cdf;
}

}  // namespace vocab
