#pragma once

// Console table rendering used by the benchmark harnesses to print rows in
// the same layout as the paper's tables.

#include <string>
#include <vector>

namespace vocab {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  /// Render with column alignment. First column left-aligned, rest right.
  [[nodiscard]] std::string to_string() const;

  /// Render as comma-separated values (for downstream plotting).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Format a double with fixed decimals, e.g. fmt_f(3.14159, 2) == "3.14".
std::string fmt_f(double v, int decimals);

/// Format a byte count as a human-readable string ("12.3 GB").
std::string fmt_bytes(double bytes);

/// Format an integer with thousands grouping ("1,048,576").
std::string fmt_count(long long v);

}  // namespace vocab
