#include "common/env.h"

#include <cstdlib>

#include "common/error.h"

namespace vocab {

std::int64_t positive_int_from_env(const char* name, std::int64_t fallback,
                                   std::int64_t max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  VOCAB_CHECK(end != env && *end == '\0' && v >= 1 && v <= max_value,
              name << " must be an integer in [1, " << max_value << "], got \"" << env
                   << "\"");
  return static_cast<std::int64_t>(v);
}

}  // namespace vocab
