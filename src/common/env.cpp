#include "common/env.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"

namespace vocab {

namespace {

/// nullptr when unset or empty (both mean "use the documented default").
const char* raw_env(const char* name) {
  const char* env = std::getenv(name);
  return (env == nullptr || *env == '\0') ? nullptr : env;
}

std::string lowercase(const char* s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

std::int64_t int_from_env(const char* name, std::int64_t fallback, std::int64_t min_value,
                          std::int64_t max_value) {
  const char* env = raw_env(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  VOCAB_CHECK(end != env && *end == '\0' && v >= min_value && v <= max_value,
              name << " must be an integer in [" << min_value << ", " << max_value
                   << "], got \"" << env << "\"");
  return static_cast<std::int64_t>(v);
}

std::int64_t positive_int_from_env(const char* name, std::int64_t fallback,
                                   std::int64_t max_value) {
  return int_from_env(name, fallback, 1, max_value);
}

bool bool_from_env(const char* name, bool fallback) {
  const char* env = raw_env(name);
  if (env == nullptr) return fallback;
  const std::string v = lowercase(env);
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  VOCAB_FAIL(name << " must be one of 0/1/false/true/off/on/no/yes, got \"" << env << "\"");
}

std::string choice_from_env(const char* name, const char* fallback,
                            std::initializer_list<const char*> allowed) {
  const char* env = raw_env(name);
  if (env == nullptr) return fallback;
  for (const char* a : allowed) {
    if (std::string(a) == env) return env;
  }
  std::string expected;
  for (const char* a : allowed) {
    if (!expected.empty()) expected += "|";
    expected += a;
  }
  VOCAB_FAIL(name << " must be one of " << expected << ", got \"" << env << "\"");
}

void validate_timeout_lattice(std::int64_t heartbeat_ms, std::int64_t heartbeat_timeout_ms,
                              std::int64_t comm_timeout_ms) {
  VOCAB_CHECK(heartbeat_ms < heartbeat_timeout_ms && heartbeat_timeout_ms < comm_timeout_ms,
              "timeout lattice violated: need VOCAB_HEARTBEAT_MS < "
                  << "VOCAB_HEARTBEAT_TIMEOUT_MS < VOCAB_COMM_TIMEOUT_MS, got "
                  << heartbeat_ms << " / " << heartbeat_timeout_ms << " / " << comm_timeout_ms
                  << " ms (a comm timeout at or below the heartbeat timeout reports "
                  << "'deadlock' for what is really a dead peer)");
}

}  // namespace vocab
