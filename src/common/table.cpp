#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace vocab {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VOCAB_CHECK(!header_.empty(), "table header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  VOCAB_CHECK(cells.size() == header_.size(),
              "row arity " << cells.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&](std::ostringstream& oss) {
    oss << '+';
    for (const auto w : widths) oss << std::string(w + 2, '-') << '+';
    oss << '\n';
  };
  auto render_row = [&](std::ostringstream& oss, const std::vector<std::string>& row) {
    oss << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      if (c == 0) {
        oss << ' ' << row[c] << std::string(pad, ' ') << " |";
      } else {
        oss << ' ' << std::string(pad, ' ') << row[c] << " |";
      }
    }
    oss << '\n';
  };

  std::ostringstream oss;
  render_rule(oss);
  render_row(oss, header_);
  render_rule(oss);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(oss);
    } else {
      render_row(oss, row);
    }
  }
  render_rule(oss);
  return oss.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << (c ? "," : "") << quote(header_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c ? "," : "") << quote(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string fmt_f(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (std::abs(bytes) >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_f(bytes, u == 0 ? 0 : 2) + " " + units[u];
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace vocab
