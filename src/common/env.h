#pragma once

// Strict environment-variable parsing.
//
// Config env vars that silently fall back on a typo are a robustness trap:
// VOCAB_COMM_TIMEOUT_MS=3OOO (letter O) quietly meaning "30 seconds" turns a
// deliberate 3-second test deadline into a half-minute hang. All numeric
// config vars therefore parse strictly — unset means the documented default,
// anything set must parse *completely* and be in range, or we fail fast with
// a message naming the variable and the offending text.

#include <cstdint>

namespace vocab {

/// Parse env var `name` as a strictly positive integer. Unset or empty
/// returns `fallback`; anything else must be a full-string base-10 integer
/// in [1, max_value] or CheckError is thrown.
[[nodiscard]] std::int64_t positive_int_from_env(const char* name, std::int64_t fallback,
                                                 std::int64_t max_value = 1000000000);

}  // namespace vocab
