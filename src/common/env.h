#pragma once

// Strict environment-variable parsing — the single home for every VOCAB_*
// config knob.
//
// Config env vars that silently fall back on a typo are a robustness trap:
// VOCAB_COMM_TIMEOUT_MS=3OOO (letter O) quietly meaning "30 seconds" turns a
// deliberate 3-second test deadline into a half-minute hang. All config vars
// therefore parse strictly — unset (or empty) means the documented default,
// anything set must parse *completely* and be in range, or we fail fast with
// a uniform message naming the variable and the offending text. The guard,
// SIMD-dispatch, thread-pool and verifier knobs all route through these
// helpers so every knob misparses with the same diagnostic shape.

#include <cstdint>
#include <initializer_list>
#include <string>

namespace vocab {

/// Parse env var `name` as a base-10 integer in [min_value, max_value].
/// Unset or empty returns `fallback`; anything else must be a full-string
/// integer in range or CheckError is thrown.
[[nodiscard]] std::int64_t int_from_env(const char* name, std::int64_t fallback,
                                        std::int64_t min_value, std::int64_t max_value);

/// Parse env var `name` as a strictly positive integer. Unset or empty
/// returns `fallback`; anything else must be a full-string base-10 integer
/// in [1, max_value] or CheckError is thrown.
[[nodiscard]] std::int64_t positive_int_from_env(const char* name, std::int64_t fallback,
                                                 std::int64_t max_value = 1000000000);

/// Parse env var `name` as a boolean. Unset or empty returns `fallback`;
/// otherwise the value must be one of 0/1/false/true/off/on/no/yes
/// (case-insensitive) or CheckError is thrown.
[[nodiscard]] bool bool_from_env(const char* name, bool fallback);

/// Parse env var `name` as one of `allowed` (exact match). Unset or empty
/// returns `fallback`; any other value throws CheckError listing the
/// accepted spellings.
[[nodiscard]] std::string choice_from_env(const char* name, const char* fallback,
                                          std::initializer_list<const char*> allowed);

/// Enforce the failure-detection timeout lattice
///   VOCAB_HEARTBEAT_MS < VOCAB_HEARTBEAT_TIMEOUT_MS < VOCAB_COMM_TIMEOUT_MS
/// given the three *resolved* values (env or default, in milliseconds).
/// An inverted lattice misattributes failures — a comm timeout at or below
/// the heartbeat timeout reports "deadlock" for what is really a dead peer,
/// and a heartbeat period at or above its timeout declares every live peer
/// dead — so a violation throws CheckError naming all three knobs and their
/// current values. Called once per TransportConfig::from_env resolution
/// (i.e. by every backend that detects failures: shm and tcp).
void validate_timeout_lattice(std::int64_t heartbeat_ms, std::int64_t heartbeat_timeout_ms,
                              std::int64_t comm_timeout_ms);

}  // namespace vocab
