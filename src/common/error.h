#pragma once

// Error handling primitives for the vocab-parallelism library.
//
// We use exceptions for unrecoverable precondition violations (following
// CppCoreGuidelines E.2: throw to signal that a function can't do its job).
// VOCAB_CHECK is active in all build types: this is a research library where
// silent corruption is far worse than a branch per check.

#include <sstream>
#include <stdexcept>
#include <string>

namespace vocab {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument or internal invariant check fails.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error(what) {}
};

/// Thrown when tensor shapes are incompatible with the requested operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulated device exceeds its memory capacity.
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : Error(what) {}
};

/// Thrown when a schedule or runtime detects an unsatisfiable dependency
/// (e.g. a deadlock between pipeline devices).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* file, int line, const char* expr,
                                      const std::string& message);

}  // namespace detail

}  // namespace vocab

/// Check `cond`; on failure throws vocab::CheckError with file/line context.
/// Usage: VOCAB_CHECK(n > 0, "n must be positive, got " << n);
#define VOCAB_CHECK(cond, ...)                                                   \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream vocab_check_oss_;                                       \
      vocab_check_oss_ << __VA_ARGS__;                                           \
      ::vocab::detail::throw_check_failure(__FILE__, __LINE__, #cond,            \
                                           vocab_check_oss_.str());              \
    }                                                                            \
  } while (false)

/// Unconditional failure.
#define VOCAB_FAIL(...)                                                          \
  do {                                                                           \
    std::ostringstream vocab_check_oss_;                                         \
    vocab_check_oss_ << __VA_ARGS__;                                             \
    ::vocab::detail::throw_check_failure(__FILE__, __LINE__, "unreachable",      \
                                         vocab_check_oss_.str());                \
  } while (false)
