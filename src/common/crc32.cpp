#include "common/crc32.h"

#include <array>

namespace vocab {

namespace {

const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = crc32_table()[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace vocab
