#pragma once

// Minimal leveled logging. Off-by-default below Warn so that test output
// stays clean; benches bump the level explicitly.

#include <sstream>
#include <string>

namespace vocab {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold (process-wide, not synchronized: set it up-front).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace vocab

#define VOCAB_LOG(level, ...)                                        \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::vocab::log_level())) { \
      std::ostringstream vocab_log_oss_;                             \
      vocab_log_oss_ << __VA_ARGS__;                                 \
      ::vocab::detail::log_emit(level, vocab_log_oss_.str());        \
    }                                                                \
  } while (false)

#define VOCAB_DEBUG(...) VOCAB_LOG(::vocab::LogLevel::Debug, __VA_ARGS__)
#define VOCAB_INFO(...) VOCAB_LOG(::vocab::LogLevel::Info, __VA_ARGS__)
#define VOCAB_WARN(...) VOCAB_LOG(::vocab::LogLevel::Warn, __VA_ARGS__)
#define VOCAB_ERROR(...) VOCAB_LOG(::vocab::LogLevel::Error, __VA_ARGS__)
