#pragma once

#include <cstddef>
#include <cstdint>

namespace vocab {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Shared by the checkpoint file trailer and the tcp transport frame codec,
/// so a checksum mismatch means the same thing everywhere: the bytes on the
/// wire (or on disk) are not the bytes that were produced.
///
/// `crc32_update` is incremental: feed it the previous return value (start
/// from 0) and it folds `size` more bytes in. The pre/post conditioning
/// (xor with 0xFFFFFFFF) happens inside each call, so intermediate values
/// are already final CRCs of the prefix seen so far.
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size);

/// One-shot convenience over a single buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace vocab
