#include "transport/net_chaos.h"

#include <sstream>
#include <utility>

namespace vocab::transport {

std::string describe(const ChaosEvent& event) {
  std::ostringstream os;
  os << to_string(event.kind) << " -> peer " << event.peer;
  if (event.delay.count() > 0) os << " (" << event.delay.count() << "ms)";
  return os.str();
}

NetChaos::NetChaos(std::shared_ptr<FaultInjector> injector, int self_rank, int world)
    : injector_(std::move(injector)), self_(self_rank), world_(world) {}

std::optional<ChaosEvent> NetChaos::poll() {
  if (injector_ == nullptr || world_ <= 1) {
    // Still drain the queue in the degenerate world so armed events don't
    // pile up forever.
    if (injector_ != nullptr) {
      FaultInjector::NetFault fault;
      while (injector_->take_net_fault(self_, &fault)) {
      }
    }
    return std::nullopt;
  }
  FaultInjector::NetFault fault;
  while (injector_->take_net_fault(self_, &fault)) {
    int peer = fault.peer % world_;
    if (peer < 0) peer += world_;
    if (peer == self_) peer = (peer + 1) % world_;
    if (peer == self_) continue;  // world of 1 after all — nothing to hit
    ChaosEvent event;
    event.kind = fault.kind;
    event.peer = peer;
    event.delay = fault.delay;
    event.note = fault.context;
    {
      std::lock_guard lock(mutex_);
      applied_.push_back(event);
    }
    return event;
  }
  return std::nullopt;
}

std::vector<ChaosEvent> NetChaos::applied() const {
  std::lock_guard lock(mutex_);
  return applied_;
}

std::string NetChaos::describe() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << applied_.size() << " chaos event(s)";
  if (!applied_.empty()) {
    os << ": [";
    for (std::size_t i = 0; i < applied_.size(); ++i) {
      if (i > 0) os << ", ";
      os << transport::describe(applied_[i]);
    }
    os << "]";
  }
  return os.str();
}

}  // namespace vocab::transport
