#include "transport/shm_region.h"

#include <sched.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <new>

#include "common/error.h"

namespace vocab::transport {

namespace {

std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

bool shm_transport_supported() {
  static const bool supported = [] {
    void* p = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    ::munmap(p, 4096);
    return true;
  }();
  return supported;
}

std::int64_t shm_monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// ---------------------------------------------------------------------------
// ShmSpinLock
// ---------------------------------------------------------------------------

bool ShmSpinLock::try_lock() noexcept {
  std::uint32_t expected = 0;
  return held.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                      std::memory_order_relaxed);
}

void ShmSpinLock::lock() noexcept {
  int spins = 0;
  while (!try_lock()) {
    if (++spins >= 64) {
      ::sched_yield();
      spins = 0;
    }
  }
}

void ShmSpinLock::unlock() noexcept { held.store(0, std::memory_order_release); }

// ---------------------------------------------------------------------------
// ShmAbortBlock / ShmCollectiveControl
// ---------------------------------------------------------------------------

bool ShmAbortBlock::post(int dev, int op, const char* reason) noexcept {
  lock.lock();
  if (flag.load(std::memory_order_relaxed) != 0) {
    lock.unlock();
    return false;
  }
  device = dev;
  op_id = op;
  std::strncpy(what, reason == nullptr ? "" : reason, sizeof(what) - 1);
  what[sizeof(what) - 1] = '\0';
  flag.store(1, std::memory_order_release);
  lock.unlock();
  return true;
}

void ShmCollectiveControl::post_failure(const char* text) noexcept {
  failure_lock.lock();
  if (failure_set.load(std::memory_order_relaxed) == 0) {
    std::strncpy(failure, text == nullptr ? "" : text, sizeof(failure) - 1);
    failure[sizeof(failure) - 1] = '\0';
    failure_set.store(1, std::memory_order_release);
  }
  failure_lock.unlock();
}

// ---------------------------------------------------------------------------
// Region layout helpers
// ---------------------------------------------------------------------------

std::size_t shm_collective_region_bytes(int world, std::size_t slot_bytes) {
  const auto w = static_cast<std::size_t>(world);
  std::size_t bytes = align_up(sizeof(ShmCollectiveControl), kShmAlign);
  bytes += align_up(w * sizeof(std::atomic<std::uint32_t>), kShmAlign);  // waiting
  bytes += align_up(w * kShmTagBytes, kShmAlign);                        // tags
  bytes += align_up(w * slot_bytes, kShmAlign);                          // slots
  bytes += align_up(w * slot_bytes, kShmAlign);                          // result
  return bytes;
}

ShmCollectiveView shm_map_collective(std::byte* base, int world, std::size_t slot_bytes) {
  const auto w = static_cast<std::size_t>(world);
  ShmCollectiveView view;
  view.world = world;
  view.slot_bytes = slot_bytes;
  std::size_t offset = 0;
  view.control = reinterpret_cast<ShmCollectiveControl*>(base + offset);
  offset += align_up(sizeof(ShmCollectiveControl), kShmAlign);
  view.waiting = reinterpret_cast<std::atomic<std::uint32_t>*>(base + offset);
  offset += align_up(w * sizeof(std::atomic<std::uint32_t>), kShmAlign);
  view.tags = reinterpret_cast<char*>(base + offset);
  offset += align_up(w * kShmTagBytes, kShmAlign);
  view.slots = base + offset;
  offset += align_up(w * slot_bytes, kShmAlign);
  view.result = base + offset;
  return view;
}

void shm_init_collective(const ShmCollectiveView& view) {
  new (view.control) ShmCollectiveControl{};
  for (int r = 0; r < view.world; ++r) {
    new (&view.waiting[r]) std::atomic<std::uint32_t>{0};
    view.tag(r)[0] = '\0';
  }
}

std::size_t shm_ring_region_bytes(std::size_t ring_bytes) {
  return align_up(sizeof(ShmRingControl), kShmAlign) + align_up(ring_bytes, kShmAlign);
}

ShmRingView shm_map_ring(std::byte* base, std::size_t ring_bytes) {
  (void)ring_bytes;
  ShmRingView view;
  view.control = reinterpret_cast<ShmRingControl*>(base);
  view.data = base + align_up(sizeof(ShmRingControl), kShmAlign);
  return view;
}

void shm_init_ring(const ShmRingView& view, std::size_t ring_bytes) {
  new (view.control) ShmRingControl{};
  view.control->capacity_bytes = ring_bytes;
}

// ---------------------------------------------------------------------------
// ShmMapping / ShmArena
// ---------------------------------------------------------------------------

std::unique_ptr<ShmMapping> ShmMapping::create(std::size_t bytes) {
  bytes = align_up(bytes, static_cast<std::size_t>(::sysconf(_SC_PAGESIZE)));
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return nullptr;
  return std::unique_ptr<ShmMapping>(new ShmMapping(static_cast<std::byte*>(p), bytes));
}

ShmMapping::~ShmMapping() { ::munmap(base_, bytes_); }

ShmArena::ShmArena(std::unique_ptr<ShmMapping> mapping, ShmArenaOptions options)
    : mapping_(std::move(mapping)),
      options_(options),
      header_(reinterpret_cast<ShmArenaHeader*>(mapping_->data())) {}

std::unique_ptr<ShmArena> ShmArena::create(const ShmArenaOptions& options) {
  VOCAB_CHECK(options.world >= 1, "shm arena world must be >= 1, got " << options.world);
  VOCAB_CHECK(options.ring_bytes >= 4096 && options.slot_bytes >= 4096,
              "shm arena ring/slot sizes must be at least one page");

  ShmArenaHeader header;
  header.magic = kShmMagic;
  header.world = options.world;
  header.num_mailboxes = static_cast<std::uint32_t>(options.num_mailboxes);
  header.ring_bytes = options.ring_bytes;
  header.slot_bytes = options.slot_bytes;

  std::size_t offset = align_up(sizeof(ShmArenaHeader), kShmAlign);
  header.abort_offset = offset;
  offset += align_up(sizeof(ShmAbortBlock), kShmAlign);
  header.rank_state_offset = offset;
  offset += align_up(static_cast<std::size_t>(options.world) * sizeof(ShmRankState), kShmAlign);
  header.progress_offset = offset;
  offset += align_up(sizeof(ShmProgressBlock), kShmAlign);
  header.collective_offset = offset;
  offset += shm_collective_region_bytes(options.world, options.slot_bytes);
  header.rings_offset = offset;
  offset += options.num_mailboxes * shm_ring_region_bytes(options.ring_bytes);
  header.total_bytes = offset;

  auto mapping = ShmMapping::create(offset);
  if (mapping == nullptr) return nullptr;

  auto arena = std::unique_ptr<ShmArena>(new ShmArena(std::move(mapping), options));
  *arena->header_ = header;
  new (&arena->abort_block()) ShmAbortBlock{};
  for (int r = 0; r < options.world; ++r) new (&arena->rank_state(r)) ShmRankState{};
  new (&arena->progress()) ShmProgressBlock{};
  shm_init_collective(arena->collective());
  for (std::size_t i = 0; i < options.num_mailboxes; ++i) {
    shm_init_ring(arena->ring(i), options.ring_bytes);
  }
  return arena;
}

ShmAbortBlock& ShmArena::abort_block() const {
  return *reinterpret_cast<ShmAbortBlock*>(mapping_->data() + header_->abort_offset);
}

ShmRankState* ShmArena::rank_states() const {
  return reinterpret_cast<ShmRankState*>(mapping_->data() + header_->rank_state_offset);
}

ShmRankState& ShmArena::rank_state(int rank) const {
  VOCAB_CHECK(rank >= 0 && rank < header_->world,
              "rank " << rank << " out of range [0, " << header_->world << ")");
  return rank_states()[rank];
}

ShmProgressBlock& ShmArena::progress() const {
  return *reinterpret_cast<ShmProgressBlock*>(mapping_->data() + header_->progress_offset);
}

ShmCollectiveView ShmArena::collective() const {
  return shm_map_collective(mapping_->data() + header_->collective_offset, header_->world,
                            header_->slot_bytes);
}

ShmRingView ShmArena::ring(std::size_t index) const {
  VOCAB_CHECK(index < header_->num_mailboxes,
              "ring index " << index << " out of range [0, " << header_->num_mailboxes << ")");
  std::byte* base =
      mapping_->data() + header_->rings_offset + index * shm_ring_region_bytes(header_->ring_bytes);
  return shm_map_ring(base, header_->ring_bytes);
}

}  // namespace vocab::transport
