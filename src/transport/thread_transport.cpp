#include "transport/thread_transport.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace vocab::transport {

namespace {

// Render queue occupancy + queued tags for DeadlockError messages, so a
// timed-out send/recv names the messages actually in flight instead of
// leaving the schedule bug to a debugger. Requires the mailbox mutex held.
std::string describe_queue(const std::deque<Message>& queue, std::size_t capacity) {
  std::ostringstream os;
  os << "occupancy " << queue.size() << "/" << capacity << ", queued tags [";
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < std::min(queue.size(), kMaxListed); ++i) {
    if (i > 0) os << ", ";
    os << "'" << queue[i].tag << "'";
  }
  if (queue.size() > kMaxListed) os << ", ... +" << queue.size() - kMaxListed << " more";
  os << "]";
  // Failure-model attribution: the threads backend has no liveness signal —
  // a peer "dying" here is a thread that stopped calling, which only the
  // watchdog can see. Name the backend so a hang is not mistaken for a dead
  // process.
  os << ", transport 'threads' (peer heartbeat n/a)";
  return os.str();
}

void reduce_into(Tensor& acc, const Tensor& contrib, ReduceOp op) {
  VOCAB_CHECK(acc.same_shape(contrib),
              "collective shape mismatch: " << acc.shape_str() << " vs " << contrib.shape_str());
  float* pa = acc.data();
  const float* pb = contrib.data();
  const std::int64_t n = acc.numel();
  if (op == ReduceOp::Sum) {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) pa[i] = std::max(pa[i], pb[i]);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadMailbox
// ---------------------------------------------------------------------------

ThreadMailbox::ThreadMailbox(std::size_t capacity, std::chrono::milliseconds timeout)
    : capacity_(capacity),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout) {
  VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
}

void ThreadMailbox::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

template <typename Ready>
void ThreadMailbox::wait_or_throw(std::unique_lock<std::mutex>& lock,
                                  std::condition_variable& cv, const char* verb,
                                  const std::string& tag, Ready&& ready) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  for (;;) {
    if (ready()) return;
    if (abort_ != nullptr && abort_->aborted()) {
      throw AbortedError(abort_->reason(),
                         std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      throw DeadlockError(std::string("channel ") + verb + " timed out waiting for tag '" +
                          tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                          std::to_string(timeout_.count()) + " ms): " +
                          describe_queue(queue_, capacity_));
    }
    cv.wait_for(lock, std::min<std::chrono::steady_clock::duration>(deadline - now,
                                                                    kAbortPollInterval));
  }
}

void ThreadMailbox::send(std::string tag, Tensor payload) {
  std::unique_lock lock(mutex_);
  wait_or_throw(lock, cv_send_, "send (full)", tag,
                [&] { return queue_.size() < capacity_; });
  queue_.push_back(Message{std::move(tag), std::move(payload)});
  cv_recv_.notify_all();
}

Message ThreadMailbox::recv() {
  std::unique_lock lock(mutex_);
  wait_or_throw(lock, cv_recv_, "recv (empty)", "<front>", [&] { return !queue_.empty(); });
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  cv_send_.notify_all();
  return msg;
}

Tensor ThreadMailbox::recv_tag(const std::string& tag) {
  std::unique_lock lock(mutex_);
  auto find = [&] { return std::find_if(queue_.begin(), queue_.end(),
                                        [&](const Message& m) { return m.tag == tag; }); };
  auto it = queue_.end();
  wait_or_throw(lock, cv_recv_, "recv", tag, [&] { return (it = find()) != queue_.end(); });
  Tensor payload = std::move(it->payload);
  queue_.erase(it);
  cv_send_.notify_all();
  return payload;
}

void ThreadMailbox::clear() {
  std::lock_guard lock(mutex_);
  queue_.clear();
  cv_send_.notify_all();
}

std::size_t ThreadMailbox::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::string ThreadMailbox::describe() const {
  std::lock_guard lock(mutex_);
  return describe_queue(queue_, capacity_);
}

// ---------------------------------------------------------------------------
// ThreadCollective
// ---------------------------------------------------------------------------

ThreadCollective::ThreadCollective(int world_size, std::chrono::milliseconds timeout)
    : world_size_(world_size),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
      slots_(static_cast<std::size_t>(std::max(world_size, 1))),
      tags_(static_cast<std::size_t>(std::max(world_size, 1))),
      waiting_(static_cast<std::size_t>(std::max(world_size, 1)), false) {
  VOCAB_CHECK(world_size >= 1, "world_size must be >= 1, got " << world_size);
}

void ThreadCollective::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

void ThreadCollective::check_rank(int rank) const {
  VOCAB_CHECK(rank >= 0 && rank < world_size_,
              "rank " << rank << " out of range [0, " << world_size_ << ")");
}

template <typename LeaderFn>
void ThreadCollective::rendezvous(int rank, const std::string& tag, const char* kind,
                                  LeaderFn&& leader_fn) {
  check_rank(rank);
  std::unique_lock lock(mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  waiting_[static_cast<std::size_t>(rank)] = true;
  struct WaitingGuard {
    std::vector<bool>& waiting;
    std::size_t rank;
    ~WaitingGuard() { waiting[rank] = false; }
  } waiting_guard{waiting_, static_cast<std::size_t>(rank)};

  // Wait until `pred`, slicing the timeout so the shared abort token is
  // observed within kAbortPollInterval even if a notify is missed.
  auto timed_wait = [&](auto&& pred) {
    for (;;) {
      if (pred()) return;
      if (abort_ != nullptr && abort_->aborted()) {
        if (failure_.empty()) failure_ = "aborted during " + std::string(kind) + " '" + tag + "'";
        cv_.notify_all();
        throw AbortedError(abort_->reason(), std::string(kind) + " '" + tag + "' on rank " +
                                                 std::to_string(rank) + " interrupted");
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
        failure_ = std::string("deadlock: rank ") + std::to_string(rank) + " timed out in " +
                   kind + " '" + tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                   std::to_string(timeout_.count()) + " ms; arrived " +
                   std::to_string(arrived_) + "/" + std::to_string(world_size_) +
                   "; transport 'threads')";
        cv_.notify_all();
        throw DeadlockError(failure_);
      }
      cv_.wait_for(lock, std::min<std::chrono::steady_clock::duration>(deadline - now,
                                                                       kAbortPollInterval));
    }
  };

  if (!failure_.empty()) throw DeadlockError("communicator poisoned: " + failure_);

  // Wait for the previous collective to fully drain before joining.
  timed_wait([&] { return departed_ == 0 || !failure_.empty(); });
  if (!failure_.empty()) throw DeadlockError("communicator poisoned: " + failure_);

  const std::uint64_t my_gen = generation_;
  tags_[static_cast<std::size_t>(rank)] = tag;
  ++arrived_;

  if (arrived_ == world_size_) {
    // Leader: validate tags, run the collective body, release everyone.
    for (int r = 0; r < world_size_; ++r) {
      if (tags_[static_cast<std::size_t>(r)] != tag) {
        failure_ = std::string("collective mismatch in ") + kind + ": rank " +
                   std::to_string(rank) + " tag '" + tag + "' vs rank " + std::to_string(r) +
                   " tag '" + tags_[static_cast<std::size_t>(r)] + "'";
        arrived_ = 0;
        ++generation_;
        cv_.notify_all();
        throw CheckError(failure_);
      }
    }
    try {
      leader_fn();
    } catch (const std::exception& e) {
      failure_ = std::string(kind) + " '" + tag + "' failed: " + e.what();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      throw;
    }
    ++completed_;
    arrived_ = 0;
    departed_ = world_size_;
    ++generation_;
    cv_.notify_all();
  } else {
    timed_wait([&] { return generation_ != my_gen || !failure_.empty(); });
    if (!failure_.empty()) throw DeadlockError("collective aborted: " + failure_);
  }

  --departed_;
  if (departed_ == 0) cv_.notify_all();
}

void ThreadCollective::barrier(int rank, const std::string& tag) {
  rendezvous(rank, tag, "barrier", [] {});
}

void ThreadCollective::all_reduce(int rank, Tensor& data, ReduceOp op,
                                  const std::string& tag) {
  check_rank(rank);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "all_reduce", [&] {
    Tensor acc = *slots_[0].tensor;
    for (int r = 1; r < world_size_; ++r) reduce_into(acc, *slots_[static_cast<std::size_t>(r)].tensor, op);
    for (int r = 0; r < world_size_; ++r) *slots_[static_cast<std::size_t>(r)].tensor = acc;
  });
}

void ThreadCollective::reduce(int rank, int root, Tensor& data, ReduceOp op,
                              const std::string& tag) {
  check_rank(rank);
  check_rank(root);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "reduce", [&] {
    Tensor acc = *slots_[0].tensor;
    for (int r = 1; r < world_size_; ++r) reduce_into(acc, *slots_[static_cast<std::size_t>(r)].tensor, op);
    *slots_[static_cast<std::size_t>(root)].tensor = std::move(acc);
  });
}

void ThreadCollective::broadcast(int rank, int root, Tensor& data, const std::string& tag) {
  check_rank(rank);
  check_rank(root);
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].tensor = &data;
  }
  rendezvous(rank, tag, "broadcast", [&] {
    const Tensor& src = *slots_[static_cast<std::size_t>(root)].tensor;
    for (int r = 0; r < world_size_; ++r) {
      if (r != root) *slots_[static_cast<std::size_t>(r)].tensor = src;
    }
  });
}

Tensor ThreadCollective::all_gather_rows(int rank, const Tensor& data,
                                         const std::string& tag) {
  check_rank(rank);
  Tensor out;
  {
    std::lock_guard lock(mutex_);
    slots_[static_cast<std::size_t>(rank)].const_tensor = &data;
    slots_[static_cast<std::size_t>(rank)].tensor = &out;
  }
  rendezvous(rank, tag, "all_gather_rows", [&] {
    std::int64_t total_rows = 0;
    const std::int64_t cols = slots_[0].const_tensor->dim(1);
    for (int r = 0; r < world_size_; ++r) {
      const Tensor& t = *slots_[static_cast<std::size_t>(r)].const_tensor;
      VOCAB_CHECK(t.rank() == 2 && t.dim(1) == cols, "all_gather_rows column mismatch");
      total_rows += t.dim(0);
    }
    Tensor gathered({total_rows, cols});
    std::int64_t row = 0;
    for (int r = 0; r < world_size_; ++r) {
      const Tensor& t = *slots_[static_cast<std::size_t>(r)].const_tensor;
      std::copy(t.data(), t.data() + t.numel(), gathered.data() + row * cols);
      row += t.dim(0);
    }
    for (int r = 0; r < world_size_; ++r) *slots_[static_cast<std::size_t>(r)].tensor = gathered;
  });
  return out;
}

std::uint64_t ThreadCollective::completed_collectives() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

std::vector<int> ThreadCollective::waiting_ranks() const {
  std::lock_guard lock(mutex_);
  std::vector<int> out;
  for (int r = 0; r < world_size_; ++r) {
    if (waiting_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

std::string ThreadCollective::describe() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "arrived " << arrived_ << "/" << world_size_ << ", departed " << departed_
     << ", completed " << completed_ << ", waiters [";
  bool first = true;
  for (int r = 0; r < world_size_; ++r) {
    if (!waiting_[static_cast<std::size_t>(r)]) continue;
    if (!first) os << ", ";
    first = false;
    os << "r" << r << ":'" << tags_[static_cast<std::size_t>(r)] << "'";
  }
  os << "]";
  if (!failure_.empty()) os << ", failure: " << failure_;
  os << ", transport 'threads' (peer heartbeat n/a)";
  return os.str();
}

// ---------------------------------------------------------------------------
// ThreadTransport
// ---------------------------------------------------------------------------

std::unique_ptr<Mailbox> ThreadTransport::make_mailbox(std::size_t capacity,
                                                       std::chrono::milliseconds timeout) {
  return std::make_unique<ThreadMailbox>(capacity, timeout);
}

std::unique_ptr<Collective> ThreadTransport::make_collective(
    int world_size, std::chrono::milliseconds timeout) {
  return std::make_unique<ThreadCollective>(world_size, timeout);
}

}  // namespace vocab::transport
