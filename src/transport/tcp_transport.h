#pragma once

// TCP transport backend: framed, CRC32-checked, sequence-numbered messages
// over loopback/LAN sockets. Two modes of the same wire format:
//
//   in-process  (TcpTransport::in_process) — every make_mailbox owns a real
//     connected loopback socket pair and every make_collective a per-rank
//     star of socket pairs with rank 0 as the hub. No supervisor, no
//     heartbeats (nothing can die); this is what VOCAB_TRANSPORT=tcp selects
//     for an ordinary PipelineTrainer, and its collectives reduce in the
//     exact rank order the threads backend uses, so losses and weights are
//     bit-identical across backends.
//
//   attached    (TcpTransport::attach) — one forked OS process per rank, a
//     TcpSupervisor maintaining a supervised full-mesh of connections
//     (reconnect with bounded backoff, in-band heartbeats + cumulative acks,
//     outbox retransmission, chaos injection), and the pre-fork ShmArena
//     reused only as the control plane: abort block, rank liveness flags,
//     progress block, and tcp port advertisement. Mailbox i is owned by rank
//     i (the trainer creates one inbox per device in rank order); collectives
//     are leader-driven with rank 0 pulling joins and fanning results out.
//
// Failure semantics in attached mode: a peer silent past
// VOCAB_HEARTBEAT_TIMEOUT_MS, or unreachable past the reconnect budget, is
// declared dead — blocked waits on the declaring rank throw PeerDeadError
// (worker exit code 5) while the mirrored arena abort unwinds the bystanders
// with AbortedError (exit 3), which is exactly the signal the elastic
// coordinator needs to downgrade the pipeline width.

#include <memory>

#include "fault/fault_injector.h"
#include "transport/shm_region.h"
#include "transport/tcp_supervisor.h"
#include "transport/transport.h"

namespace vocab::transport {

class TcpTransport final : public Transport {
 public:
  /// Loopback-socket-pair mode: no arena, no supervisor, no heartbeats. Used
  /// by the VOCAB_TRANSPORT=tcp singleton.
  [[nodiscard]] static TcpTransport in_process();
  /// Bind to `arena` as `self_rank`, start the connection supervisor, and
  /// block until the full mesh is connected. `injector` (may be null) drives
  /// the deterministic network-chaos layer. The arena must outlive the
  /// transport.
  [[nodiscard]] static std::unique_ptr<TcpTransport> attach(
      ShmArena& arena, int self_rank, TransportConfig config,
      std::shared_ptr<FaultInjector> injector = nullptr);
  ~TcpTransport() override = default;
  TcpTransport(TcpTransport&&) noexcept = default;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] TransportKind kind() const override { return TransportKind::kTcp; }
  [[nodiscard]] const char* name() const override { return "tcp"; }
  [[nodiscard]] std::unique_ptr<Mailbox> make_mailbox(
      std::size_t capacity, std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::unique_ptr<Collective> make_collective(
      int world_size, std::chrono::milliseconds timeout) override;
  [[nodiscard]] long long heartbeat_age_ms(int rank) const override;
  [[nodiscard]] std::vector<PeerStatus> peer_status() const override;

  /// Fault-injection hook: while `fn` returns true the supervisor stops
  /// stamping the arena heartbeat AND stops sending in-band heartbeats.
  void set_heartbeat_suppressed(std::function<bool()> fn);
  /// Token the supervisor mirrors into/out of the arena abort block.
  void set_abort_token(std::shared_ptr<AbortToken> token);
  /// Mark this rank cleanly finished (peers see EOF as "done", not death).
  void mark_done();

  /// Attached mode's supervisor (null in in-process mode) — the elastic
  /// worker consults dead_peer() to classify its own unwind.
  [[nodiscard]] TcpSupervisor* supervisor() const { return supervisor_.get(); }

 private:
  TcpTransport() = default;
  TcpTransport(ShmArena& arena, int self_rank, TransportConfig config,
               std::shared_ptr<FaultInjector> injector);

  TransportConfig config_ = {};
  int self_ = -1;
  std::unique_ptr<TcpSupervisor> supervisor_;  ///< attached mode only
  std::uint32_t next_mailbox_ = 0;
  bool collective_taken_ = false;
};

}  // namespace vocab::transport
