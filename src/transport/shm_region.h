#pragma once

// Shared-memory region primitives for the multi-process transport backend.
//
// Everything here is laid out inside one anonymous MAP_SHARED mmap created by
// the coordinator BEFORE fork(), so every worker inherits the mapping at the
// same virtual address and the raw pointers in the views below stay valid
// across processes. All cross-process state is std::atomic on ≤ 8-byte
// trivially-copyable types (address-free on this platform) plus fixed-size
// char buffers guarded by a CAS spinlock; there are no pthread objects in the
// region, so a SIGKILL'd worker can never leave a mutex in an undefined state
// — the worst a dying writer can hold is ShmSpinLock, and every spin loop in
// the transport polls the abort/deadline path so that degenerates into a
// detected death, not a hang.
//
// Layout of an arena (all blocks 64-byte aligned, offsets in the header):
//   ShmArenaHeader | ShmAbortBlock | ShmRankState[world] | ShmProgressBlock
//   | one collective region (control + waiting flags + tags + per-rank slots
//     + result area) | num_mailboxes ring regions (control + data bytes)
//
// The single-purpose ShmMapping is the same mmap without the arena layout;
// the in-process shm mode gives each mailbox/collective its own mapping.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace vocab::transport {

/// True when anonymous shared mmap works on this platform — the capability
/// probe behind graceful test skips (ISSUE satellite: skip, don't fail).
[[nodiscard]] bool shm_transport_supported();

/// CLOCK_MONOTONIC nanoseconds — consistent across processes on Linux, which
/// is what makes cross-process heartbeat ages meaningful.
[[nodiscard]] std::int64_t shm_monotonic_ns();

inline constexpr std::size_t kShmAlign = 64;
inline constexpr std::uint64_t kShmMagic = 0x564f434153484d31ULL;  // "VOCASHM1"
inline constexpr std::size_t kShmTagBytes = 160;
inline constexpr std::size_t kShmFailureBytes = 1024;
inline constexpr std::size_t kShmAbortWhatBytes = 2048;
inline constexpr std::size_t kShmProgressSlots = 4096;

/// Minimal test-and-set spinlock that lives in shared memory. Callers must
/// bound their spin (try_lock + their own backoff/deadline); lock() is only
/// for short critical sections where the holder cannot be killed (the
/// coordinator, or in-process mode).
struct alignas(kShmAlign) ShmSpinLock {
  std::atomic<std::uint32_t> held{0};

  bool try_lock() noexcept;
  void lock() noexcept;
  void unlock() noexcept;
};

/// Cross-process mirror of AbortToken: first post wins and is sticky.
struct alignas(kShmAlign) ShmAbortBlock {
  ShmSpinLock lock;
  std::atomic<std::uint32_t> flag{0};
  std::int32_t device = -1;
  std::int32_t op_id = -1;
  char what[kShmAbortWhatBytes] = {};

  /// Set the abort reason if none is set yet; returns true if this call won.
  bool post(int device, int op_id, const char* reason) noexcept;
  [[nodiscard]] bool aborted() const noexcept {
    return flag.load(std::memory_order_acquire) != 0;
  }
};

/// Per-rank liveness record. `heartbeat_ns` is stamped by the rank's beacon
/// thread; 0 means "never stamped" (a rank that has not finished attaching
/// yet is not declared dead). `done` marks clean shutdown, `dead` is set by
/// whichever monitor first notices heartbeat loss or waitpid.
struct alignas(kShmAlign) ShmRankState {
  std::atomic<std::int64_t> heartbeat_ns{0};
  std::atomic<std::uint32_t> done{0};
  std::atomic<std::uint32_t> dead{0};
  /// TCP listener port advertisement for the tcp backend's mesh rendezvous:
  /// a forked rank binds 127.0.0.1:0 (or VOCAB_TCP_PORT_BASE + rank) and
  /// publishes the bound port here; peers poll until nonzero, then connect.
  /// 0 = not listening (shm-only runs never touch it).
  std::atomic<std::uint32_t> tcp_port{0};
};

/// Coordinator-visible training progress: rank 0 writes losses[i] and then
/// publishes completed = i + 1 with release semantics, so after a crash the
/// coordinator knows exactly which iterations finished and with what loss.
struct alignas(kShmAlign) ShmProgressBlock {
  std::atomic<std::int64_t> completed{0};
  float losses[kShmProgressSlots] = {};
};

/// Fixed part of a collective region; the variable-size arrays (waiting
/// flags, tags, slots, result) follow it, addressed via ShmCollectiveView.
struct alignas(kShmAlign) ShmCollectiveControl {
  std::atomic<std::int32_t> arrived{0};
  std::atomic<std::int32_t> departed{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> completed{0};
  ShmSpinLock failure_lock;
  std::atomic<std::uint32_t> failure_set{0};
  char failure[kShmFailureBytes] = {};

  /// First failure wins (mirrors DeviceGroup's failure_ string semantics).
  void post_failure(const char* text) noexcept;
  /// Copy of the failure text ("" when none). Safe without the lock: the
  /// buffer is written once before failure_set's release store.
  [[nodiscard]] const char* failure_text() const noexcept {
    return failure_set.load(std::memory_order_acquire) != 0 ? failure : "";
  }
};

/// Pointers into one collective region. Plain aggregate — recompute it in
/// each process from the (inherited) base pointer.
struct ShmCollectiveView {
  ShmCollectiveControl* control = nullptr;
  std::atomic<std::uint32_t>* waiting = nullptr;  ///< [world]
  char* tags = nullptr;                           ///< world * kShmTagBytes
  std::byte* slots = nullptr;                     ///< world * slot_bytes
  std::byte* result = nullptr;                    ///< world * slot_bytes
  int world = 0;
  std::size_t slot_bytes = 0;

  [[nodiscard]] char* tag(int rank) const { return tags + static_cast<std::size_t>(rank) * kShmTagBytes; }
  [[nodiscard]] std::byte* slot(int rank) const {
    return slots + static_cast<std::size_t>(rank) * slot_bytes;
  }
};

[[nodiscard]] std::size_t shm_collective_region_bytes(int world, std::size_t slot_bytes);
/// Compute the view over `base` (which must have region_bytes of space).
[[nodiscard]] ShmCollectiveView shm_map_collective(std::byte* base, int world,
                                                   std::size_t slot_bytes);
/// Placement-initialize every object in the region (creator side, pre-fork).
void shm_init_collective(const ShmCollectiveView& view);

/// Ring buffer control. head/tail are monotonically increasing byte counts
/// (position = value % capacity_bytes); occupancy counts messages written
/// but not yet *delivered* to a recv call — that is what gives the shm
/// mailbox the same bounded-channel backpressure semantics as the thread
/// Channel even though the reader eagerly drains the ring into local memory.
struct alignas(kShmAlign) ShmRingControl {
  ShmSpinLock write_lock;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::int64_t> occupancy{0};
  std::uint64_t capacity_bytes = 0;
};

struct ShmRingView {
  ShmRingControl* control = nullptr;
  std::byte* data = nullptr;  ///< capacity_bytes of circular storage
};

[[nodiscard]] std::size_t shm_ring_region_bytes(std::size_t ring_bytes);
[[nodiscard]] ShmRingView shm_map_ring(std::byte* base, std::size_t ring_bytes);
void shm_init_ring(const ShmRingView& view, std::size_t ring_bytes);

/// An anonymous MAP_SHARED mapping with no layout — the building block for
/// both the arena and the in-process single-object regions.
class ShmMapping {
 public:
  /// nullptr when the platform cannot create shared mappings.
  [[nodiscard]] static std::unique_ptr<ShmMapping> create(std::size_t bytes);
  ~ShmMapping();
  ShmMapping(const ShmMapping&) = delete;
  ShmMapping& operator=(const ShmMapping&) = delete;

  [[nodiscard]] std::byte* data() const { return base_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }

 private:
  ShmMapping(std::byte* base, std::size_t bytes) : base_(base), bytes_(bytes) {}
  std::byte* base_;
  std::size_t bytes_;
};

struct ShmArenaOptions {
  int world = 1;
  std::size_t num_mailboxes = 0;
  std::size_t ring_bytes = std::size_t{8} << 20;  ///< data bytes per mailbox
  std::size_t slot_bytes = std::size_t{4} << 20;  ///< max serialized tensor
};

/// Header at offset 0 of an arena mapping.
struct ShmArenaHeader {
  std::uint64_t magic = 0;
  std::int32_t world = 0;
  std::uint32_t num_mailboxes = 0;
  std::uint64_t ring_bytes = 0;
  std::uint64_t slot_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t abort_offset = 0;
  std::uint64_t rank_state_offset = 0;
  std::uint64_t progress_offset = 0;
  std::uint64_t collective_offset = 0;
  std::uint64_t rings_offset = 0;
};

/// The pre-fork shared arena for one elastic generation: one collective
/// region plus `num_mailboxes` rings, fully laid out and initialized at
/// create() time so workers never allocate shared state — make_collective /
/// make_mailbox calls just consume blocks in creation order, which is
/// deterministic because every worker constructs the identical trainer.
class ShmArena {
 public:
  /// nullptr when shared mappings are unsupported.
  [[nodiscard]] static std::unique_ptr<ShmArena> create(const ShmArenaOptions& options);

  [[nodiscard]] int world() const { return header_->world; }
  [[nodiscard]] std::size_t num_mailboxes() const { return header_->num_mailboxes; }
  [[nodiscard]] const ShmArenaOptions& options() const { return options_; }

  [[nodiscard]] ShmAbortBlock& abort_block() const;
  [[nodiscard]] ShmRankState& rank_state(int rank) const;
  [[nodiscard]] ShmRankState* rank_states() const;
  [[nodiscard]] ShmProgressBlock& progress() const;
  [[nodiscard]] ShmCollectiveView collective() const;
  [[nodiscard]] ShmRingView ring(std::size_t index) const;

 private:
  explicit ShmArena(std::unique_ptr<ShmMapping> mapping, ShmArenaOptions options);

  std::unique_ptr<ShmMapping> mapping_;
  ShmArenaOptions options_;
  ShmArenaHeader* header_;
};

}  // namespace vocab::transport
