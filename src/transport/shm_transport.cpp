#include "transport/shm_transport.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace vocab::transport {

namespace {

// Same accumulation order and float ops as the threads backend — this is
// what makes collective results bit-identical across backends.
void reduce_into(Tensor& acc, const Tensor& contrib, ReduceOp op) {
  VOCAB_CHECK(acc.same_shape(contrib),
              "collective shape mismatch: " << acc.shape_str() << " vs " << contrib.shape_str());
  float* pa = acc.data();
  const float* pb = contrib.data();
  const std::int64_t n = acc.numel();
  if (op == ReduceOp::Sum) {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) pa[i] = std::max(pa[i], pb[i]);
  }
}

// Tensor wire format: u32 ndims, u32 pad, i64 dims[ndims], f32 data. Raw fp32
// bytes — serialization is bitwise, so no precision is lost in transit.
std::size_t tensor_wire_bytes(const Tensor& t) {
  return 8 + 8 * static_cast<std::size_t>(t.rank()) + 4 * static_cast<std::size_t>(t.numel());
}

std::size_t serialize_tensor(std::byte* dst, std::size_t cap, const Tensor& t) {
  const std::size_t need = tensor_wire_bytes(t);
  VOCAB_CHECK(need <= cap, "shm tensor of shape " << t.shape_str() << " needs " << need
                                                  << " bytes, slot holds " << cap);
  const std::uint32_t ndims = static_cast<std::uint32_t>(t.rank());
  const std::uint32_t pad = 0;
  std::memcpy(dst, &ndims, 4);
  std::memcpy(dst + 4, &pad, 4);
  std::size_t offset = 8;
  for (int i = 0; i < t.rank(); ++i) {
    const std::int64_t d = t.dim(i);
    std::memcpy(dst + offset, &d, 8);
    offset += 8;
  }
  std::memcpy(dst + offset, t.data(), 4 * static_cast<std::size_t>(t.numel()));
  return need;
}

Tensor deserialize_tensor(const std::byte* src) {
  std::uint32_t ndims = 0;
  std::memcpy(&ndims, src, 4);
  if (ndims == 0) return Tensor{};
  std::vector<std::int64_t> shape(ndims);
  std::size_t offset = 8;
  for (std::uint32_t i = 0; i < ndims; ++i) {
    std::memcpy(&shape[i], src + offset, 8);
    offset += 8;
  }
  Tensor t(shape);
  std::memcpy(t.data(), src + offset, 4 * static_cast<std::size_t>(t.numel()));
  return t;
}

// Message record: u64 rec_len (total, 8-aligned), u32 tag_len, then the
// tensor wire format, then the tag bytes, then padding.
std::vector<std::byte> encode_message(const std::string& tag, const Tensor& payload) {
  const std::size_t tensor_bytes = payload.rank() == 0 ? 8 : tensor_wire_bytes(payload);
  std::size_t len = 8 + 4 + tensor_bytes + tag.size();
  len = (len + 7) / 8 * 8;
  std::vector<std::byte> rec(len, std::byte{0});
  const std::uint64_t rec_len = len;
  const std::uint32_t tag_len = static_cast<std::uint32_t>(tag.size());
  std::memcpy(rec.data(), &rec_len, 8);
  std::memcpy(rec.data() + 8, &tag_len, 4);
  std::size_t offset = 12;
  if (payload.rank() == 0) {
    offset += 8;  // ndims = 0, pad — already zeroed
  } else {
    offset += serialize_tensor(rec.data() + offset, tensor_bytes, payload);
  }
  std::memcpy(rec.data() + offset, tag.data(), tag.size());
  return rec;
}

Message decode_message(const std::byte* rec) {
  std::uint32_t tag_len = 0;
  std::memcpy(&tag_len, rec + 8, 4);
  std::uint32_t ndims = 0;
  std::memcpy(&ndims, rec + 12, 4);
  Message msg;
  msg.payload = ndims == 0 ? Tensor{} : deserialize_tensor(rec + 12);
  const std::size_t tensor_bytes =
      8 + 8 * static_cast<std::size_t>(ndims) + 4 * static_cast<std::size_t>(msg.payload.numel());
  msg.tag.assign(reinterpret_cast<const char*>(rec + 12 + tensor_bytes), tag_len);
  return msg;
}

// Circular-buffer copy at a monotonic byte position (wraps at capacity).
void ring_write_bytes(const ShmRingView& ring, std::uint64_t pos, const void* src,
                      std::size_t n) {
  const std::uint64_t cap = ring.control->capacity_bytes;
  const std::uint64_t at = pos % cap;
  const std::size_t first = static_cast<std::size_t>(std::min<std::uint64_t>(n, cap - at));
  std::memcpy(ring.data + at, src, first);
  if (first < n) std::memcpy(ring.data, static_cast<const std::byte*>(src) + first, n - first);
}

void ring_read_bytes(const ShmRingView& ring, std::uint64_t pos, void* dst, std::size_t n) {
  const std::uint64_t cap = ring.control->capacity_bytes;
  const std::uint64_t at = pos % cap;
  const std::size_t first = static_cast<std::size_t>(std::min<std::uint64_t>(n, cap - at));
  std::memcpy(dst, ring.data + at, first);
  if (first < n) std::memcpy(static_cast<std::byte*>(dst) + first, ring.data, n - first);
}

AbortReason reason_from_arena(const ShmAbortBlock& block) {
  AbortReason reason;
  reason.device = block.device;
  reason.op_id = block.op_id;
  reason.what = block.what;
  return reason;
}

std::string describe_pending(const std::deque<Message>& pending, std::size_t capacity) {
  std::ostringstream os;
  os << "occupancy " << pending.size() << "/" << capacity << ", queued tags [";
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < std::min(pending.size(), kMaxListed); ++i) {
    if (i > 0) os << ", ";
    os << "'" << pending[i].tag << "'";
  }
  if (pending.size() > kMaxListed) os << ", ... +" << pending.size() - kMaxListed << " more";
  os << "]";
  return os.str();
}

constexpr std::size_t kInProcessRingBytes = std::size_t{8} << 20;
constexpr std::size_t kInProcessSlotBytes = std::size_t{4} << 20;

}  // namespace

// ---------------------------------------------------------------------------
// ShmPeerView
// ---------------------------------------------------------------------------

int ShmPeerView::dead_rank() const {
  if (!attached()) return -1;
  for (int r = 0; r < world; ++r) {
    if (ranks[r].dead.load(std::memory_order_acquire) != 0) return r;
  }
  return -1;
}

long long ShmPeerView::heartbeat_age_ms(int rank) const {
  if (!attached() || rank < 0 || rank >= world) return -1;
  const std::int64_t hb = ranks[rank].heartbeat_ns.load(std::memory_order_acquire);
  if (hb == 0) return -1;
  return (shm_monotonic_ns() - hb) / 1000000;
}

std::string ShmPeerView::diag_suffix() const {
  if (!attached()) return ", transport 'shm' (peer heartbeat n/a)";
  std::ostringstream os;
  os << ", transport 'shm', heartbeat ages ms [";
  for (int r = 0; r < world; ++r) {
    if (r > 0) os << ", ";
    os << "r" << r << ":";
    if (ranks[r].dead.load(std::memory_order_acquire) != 0) {
      os << "dead";
    } else if (ranks[r].done.load(std::memory_order_acquire) != 0) {
      os << "done";
    } else {
      const long long age = heartbeat_age_ms(r);
      if (age < 0) {
        os << "-";
      } else {
        os << age;
      }
    }
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// ShmMailbox
// ---------------------------------------------------------------------------

ShmMailbox::ShmMailbox(std::size_t capacity, std::chrono::milliseconds timeout,
                       TransportConfig config, ShmRingView ring, ShmPeerView peers,
                       std::unique_ptr<ShmMapping> owned_region)
    : capacity_(capacity),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
      config_(config),
      ring_(ring),
      peers_(peers),
      owned_region_(std::move(owned_region)) {
  VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
}

void ShmMailbox::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

void ShmMailbox::drain_ring() const {
  // Single-reader invariant: only the owning rank's recv path touches tail.
  const std::uint64_t head = ring_.control->head.load(std::memory_order_acquire);
  std::uint64_t tail = ring_.control->tail.load(std::memory_order_relaxed);
  std::vector<std::byte> buf;
  while (tail < head) {
    std::uint64_t rec_len = 0;
    ring_read_bytes(ring_, tail, &rec_len, 8);
    buf.resize(static_cast<std::size_t>(rec_len));
    ring_read_bytes(ring_, tail, buf.data(), buf.size());
    pending_.push_back(decode_message(buf.data()));
    tail += rec_len;
  }
  // Release the bytes back to writers; `occupancy` still counts the drained
  // messages until they are delivered, preserving the channel capacity bound.
  ring_.control->tail.store(tail, std::memory_order_release);
}

void ShmMailbox::check_or_backoff(const char* verb, const std::string& tag,
                                  std::chrono::steady_clock::time_point t0,
                                  std::chrono::steady_clock::time_point deadline,
                                  int* attempt) const {
  std::shared_ptr<AbortToken> token;
  {
    std::lock_guard lock(mutex_);
    token = abort_;
  }
  if (token != nullptr && token->aborted()) {
    throw AbortedError(token->reason(),
                       std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
  }
  if (peers_.attached() && peers_.abort->aborted()) {
    throw AbortedError(reason_from_arena(*peers_.abort),
                       std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
  }
  // Past the retry budget a blocked op re-validates peer liveness so a dead
  // writer/reader is named directly instead of waiting out the full timeout.
  if (*attempt >= config_.retry_max) {
    const int dead = peers_.dead_rank();
    if (dead >= 0) {
      throw DeadlockError(std::string("channel ") + verb + " aborted waiting for tag '" + tag +
                          "': rank " + std::to_string(dead) + " is dead" + peers_.diag_suffix());
    }
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= deadline) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
    std::string occupancy;
    {
      std::lock_guard lock(mutex_);
      drain_ring();
      occupancy = describe_pending(pending_, capacity_);
    }
    throw DeadlockError(std::string("channel ") + verb + " timed out waiting for tag '" + tag +
                        "' after " + std::to_string(elapsed) + " ms (timeout " +
                        std::to_string(timeout_.count()) + " ms): " + occupancy +
                        peers_.diag_suffix());
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(peers_.self + 2) * 0x9e3779b97f4a7c15ULL;
  std::this_thread::sleep_for(backoff_delay(config_, *attempt, seed));
  ++*attempt;
}

void ShmMailbox::send(std::string tag, Tensor payload) {
  const std::vector<std::byte> rec = encode_message(tag, payload);
  VOCAB_CHECK(rec.size() <= ring_.control->capacity_bytes,
              "shm mailbox message '" << tag << "' (" << rec.size()
                                      << " bytes) exceeds ring capacity "
                                      << ring_.control->capacity_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  int attempt = 0;
  for (;;) {
    bool wrote = false;
    if (ring_.control->write_lock.try_lock()) {
      const std::uint64_t head = ring_.control->head.load(std::memory_order_relaxed);
      const std::uint64_t tail = ring_.control->tail.load(std::memory_order_acquire);
      const std::int64_t occupancy = ring_.control->occupancy.load(std::memory_order_acquire);
      if (occupancy < static_cast<std::int64_t>(capacity_) &&
          head - tail + rec.size() <= ring_.control->capacity_bytes) {
        ring_write_bytes(ring_, head, rec.data(), rec.size());
        ring_.control->occupancy.fetch_add(1, std::memory_order_relaxed);
        ring_.control->head.store(head + rec.size(), std::memory_order_release);
        wrote = true;
      }
      ring_.control->write_lock.unlock();
    }
    if (wrote) return;
    check_or_backoff("send (full)", tag, t0, deadline, &attempt);
  }
}

Message ShmMailbox::recv() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  int attempt = 0;
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      drain_ring();
      if (!pending_.empty()) {
        Message msg = std::move(pending_.front());
        pending_.pop_front();
        ring_.control->occupancy.fetch_sub(1, std::memory_order_relaxed);
        return msg;
      }
    }
    check_or_backoff("recv (empty)", "<front>", t0, deadline, &attempt);
  }
}

Tensor ShmMailbox::recv_tag(const std::string& tag) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  int attempt = 0;
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      drain_ring();
      const auto it = std::find_if(pending_.begin(), pending_.end(),
                                   [&](const Message& m) { return m.tag == tag; });
      if (it != pending_.end()) {
        Tensor payload = std::move(it->payload);
        pending_.erase(it);
        ring_.control->occupancy.fetch_sub(1, std::memory_order_relaxed);
        return payload;
      }
    }
    check_or_backoff("recv", tag, t0, deadline, &attempt);
  }
}

void ShmMailbox::clear() {
  std::lock_guard lock(mutex_);
  drain_ring();
  const auto cleared = static_cast<std::int64_t>(pending_.size());
  pending_.clear();
  ring_.control->occupancy.fetch_sub(cleared, std::memory_order_relaxed);
}

std::size_t ShmMailbox::size() const {
  const std::int64_t occupancy = ring_.control->occupancy.load(std::memory_order_acquire);
  return occupancy > 0 ? static_cast<std::size_t>(occupancy) : 0;
}

std::string ShmMailbox::describe_locked() const {
  drain_ring();
  return describe_pending(pending_, capacity_) + peers_.diag_suffix();
}

std::string ShmMailbox::describe() const {
  std::lock_guard lock(mutex_);
  return describe_locked();
}

// ---------------------------------------------------------------------------
// ShmCollective
// ---------------------------------------------------------------------------

ShmCollective::ShmCollective(int world_size, std::chrono::milliseconds timeout,
                             TransportConfig config, ShmCollectiveView view, ShmPeerView peers,
                             std::unique_ptr<ShmMapping> owned_region)
    : world_(world_size),
      timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
      config_(config),
      view_(view),
      peers_(peers),
      owned_region_(std::move(owned_region)) {
  VOCAB_CHECK(world_size >= 1, "world_size must be >= 1, got " << world_size);
  VOCAB_CHECK(view_.world == world_size,
              "shm collective region world " << view_.world << " vs requested " << world_size);
}

void ShmCollective::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  abort_ = std::move(token);
}

void ShmCollective::check_rank(int rank) const {
  VOCAB_CHECK(rank >= 0 && rank < world_,
              "rank " << rank << " out of range [0, " << world_ << ")");
}

void ShmCollective::rendezvous(int rank, const std::string& tag, const char* kind,
                               const Tensor* input, const std::function<void()>& leader_fn,
                               const std::function<void(const std::byte*)>& deliver_fn) {
  check_rank(rank);
  VOCAB_CHECK(tag.size() < kShmTagBytes,
              "collective tag '" << tag << "' exceeds " << kShmTagBytes - 1 << " bytes");
  ShmCollectiveControl* c = view_.control;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + timeout_;
  int attempt = 0;
  const std::uint64_t seed = static_cast<std::uint64_t>(rank + 2) * 0xbf58476d1ce4e5b9ULL;
  std::shared_ptr<AbortToken> token;
  {
    std::lock_guard lock(mutex_);
    token = abort_;
  }

  view_.waiting[rank].store(1, std::memory_order_relaxed);
  struct WaitingGuard {
    std::atomic<std::uint32_t>* flag;
    ~WaitingGuard() { flag->store(0, std::memory_order_relaxed); }
  } waiting_guard{&view_.waiting[rank]};

  auto poisoned = [&] { return c->failure_set.load(std::memory_order_acquire) != 0; };

  // Spin until `pred`, re-checking token abort, arena abort, peer death, and
  // the deadline every lap, sleeping the deterministic backoff in between.
  auto timed_wait = [&](auto&& pred) {
    for (;;) {
      if (pred()) return;
      if (token != nullptr && token->aborted()) {
        c->post_failure(("aborted during " + std::string(kind) + " '" + tag + "'").c_str());
        throw AbortedError(token->reason(), std::string(kind) + " '" + tag + "' on rank " +
                                                std::to_string(rank) + " interrupted");
      }
      if (peers_.attached() && peers_.abort->aborted()) {
        c->post_failure(("aborted during " + std::string(kind) + " '" + tag + "'").c_str());
        throw AbortedError(reason_from_arena(*peers_.abort),
                           std::string(kind) + " '" + tag + "' on rank " + std::to_string(rank) +
                               " interrupted");
      }
      const int dead = peers_.dead_rank();
      if (dead >= 0) {
        const std::string failure = std::string("deadlock: rank ") + std::to_string(dead) +
                                    " died during " + kind + " '" + tag + "'";
        c->post_failure(failure.c_str());
        throw DeadlockError(failure + peers_.diag_suffix());
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
        const std::string failure =
            std::string("deadlock: rank ") + std::to_string(rank) + " timed out in " + kind +
            " '" + tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
            std::to_string(timeout_.count()) + " ms; arrived " +
            std::to_string(c->arrived.load(std::memory_order_acquire)) + "/" +
            std::to_string(world_) + ")";
        c->post_failure(failure.c_str());
        throw DeadlockError(failure + peers_.diag_suffix());
      }
      std::this_thread::sleep_for(backoff_delay(config_, attempt, seed));
      ++attempt;
    }
  };

  if (poisoned()) throw DeadlockError(std::string("communicator poisoned: ") + c->failure_text());

  // Wait for the previous collective to fully drain before joining.
  timed_wait([&] { return c->departed.load(std::memory_order_acquire) == 0 || poisoned(); });
  if (poisoned()) throw DeadlockError(std::string("communicator poisoned: ") + c->failure_text());

  const std::uint64_t my_gen = c->generation.load(std::memory_order_acquire);
  std::strncpy(view_.tag(rank), tag.c_str(), kShmTagBytes - 1);
  view_.tag(rank)[kShmTagBytes - 1] = '\0';
  if (input != nullptr) serialize_tensor(view_.slot(rank), view_.slot_bytes, *input);
  const std::int32_t prev = c->arrived.fetch_add(1, std::memory_order_acq_rel);

  if (prev + 1 == world_) {
    // Leader: validate tags, run the collective body, release everyone.
    for (int r = 0; r < world_; ++r) {
      if (std::strcmp(view_.tag(r), tag.c_str()) != 0) {
        const std::string failure = std::string("collective mismatch in ") + kind + ": rank " +
                                    std::to_string(rank) + " tag '" + tag + "' vs rank " +
                                    std::to_string(r) + " tag '" + view_.tag(r) + "'";
        c->post_failure(failure.c_str());
        c->arrived.store(0, std::memory_order_relaxed);
        c->generation.fetch_add(1, std::memory_order_release);
        throw CheckError(failure);
      }
    }
    try {
      leader_fn();
    } catch (const std::exception& e) {
      c->post_failure((std::string(kind) + " '" + tag + "' failed: " + e.what()).c_str());
      c->arrived.store(0, std::memory_order_relaxed);
      c->generation.fetch_add(1, std::memory_order_release);
      throw;
    }
    c->completed.fetch_add(1, std::memory_order_relaxed);
    c->arrived.store(0, std::memory_order_relaxed);
    c->departed.store(world_, std::memory_order_relaxed);
    c->generation.fetch_add(1, std::memory_order_release);
    deliver_fn(view_.result);
  } else {
    timed_wait(
        [&] { return c->generation.load(std::memory_order_acquire) != my_gen || poisoned(); });
    if (poisoned()) {
      throw DeadlockError(std::string("collective aborted: ") + c->failure_text());
    }
    deliver_fn(view_.result);
  }

  c->departed.fetch_sub(1, std::memory_order_acq_rel);
}

void ShmCollective::barrier(int rank, const std::string& tag) {
  rendezvous(rank, tag, "barrier", nullptr, [] {}, [](const std::byte*) {});
}

void ShmCollective::all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) {
  const std::size_t result_cap = static_cast<std::size_t>(world_) * view_.slot_bytes;
  rendezvous(
      rank, tag, "all_reduce", &data,
      [&] {
        Tensor acc = deserialize_tensor(view_.slot(0));
        for (int r = 1; r < world_; ++r) {
          Tensor contrib = deserialize_tensor(view_.slot(r));
          reduce_into(acc, contrib, op);
        }
        serialize_tensor(view_.result, result_cap, acc);
      },
      [&](const std::byte* result) { data = deserialize_tensor(result); });
}

void ShmCollective::reduce(int rank, int root, Tensor& data, ReduceOp op,
                           const std::string& tag) {
  check_rank(root);
  const std::size_t result_cap = static_cast<std::size_t>(world_) * view_.slot_bytes;
  rendezvous(
      rank, tag, "reduce", &data,
      [&] {
        Tensor acc = deserialize_tensor(view_.slot(0));
        for (int r = 1; r < world_; ++r) {
          Tensor contrib = deserialize_tensor(view_.slot(r));
          reduce_into(acc, contrib, op);
        }
        serialize_tensor(view_.result, result_cap, acc);
      },
      [&](const std::byte* result) {
        if (rank == root) data = deserialize_tensor(result);
      });
}

void ShmCollective::broadcast(int rank, int root, Tensor& data, const std::string& tag) {
  check_rank(root);
  const std::size_t result_cap = static_cast<std::size_t>(world_) * view_.slot_bytes;
  rendezvous(
      rank, tag, "broadcast", &data,
      [&] {
        Tensor src = deserialize_tensor(view_.slot(root));
        serialize_tensor(view_.result, result_cap, src);
      },
      [&](const std::byte* result) { data = deserialize_tensor(result); });
}

Tensor ShmCollective::all_gather_rows(int rank, const Tensor& data, const std::string& tag) {
  Tensor out;
  const std::size_t result_cap = static_cast<std::size_t>(world_) * view_.slot_bytes;
  rendezvous(
      rank, tag, "all_gather_rows", &data,
      [&] {
        std::vector<Tensor> parts;
        parts.reserve(static_cast<std::size_t>(world_));
        for (int r = 0; r < world_; ++r) parts.push_back(deserialize_tensor(view_.slot(r)));
        std::int64_t total_rows = 0;
        const std::int64_t cols = parts[0].dim(1);
        for (const Tensor& t : parts) {
          VOCAB_CHECK(t.rank() == 2 && t.dim(1) == cols, "all_gather_rows column mismatch");
          total_rows += t.dim(0);
        }
        Tensor gathered({total_rows, cols});
        std::int64_t row = 0;
        for (const Tensor& t : parts) {
          std::copy(t.data(), t.data() + t.numel(), gathered.data() + row * cols);
          row += t.dim(0);
        }
        serialize_tensor(view_.result, result_cap, gathered);
      },
      [&](const std::byte* result) { out = deserialize_tensor(result); });
  return out;
}

std::uint64_t ShmCollective::completed_collectives() const {
  return view_.control->completed.load(std::memory_order_acquire);
}

std::vector<int> ShmCollective::waiting_ranks() const {
  std::vector<int> out;
  for (int r = 0; r < world_; ++r) {
    if (view_.waiting[r].load(std::memory_order_relaxed) != 0) out.push_back(r);
  }
  return out;
}

std::string ShmCollective::describe() const {
  ShmCollectiveControl* c = view_.control;
  std::ostringstream os;
  os << "arrived " << c->arrived.load(std::memory_order_acquire) << "/" << world_
     << ", departed " << c->departed.load(std::memory_order_acquire) << ", completed "
     << c->completed.load(std::memory_order_acquire) << ", waiters [";
  bool first = true;
  for (int r = 0; r < world_; ++r) {
    if (view_.waiting[r].load(std::memory_order_relaxed) == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "r" << r << ":'" << view_.tag(r) << "'";
  }
  os << "]";
  const char* failure = c->failure_text();
  if (failure[0] != '\0') os << ", failure: " << failure;
  os << peers_.diag_suffix();
  return os.str();
}

// ---------------------------------------------------------------------------
// ShmTransport
// ---------------------------------------------------------------------------

ShmTransport ShmTransport::in_process() { return ShmTransport(); }

ShmTransport::ShmTransport(ShmArena* arena, int self_rank, TransportConfig config)
    : arena_(arena), self_rank_(self_rank), config_(config) {
  VOCAB_CHECK(self_rank >= 0 && self_rank < arena->world(),
              "shm transport rank " << self_rank << " out of range [0, " << arena->world()
                                    << ")");
  arena_->rank_state(self_rank_).heartbeat_ns.store(shm_monotonic_ns(),
                                                    std::memory_order_release);
  beacon_ = std::thread([this] { beacon_loop(); });
}

std::unique_ptr<ShmTransport> ShmTransport::attach(ShmArena& arena, int self_rank,
                                                   TransportConfig config) {
  return std::unique_ptr<ShmTransport>(new ShmTransport(&arena, self_rank, config));
}

ShmTransport::ShmTransport(ShmTransport&& other) noexcept
    : arena_(other.arena_),
      self_rank_(other.self_rank_),
      config_(other.config_),
      next_ring_(other.next_ring_),
      collective_taken_(other.collective_taken_) {
  // Only the beacon-less in-process singleton is ever moved.
  other.arena_ = nullptr;
}

ShmTransport::~ShmTransport() {
  stop_.store(true, std::memory_order_release);
  if (beacon_.joinable()) beacon_.join();
}

ShmPeerView ShmTransport::attached_peers() const {
  ShmPeerView peers;
  if (arena_ != nullptr) {
    peers.abort = &arena_->abort_block();
    peers.ranks = arena_->rank_states();
    peers.world = arena_->world();
    peers.self = self_rank_;
  }
  return peers;
}

std::unique_ptr<Mailbox> ShmTransport::make_mailbox(std::size_t capacity,
                                                    std::chrono::milliseconds timeout) {
  if (arena_ == nullptr) {
    auto region = ShmMapping::create(shm_ring_region_bytes(kInProcessRingBytes));
    VOCAB_CHECK(region != nullptr,
                "shm transport unavailable: anonymous shared mmap failed on this platform");
    ShmRingView view = shm_map_ring(region->data(), kInProcessRingBytes);
    shm_init_ring(view, kInProcessRingBytes);
    return std::make_unique<ShmMailbox>(capacity, timeout, TransportConfig::from_env(), view,
                                        ShmPeerView{}, std::move(region));
  }
  VOCAB_CHECK(next_ring_ < arena_->num_mailboxes(),
              "shm arena has " << arena_->num_mailboxes()
                               << " mailboxes, attempted to create one more — trainer "
                                  "construction order must match the arena layout");
  ShmRingView view = arena_->ring(next_ring_++);
  return std::make_unique<ShmMailbox>(capacity, timeout, config_, view, attached_peers(),
                                      nullptr);
}

std::unique_ptr<Collective> ShmTransport::make_collective(int world_size,
                                                          std::chrono::milliseconds timeout) {
  if (arena_ == nullptr) {
    const std::size_t bytes = shm_collective_region_bytes(world_size, kInProcessSlotBytes);
    auto region = ShmMapping::create(bytes);
    VOCAB_CHECK(region != nullptr,
                "shm transport unavailable: anonymous shared mmap failed on this platform");
    ShmCollectiveView view = shm_map_collective(region->data(), world_size, kInProcessSlotBytes);
    shm_init_collective(view);
    return std::make_unique<ShmCollective>(world_size, timeout, TransportConfig::from_env(),
                                           view, ShmPeerView{}, std::move(region));
  }
  VOCAB_CHECK(!collective_taken_,
              "shm arena holds one collective region and it is already taken");
  VOCAB_CHECK(world_size == arena_->world(), "shm collective world " << world_size
                                                                     << " vs arena world "
                                                                     << arena_->world());
  collective_taken_ = true;
  return std::make_unique<ShmCollective>(world_size, timeout, config_, arena_->collective(),
                                         attached_peers(), nullptr);
}

long long ShmTransport::heartbeat_age_ms(int rank) const {
  return attached_peers().heartbeat_age_ms(rank);
}

void ShmTransport::set_heartbeat_suppressed(std::function<bool()> fn) {
  std::lock_guard lock(mutex_);
  suppressed_ = std::move(fn);
}

void ShmTransport::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  token_ = std::move(token);
}

void ShmTransport::mark_done() {
  if (arena_ != nullptr) {
    arena_->rank_state(self_rank_).done.store(1, std::memory_order_release);
  }
}

void ShmTransport::beacon_loop() {
  ShmAbortBlock& abort = arena_->abort_block();
  ShmRankState* ranks = arena_->rank_states();
  const int world = arena_->world();
  while (!stop_.load(std::memory_order_acquire)) {
    std::function<bool()> suppressed;
    std::shared_ptr<AbortToken> token;
    {
      std::lock_guard lock(mutex_);
      suppressed = suppressed_;
      token = token_;
    }
    if (!(suppressed && suppressed())) {
      ranks[self_rank_].heartbeat_ns.store(shm_monotonic_ns(), std::memory_order_release);
    }
    // Mirror local abort -> arena and arena abort -> local token, so every
    // process's compute loop (which polls only its own token) stops promptly.
    if (token != nullptr && token->aborted() && !abort.aborted()) {
      const AbortReason reason = token->reason();
      abort.post(reason.device, reason.op_id, reason.what.c_str());
    }
    if (abort.aborted() && token != nullptr && !token->aborted()) {
      token->abort(reason_from_arena(abort));
    }
    // Dead-peer detection: a rank that has stamped at least once, is not
    // done, and has been silent past the timeout is declared dead, which
    // converts real process death into the coordinated abort protocol.
    const std::int64_t now = shm_monotonic_ns();
    for (int r = 0; r < world; ++r) {
      if (r == self_rank_) continue;
      ShmRankState& state = ranks[r];
      if (state.dead.load(std::memory_order_acquire) != 0 ||
          state.done.load(std::memory_order_acquire) != 0) {
        continue;
      }
      const std::int64_t hb = state.heartbeat_ns.load(std::memory_order_acquire);
      if (hb == 0) continue;
      const std::int64_t silent_ms = (now - hb) / 1000000;
      if (silent_ms > config_.heartbeat_timeout.count()) {
        state.dead.store(1, std::memory_order_release);
        const std::string what = "rank " + std::to_string(r) + " heartbeat lost (silent " +
                                 std::to_string(silent_ms) + " ms > timeout " +
                                 std::to_string(config_.heartbeat_timeout.count()) + " ms)";
        abort.post(r, -1, what.c_str());
        if (token != nullptr) token->abort({r, -1, what});
      }
    }
    // Sleep one heartbeat period in short slices so destruction is prompt.
    auto remaining = config_.heartbeat_period;
    while (remaining.count() > 0 && !stop_.load(std::memory_order_acquire)) {
      const auto slice = std::min<std::chrono::milliseconds>(remaining, kAbortPollInterval);
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

}  // namespace vocab::transport
