#pragma once

// Shared-memory multi-process transport backend.
//
// Two modes of the same machinery:
//
//   in-process  (ShmTransport::in_process) — every make_mailbox /
//     make_collective owns a private anonymous shared mapping. No fork, no
//     heartbeats; this is what VOCAB_TRANSPORT=shm selects for an ordinary
//     PipelineTrainer and it must be loss-bit-identical to the threads
//     backend (the reduce order and float ops are the same code).
//
//   attached    (ShmTransport::attach) — the transport binds to a pre-fork
//     ShmArena as one rank of a worker group. make_collective consumes the
//     arena's single collective region; make_mailbox consumes ring i on the
//     i-th call — deterministic because every worker builds the identical
//     trainer in the identical order. A beacon/monitor thread stamps this
//     rank's heartbeat, mirrors the local AbortToken into the arena abort
//     block (and back), and declares a silent peer dead after the configured
//     heartbeat timeout, converting real process death into the same
//     coordinated abort the in-process fault machinery already uses.
//
// Blocking waits have no condition variables (nothing to wake a process whose
// peer was SIGKILL'd): they spin with backoff_delay() — exponential backoff
// capped at kAbortPollInterval with deterministic jitter — re-checking the
// local token, the arena abort block, peer death, and the deadline each lap.

#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "transport/shm_region.h"
#include "transport/transport.h"

namespace vocab::transport {

/// Shared failure-detection state a mailbox/collective consults while
/// blocked. All pointers null in in-process mode (no peers to die).
struct ShmPeerView {
  ShmAbortBlock* abort = nullptr;
  ShmRankState* ranks = nullptr;
  int world = 0;
  int self = -1;

  [[nodiscard]] bool attached() const { return abort != nullptr; }
  /// Index of a rank flagged dead, or -1.
  [[nodiscard]] int dead_rank() const;
  /// ms since `rank` last stamped its heartbeat, or -1 if never/unavailable.
  [[nodiscard]] long long heartbeat_age_ms(int rank) const;
  /// ", transport 'shm' ..." diagnostic suffix for DeadlockError texts.
  [[nodiscard]] std::string diag_suffix() const;
};

/// Bounded tag-addressed mailbox over a shared ring buffer. Writers serialize
/// records under the ring spinlock; the (single) reader eagerly drains the
/// ring into a process-local pending queue so recv_tag can deliver out of
/// order, while the shared `occupancy` counter keeps Channel's bounded
/// backpressure semantics (a drained-but-undelivered message still counts).
class ShmMailbox final : public Mailbox {
 public:
  ShmMailbox(std::size_t capacity, std::chrono::milliseconds timeout, TransportConfig config,
             ShmRingView ring, ShmPeerView peers, std::unique_ptr<ShmMapping> owned_region);

  void set_abort_token(std::shared_ptr<AbortToken> token) override;
  void send(std::string tag, Tensor payload) override;
  Message recv() override;
  Tensor recv_tag(const std::string& tag) override;
  void clear() override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  /// Move every complete record currently in the ring into pending_.
  void drain_ring() const;
  /// Shared blocking-loop bookkeeping: abort token / arena abort / peer death
  /// / deadline checks, then one backoff sleep. Throws instead of returning
  /// when the wait must end.
  void check_or_backoff(const char* verb, const std::string& tag,
                        std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point deadline, int* attempt) const;
  [[nodiscard]] std::string describe_locked() const;

  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  ShmRingView ring_;
  ShmPeerView peers_;
  std::unique_ptr<ShmMapping> owned_region_;  ///< in-process mode only

  mutable std::mutex mutex_;  ///< guards pending_ and reader-side ring state
  mutable std::deque<Message> pending_;
  std::shared_ptr<AbortToken> abort_;
};

/// Rendezvous collective over a shared collective region. The protocol and
/// the leader-side reduce order mirror ThreadCollective exactly (slot 0 is
/// the accumulator, ranks 1..n-1 reduced in order) so results are
/// bit-identical across backends.
class ShmCollective final : public Collective {
 public:
  ShmCollective(int world_size, std::chrono::milliseconds timeout, TransportConfig config,
                ShmCollectiveView view, ShmPeerView peers,
                std::unique_ptr<ShmMapping> owned_region);

  [[nodiscard]] int world_size() const override { return world_; }
  void set_abort_token(std::shared_ptr<AbortToken> token) override;
  void barrier(int rank, const std::string& tag) override;
  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) override;
  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag) override;
  void broadcast(int rank, int root, Tensor& data, const std::string& tag) override;
  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag) override;
  [[nodiscard]] std::uint64_t completed_collectives() const override;
  [[nodiscard]] std::vector<int> waiting_ranks() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  void check_rank(int rank) const;
  /// Full rendezvous: join, publish `input` into slot[rank], leader runs
  /// `leader_fn` (deserialize slots -> compute -> serialize into result
  /// area), every rank then runs `deliver_fn` on the result area.
  void rendezvous(int rank, const std::string& tag, const char* kind, const Tensor* input,
                  const std::function<void()>& leader_fn,
                  const std::function<void(const std::byte*)>& deliver_fn);

  const int world_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  ShmCollectiveView view_;
  ShmPeerView peers_;
  std::unique_ptr<ShmMapping> owned_region_;  ///< in-process mode only

  mutable std::mutex mutex_;  ///< guards abort_ only (shared state is atomic)
  std::shared_ptr<AbortToken> abort_;
};

/// Factory + liveness beacon for the shared-memory backend.
class ShmTransport final : public Transport {
 public:
  /// Private-region mode: no arena, no heartbeats. Used by the
  /// VOCAB_TRANSPORT=shm singleton.
  [[nodiscard]] static ShmTransport in_process();
  /// Bind to `arena` as `self_rank` and start the beacon/monitor thread.
  /// The arena must outlive the transport.
  [[nodiscard]] static std::unique_ptr<ShmTransport> attach(ShmArena& arena, int self_rank,
                                                            TransportConfig config);
  ~ShmTransport() override;
  ShmTransport(ShmTransport&&) noexcept;
  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  [[nodiscard]] TransportKind kind() const override { return TransportKind::kShm; }
  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] std::unique_ptr<Mailbox> make_mailbox(
      std::size_t capacity, std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::unique_ptr<Collective> make_collective(
      int world_size, std::chrono::milliseconds timeout) override;
  [[nodiscard]] long long heartbeat_age_ms(int rank) const override;

  /// Fault-injection hook: while `fn` returns true the beacon stops stamping
  /// this rank's heartbeat (simulates a live-but-silent peer).
  void set_heartbeat_suppressed(std::function<bool()> fn);
  /// Token the beacon mirrors into/out of the arena abort block. Channels
  /// and groups check the arena directly, but mirroring lets compute ops
  /// (which poll only the local token) stop promptly too.
  void set_abort_token(std::shared_ptr<AbortToken> token);
  /// Mark this rank cleanly finished (suppresses dead-peer detection on it).
  void mark_done();

 private:
  ShmTransport() = default;
  ShmTransport(ShmArena* arena, int self_rank, TransportConfig config);
  [[nodiscard]] ShmPeerView attached_peers() const;
  void beacon_loop();

  ShmArena* arena_ = nullptr;  ///< null in in-process mode
  int self_rank_ = -1;
  TransportConfig config_ = {};
  std::size_t next_ring_ = 0;
  bool collective_taken_ = false;

  mutable std::mutex mutex_;
  std::function<bool()> suppressed_;
  std::shared_ptr<AbortToken> token_;
  std::atomic<bool> stop_{false};
  std::thread beacon_;
};

}  // namespace vocab::transport
