#include "transport/tcp_supervisor.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/env.h"
#include "common/error.h"

namespace vocab::transport {

namespace {

AbortReason reason_from_arena(const ShmAbortBlock& block) {
  AbortReason reason;
  reason.device = block.device;
  reason.op_id = block.op_id;
  reason.what = block.what;
  return reason;
}

}  // namespace

const char* to_string(TcpLinkState state) {
  switch (state) {
    case TcpLinkState::kConnecting: return "connecting";
    case TcpLinkState::kConnected: return "connected";
    case TcpLinkState::kReconnecting: return "reconnecting";
    case TcpLinkState::kDead: return "dead";
    case TcpLinkState::kDone: return "done";
  }
  return "?";
}

TcpSupervisor::TcpSupervisor(ShmArena& arena, int self_rank, TransportConfig config,
                             std::shared_ptr<FaultInjector> injector)
    : arena_(arena),
      self_(self_rank),
      world_(arena.world()),
      config_(config),
      connect_timeout_(
          std::chrono::milliseconds(positive_int_from_env("VOCAB_TCP_CONNECT_TIMEOUT_MS", 5000))),
      chaos_(std::move(injector), self_rank, arena.world()) {
  VOCAB_CHECK(self_ >= 0 && self_ < world_,
              "tcp supervisor rank " << self_ << " out of range [0, " << world_ << ")");
  const auto port_base =
      static_cast<std::uint16_t>(int_from_env("VOCAB_TCP_PORT_BASE", 0, 0, 65000));
  listener_ = tcp_listen_loopback(
      port_base == 0 ? 0 : static_cast<std::uint16_t>(port_base + self_));
  VOCAB_CHECK(listener_.fd >= 0, "tcp transport: failed to bind a loopback listener for rank "
                                     << self_ << " (VOCAB_TCP_PORT_BASE "
                                     << (port_base == 0 ? "ephemeral" : std::to_string(port_base))
                                     << ")");
  arena_.rank_state(self_).tcp_port.store(listener_.port, std::memory_order_release);
  arena_.rank_state(self_).heartbeat_ns.store(shm_monotonic_ns(), std::memory_order_release);

  links_.resize(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    links_[static_cast<std::size_t>(r)].peer = r;
    links_[static_cast<std::size_t>(r)].last_alive = std::chrono::steady_clock::now();
  }
  links_[static_cast<std::size_t>(self_)].state = TcpLinkState::kDone;  // no self link

  thread_ = std::thread([this] { supervisor_loop(); });
}

TcpSupervisor::~TcpSupervisor() {
  // Clean completion lingers until every live peer has ACKED what we sent
  // (empty wbuf AND empty outbox). Closing with frames still in flight makes
  // the receiver's last iteration a lottery: our close-with-unread-heartbeats
  // RSTs the connection, and the kernel may discard data already queued on
  // the receiver's side — canonically the final gather shards rank 0 still
  // needs after the faster ranks finish. Abort/failure paths never set done_
  // and tear down immediately. The supervisor thread keeps flushing and
  // reading acks throughout the linger (stop_ is not yet set); the budget is
  // one heartbeat timeout — past that the peer would be declared dead anyway.
  const bool linger = [&] {
    std::lock_guard lock(mutex_);
    return done_;
  }();
  if (linger) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::max(config_.heartbeat_timeout, std::chrono::milliseconds(250));
    while (std::chrono::steady_clock::now() < deadline) {
      bool drained = true;
      {
        std::lock_guard lock(mutex_);
        if (arena_.abort_block().aborted()) break;
        for (const Link& link : links_) {
          if (link.peer == self_) continue;
          if (link.state == TcpLinkState::kDead || link.state == TcpLinkState::kDone) continue;
          if (arena_.rank_state(link.peer).done.load(std::memory_order_acquire) != 0) continue;
          if (arena_.rank_state(link.peer).dead.load(std::memory_order_acquire) != 0) continue;
          if (!link.wbuf.empty() || !link.outbox.empty()) drained = false;
        }
      }
      if (drained) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  for (Link& link : links_) {
    close_fd(&link.fd);
    close_fd(&link.connect_fd);
  }
  for (PendingAccept& p : pending_accepts_) close_fd(&p.fd);
  close_fd(&listener_.fd);
}

void TcpSupervisor::establish() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + connect_timeout_;
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      lap_locked(/*beacon=*/false);
      bool all = true;
      for (const Link& link : links_) {
        if (link.peer == self_) continue;
        if (link.state != TcpLinkState::kConnected) all = false;
      }
      if (all) {
        established_ = true;
        const auto now = std::chrono::steady_clock::now();
        for (Link& link : links_) link.last_alive = now;
        return;
      }
    }
    if (arena_.abort_block().aborted()) {
      throw AbortedError(reason_from_arena(arena_.abort_block()),
                         "tcp mesh rendezvous interrupted on rank " + std::to_string(self_));
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      VOCAB_FAIL("tcp mesh rendezvous timed out on rank "
                 << self_ << " after " << elapsed
                 << " ms (VOCAB_TCP_CONNECT_TIMEOUT_MS): " << diag_suffix());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// Supervisor thread
// ---------------------------------------------------------------------------

void TcpSupervisor::supervisor_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard lock(mutex_);
      lap_locked(/*beacon=*/true);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void TcpSupervisor::lap_locked(bool beacon) {
  const auto now = std::chrono::steady_clock::now();
  accept_locked();
  for (Link& link : links_) {
    if (link.peer == self_) continue;
    if (link.state == TcpLinkState::kDead) continue;
    // kDone still drains: the peer's done flag can be observed BEFORE its
    // final frames are read off the socket (canonically the last iteration's
    // gather shards), and a frame stranded in the kernel buffer is a recv
    // deadlock for our main thread. Done only cancels failure detection and
    // reconnection — not the read/flush of what is already in flight.
    if (link.state != TcpLinkState::kDone) connect_progress_locked(link);
    if (link.fd >= 0 && !link.frozen(now)) {
      read_link_locked(link);
      if (link.fd >= 0) flush_link_locked(link);
    }
  }
  if (!beacon) return;

  // Arena beacon duties (the tcp worker runs no shm beacon — this thread IS
  // the beacon): stamp the heartbeat and mirror token <-> arena abort.
  const bool suppressed = suppressed_ && suppressed_();
  if (!suppressed) {
    arena_.rank_state(self_).heartbeat_ns.store(shm_monotonic_ns(), std::memory_order_release);
  }
  ShmAbortBlock& abort = arena_.abort_block();
  if (token_ != nullptr && token_->aborted() && !abort.aborted()) {
    const AbortReason reason = token_->reason();
    abort.post(reason.device, reason.op_id, reason.what.c_str());
  }
  if (abort.aborted() && token_ != nullptr && !token_->aborted()) {
    token_->abort(reason_from_arena(abort));
  }

  apply_chaos_locked();
  if (!suppressed) send_heartbeats_locked(now);
  // A rank that marked done resigns from the failure detector: peers rightly
  // stop heartbeating to a done rank, so the silence it then observes is
  // protocol, not death — and with its main thread already finished it could
  // only convict the survivors (canonically rank 0, still draining the final
  // gather), never act on the verdict itself.
  if (established_ && !done_) death_checks_locked(now);
}

void TcpSupervisor::accept_locked() {
  if (listener_.fd < 0) return;
  for (;;) {
    const int fd = tcp_accept(listener_.fd);
    if (fd < 0) break;
    PendingAccept pending;
    pending.fd = fd;
    pending.since = std::chrono::steady_clock::now();
    pending_accepts_.push_back(std::move(pending));
  }
  // Progress half-open accepts: the first frame must be the peer's Hello.
  for (std::size_t i = 0; i < pending_accepts_.size();) {
    PendingAccept& p = pending_accepts_[i];
    bool drop = !tcp_read_available(p.fd, &p.inbuf);
    if (!drop && !p.inbuf.empty()) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeStatus status =
          decode_frame(p.inbuf.data(), p.inbuf.size(), &frame, &consumed, &error);
      if (status == DecodeStatus::kFrame && frame.kind == FrameKind::kHello &&
          frame.payload.size() >= 12) {
        PayloadReader reader(frame.payload);
        const int peer = static_cast<int>(reader.u32());
        if (peer >= 0 && peer < world_ && peer != self_) {
          Link& link = links_[static_cast<std::size_t>(peer)];
          attach_fd_locked(link, p.fd);
          p.fd = -1;
          link.inbuf.assign(p.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed),
                            p.inbuf.end());
          handle_hello_locked(link, frame);
          pending_accepts_.erase(pending_accepts_.begin() + static_cast<std::ptrdiff_t>(i));
          continue;
        }
        drop = true;
      } else if (status == DecodeStatus::kCorrupt) {
        drop = true;
      }
    }
    if (!drop &&
        std::chrono::steady_clock::now() - p.since > std::chrono::seconds(10)) {
      drop = true;  // a connection that never says Hello is garbage
    }
    if (drop) {
      close_fd(&p.fd);
      pending_accepts_.erase(pending_accepts_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void TcpSupervisor::connect_progress_locked(Link& link) {
  if (self_ > link.peer) return;  // the lower rank of each pair connects
  if (link.state == TcpLinkState::kConnected) return;
  if (arena_.rank_state(link.peer).done.load(std::memory_order_acquire) != 0) return;
  const auto now = std::chrono::steady_clock::now();

  if (link.fd >= 0 && link.hello_sent && !link.hello_received) {
    // Our Hello is out on an attached socket and the peer's reply is in
    // flight. Starting another connect now would attach over this fd and
    // close it — orphaning the reply, forcing the peer to tear down and
    // re-accept, and (since attach also resets the retry counters) the cycle
    // can entrain into a livelock that burns the whole rendezvous budget.
    // Wait out the handshake grace; only on expiry tear down and retry.
    if (now < link.handshake_deadline) return;
    link_failure_locked(link, "hello handshake timed out");
    return;
  }

  if (link.connect_fd >= 0) {
    pollfd pfd{link.connect_fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, 0);
    if (pr <= 0) return;  // handshake still in flight
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(link.connect_fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err == 0) {
      tcp_tune(link.connect_fd);
      const int fd = link.connect_fd;
      link.connect_fd = -1;
      attach_fd_locked(link, fd);
      // Connector speaks first: Hello carries our rank + cumulative ack so
      // the acceptor knows who we are and what to retransmit.
      PayloadWriter hello;
      hello.u32(static_cast<std::uint32_t>(self_));
      hello.u64(link.seq_in);
      Frame frame;
      frame.kind = FrameKind::kHello;
      frame.payload = hello.take();
      encode_frame(frame, &link.wbuf);
      link.hello_sent = true;
      flush_link_locked(link);
      return;
    }
    close_fd(&link.connect_fd);
    ++link.connect_attempts;
    link.next_connect =
        now + std::chrono::duration_cast<std::chrono::milliseconds>(
                  backoff_delay(config_, link.connect_attempts,
                                static_cast<std::uint64_t>(self_ * 131 + link.peer)));
    return;
  }

  if (now < link.next_connect) return;
  const auto port_base =
      static_cast<std::uint16_t>(int_from_env("VOCAB_TCP_PORT_BASE", 0, 0, 65000));
  std::uint16_t port = 0;
  if (port_base != 0) {
    port = static_cast<std::uint16_t>(port_base + link.peer);
  } else {
    port = static_cast<std::uint16_t>(
        arena_.rank_state(link.peer).tcp_port.load(std::memory_order_acquire));
    if (port == 0) return;  // peer has not advertised its listener yet
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    link.connect_fd = fd;
    return;
  }
  ::close(fd);
  ++link.connect_attempts;
  link.next_connect = now + std::chrono::duration_cast<std::chrono::milliseconds>(
                                backoff_delay(config_, link.connect_attempts,
                                              static_cast<std::uint64_t>(self_ * 131 + link.peer)));
}

void TcpSupervisor::attach_fd_locked(Link& link, int fd) {
  close_fd(&link.fd);
  close_fd(&link.connect_fd);
  link.fd = fd;
  link.inbuf.clear();
  link.wbuf.clear();  // partial frames of the old stream are dead; outbox is truth
  link.hello_sent = false;
  link.hello_received = false;
  link.fail_after_flush = false;
  link.connect_attempts = 0;
  link.last_alive = std::chrono::steady_clock::now();
  link.handshake_deadline =
      link.last_alive + std::max(config_.heartbeat_timeout, std::chrono::milliseconds(250));
}

void TcpSupervisor::handle_hello_locked(Link& link, const Frame& frame) {
  PayloadReader reader(frame.payload);
  (void)reader.u32();  // peer rank — already routed
  const std::uint64_t acked = reader.u64();
  // Drop everything the peer has already accepted, replay the rest in order.
  while (!link.outbox.empty() && link.outbox.front().seq <= acked) link.outbox.pop_front();
  for (const OutFrame& out : link.outbox) {
    link.wbuf.insert(link.wbuf.end(), out.bytes.begin(), out.bytes.end());
  }
  link.hello_received = true;
  link.last_alive = std::chrono::steady_clock::now();
  if (!link.hello_sent) {
    // Acceptor side: reply with our own Hello before any data.
    PayloadWriter hello;
    hello.u32(static_cast<std::uint32_t>(self_));
    hello.u64(link.seq_in);
    Frame reply;
    reply.kind = FrameKind::kHello;
    reply.payload = hello.take();
    std::vector<std::byte> bytes;
    encode_frame(reply, &bytes);
    link.wbuf.insert(link.wbuf.begin(), bytes.begin(), bytes.end());
    link.hello_sent = true;
  }
  if (link.hello_sent && link.hello_received) {
    const bool was_reconnect = link.state == TcpLinkState::kReconnecting;
    link.state = TcpLinkState::kConnected;
    if (was_reconnect) ++link.reconnects;
    flush_link_locked(link);
  }
}

void TcpSupervisor::read_link_locked(Link& link) {
  if (link.fd < 0) return;
  if (!tcp_read_available(link.fd, &link.inbuf)) {
    link_failure_locked(link, "connection closed by peer");
    return;
  }
  std::size_t offset = 0;
  while (offset < link.inbuf.size()) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeStatus status = decode_frame(link.inbuf.data() + offset,
                                             link.inbuf.size() - offset, &frame, &consumed,
                                             &error);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kCorrupt) {
      link.inbuf.clear();
      link_failure_locked(link, "corrupt frame: " + error);
      return;
    }
    offset += consumed;
    link.last_alive = std::chrono::steady_clock::now();
    try {
      dispatch_locked(link, frame);
    } catch (const std::exception& e) {
      link.inbuf.clear();
      link_failure_locked(link, std::string("frame dispatch failed: ") + e.what());
      return;
    }
    if (link.fd < 0) return;  // dispatch tore the link down
  }
  link.inbuf.erase(link.inbuf.begin(), link.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
}

void TcpSupervisor::dispatch_locked(Link& link, const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kHello:
      handle_hello_locked(link, frame);
      return;
    case FrameKind::kHeartbeat: {
      // seq carries the peer's cumulative ack — prune the outbox.
      while (!link.outbox.empty() && link.outbox.front().seq <= frame.seq) {
        link.outbox.pop_front();
      }
      return;
    }
    case FrameKind::kData: {
      if (frame.seq <= link.seq_in) return;  // duplicate (replay or chaos)
      link.seq_in = frame.seq;
      PayloadReader reader(frame.payload);
      const std::uint32_t mailbox = reader.u32();
      Message msg;
      msg.tag = reader.str();
      msg.payload = reader.tensor();
      if (mailbox >= mailboxes_.size()) mailboxes_.resize(mailbox + 1);
      mailboxes_[mailbox].push_back(std::move(msg));
      return;
    }
    case FrameKind::kCollJoin: {
      if (frame.seq <= link.seq_in) return;
      link.seq_in = frame.seq;
      PayloadReader reader(frame.payload);
      const std::uint64_t index = reader.u64();
      CollJoin join;
      join.op = reader.u32();
      join.root = reader.u32();
      join.tag = reader.str();
      join.data = reader.tensor();
      coll_joins_[index * static_cast<std::uint64_t>(world_) +
                  static_cast<std::uint64_t>(link.peer)] = std::move(join);
      return;
    }
    case FrameKind::kCollResult: {
      if (frame.seq <= link.seq_in) return;
      link.seq_in = frame.seq;
      PayloadReader reader(frame.payload);
      const std::uint64_t index = reader.u64();
      coll_results_[index] = reader.tensor();
      return;
    }
  }
}

void TcpSupervisor::flush_link_locked(Link& link) {
  if (link.fd < 0 || link.frozen(std::chrono::steady_clock::now())) return;
  while (!link.wbuf.empty()) {
    const ssize_t n = ::send(link.fd, link.wbuf.data(), link.wbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      link.wbuf.erase(link.wbuf.begin(), link.wbuf.begin() + n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    link_failure_locked(link, std::string("socket write failed: ") + std::strerror(errno));
    return;
  }
  if (link.fail_after_flush) {
    link.fail_after_flush = false;
    link_failure_locked(link, "chaos: link closed after truncated frame");
  }
}

void TcpSupervisor::link_failure_locked(Link& link, const std::string& why) {
  close_fd(&link.fd);
  close_fd(&link.connect_fd);
  link.wbuf.clear();
  link.inbuf.clear();
  link.hello_sent = false;
  link.hello_received = false;
  link.fail_after_flush = false;
  if (link.state == TcpLinkState::kDead || link.state == TcpLinkState::kDone) return;
  link.state = TcpLinkState::kReconnecting;
  link.next_connect = std::chrono::steady_clock::now();
  (void)why;  // recorded implicitly via reconnect counters / death reasons
}

void TcpSupervisor::send_reliable_locked(Link& link, FrameKind kind,
                                         std::vector<std::byte> payload) {
  Frame frame;
  frame.kind = kind;
  frame.seq = ++link.seq_out;
  frame.payload = std::move(payload);
  std::vector<std::byte> bytes;
  encode_frame(frame, &bytes);
  link.outbox.push_back(OutFrame{frame.seq, bytes});

  if (link.fail_after_flush) return;  // stream is being torn down deliberately
  if (link.truncate_next) {
    link.truncate_next = false;
    // Half a frame on the wire, then a hard close: the receiver must park the
    // prefix as kNeedMore, hit EOF, and recover via reconnect + replay.
    link.wbuf.insert(link.wbuf.end(), bytes.begin(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(bytes.size() / 2));
    link.fail_after_flush = true;
    flush_link_locked(link);
    return;
  }
  link.wbuf.insert(link.wbuf.end(), bytes.begin(), bytes.end());
  if (link.duplicate_next) {
    link.duplicate_next = false;
    // Same bytes, same seq, twice on the wire: the receiver's seq window must
    // swallow the echo.
    link.wbuf.insert(link.wbuf.end(), bytes.begin(), bytes.end());
  }
  if (link.fd >= 0) flush_link_locked(link);
}

void TcpSupervisor::send_heartbeats_locked(std::chrono::steady_clock::time_point now) {
  if (now - last_beat_ < config_.heartbeat_period) return;
  last_beat_ = now;
  for (Link& link : links_) {
    if (link.peer == self_) continue;
    // kDone links still get beats while their socket lives: the beat carries
    // the cumulative ack that prunes the done peer's outbox, which is exactly
    // what its destructor's drain linger is waiting on. If the peer already
    // closed, the send fails and link_failure_locked retires the fd (kDone is
    // sticky there, so no reconnect storm).
    const bool beatable = link.state == TcpLinkState::kConnected ||
                          (link.state == TcpLinkState::kDone && link.fd >= 0);
    if (!beatable) continue;
    if (link.frozen(now)) continue;
    Frame frame;
    frame.kind = FrameKind::kHeartbeat;
    frame.seq = link.seq_in;  // cumulative ack rides along
    encode_frame(frame, &link.wbuf);
    flush_link_locked(link);
  }
}

void TcpSupervisor::death_checks_locked(std::chrono::steady_clock::time_point now) {
  for (Link& link : links_) {
    if (link.peer == self_) continue;
    if (link.state == TcpLinkState::kDead || link.state == TcpLinkState::kDone) continue;
    ShmRankState& peer_state = arena_.rank_state(link.peer);
    if (peer_state.done.load(std::memory_order_acquire) != 0) {
      link.state = TcpLinkState::kDone;
      continue;
    }
    if (peer_state.dead.load(std::memory_order_acquire) != 0) {
      // Someone else (coordinator waitpid, or a peer's supervisor) already
      // declared this rank dead and posted the arena abort; just stop
      // supervising the link — no local escalation needed.
      link.state = TcpLinkState::kDead;
      continue;
    }
    const auto silent_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - link.last_alive).count();
    if (silent_ms > config_.heartbeat_timeout.count()) {
      declare_dead_locked(link, "rank " + std::to_string(link.peer) +
                                    " heartbeat lost over tcp (silent " +
                                    std::to_string(silent_ms) + " ms > timeout " +
                                    std::to_string(config_.heartbeat_timeout.count()) + " ms)");
      continue;
    }
    if (link.connect_attempts > config_.retry_max) {
      declare_dead_locked(link, "rank " + std::to_string(link.peer) + " unreachable (" +
                                    std::to_string(link.connect_attempts) +
                                    " reconnect attempts > VOCAB_RETRY_MAX " +
                                    std::to_string(config_.retry_max) + ")");
    }
  }
}

void TcpSupervisor::declare_dead_locked(Link& link, const std::string& why) {
  link.state = TcpLinkState::kDead;
  close_fd(&link.fd);
  close_fd(&link.connect_fd);
  if (dead_peer_ < 0) {
    dead_peer_ = link.peer;
    dead_reason_ = why;
  }
  arena_.rank_state(link.peer).dead.store(1, std::memory_order_release);
  arena_.abort_block().post(link.peer, -1, why.c_str());
  if (token_ != nullptr) token_->abort({link.peer, -1, why});
}

void TcpSupervisor::apply_chaos_locked() {
  for (;;) {
    const std::optional<ChaosEvent> event = chaos_.poll();
    if (!event.has_value()) return;
    Link& link = links_[static_cast<std::size_t>(event->peer)];
    switch (event->kind) {
      case FaultKind::DropConnection:
        link_failure_locked(link, "chaos: drop-connection");
        break;
      case FaultKind::PartitionPeer:
        link.partitioned = true;
        break;
      case FaultKind::DuplicateFrame:
        link.duplicate_next = true;
        break;
      case FaultKind::TruncateFrame:
        link.truncate_next = true;
        break;
      case FaultKind::StallSocket:
        link.stall_until = std::chrono::steady_clock::now() + event->delay;
        break;
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void TcpSupervisor::send_data(int peer, std::uint32_t mailbox, const std::string& tag,
                              const Tensor& t) {
  PayloadWriter payload;
  payload.u32(mailbox);
  payload.str(tag);
  payload.tensor(t);
  std::lock_guard lock(mutex_);
  VOCAB_CHECK(peer >= 0 && peer < world_ && peer != self_,
              "tcp send_data peer " << peer << " out of range for world " << world_);
  send_reliable_locked(links_[static_cast<std::size_t>(peer)], FrameKind::kData,
                       payload.take());
}

void TcpSupervisor::enqueue_local(std::uint32_t mailbox, std::string tag, Tensor t) {
  std::lock_guard lock(mutex_);
  if (mailbox >= mailboxes_.size()) mailboxes_.resize(mailbox + 1);
  mailboxes_[mailbox].push_back(Message{std::move(tag), std::move(t)});
}

bool TcpSupervisor::try_pop(std::uint32_t mailbox, Message* out) {
  std::lock_guard lock(mutex_);
  if (mailbox >= mailboxes_.size() || mailboxes_[mailbox].empty()) return false;
  *out = std::move(mailboxes_[mailbox].front());
  mailboxes_[mailbox].pop_front();
  return true;
}

bool TcpSupervisor::try_pop_tag(std::uint32_t mailbox, const std::string& tag, Tensor* out) {
  std::lock_guard lock(mutex_);
  if (mailbox >= mailboxes_.size()) return false;
  auto& pending = mailboxes_[mailbox];
  const auto it = std::find_if(pending.begin(), pending.end(),
                               [&](const Message& m) { return m.tag == tag; });
  if (it == pending.end()) return false;
  *out = std::move(it->payload);
  pending.erase(it);
  return true;
}

std::size_t TcpSupervisor::mailbox_size(std::uint32_t mailbox) const {
  std::lock_guard lock(mutex_);
  return mailbox < mailboxes_.size() ? mailboxes_[mailbox].size() : 0;
}

std::size_t TcpSupervisor::clear_mailbox(std::uint32_t mailbox) {
  std::lock_guard lock(mutex_);
  if (mailbox >= mailboxes_.size()) return 0;
  const std::size_t n = mailboxes_[mailbox].size();
  mailboxes_[mailbox].clear();
  return n;
}

std::string TcpSupervisor::describe_mailbox(std::uint32_t mailbox, std::size_t capacity) const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  const std::size_t n = mailbox < mailboxes_.size() ? mailboxes_[mailbox].size() : 0;
  os << "occupancy " << n << "/" << capacity << ", queued tags [";
  if (mailbox < mailboxes_.size()) {
    const auto& pending = mailboxes_[mailbox];
    constexpr std::size_t kMaxListed = 16;
    for (std::size_t i = 0; i < std::min(pending.size(), kMaxListed); ++i) {
      if (i > 0) os << ", ";
      os << "'" << pending[i].tag << "'";
    }
    if (pending.size() > kMaxListed) os << ", ... +" << pending.size() - kMaxListed << " more";
  }
  os << "]";
  return os.str();
}

void TcpSupervisor::send_coll_join(std::uint64_t index, std::uint32_t op, std::uint32_t root,
                                   const std::string& tag, const Tensor& t) {
  PayloadWriter payload;
  payload.u64(index);
  payload.u32(op);
  payload.u32(root);
  payload.str(tag);
  payload.tensor(t);
  std::lock_guard lock(mutex_);
  send_reliable_locked(links_[0], FrameKind::kCollJoin, payload.take());
}

bool TcpSupervisor::try_pop_coll_join(std::uint64_t index, int peer, CollJoin* out) {
  std::lock_guard lock(mutex_);
  const std::uint64_t key =
      index * static_cast<std::uint64_t>(world_) + static_cast<std::uint64_t>(peer);
  const auto it = coll_joins_.find(key);
  if (it == coll_joins_.end()) return false;
  *out = std::move(it->second);
  coll_joins_.erase(it);
  return true;
}

void TcpSupervisor::send_coll_result(int peer, std::uint64_t index, const Tensor& t) {
  PayloadWriter payload;
  payload.u64(index);
  payload.tensor(t);
  std::lock_guard lock(mutex_);
  VOCAB_CHECK(peer >= 0 && peer < world_ && peer != self_,
              "tcp send_coll_result peer " << peer << " out of range");
  send_reliable_locked(links_[static_cast<std::size_t>(peer)], FrameKind::kCollResult,
                       payload.take());
}

bool TcpSupervisor::try_pop_coll_result(std::uint64_t index, Tensor* out) {
  std::lock_guard lock(mutex_);
  const auto it = coll_results_.find(index);
  if (it == coll_results_.end()) return false;
  *out = std::move(it->second);
  coll_results_.erase(it);
  return true;
}

void TcpSupervisor::pump() {
  std::lock_guard lock(mutex_);
  lap_locked(/*beacon=*/false);
}

// ---------------------------------------------------------------------------
// Failure view
// ---------------------------------------------------------------------------

void TcpSupervisor::throw_if_failed(const char* verb, const std::string& tag) const {
  int dead = -1;
  std::string reason;
  std::shared_ptr<AbortToken> token;
  {
    std::lock_guard lock(mutex_);
    dead = dead_peer_;
    reason = dead_reason_;
    token = token_;
  }
  // Dead-peer first: the rank whose supervisor made the call exits with the
  // distinct peer-dead code; bystanders woken by the mirrored arena abort
  // exit with the ordinary abort code.
  if (dead >= 0) {
    throw PeerDeadError(dead, std::string(verb) + " of '" + tag + "' failed: rank " +
                                  std::to_string(dead) + " is dead (" + reason + ")" +
                                  diag_suffix());
  }
  if (token != nullptr && token->aborted()) {
    throw AbortedError(token->reason(),
                       std::string(verb) + " of '" + tag + "' interrupted");
  }
  if (arena_.abort_block().aborted()) {
    throw AbortedError(reason_from_arena(arena_.abort_block()),
                       std::string(verb) + " of '" + tag + "' interrupted");
  }
}

std::string TcpSupervisor::diag_suffix() const {
  std::lock_guard lock(mutex_);
  return diag_suffix_locked();
}

std::string TcpSupervisor::diag_suffix_locked() const {
  std::ostringstream os;
  os << ", transport 'tcp', links [";
  bool first = true;
  for (const Link& link : links_) {
    if (link.peer == self_) continue;
    if (!first) os << ", ";
    first = false;
    os << "r" << link.peer << ":" << to_string(link.state);
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - link.last_alive)
                         .count();
    os << " hb " << age << "ms rc " << link.reconnects;
  }
  os << "]";
  return os.str();
}

std::vector<PeerStatus> TcpSupervisor::peer_status() const {
  std::lock_guard lock(mutex_);
  std::vector<PeerStatus> out;
  const auto now = std::chrono::steady_clock::now();
  for (const Link& link : links_) {
    if (link.peer == self_) continue;
    PeerStatus status;
    status.rank = link.peer;
    status.state = to_string(link.state);
    status.reconnects = link.reconnects;
    status.heartbeat_age_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - link.last_alive).count();
    out.push_back(std::move(status));
  }
  return out;
}

long long TcpSupervisor::heartbeat_age_ms(int rank) const {
  std::lock_guard lock(mutex_);
  if (rank < 0 || rank >= world_ || rank == self_) return -1;
  const Link& link = links_[static_cast<std::size_t>(rank)];
  return std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                               link.last_alive)
      .count();
}

int TcpSupervisor::dead_peer() const {
  std::lock_guard lock(mutex_);
  return dead_peer_;
}

void TcpSupervisor::set_abort_token(std::shared_ptr<AbortToken> token) {
  std::lock_guard lock(mutex_);
  token_ = std::move(token);
}

void TcpSupervisor::set_heartbeat_suppressed(std::function<bool()> fn) {
  std::lock_guard lock(mutex_);
  suppressed_ = std::move(fn);
}

void TcpSupervisor::mark_done() {
  std::lock_guard lock(mutex_);
  done_ = true;
  arena_.rank_state(self_).done.store(1, std::memory_order_release);
  // Push out anything still buffered so peers drain us before we vanish.
  for (Link& link : links_) {
    if (link.peer != self_ && link.fd >= 0) flush_link_locked(link);
  }
}

TcpSupervisor::Link* TcpSupervisor::link_for(int peer) {
  return &links_[static_cast<std::size_t>(peer)];
}

}  // namespace vocab::transport
