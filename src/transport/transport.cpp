#include "transport/transport.h"

#include <algorithm>

#include "common/env.h"
#include "common/error.h"
#include "transport/shm_transport.h"
#include "transport/tcp_transport.h"
#include "transport/thread_transport.h"

namespace vocab {

std::chrono::milliseconds default_comm_timeout() {
  // Read the environment every call: tests toggle VOCAB_COMM_TIMEOUT_MS
  // between channel constructions, and construction is not a hot path.
  // Parsing is strict — garbage or a non-positive value fails fast instead
  // of silently meaning "30 seconds" (common/env.h).
  return std::chrono::milliseconds(positive_int_from_env("VOCAB_COMM_TIMEOUT_MS", 30000));
}

namespace transport {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kThreads: return "threads";
    case TransportKind::kShm: return "shm";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

TransportKind transport_kind_from_env() {
  const std::string v =
      choice_from_env("VOCAB_TRANSPORT", "threads", {"threads", "shm", "tcp"});
  if (v == "shm") return TransportKind::kShm;
  if (v == "tcp") return TransportKind::kTcp;
  return TransportKind::kThreads;
}

TransportConfig TransportConfig::from_env() {
  TransportConfig config;
  config.heartbeat_period =
      std::chrono::milliseconds(positive_int_from_env("VOCAB_HEARTBEAT_MS", 100));
  config.heartbeat_timeout = std::chrono::milliseconds(
      positive_int_from_env("VOCAB_HEARTBEAT_TIMEOUT_MS", 1000));
  config.retry_max = static_cast<int>(positive_int_from_env("VOCAB_RETRY_MAX", 8, 1000000));
  config.retry_backoff =
      std::chrono::milliseconds(positive_int_from_env("VOCAB_RETRY_BACKOFF_MS", 2));
  // The full lattice (heartbeat < heartbeat timeout < comm timeout) is
  // checked here, once, for every supervising backend: a comm timeout at or
  // below the heartbeat timeout would report "deadlock" for what is actually
  // a dead peer the detector never got the time to name.
  validate_timeout_lattice(config.heartbeat_period.count(), config.heartbeat_timeout.count(),
                           default_comm_timeout().count());
  return config;
}

std::chrono::microseconds backoff_delay(const TransportConfig& config, int attempt,
                                        std::uint64_t seed) {
  const auto cap = std::chrono::duration_cast<std::chrono::microseconds>(kAbortPollInterval);
  auto base = std::chrono::duration_cast<std::chrono::microseconds>(config.retry_backoff);
  // Exponential growth, saturating at the abort-poll cap.
  for (int i = 0; i < attempt && base < cap; ++i) base *= 2;
  base = std::min(base, cap);
  // Deterministic jitter (splitmix64 over seed ^ attempt) in [0, base/4]:
  // concurrent retriers of the same lock decorrelate, and the same (seed,
  // attempt) always sleeps the same amount — reproducible soaks.
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const auto quarter = std::max<std::int64_t>(base.count() / 4, 1);
  return base + std::chrono::microseconds(static_cast<std::int64_t>(z % static_cast<std::uint64_t>(quarter)));
}

Transport& default_transport() {
  static ThreadTransport threads;
  static ShmTransport shm = ShmTransport::in_process();
  static TcpTransport tcp = TcpTransport::in_process();
  switch (transport_kind_from_env()) {
    case TransportKind::kShm: return shm;
    case TransportKind::kTcp: return tcp;
    case TransportKind::kThreads: break;
  }
  return threads;
}

}  // namespace transport
}  // namespace vocab
