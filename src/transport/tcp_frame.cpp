#include "transport/tcp_frame.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/crc32.h"
#include "common/error.h"
#include "fault/abort_token.h"

namespace vocab::transport {

namespace {

bool probe_loopback_sockets() {
  TcpListener listener = tcp_listen_loopback(0);
  if (listener.fd < 0) return false;
  int client = tcp_connect_loopback(listener.port, std::chrono::milliseconds(500));
  if (client < 0) {
    close_fd(&listener.fd);
    return false;
  }
  int server = -1;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  while (server < 0 && std::chrono::steady_clock::now() < deadline) {
    server = tcp_accept(listener.fd);
    if (server < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool ok = server >= 0;
  close_fd(&server);
  close_fd(&client);
  close_fd(&listener.fd);
  return ok;
}

}  // namespace

bool tcp_transport_supported() {
  static const bool supported = probe_loopback_sockets();
  return supported;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void tcp_tune(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#ifdef TCP_KEEPIDLE
  int idle = 1;  // start probing after 1s of silence — half-open links die fast
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
#endif
#ifdef TCP_KEEPINTVL
  int interval = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof(interval));
#endif
#ifdef TCP_KEEPCNT
  int count = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count));
#endif
}

void close_fd(int* fd) {
  if (fd == nullptr || *fd < 0) return;
  ::close(*fd);
  *fd = -1;
}

TcpListener tcp_listen_loopback(std::uint16_t port) {
  TcpListener listener;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return listener;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return listener;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return listener;
  }
  set_nonblocking(fd);
  listener.fd = fd;
  listener.port = ntohs(bound.sin_port);
  return listener;
}

int tcp_connect_loopback(std::uint16_t port, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    set_nonblocking(fd);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) {
      tcp_tune(fd);
      return fd;
    }
    if (errno == EINPROGRESS) {
      // Wait for the handshake with whatever time is left, in abort-poll
      // sized slices so callers' deadlines stay responsive.
      while (std::chrono::steady_clock::now() < deadline) {
        pollfd pfd{fd, POLLOUT, 0};
        const int pr = ::poll(&pfd, 1, static_cast<int>(kAbortPollInterval.count()));
        if (pr > 0) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err == 0) {
            tcp_tune(fd);
            return fd;
          }
          break;  // refused/reset — retry with a fresh socket below
        }
      }
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    // The listener may simply not be up yet (peer rank still starting);
    // retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

int tcp_accept(int listener_fd) {
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  set_nonblocking(fd);
  tcp_tune(fd);
  return fd;
}

bool tcp_loopback_pair(int fds[2]) {
  fds[0] = fds[1] = -1;
  if (!tcp_transport_supported()) return false;
  TcpListener listener = tcp_listen_loopback(0);
  if (listener.fd < 0) return false;
  const int client = tcp_connect_loopback(listener.port, std::chrono::milliseconds(1000));
  if (client < 0) {
    close_fd(&listener.fd);
    return false;
  }
  int server = -1;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(1000);
  while (server < 0 && std::chrono::steady_clock::now() < deadline) {
    server = tcp_accept(listener.fd);
    if (server < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  close_fd(&listener.fd);
  if (server < 0) {
    int c = client;
    close_fd(&c);
    return false;
  }
  fds[0] = client;
  fds[1] = server;
  return true;
}

bool tcp_read_available(int fd, std::vector<std::byte>* buf) {
  std::byte chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf->insert(buf->end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
    return false;
  }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kHeartbeat: return "heartbeat";
    case FrameKind::kData: return "data";
    case FrameKind::kCollJoin: return "coll-join";
    case FrameKind::kCollResult: return "coll-result";
  }
  return "unknown";
}

namespace {

bool valid_kind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kCollResult);
}

void put_bytes(std::vector<std::byte>* out, const void* src, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(src);
  out->insert(out->end(), b, b + n);
}

}  // namespace

void encode_frame(const Frame& frame, std::vector<std::byte>* out) {
  VOCAB_CHECK(frame.payload.size() <= kMaxFramePayload,
              "tcp frame payload of " << frame.payload.size() << " bytes exceeds the "
                                      << kMaxFramePayload << "-byte cap");
  const std::uint32_t magic = kFrameMagic;
  const auto kind = static_cast<std::uint8_t>(frame.kind);
  const std::uint8_t flags = frame.flags;
  const std::uint16_t reserved = 0;
  const std::uint64_t seq = frame.seq;
  const auto payload_len = static_cast<std::uint32_t>(frame.payload.size());
  const std::uint32_t crc = crc32(frame.payload.data(), frame.payload.size());
  out->reserve(out->size() + kFrameHeaderBytes + frame.payload.size());
  put_bytes(out, &magic, 4);
  put_bytes(out, &kind, 1);
  put_bytes(out, &flags, 1);
  put_bytes(out, &reserved, 2);
  put_bytes(out, &seq, 8);
  put_bytes(out, &payload_len, 4);
  put_bytes(out, &crc, 4);
  put_bytes(out, frame.payload.data(), frame.payload.size());
}

DecodeStatus decode_frame(const std::byte* data, std::size_t size, Frame* out,
                          std::size_t* consumed, std::string* error) {
  if (size < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  std::uint32_t magic = 0;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;
  std::uint16_t reserved = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&magic, data, 4);
  std::memcpy(&kind, data + 4, 1);
  std::memcpy(&flags, data + 5, 1);
  std::memcpy(&reserved, data + 6, 2);
  std::memcpy(&seq, data + 8, 8);
  std::memcpy(&payload_len, data + 16, 4);
  std::memcpy(&crc, data + 20, 4);
  if (magic != kFrameMagic) {
    if (error != nullptr) *error = "bad frame magic";
    return DecodeStatus::kCorrupt;
  }
  if (!valid_kind(kind)) {
    if (error != nullptr) *error = "unknown frame kind " + std::to_string(int{kind});
    return DecodeStatus::kCorrupt;
  }
  if (flags != 0 || reserved != 0) {
    if (error != nullptr) *error = "nonzero reserved frame bits";
    return DecodeStatus::kCorrupt;
  }
  if (payload_len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame payload length " + std::to_string(payload_len) + " exceeds cap";
    }
    return DecodeStatus::kCorrupt;
  }
  if (size < kFrameHeaderBytes + payload_len) return DecodeStatus::kNeedMore;
  const std::byte* payload = data + kFrameHeaderBytes;
  const std::uint32_t actual = crc32(payload, payload_len);
  if (actual != crc) {
    if (error != nullptr) *error = "frame CRC mismatch";
    return DecodeStatus::kCorrupt;
  }
  out->kind = static_cast<FrameKind>(kind);
  out->flags = flags;
  out->seq = seq;
  out->payload.assign(payload, payload + payload_len);
  *consumed = kFrameHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

// ---------------------------------------------------------------------------
// Payload serialization
// ---------------------------------------------------------------------------

void PayloadWriter::u32(std::uint32_t v) { put_bytes(&bytes_, &v, 4); }

void PayloadWriter::u64(std::uint64_t v) { put_bytes(&bytes_, &v, 8); }

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  put_bytes(&bytes_, s.data(), s.size());
}

void PayloadWriter::tensor(const Tensor& t) {
  u32(static_cast<std::uint32_t>(t.rank()));
  u32(0);  // pad, keeps the layout identical to the shm slot format
  for (int i = 0; i < t.rank(); ++i) {
    const std::int64_t d = t.dim(i);
    put_bytes(&bytes_, &d, 8);
  }
  put_bytes(&bytes_, t.data(), 4 * static_cast<std::size_t>(t.numel()));
}

void PayloadReader::need(std::size_t n) const {
  VOCAB_CHECK(offset_ + n <= size_, "tcp frame payload overrun: need " << n << " bytes at offset "
                                                                      << offset_ << " of " << size_);
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t v = 0;
  std::memcpy(&v, data_ + offset_, 4);
  offset_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t v = 0;
  std::memcpy(&v, data_ + offset_, 8);
  offset_ += 8;
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + offset_), len);
  offset_ += len;
  return s;
}

Tensor PayloadReader::tensor() {
  const std::uint32_t ndims = u32();
  u32();  // pad
  VOCAB_CHECK(ndims <= 8, "tcp frame tensor claims " << ndims << " dims");
  if (ndims == 0) return Tensor{};
  std::vector<std::int64_t> shape(ndims);
  for (std::uint32_t i = 0; i < ndims; ++i) {
    need(8);
    std::memcpy(&shape[i], data_ + offset_, 8);
    offset_ += 8;
    VOCAB_CHECK(shape[i] > 0 && shape[i] <= (1 << 28),
                "tcp frame tensor dim " << i << " out of range: " << shape[i]);
  }
  Tensor t(shape);
  const std::size_t data_bytes = 4 * static_cast<std::size_t>(t.numel());
  need(data_bytes);
  std::memcpy(t.data(), data_ + offset_, data_bytes);
  offset_ += data_bytes;
  return t;
}

}  // namespace vocab::transport
