#pragma once

// fork()-based worker group for the shm transport's multi-process mode.
//
// The coordinator creates the ShmArena, then spawns one OS process per
// pipeline device; each child runs `fn(rank)` and MUST leave via _exit (the
// spawn wrapper enforces this — a child that returns or throws is exited
// with a conventional code, never allowed to unwind back into the parent's
// copied stack). The parent stays thread-free until after every fork so the
// children never inherit a locked allocator or condition variable.
//
// Exit-code convention used by the elastic trainer:
//   0 — clean completion
//   3 — coordinated abort observed (AbortedError / DeadlockError): the rank
//       shut down in sympathy with a failure elsewhere
//   4 — unexpected exception
//   5 — the transport declared a peer dead (PeerDeadError: heartbeat silence
//       or reconnect budget exhausted over tcp) — the coordinator treats this
//       like a kill and downgrades, because the named peer is unreachable

#include <sys/types.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace vocab::transport {

inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitAborted = 3;
inline constexpr int kWorkerExitError = 4;
inline constexpr int kWorkerExitPeerDead = 5;

/// One reaped child. `signaled` means the process was killed by `sig`
/// (e.g. SIGKILL) rather than exiting.
struct ProcessExit {
  int rank = -1;
  bool exited = false;
  int status = 0;
  bool signaled = false;
  int sig = 0;

  [[nodiscard]] std::string describe() const;
};

/// A set of forked worker processes, reaped with nonblocking waitpid.
class ProcessGroup {
 public:
  /// Fork `world` children; child r runs `fn(r)` then _exit(kWorkerExitOk).
  /// An AbortedError/DeadlockError escaping fn exits kWorkerExitAborted, any
  /// other exception kWorkerExitError (with a note on stderr).
  [[nodiscard]] static ProcessGroup spawn(int world, const std::function<void(int)>& fn);

  ProcessGroup(ProcessGroup&&) = default;
  ProcessGroup& operator=(ProcessGroup&&) = default;
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;
  /// Does not kill stragglers — call kill_all() first if the group must die.
  ~ProcessGroup() = default;

  /// Reap any children that have exited since the last poll (nonblocking).
  std::vector<ProcessExit> poll();
  /// Ranks not yet reaped.
  [[nodiscard]] std::vector<int> alive() const;
  [[nodiscard]] bool all_done() const;
  /// All exits reaped so far (cumulative, in reap order).
  [[nodiscard]] const std::vector<ProcessExit>& exits() const { return exits_; }

  void kill_rank(int rank, int sig);
  void kill_all(int sig);
  /// Poll until every child is reaped or `timeout` elapses; true on success.
  bool wait_all(std::chrono::milliseconds timeout);

 private:
  ProcessGroup() = default;

  std::vector<pid_t> pids_;
  std::vector<bool> reaped_;
  std::vector<ProcessExit> exits_;
};

}  // namespace vocab::transport
