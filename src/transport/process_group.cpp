#include "transport/process_group.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <exception>
#include <thread>

#include "common/error.h"
#include "fault/abort_token.h"
#include "transport/transport.h"

namespace vocab::transport {

std::string ProcessExit::describe() const {
  if (signaled) return "rank " + std::to_string(rank) + " killed by signal " + std::to_string(sig);
  return "rank " + std::to_string(rank) + " exited with status " + std::to_string(status);
}

ProcessGroup ProcessGroup::spawn(int world, const std::function<void(int)>& fn) {
  VOCAB_CHECK(world >= 1, "process group world must be >= 1, got " << world);
  ProcessGroup group;
  group.pids_.resize(static_cast<std::size_t>(world), -1);
  group.reaped_.resize(static_cast<std::size_t>(world), false);
  for (int rank = 0; rank < world; ++rank) {
    const pid_t pid = ::fork();
    VOCAB_CHECK(pid >= 0, "fork failed for rank " << rank);
    if (pid == 0) {
      // Child: run and leave via _exit only — never unwind into the parent's
      // copied stack, never run the parent's atexit handlers.
      int code = kWorkerExitOk;
      try {
        fn(rank);
      } catch (const AbortedError&) {
        code = kWorkerExitAborted;
      } catch (const PeerDeadError&) {
        // Before the DeadlockError handler: PeerDeadError derives from it,
        // and the distinct exit code is what lets the elastic coordinator
        // downgrade on a partition instead of retrying at full width.
        code = kWorkerExitPeerDead;
      } catch (const DeadlockError&) {
        code = kWorkerExitAborted;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker rank %d: %s\n", rank, e.what());
        code = kWorkerExitError;
      } catch (...) {
        std::fprintf(stderr, "worker rank %d: unknown exception\n", rank);
        code = kWorkerExitError;
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    group.pids_[static_cast<std::size_t>(rank)] = pid;
  }
  return group;
}

std::vector<ProcessExit> ProcessGroup::poll() {
  std::vector<ProcessExit> fresh;
  for (std::size_t r = 0; r < pids_.size(); ++r) {
    if (reaped_[r]) continue;
    int status = 0;
    const pid_t got = ::waitpid(pids_[r], &status, WNOHANG);
    if (got != pids_[r]) continue;
    ProcessExit exit;
    exit.rank = static_cast<int>(r);
    if (WIFEXITED(status)) {
      exit.exited = true;
      exit.status = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exit.signaled = true;
      exit.sig = WTERMSIG(status);
    }
    reaped_[r] = true;
    exits_.push_back(exit);
    fresh.push_back(exit);
  }
  return fresh;
}

std::vector<int> ProcessGroup::alive() const {
  std::vector<int> out;
  for (std::size_t r = 0; r < pids_.size(); ++r) {
    if (!reaped_[r]) out.push_back(static_cast<int>(r));
  }
  return out;
}

bool ProcessGroup::all_done() const {
  for (const bool reaped : reaped_) {
    if (!reaped) return false;
  }
  return true;
}

void ProcessGroup::kill_rank(int rank, int sig) {
  VOCAB_CHECK(rank >= 0 && rank < static_cast<int>(pids_.size()),
              "rank " << rank << " out of range [0, " << pids_.size() << ")");
  if (!reaped_[static_cast<std::size_t>(rank)]) {
    ::kill(pids_[static_cast<std::size_t>(rank)], sig);
  }
}

void ProcessGroup::kill_all(int sig) {
  for (std::size_t r = 0; r < pids_.size(); ++r) {
    if (!reaped_[r]) ::kill(pids_[r], sig);
  }
}

bool ProcessGroup::wait_all(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    poll();
    if (all_done()) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace vocab::transport
