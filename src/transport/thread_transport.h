#pragma once

// In-process thread-rendezvous transport backend (the default).
//
// This is the historical comm layer verbatim — a mutex/condition-variable
// bounded FIFO per mailbox and a rendezvous cell per collective — moved
// below the Transport interface so comm/Channel and comm/DeviceGroup can be
// facades over a pluggable backend. Numerics, blocking semantics, timeout
// slicing (kAbortPollInterval) and error texts are unchanged; the only
// addition is the transport diagnostic suffix on DeadlockError messages and
// describe() output (satellite of the failure-model work: a hang should name
// its backend).

#include <condition_variable>
#include <deque>
#include <mutex>

#include "transport/transport.h"

namespace vocab::transport {

/// Bounded blocking FIFO of Messages. Single producer / single consumer in
/// the pipeline runtime, but safe for multiple of either.
class ThreadMailbox final : public Mailbox {
 public:
  ThreadMailbox(std::size_t capacity, std::chrono::milliseconds timeout);

  void set_abort_token(std::shared_ptr<AbortToken> token) override;
  void send(std::string tag, Tensor payload) override;
  Message recv() override;
  Tensor recv_tag(const std::string& tag) override;
  void clear() override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  // Wait until `ready()` under `lock`, polling the abort token each slice.
  // `verb` + `tag` contextualize the DeadlockError / AbortedError.
  template <typename Ready>
  void wait_or_throw(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                     const char* verb, const std::string& tag, Ready&& ready);

  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  std::shared_ptr<AbortToken> abort_;
  mutable std::mutex mutex_;
  std::condition_variable cv_send_;
  std::condition_variable cv_recv_;
  std::deque<Message> queue_;
};

/// Rendezvous collective communicator over `world_size` participant threads.
class ThreadCollective final : public Collective {
 public:
  ThreadCollective(int world_size, std::chrono::milliseconds timeout);

  [[nodiscard]] int world_size() const override { return world_size_; }
  void set_abort_token(std::shared_ptr<AbortToken> token) override;
  void barrier(int rank, const std::string& tag) override;
  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) override;
  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag) override;
  void broadcast(int rank, int root, Tensor& data, const std::string& tag) override;
  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag) override;
  [[nodiscard]] std::uint64_t completed_collectives() const override;
  [[nodiscard]] std::vector<int> waiting_ranks() const override;
  [[nodiscard]] std::string describe() const override;

 private:
  struct Slot {
    Tensor* tensor = nullptr;
    const Tensor* const_tensor = nullptr;
  };

  // Runs `leader_fn` on the last-arriving rank, between the arrival phase and
  // the departure phase. Throws DeadlockError on timeout, AbortedError when
  // the shared token aborts, CheckError on tag or shape mismatch detected at
  // rendezvous.
  template <typename LeaderFn>
  void rendezvous(int rank, const std::string& tag, const char* kind, LeaderFn&& leader_fn);

  void check_rank(int rank) const;

  const int world_size_;
  const std::chrono::milliseconds timeout_;
  std::shared_ptr<AbortToken> abort_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::vector<std::string> tags_;
  std::vector<bool> waiting_;
  int arrived_ = 0;
  int departed_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t completed_ = 0;
  std::string failure_;  // non-empty once a rendezvous has failed

  // Scratch owned by the group, used by leader functions.
  Tensor gather_result_;
};

/// Factory for the thread backend.
class ThreadTransport final : public Transport {
 public:
  [[nodiscard]] TransportKind kind() const override { return TransportKind::kThreads; }
  [[nodiscard]] const char* name() const override { return "threads"; }
  [[nodiscard]] std::unique_ptr<Mailbox> make_mailbox(
      std::size_t capacity, std::chrono::milliseconds timeout) override;
  [[nodiscard]] std::unique_ptr<Collective> make_collective(
      int world_size, std::chrono::milliseconds timeout) override;
};

}  // namespace vocab::transport
