#pragma once

// Pluggable communication transport for the pipeline runtime.
//
// comm/Channel and comm/DeviceGroup are thin facades over the two interfaces
// here: a Mailbox (bounded tag-addressed FIFO of tensors, the P2P primitive)
// and a Collective (rendezvous barrier / all-reduce / reduce / broadcast /
// all-gather, the NCCL stand-in). A Transport is a factory for both, plus
// the failure-detection substrate that makes a multi-process backend honest:
// per-rank heartbeats, peer-death detection, and a diagnostic suffix so a
// timed-out wait names the backend and the last heartbeat age — a hang is
// then attributable to a dead peer vs. a schedule bug.
//
// Backends:
//   threads — the in-process condition-variable rendezvous the runtime has
//             always used (default; bit-identical to the historical comm
//             layer). transport/thread_transport.h.
//   shm     — shared-memory ring buffers + rendezvous cells that work across
//             fork(): one OS process per pipeline device, heartbeat beacons,
//             and peer death converted into the coordinated AbortToken
//             protocol. transport/shm_transport.h.
//   tcp     — length-prefixed CRC32-checked frames over loopback/LAN TCP
//             sockets with a per-peer connection supervisor (reconnect with
//             bounded backoff, in-band heartbeats, half-open detection) and a
//             deterministic network-chaos layer. transport/tcp_transport.h.
//
// Selection: VOCAB_TRANSPORT={threads,shm,tcp} (strict-parsed; common/env).
// Tuning: VOCAB_HEARTBEAT_MS, VOCAB_HEARTBEAT_TIMEOUT_MS, VOCAB_RETRY_MAX,
// VOCAB_RETRY_BACKOFF_MS (TransportConfig::from_env); the lattice
// VOCAB_HEARTBEAT_MS < VOCAB_HEARTBEAT_TIMEOUT_MS < VOCAB_COMM_TIMEOUT_MS is
// validated once at config resolution (common/env validate_timeout_lattice).

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/abort_token.h"
#include "tensor/tensor.h"

namespace vocab {

/// A tensor in flight between two pipeline stages.
struct Message {
  std::string tag;  ///< e.g. "fwd:mb3" — identifies microbatch + direction
  Tensor payload;
};

/// Reduction operator for all_reduce / reduce.
enum class ReduceOp { Sum, Max };

/// Default timeout for Channel / DeviceGroup waits: VOCAB_COMM_TIMEOUT_MS
/// from the environment when set to a positive integer, else 30 s.
[[nodiscard]] std::chrono::milliseconds default_comm_timeout();

/// Sentinel: "resolve the timeout from default_comm_timeout() at use".
inline constexpr std::chrono::milliseconds kCommTimeoutFromEnv{-1};

namespace transport {

enum class TransportKind {
  kThreads,  ///< in-process thread rendezvous (default)
  kShm,      ///< shared-memory rings; survives fork() into one process/device
  kTcp,      ///< framed TCP sockets; survives fork() and (in principle) hosts
};

[[nodiscard]] const char* to_string(TransportKind kind);

/// Resolve VOCAB_TRANSPORT — "threads", "shm" or "tcp"; unset means threads,
/// any other value throws CheckError (strict env parsing).
[[nodiscard]] TransportKind transport_kind_from_env();

/// Thrown by a blocking transport wait when the *transport itself* declared
/// the peer dead (heartbeat silence past the timeout, or reconnect budget
/// exhausted) — as opposed to a DeadlockError, where the transport is healthy
/// but no message arrived. Derives from DeadlockError so every existing
/// catch still treats it as a fatal wait failure; ProcessGroup workers exit
/// with kWorkerExitPeerDead so the elastic coordinator can tell "my peer is
/// gone, downgrade" from "we deadlocked, retry".
class PeerDeadError : public DeadlockError {
 public:
  PeerDeadError(int peer, const std::string& what) : DeadlockError(what), peer_(peer) {}
  [[nodiscard]] int peer() const { return peer_; }

 private:
  int peer_;
};

/// Failure-detection and retry knobs, one per env var.
struct TransportConfig {
  /// Beacon period: how often a rank stamps its shared heartbeat slot.
  /// VOCAB_HEARTBEAT_MS, default 100.
  std::chrono::milliseconds heartbeat_period{100};
  /// A rank silent this long is declared dead and the group aborts.
  /// VOCAB_HEARTBEAT_TIMEOUT_MS, default 1000.
  std::chrono::milliseconds heartbeat_timeout{1000};
  /// Transient-failure retries (e.g. a full ring) before a send re-validates
  /// peer liveness. VOCAB_RETRY_MAX, default 8.
  int retry_max = 8;
  /// Base delay of the exponential backoff between retries.
  /// VOCAB_RETRY_BACKOFF_MS, default 2.
  std::chrono::milliseconds retry_backoff{2};

  [[nodiscard]] static TransportConfig from_env();
};

/// One peer link's connection state as seen by a connection-supervising
/// backend (tcp). Surfaces in describe() strings and watchdog snapshots.
struct PeerStatus {
  int rank = -1;
  std::string state;           ///< connecting | connected | reconnecting | dead | done
  int reconnects = 0;          ///< successful re-establishments so far
  long long heartbeat_age_ms = -1;  ///< ms since the peer's last in-band heartbeat
};

/// Backoff schedule for retry `attempt` (0-based): retry_backoff doubled per
/// attempt, capped at kAbortPollInterval so abort latency stays bounded, plus
/// a deterministic jitter in [0, base/4] derived from `seed` and the attempt
/// (so concurrent retriers decorrelate without nondeterminism).
[[nodiscard]] std::chrono::microseconds backoff_delay(const TransportConfig& config,
                                                      int attempt, std::uint64_t seed);

/// Bounded blocking FIFO of tagged tensors — the backend behind comm/Channel.
class Mailbox {
 public:
  virtual ~Mailbox() = default;

  virtual void set_abort_token(std::shared_ptr<AbortToken> token) = 0;
  virtual void send(std::string tag, Tensor payload) = 0;
  virtual Message recv() = 0;
  virtual Tensor recv_tag(const std::string& tag) = 0;
  virtual void clear() = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  /// One-line occupancy + queued-tags + transport diagnostics snapshot.
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Rendezvous collective communicator — the backend behind comm/DeviceGroup.
class Collective {
 public:
  virtual ~Collective() = default;

  [[nodiscard]] virtual int world_size() const = 0;
  virtual void set_abort_token(std::shared_ptr<AbortToken> token) = 0;
  virtual void barrier(int rank, const std::string& tag) = 0;
  virtual void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) = 0;
  virtual void reduce(int rank, int root, Tensor& data, ReduceOp op,
                      const std::string& tag) = 0;
  virtual void broadcast(int rank, int root, Tensor& data, const std::string& tag) = 0;
  virtual Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag) = 0;
  [[nodiscard]] virtual std::uint64_t completed_collectives() const = 0;
  [[nodiscard]] virtual std::vector<int> waiting_ranks() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Factory for mailboxes and collectives plus the backend's liveness view.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Mailbox> make_mailbox(
      std::size_t capacity, std::chrono::milliseconds timeout) = 0;
  [[nodiscard]] virtual std::unique_ptr<Collective> make_collective(
      int world_size, std::chrono::milliseconds timeout) = 0;

  /// Milliseconds since `rank` last heartbeat, or -1 when the backend has no
  /// liveness signal for it (threads backend; shm before the first stamp).
  [[nodiscard]] virtual long long heartbeat_age_ms(int rank) const {
    (void)rank;
    return -1;
  }

  /// Per-peer connection view (tcp backend; empty elsewhere). `state` is one
  /// of "connecting", "connected", "reconnecting", "dead", "done".
  [[nodiscard]] virtual std::vector<PeerStatus> peer_status() const { return {}; }
};

/// The process-wide transport selected by VOCAB_TRANSPORT, resolved on every
/// call (tests toggle the variable between trainer constructions). Both
/// backends are process-lifetime singletons; the shm singleton runs in
/// in-process mode (each mailbox/collective owns a private shared-memory
/// region), which exercises the ring/rendezvous machinery without fork().
[[nodiscard]] Transport& default_transport();

}  // namespace transport
}  // namespace vocab
