#pragma once

/// TCP wire layer for the `tcp` transport backend: socket helpers and the
/// length-prefixed, CRC32-checked frame codec. Everything above this file
/// (supervisor, mailboxes, collectives) speaks Frames; everything below it
/// is POSIX sockets on loopback/LAN.
///
/// Wire format (all integers little-endian, matching the shm arena and the
/// checkpoint file — this code never runs cross-endian):
///
///   header (24 bytes):
///     u32 magic        0x56504354 ("VPCT" — Vocab Pipeline C++ Tcp)
///     u8  kind         FrameKind
///     u8  flags        reserved, must be 0
///     u16 reserved     must be 0
///     u64 seq          per-link sequence number (data-bearing frames) or
///                      cumulative ack (heartbeats)
///     u32 payload_len  bytes following the header
///     u32 crc          CRC32 of the payload bytes only
///   payload (payload_len bytes)
///
/// The decoder is incremental and bounds-checked: it never reads past the
/// supplied buffer, rejects bad magic / oversized lengths / CRC mismatches
/// as kCorrupt (no UB under ASan/UBSan — satellite 4's fuzz target), and
/// returns kNeedMore for any honest prefix of a valid frame.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace vocab::transport {

// ---------------------------------------------------------------------------
// Capability probe + socket helpers
// ---------------------------------------------------------------------------

/// True when loopback TCP sockets work here (checked once with a real
/// listen/connect/accept round trip, then cached). Tests GTEST_SKIP on false.
bool tcp_transport_supported();

struct TcpListener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Bind + listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
/// Returns fd -1 on failure (e.g. port in use) — callers decide whether
/// that is fatal.
TcpListener tcp_listen_loopback(std::uint16_t port);

/// Blocking connect to 127.0.0.1:`port` with a deadline. Returns the
/// connected fd or -1 on timeout/refusal. The returned fd is non-blocking
/// and tuned (TCP_NODELAY + SO_KEEPALIVE).
int tcp_connect_loopback(std::uint16_t port, std::chrono::milliseconds timeout);

/// Accept one pending connection (non-blocking). Returns tuned non-blocking
/// fd or -1 when none is waiting.
int tcp_accept(int listener_fd);

/// TCP_NODELAY (the frames are latency-sensitive and tiny) + SO_KEEPALIVE
/// with aggressive per-socket probe timing where the platform allows, so
/// half-open links die at the kernel level too, not only via heartbeat age.
void tcp_tune(int fd);

void set_nonblocking(int fd);

/// close(fd) and set it to -1; no-op on -1.
void close_fd(int* fd);

/// Connected non-blocking loopback socket pair via an ephemeral listener
/// (socketpair(2) would also work, but this exercises the exact code path
/// the mesh uses). Returns false when sockets are unavailable.
bool tcp_loopback_pair(int fds[2]);

/// Non-blocking read of everything currently available on `fd`, appended to
/// `buf`. Returns false on orderly EOF or a hard error (the connection is
/// gone); true on success or would-block.
bool tcp_read_available(int fd, std::vector<std::byte>* buf);

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

constexpr std::uint32_t kFrameMagic = 0x56504354u;  // "VPCT"
constexpr std::size_t kFrameHeaderBytes = 24;
/// Frames carry one tensor message at most; 64 MiB is far above any tensor
/// this repo moves and low enough to reject length-field corruption fast.
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameKind : std::uint8_t {
  kHello = 1,      // {u32 rank, u64 last_seq_in} — (re)connect handshake
  kHeartbeat = 2,  // empty payload; seq field carries the cumulative ack
  kData = 3,       // {u32 mailbox, u32 tag_len, tag, tensor} — P2P message
  kCollJoin = 4,   // {u64 index, u32 op, u32 root, u32 tag_len, tag, tensor}
  kCollResult = 5, // {u64 index, tensor}
};

const char* frame_kind_name(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kHeartbeat;
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;
};

/// Append the encoded frame (header + payload) to `out`.
void encode_frame(const Frame& frame, std::vector<std::byte>* out);

enum class DecodeStatus {
  kNeedMore,  // honest prefix — read more bytes
  kFrame,     // one frame decoded; *consumed bytes were used
  kCorrupt,   // bad magic / oversize length / CRC mismatch / unknown kind
};

/// Decode one frame from the front of [data, data+size). On kFrame, fills
/// *out and *consumed. On kCorrupt, fills *error with a diagnostic; the
/// link must be torn down (a byte stream with one corrupt frame has no
/// trustworthy resynchronization point).
DecodeStatus decode_frame(const std::byte* data, std::size_t size, Frame* out,
                          std::size_t* consumed, std::string* error);

// ---------------------------------------------------------------------------
// Payload serialization
// ---------------------------------------------------------------------------
// Tensors use the exact shm wire format (u32 ndims, u32 pad, i64 dims[],
// f32 data) — fp32 bits are memcpy'd, so deserialization is bitwise and any
// backend reduces to the same result as the threads backend.

class PayloadWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void str(const std::string& s);     // u32 length + bytes
  void tensor(const Tensor& t);       // u32 ndims, u32 pad, dims, data; rank 0 ok
  std::vector<std::byte> take() { return std::move(bytes_); }
  const std::vector<std::byte>& bytes() const { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

/// Throws CheckError on any overrun — a frame that passed the CRC but has an
/// inconsistent payload is a protocol bug, not line noise.
class PayloadReader {
 public:
  PayloadReader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<std::byte>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  Tensor tensor();
  std::size_t remaining() const { return size_ - offset_; }

 private:
  void need(std::size_t n) const;
  const std::byte* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace vocab::transport
