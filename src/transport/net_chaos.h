#pragma once

/// Deterministic network-chaos layer for the tcp transport.
///
/// Chaos is *not* random at this layer: every event originates from a
/// seed-deterministic FaultSpec (kind ∈ {DropConnection, PartitionPeer,
/// DuplicateFrame, TruncateFrame, StallSocket}) that fired in
/// FaultInjector::on_op on this rank. NetChaos adapts the injector's armed
/// events to the supervisor's duty loop: `poll()` pops the next event,
/// resolves the target peer rank (spec.element mod world, skipping self),
/// and records what was applied so a soak run can print — and a replay can
/// compare — the exact chaos schedule.
///
/// Because the arming op index and the consuming supervisor lap are both
/// deterministic functions of the plan and the schedule, running the same
/// plan twice applies the same chaos to the same links in the same order.

#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_injector.h"

namespace vocab::transport {

struct ChaosEvent {
  FaultKind kind = FaultKind::DropConnection;
  int peer = 0;
  std::chrono::milliseconds delay{0};
  std::string note;
};

class NetChaos {
 public:
  /// `injector` may be null (no chaos — poll() always returns nullopt).
  NetChaos(std::shared_ptr<FaultInjector> injector, int self_rank, int world);

  /// Pop the next armed chaos event for this rank, or nullopt. Events whose
  /// resolved peer equals self (world == 1, or the modulus landing on self
  /// with no other rank to bump to) are consumed and dropped.
  std::optional<ChaosEvent> poll();

  /// Events actually applied so far, in order (for logs and replay checks).
  [[nodiscard]] std::vector<ChaosEvent> applied() const;

  [[nodiscard]] std::string describe() const;

 private:
  std::shared_ptr<FaultInjector> injector_;
  int self_;
  int world_;
  mutable std::mutex mutex_;
  std::vector<ChaosEvent> applied_;
};

[[nodiscard]] std::string describe(const ChaosEvent& event);

}  // namespace vocab::transport
