#include "transport/tcp_transport.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <functional>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace vocab::transport {

namespace {

void reduce_into(Tensor& acc, const Tensor& contrib, ReduceOp op) {
  VOCAB_CHECK(acc.same_shape(contrib),
              "collective shape mismatch: " << acc.shape_str() << " vs " << contrib.shape_str());
  float* pa = acc.data();
  const float* pb = contrib.data();
  const std::int64_t n = acc.numel();
  if (op == ReduceOp::Sum) {
    for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
  } else {
    for (std::int64_t i = 0; i < n; ++i) pa[i] = std::max(pa[i], pb[i]);
  }
}

std::string describe_pending(const std::deque<Message>& pending, std::size_t capacity) {
  std::ostringstream os;
  os << "occupancy " << pending.size() << "/" << capacity << ", queued tags [";
  constexpr std::size_t kMaxListed = 16;
  for (std::size_t i = 0; i < std::min(pending.size(), kMaxListed); ++i) {
    if (i > 0) os << ", ";
    os << "'" << pending[i].tag << "'";
  }
  if (pending.size() > kMaxListed) os << ", ... +" << pending.size() - kMaxListed << " more";
  os << "]";
  return os.str();
}

// Collective op codes on the wire (CollJoin.op).
constexpr std::uint32_t kOpBarrier = 0;
constexpr std::uint32_t kOpAllReduceSum = 1;
constexpr std::uint32_t kOpAllReduceMax = 2;
constexpr std::uint32_t kOpReduceSum = 3;
constexpr std::uint32_t kOpReduceMax = 4;
constexpr std::uint32_t kOpBroadcast = 5;
constexpr std::uint32_t kOpGatherRows = 6;

/// Leader-side collective body, shared by the loopback hub and the mesh
/// leader. `contrib(r)` is rank r's input tensor. The reduce order — rank 0's
/// tensor is the accumulator, ranks 1..n-1 folded in ascending order — is the
/// exact order the threads and shm backends use, which is what makes losses
/// and weights bit-identical across all three.
Tensor leader_compute(std::uint32_t op, std::uint32_t root, int world,
                      const std::function<const Tensor&(int)>& contrib) {
  switch (op) {
    case kOpBarrier:
      return Tensor{};
    case kOpAllReduceSum:
    case kOpAllReduceMax:
    case kOpReduceSum:
    case kOpReduceMax: {
      Tensor acc = contrib(0);
      const ReduceOp rop =
          (op == kOpAllReduceMax || op == kOpReduceMax) ? ReduceOp::Max : ReduceOp::Sum;
      for (int r = 1; r < world; ++r) reduce_into(acc, contrib(r), rop);
      return acc;
    }
    case kOpBroadcast:
      return contrib(static_cast<int>(root));
    case kOpGatherRows: {
      const Tensor& first = contrib(0);
      VOCAB_CHECK(first.rank() == 2, "all_gather_rows needs rank-2 tensors");
      const std::int64_t cols = first.dim(1);
      std::int64_t total_rows = 0;
      for (int r = 0; r < world; ++r) {
        const Tensor& t = contrib(r);
        VOCAB_CHECK(t.rank() == 2 && t.dim(1) == cols, "all_gather_rows column mismatch");
        total_rows += t.dim(0);
      }
      Tensor gathered({total_rows, cols});
      std::int64_t row = 0;
      for (int r = 0; r < world; ++r) {
        const Tensor& t = contrib(r);
        std::copy(t.data(), t.data() + t.numel(), gathered.data() + row * cols);
        row += t.dim(0);
      }
      return gathered;
    }
    default:
      VOCAB_FAIL("unknown collective op code " << op);
  }
}

const char* op_kind_name(std::uint32_t op) {
  switch (op) {
    case kOpBarrier: return "barrier";
    case kOpAllReduceSum:
    case kOpAllReduceMax: return "all_reduce";
    case kOpReduceSum:
    case kOpReduceMax: return "reduce";
    case kOpBroadcast: return "broadcast";
    case kOpGatherRows: return "all_gather_rows";
    default: return "collective";
  }
}

// ---------------------------------------------------------------------------
// In-process loopback mailbox
// ---------------------------------------------------------------------------
// One real connected loopback socket pair per Channel. The sender encodes
// kData frames into a write buffer and both sides pump (flush + drain) under
// the shared mutex, so a blocked reader keeps the sender's bytes moving. The
// channel capacity bound lives in a local occupancy counter, exactly like the
// shm ring's: accepted-at-send, released-at-delivery.

class TcpLoopbackMailbox final : public Mailbox {
 public:
  TcpLoopbackMailbox(std::size_t capacity, std::chrono::milliseconds timeout,
                     TransportConfig config)
      : capacity_(capacity),
        timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
        config_(config) {
    VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
    int fds[2] = {-1, -1};
    VOCAB_CHECK(tcp_loopback_pair(fds),
                "tcp transport unavailable: loopback sockets failed on this platform");
    writer_fd_ = fds[0];
    reader_fd_ = fds[1];
  }

  ~TcpLoopbackMailbox() override {
    close_fd(&writer_fd_);
    close_fd(&reader_fd_);
  }

  void set_abort_token(std::shared_ptr<AbortToken> token) override {
    std::lock_guard lock(mutex_);
    abort_ = std::move(token);
  }

  void send(std::string tag, Tensor payload) override {
    PayloadWriter writer;
    writer.u32(0);  // mailbox id — unused on a dedicated pair
    writer.str(tag);
    writer.tensor(payload);
    Frame frame;
    frame.kind = FrameKind::kData;
    frame.payload = writer.take();
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        pump_locked();
        if (occupancy_ < static_cast<std::int64_t>(capacity_)) {
          ++occupancy_;
          frame.seq = ++seq_out_;
          encode_frame(frame, &wbuf_);
          pump_locked();
          return;
        }
      }
      check_or_backoff("send (full)", tag, t0, deadline, &attempt);
    }
  }

  Message recv() override {
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        pump_locked();
        if (!pending_.empty()) {
          Message msg = std::move(pending_.front());
          pending_.pop_front();
          --occupancy_;
          return msg;
        }
      }
      check_or_backoff("recv (empty)", "<front>", t0, deadline, &attempt);
    }
  }

  Tensor recv_tag(const std::string& tag) override {
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        pump_locked();
        const auto it = std::find_if(pending_.begin(), pending_.end(),
                                     [&](const Message& m) { return m.tag == tag; });
        if (it != pending_.end()) {
          Tensor payload = std::move(it->payload);
          pending_.erase(it);
          --occupancy_;
          return payload;
        }
      }
      check_or_backoff("recv", tag, t0, deadline, &attempt);
    }
  }

  void clear() override {
    std::lock_guard lock(mutex_);
    pump_locked();
    occupancy_ -= static_cast<std::int64_t>(pending_.size());
    pending_.clear();
  }

  [[nodiscard]] std::size_t size() const override {
    std::lock_guard lock(mutex_);
    return occupancy_ > 0 ? static_cast<std::size_t>(occupancy_) : 0;
  }

  [[nodiscard]] std::string describe() const override {
    std::lock_guard lock(mutex_);
    const_cast<TcpLoopbackMailbox*>(this)->pump_locked();
    return describe_pending(pending_, capacity_) + ", transport 'tcp' (loopback)";
  }

 private:
  /// Flush what the socket accepts, drain what it holds, decode into pending_.
  void pump_locked() {
    while (!wbuf_.empty()) {
      const ssize_t n = ::send(writer_fd_, wbuf_.data(), wbuf_.size(), MSG_NOSIGNAL);
      if (n > 0) {
        wbuf_.erase(wbuf_.begin(), wbuf_.begin() + n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      VOCAB_FAIL("tcp loopback mailbox write failed: " << std::strerror(errno));
    }
    VOCAB_CHECK(tcp_read_available(reader_fd_, &inbuf_),
                "tcp loopback mailbox socket closed unexpectedly");
    std::size_t offset = 0;
    for (;;) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeStatus status = decode_frame(inbuf_.data() + offset, inbuf_.size() - offset,
                                               &frame, &consumed, &error);
      if (status == DecodeStatus::kNeedMore) break;
      VOCAB_CHECK(status == DecodeStatus::kFrame, "tcp loopback stream corrupt: " << error);
      VOCAB_CHECK(frame.kind == FrameKind::kData,
                  "tcp loopback mailbox got a " << frame_kind_name(frame.kind) << " frame");
      offset += consumed;
      PayloadReader reader(frame.payload);
      (void)reader.u32();  // mailbox id
      Message msg;
      msg.tag = reader.str();
      msg.payload = reader.tensor();
      pending_.push_back(std::move(msg));
    }
    inbuf_.erase(inbuf_.begin(), inbuf_.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  void check_or_backoff(const char* verb, const std::string& tag,
                        std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point deadline, int* attempt) const {
    std::shared_ptr<AbortToken> token;
    {
      std::lock_guard lock(mutex_);
      token = abort_;
    }
    if (token != nullptr && token->aborted()) {
      throw AbortedError(token->reason(),
                         std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      std::string occupancy;
      {
        std::lock_guard lock(mutex_);
        occupancy = describe_pending(pending_, capacity_);
      }
      throw DeadlockError(std::string("channel ") + verb + " timed out waiting for tag '" + tag +
                          "' after " + std::to_string(elapsed) + " ms (timeout " +
                          std::to_string(timeout_.count()) + " ms): " + occupancy +
                          ", transport 'tcp' (loopback)");
    }
    std::this_thread::sleep_for(backoff_delay(config_, *attempt, 0x9e3779b97f4a7c15ULL * 3));
    ++*attempt;
  }

  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  int writer_fd_ = -1;
  int reader_fd_ = -1;

  mutable std::mutex mutex_;
  std::vector<std::byte> wbuf_;
  std::vector<std::byte> inbuf_;
  std::deque<Message> pending_;
  std::int64_t occupancy_ = 0;
  std::uint64_t seq_out_ = 0;
  std::shared_ptr<AbortToken> abort_;
};

// ---------------------------------------------------------------------------
// In-process loopback collective
// ---------------------------------------------------------------------------
// A star of loopback socket pairs with rank 0 as the hub: rank r >= 1 writes
// a CollJoin frame on its spoke and blocks for the CollResult; rank 0 pulls
// one join per spoke (they arrive in collective order — a rank cannot start
// collective i+1 before finishing i), validates the tags, computes via
// leader_compute, and fans the result out. Failure poisoning mirrors the
// threads backend: first failure wins, every later entry throws
// "communicator poisoned", concurrent waiters throw "collective aborted".

class TcpLoopbackCollective final : public Collective {
 public:
  TcpLoopbackCollective(int world_size, std::chrono::milliseconds timeout,
                        TransportConfig config)
      : world_(world_size),
        timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
        config_(config),
        calls_(static_cast<std::size_t>(world_size), 0),
        waiting_(static_cast<std::size_t>(world_size), 0),
        tags_(static_cast<std::size_t>(world_size)),
        ports_(static_cast<std::size_t>(world_size)) {
    VOCAB_CHECK(world_size >= 1, "world_size must be >= 1, got " << world_size);
    for (int r = 1; r < world_; ++r) {
      int fds[2] = {-1, -1};
      VOCAB_CHECK(tcp_loopback_pair(fds),
                  "tcp transport unavailable: loopback sockets failed on this platform");
      ports_[static_cast<std::size_t>(r)].app_fd = fds[0];
      ports_[static_cast<std::size_t>(r)].hub_fd = fds[1];
    }
  }

  ~TcpLoopbackCollective() override {
    for (Port& port : ports_) {
      close_fd(&port.app_fd);
      close_fd(&port.hub_fd);
    }
  }

  [[nodiscard]] int world_size() const override { return world_; }

  void set_abort_token(std::shared_ptr<AbortToken> token) override {
    std::lock_guard lock(state_mutex_);
    abort_ = std::move(token);
  }

  void barrier(int rank, const std::string& tag) override {
    (void)execute(rank, kOpBarrier, 0, tag, Tensor{});
  }

  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) override {
    data = execute(rank, op == ReduceOp::Sum ? kOpAllReduceSum : kOpAllReduceMax, 0, tag, data);
  }

  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag) override {
    check_rank(root);
    Tensor result = execute(rank, op == ReduceOp::Sum ? kOpReduceSum : kOpReduceMax,
                            static_cast<std::uint32_t>(root), tag, data);
    if (rank == root) data = std::move(result);
  }

  void broadcast(int rank, int root, Tensor& data, const std::string& tag) override {
    check_rank(root);
    data = execute(rank, kOpBroadcast, static_cast<std::uint32_t>(root), tag, data);
  }

  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag) override {
    return execute(rank, kOpGatherRows, 0, tag, data);
  }

  [[nodiscard]] std::uint64_t completed_collectives() const override {
    return completed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::vector<int> waiting_ranks() const override {
    std::lock_guard lock(state_mutex_);
    std::vector<int> out;
    for (int r = 0; r < world_; ++r) {
      if (waiting_[static_cast<std::size_t>(r)] != 0) out.push_back(r);
    }
    return out;
  }

  [[nodiscard]] std::string describe() const override {
    std::lock_guard lock(state_mutex_);
    std::ostringstream os;
    os << "completed " << completed_.load(std::memory_order_acquire) << ", waiters [";
    bool first = true;
    for (int r = 0; r < world_; ++r) {
      if (waiting_[static_cast<std::size_t>(r)] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "r" << r << ":'" << tags_[static_cast<std::size_t>(r)] << "'";
    }
    os << "]";
    if (!failure_.empty()) os << ", failure: " << failure_;
    os << ", transport 'tcp' (loopback)";
    return os.str();
  }

 private:
  struct Port {
    int app_fd = -1;                ///< rank r's end (only rank r's thread)
    int hub_fd = -1;                ///< rank 0's end (only rank 0's thread)
    std::vector<std::byte> app_in;  ///< inbound bytes on the app side
    std::vector<std::byte> hub_in;  ///< inbound bytes on the hub side
    std::uint64_t app_seq = 0;
    std::uint64_t hub_seq = 0;
  };

  void check_rank(int rank) const {
    VOCAB_CHECK(rank >= 0 && rank < world_,
                "rank " << rank << " out of range [0, " << world_ << ")");
  }

  /// Poison/abort/deadline checks + one backoff sleep while a rank waits.
  void wait_checks(int rank, const char* kind, const std::string& tag,
                   std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point deadline, int* attempt) {
    std::shared_ptr<AbortToken> token;
    std::string failure;
    {
      std::lock_guard lock(state_mutex_);
      token = abort_;
      failure = failure_;
    }
    if (!failure.empty()) throw DeadlockError("collective aborted: " + failure);
    if (token != nullptr && token->aborted()) {
      {
        std::lock_guard lock(state_mutex_);
        if (failure_.empty()) {
          failure_ = "aborted during " + std::string(kind) + " '" + tag + "'";
        }
      }
      throw AbortedError(token->reason(), std::string(kind) + " '" + tag + "' on rank " +
                                              std::to_string(rank) + " interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      std::string text = "deadlock: rank " + std::to_string(rank) + " timed out in " + kind +
                         " '" + tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                         std::to_string(timeout_.count()) + " ms; transport 'tcp' loopback)";
      {
        std::lock_guard lock(state_mutex_);
        if (failure_.empty()) failure_ = text;
      }
      throw DeadlockError(text);
    }
    const auto seed = static_cast<std::uint64_t>(rank + 2) * 0x9e3779b97f4a7c15ULL;
    std::this_thread::sleep_for(backoff_delay(config_, *attempt, seed));
    ++*attempt;
  }

  /// Write all of `bytes` to `fd`, backing off (with the usual checks) while
  /// the socket buffer is full.
  void blocking_write(int fd, const std::vector<std::byte>& bytes, int rank, const char* kind,
                      const std::string& tag, std::chrono::steady_clock::time_point t0,
                      std::chrono::steady_clock::time_point deadline, int* attempt) {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + offset, bytes.size() - offset, MSG_NOSIGNAL);
      if (n > 0) {
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        VOCAB_FAIL("tcp loopback collective write failed: " << std::strerror(errno));
      }
      wait_checks(rank, kind, tag, t0, deadline, attempt);
    }
  }

  /// Pop the next complete frame from `fd` into *out; false when none yet.
  bool try_read_frame(int fd, std::vector<std::byte>* inbuf, Frame* out) {
    VOCAB_CHECK(tcp_read_available(fd, inbuf),
                "tcp loopback collective socket closed unexpectedly");
    std::size_t consumed = 0;
    std::string error;
    const DecodeStatus status =
        decode_frame(inbuf->data(), inbuf->size(), out, &consumed, &error);
    if (status == DecodeStatus::kNeedMore) return false;
    VOCAB_CHECK(status == DecodeStatus::kFrame, "tcp loopback stream corrupt: " << error);
    inbuf->erase(inbuf->begin(), inbuf->begin() + static_cast<std::ptrdiff_t>(consumed));
    return true;
  }

  Tensor execute(int rank, std::uint32_t op, std::uint32_t root, const std::string& tag,
                 const Tensor& input) {
    check_rank(rank);
    const char* kind = op_kind_name(op);
    if (world_ == 1) {
      Tensor result = leader_compute(op, root, 1, [&](int) -> const Tensor& { return input; });
      completed_.fetch_add(1, std::memory_order_acq_rel);
      return result;
    }
    {
      std::lock_guard lock(state_mutex_);
      if (!failure_.empty()) throw DeadlockError("communicator poisoned: " + failure_);
      waiting_[static_cast<std::size_t>(rank)] = 1;
      tags_[static_cast<std::size_t>(rank)] = tag;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    Tensor result;
    try {
      result = rank == 0 ? run_leader(op, root, tag, input, kind, t0, deadline, &attempt)
                         : run_follower(rank, op, root, tag, input, kind, t0, deadline, &attempt);
    } catch (...) {
      std::lock_guard lock(state_mutex_);
      waiting_[static_cast<std::size_t>(rank)] = 0;
      throw;
    }
    {
      std::lock_guard lock(state_mutex_);
      waiting_[static_cast<std::size_t>(rank)] = 0;
    }
    return result;
  }

  Tensor run_leader(std::uint32_t op, std::uint32_t root, const std::string& tag,
                    const Tensor& input, const char* kind,
                    std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point deadline, int* attempt) {
    const std::uint64_t index = calls_[0]++;
    std::vector<Tensor> joins(static_cast<std::size_t>(world_));
    for (int r = 1; r < world_; ++r) {
      Port& port = ports_[static_cast<std::size_t>(r)];
      for (;;) {
        Frame frame;
        if (try_read_frame(port.hub_fd, &port.hub_in, &frame)) {
          VOCAB_CHECK(frame.kind == FrameKind::kCollJoin,
                      "tcp loopback hub expected coll-join, got " << frame_kind_name(frame.kind));
          PayloadReader reader(frame.payload);
          const std::uint64_t got_index = reader.u64();
          const std::uint32_t got_op = reader.u32();
          const std::uint32_t got_root = reader.u32();
          const std::string got_tag = reader.str();
          VOCAB_CHECK(got_index == index, "tcp loopback collective order broke: rank "
                                              << r << " joined index " << got_index
                                              << " while the hub is at " << index);
          if (got_tag != tag || got_op != op || got_root != root) {
            std::string text = std::string("collective mismatch in ") + kind +
                               ": rank 0 tag '" + tag + "' vs rank " + std::to_string(r) +
                               " tag '" + got_tag + "'";
            {
              std::lock_guard lock(state_mutex_);
              if (failure_.empty()) failure_ = text;
            }
            throw CheckError(text);
          }
          joins[static_cast<std::size_t>(r)] = reader.tensor();
          break;
        }
        wait_checks(0, kind, tag, t0, deadline, attempt);
      }
    }

    Tensor result;
    try {
      result = leader_compute(op, root, world_, [&](int r) -> const Tensor& {
        return r == 0 ? input : joins[static_cast<std::size_t>(r)];
      });
    } catch (const std::exception& e) {
      std::lock_guard lock(state_mutex_);
      if (failure_.empty()) {
        failure_ = std::string(kind) + " '" + tag + "' failed: " + e.what();
      }
      throw;
    }

    PayloadWriter writer;
    writer.u64(index);
    writer.tensor(result);
    Frame frame;
    frame.kind = FrameKind::kCollResult;
    frame.payload = writer.take();
    std::vector<std::byte> bytes;
    encode_frame(frame, &bytes);
    for (int r = 1; r < world_; ++r) {
      blocking_write(ports_[static_cast<std::size_t>(r)].hub_fd, bytes, 0, kind, tag, t0,
                     deadline, attempt);
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);
    return result;
  }

  Tensor run_follower(int rank, std::uint32_t op, std::uint32_t root, const std::string& tag,
                      const Tensor& input, const char* kind,
                      std::chrono::steady_clock::time_point t0,
                      std::chrono::steady_clock::time_point deadline, int* attempt) {
    Port& port = ports_[static_cast<std::size_t>(rank)];
    const std::uint64_t index = calls_[static_cast<std::size_t>(rank)]++;
    PayloadWriter writer;
    writer.u64(index);
    writer.u32(op);
    writer.u32(root);
    writer.str(tag);
    writer.tensor(input);
    Frame frame;
    frame.kind = FrameKind::kCollJoin;
    frame.payload = writer.take();
    std::vector<std::byte> bytes;
    encode_frame(frame, &bytes);
    blocking_write(port.app_fd, bytes, rank, kind, tag, t0, deadline, attempt);

    for (;;) {
      Frame reply;
      if (try_read_frame(port.app_fd, &port.app_in, &reply)) {
        VOCAB_CHECK(reply.kind == FrameKind::kCollResult,
                    "tcp loopback spoke expected coll-result, got "
                        << frame_kind_name(reply.kind));
        PayloadReader reader(reply.payload);
        const std::uint64_t got_index = reader.u64();
        VOCAB_CHECK(got_index == index, "tcp loopback collective order broke: got result "
                                            << got_index << " while waiting for " << index);
        return reader.tensor();
      }
      wait_checks(rank, kind, tag, t0, deadline, attempt);
    }
  }

  const int world_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  std::atomic<std::uint64_t> completed_{0};

  mutable std::mutex state_mutex_;  ///< guards abort_, failure_, waiting_, tags_
  std::shared_ptr<AbortToken> abort_;
  std::string failure_;
  std::vector<std::uint64_t> calls_;  ///< per-rank collective index; rank r's thread only
  std::vector<char> waiting_;
  std::vector<std::string> tags_;
  std::vector<Port> ports_;  ///< [0] unused
};

// ---------------------------------------------------------------------------
// Attached (mesh) mailbox
// ---------------------------------------------------------------------------
// Mailbox i is rank i's inbox: the trainer creates one Channel per device in
// rank order (the same deterministic construction order the shm arena relies
// on), so senders address frames to rank == mailbox id and only the owner
// recvs. Reliability and backpressure live in the supervisor's outbox/ack
// protocol; waits drive supervisor I/O via pump() so latency is not bounded
// by the supervisor thread's cadence.

class TcpMeshMailbox final : public Mailbox {
 public:
  TcpMeshMailbox(std::uint32_t id, std::size_t capacity, std::chrono::milliseconds timeout,
                 TransportConfig config, TcpSupervisor* supervisor)
      : id_(id),
        owner_(static_cast<int>(id)),
        capacity_(capacity),
        timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
        config_(config),
        supervisor_(supervisor) {
    VOCAB_CHECK(capacity > 0, "channel capacity must be positive");
  }

  void set_abort_token(std::shared_ptr<AbortToken> token) override {
    std::lock_guard lock(mutex_);
    abort_ = std::move(token);
  }

  void send(std::string tag, Tensor payload) override {
    supervisor_->throw_if_failed("channel send", tag);
    if (owner_ == supervisor_->self()) {
      supervisor_->enqueue_local(id_, std::move(tag), std::move(payload));
      return;
    }
    supervisor_->send_data(owner_, id_, tag, payload);
  }

  Message recv() override {
    check_owner("recv");
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    for (;;) {
      supervisor_->pump();
      Message msg;
      if (supervisor_->try_pop(id_, &msg)) return msg;
      check_or_backoff("recv (empty)", "<front>", t0, deadline, &attempt);
    }
  }

  Tensor recv_tag(const std::string& tag) override {
    check_owner("recv_tag");
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;
    for (;;) {
      supervisor_->pump();
      Tensor payload;
      if (supervisor_->try_pop_tag(id_, tag, &payload)) return payload;
      check_or_backoff("recv", tag, t0, deadline, &attempt);
    }
  }

  void clear() override {
    supervisor_->pump();
    supervisor_->clear_mailbox(id_);
  }

  [[nodiscard]] std::size_t size() const override { return supervisor_->mailbox_size(id_); }

  [[nodiscard]] std::string describe() const override {
    return supervisor_->describe_mailbox(id_, capacity_) + supervisor_->diag_suffix();
  }

 private:
  void check_owner(const char* verb) const {
    VOCAB_CHECK(owner_ == supervisor_->self(),
                "tcp mesh mailbox " << id_ << " " << verb << " on rank " << supervisor_->self()
                                    << " but the mailbox is rank " << owner_
                                    << "'s inbox — trainer construction order must assign "
                                       "mailbox i to device i");
  }

  void check_or_backoff(const char* verb, const std::string& tag,
                        std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point deadline, int* attempt) const {
    // Dead-peer first (PeerDeadError → worker exit 5), then abort, then the
    // local token, then the deadline.
    supervisor_->throw_if_failed((std::string("channel ") + verb).c_str(), tag);
    std::shared_ptr<AbortToken> token;
    {
      std::lock_guard lock(mutex_);
      token = abort_;
    }
    if (token != nullptr && token->aborted()) {
      throw AbortedError(token->reason(),
                         std::string("channel ") + verb + " of tag '" + tag + "' interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      throw DeadlockError(std::string("channel ") + verb + " timed out waiting for tag '" + tag +
                          "' after " + std::to_string(elapsed) + " ms (timeout " +
                          std::to_string(timeout_.count()) + " ms): " +
                          supervisor_->describe_mailbox(id_, capacity_) +
                          supervisor_->diag_suffix());
    }
    const auto seed =
        static_cast<std::uint64_t>(supervisor_->self() + 2) * 0x9e3779b97f4a7c15ULL;
    std::this_thread::sleep_for(backoff_delay(config_, *attempt, seed));
    ++*attempt;
  }

  const std::uint32_t id_;
  const int owner_;
  const std::size_t capacity_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  TcpSupervisor* supervisor_;

  mutable std::mutex mutex_;
  std::shared_ptr<AbortToken> abort_;
};

// ---------------------------------------------------------------------------
// Attached (mesh) collective
// ---------------------------------------------------------------------------
// Leader-driven: rank 0 pulls one CollJoin per peer per collective (indexed
// by a per-rank call counter — every rank issues collectives in the same
// program order), computes with the shared leader body, and fans a
// CollResult out to every peer. Each rank's process calls only with its own
// rank, so there is no in-process rendezvous state — failure propagation
// rides the supervisor (dead peers, arena abort, local token).

class TcpMeshCollective final : public Collective {
 public:
  TcpMeshCollective(int world_size, std::chrono::milliseconds timeout, TransportConfig config,
                    TcpSupervisor* supervisor)
      : world_(world_size),
        timeout_(timeout == kCommTimeoutFromEnv ? default_comm_timeout() : timeout),
        config_(config),
        supervisor_(supervisor) {}

  [[nodiscard]] int world_size() const override { return world_; }

  void set_abort_token(std::shared_ptr<AbortToken> token) override {
    std::lock_guard lock(mutex_);
    abort_ = std::move(token);
  }

  void barrier(int rank, const std::string& tag) override {
    (void)execute(rank, kOpBarrier, 0, tag, Tensor{});
  }

  void all_reduce(int rank, Tensor& data, ReduceOp op, const std::string& tag) override {
    data = execute(rank, op == ReduceOp::Sum ? kOpAllReduceSum : kOpAllReduceMax, 0, tag, data);
  }

  void reduce(int rank, int root, Tensor& data, ReduceOp op, const std::string& tag) override {
    Tensor result = execute(rank, op == ReduceOp::Sum ? kOpReduceSum : kOpReduceMax,
                            static_cast<std::uint32_t>(root), tag, data);
    if (rank == root) data = std::move(result);
  }

  void broadcast(int rank, int root, Tensor& data, const std::string& tag) override {
    data = execute(rank, kOpBroadcast, static_cast<std::uint32_t>(root), tag, data);
  }

  Tensor all_gather_rows(int rank, const Tensor& data, const std::string& tag) override {
    return execute(rank, kOpGatherRows, 0, tag, data);
  }

  [[nodiscard]] std::uint64_t completed_collectives() const override {
    return completed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::vector<int> waiting_ranks() const override { return {}; }

  [[nodiscard]] std::string describe() const override {
    return "tcp mesh collective rank " + std::to_string(supervisor_->self()) + ", completed " +
           std::to_string(completed_.load(std::memory_order_acquire)) +
           supervisor_->diag_suffix();
  }

 private:
  void check_or_backoff(int rank, const char* kind, const std::string& tag,
                        std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point deadline, int* attempt) const {
    supervisor_->throw_if_failed(kind, tag);
    std::shared_ptr<AbortToken> token;
    {
      std::lock_guard lock(mutex_);
      token = abort_;
    }
    if (token != nullptr && token->aborted()) {
      throw AbortedError(token->reason(), std::string(kind) + " '" + tag + "' on rank " +
                                              std::to_string(rank) + " interrupted");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - t0).count();
      throw DeadlockError("deadlock: rank " + std::to_string(rank) + " timed out in " + kind +
                          " '" + tag + "' after " + std::to_string(elapsed) + " ms (timeout " +
                          std::to_string(timeout_.count()) + " ms)" +
                          supervisor_->diag_suffix());
    }
    const auto seed = static_cast<std::uint64_t>(rank + 2) * 0x9e3779b97f4a7c15ULL;
    std::this_thread::sleep_for(backoff_delay(config_, *attempt, seed));
    ++*attempt;
  }

  Tensor execute(int rank, std::uint32_t op, std::uint32_t root, const std::string& tag,
                 const Tensor& input) {
    VOCAB_CHECK(rank == supervisor_->self(),
                "tcp mesh collective called with rank " << rank << " on rank "
                                                        << supervisor_->self());
    const char* kind = op_kind_name(op);
    const std::uint64_t index = index_++;
    if (world_ == 1) {
      Tensor result = leader_compute(op, root, 1, [&](int) -> const Tensor& { return input; });
      completed_.fetch_add(1, std::memory_order_acq_rel);
      return result;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + timeout_;
    int attempt = 0;

    if (rank != 0) {
      supervisor_->throw_if_failed(kind, tag);
      supervisor_->send_coll_join(index, op, root, tag, input);
      for (;;) {
        supervisor_->pump();
        Tensor result;
        if (supervisor_->try_pop_coll_result(index, &result)) {
          completed_.fetch_add(1, std::memory_order_acq_rel);
          return result;
        }
        check_or_backoff(rank, kind, tag, t0, deadline, &attempt);
      }
    }

    std::vector<Tensor> joins(static_cast<std::size_t>(world_));
    for (int r = 1; r < world_; ++r) {
      for (;;) {
        supervisor_->pump();
        TcpSupervisor::CollJoin join;
        if (supervisor_->try_pop_coll_join(index, r, &join)) {
          VOCAB_CHECK(join.tag == tag && join.op == op && join.root == root,
                      "collective mismatch in " << kind << ": rank 0 tag '" << tag
                                                << "' vs rank " << r << " tag '" << join.tag
                                                << "'");
          joins[static_cast<std::size_t>(r)] = std::move(join.data);
          break;
        }
        check_or_backoff(rank, kind, tag, t0, deadline, &attempt);
      }
    }
    Tensor result = leader_compute(op, root, world_, [&](int r) -> const Tensor& {
      return r == 0 ? input : joins[static_cast<std::size_t>(r)];
    });
    for (int r = 1; r < world_; ++r) supervisor_->send_coll_result(r, index, result);
    completed_.fetch_add(1, std::memory_order_acq_rel);
    return result;
  }

  const int world_;
  const std::chrono::milliseconds timeout_;
  const TransportConfig config_;
  TcpSupervisor* supervisor_;
  std::uint64_t index_ = 0;  ///< this rank's collective call counter
  std::atomic<std::uint64_t> completed_{0};

  mutable std::mutex mutex_;
  std::shared_ptr<AbortToken> abort_;
};

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport TcpTransport::in_process() { return TcpTransport(); }

TcpTransport::TcpTransport(ShmArena& arena, int self_rank, TransportConfig config,
                           std::shared_ptr<FaultInjector> injector)
    : config_(config), self_(self_rank) {
  supervisor_ = std::make_unique<TcpSupervisor>(arena, self_rank, config, std::move(injector));
  supervisor_->establish();
}

std::unique_ptr<TcpTransport> TcpTransport::attach(ShmArena& arena, int self_rank,
                                                   TransportConfig config,
                                                   std::shared_ptr<FaultInjector> injector) {
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(arena, self_rank, config, std::move(injector)));
}

std::unique_ptr<Mailbox> TcpTransport::make_mailbox(std::size_t capacity,
                                                    std::chrono::milliseconds timeout) {
  if (supervisor_ == nullptr) {
    return std::make_unique<TcpLoopbackMailbox>(capacity, timeout, TransportConfig::from_env());
  }
  const std::uint32_t id = next_mailbox_++;
  VOCAB_CHECK(id < static_cast<std::uint32_t>(supervisor_->world()),
              "tcp mesh creates one mailbox per rank (world " << supervisor_->world()
                                                              << "), attempted #" << id
                                                              << " — trainer construction order "
                                                                 "must match");
  return std::make_unique<TcpMeshMailbox>(id, capacity, timeout, config_, supervisor_.get());
}

std::unique_ptr<Collective> TcpTransport::make_collective(int world_size,
                                                          std::chrono::milliseconds timeout) {
  if (supervisor_ == nullptr) {
    return std::make_unique<TcpLoopbackCollective>(world_size, timeout,
                                                   TransportConfig::from_env());
  }
  VOCAB_CHECK(!collective_taken_, "tcp mesh holds one collective group and it is already taken");
  VOCAB_CHECK(world_size == supervisor_->world(), "tcp collective world "
                                                      << world_size << " vs mesh world "
                                                      << supervisor_->world());
  collective_taken_ = true;
  return std::make_unique<TcpMeshCollective>(world_size, timeout, config_, supervisor_.get());
}

long long TcpTransport::heartbeat_age_ms(int rank) const {
  return supervisor_ != nullptr ? supervisor_->heartbeat_age_ms(rank) : -1;
}

std::vector<PeerStatus> TcpTransport::peer_status() const {
  return supervisor_ != nullptr ? supervisor_->peer_status() : std::vector<PeerStatus>{};
}

void TcpTransport::set_heartbeat_suppressed(std::function<bool()> fn) {
  if (supervisor_ != nullptr) supervisor_->set_heartbeat_suppressed(std::move(fn));
}

void TcpTransport::set_abort_token(std::shared_ptr<AbortToken> token) {
  if (supervisor_ != nullptr) supervisor_->set_abort_token(std::move(token));
}

void TcpTransport::mark_done() {
  if (supervisor_ != nullptr) supervisor_->mark_done();
}

}  // namespace vocab::transport
