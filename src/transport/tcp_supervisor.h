#pragma once

// Per-peer connection supervisor for the tcp transport's attached (forked
// multi-process) mode.
//
// Every rank binds one loopback listener (VOCAB_TCP_PORT_BASE + rank, or a
// kernel-assigned ephemeral port advertised through the shared arena's
// ShmRankState::tcp_port) and maintains one supervised link per peer in a
// full mesh. The lower rank of each pair connects, the higher accepts; a
// Hello frame carrying {rank, last_seq_in} identifies the peer and doubles
// as the retransmission handshake.
//
// Link state machine:
//
//   connecting ──connected──> connected ──EOF/corrupt/chaos──> reconnecting
//        ^                        │                                  │
//        └──(establish only)──────┤                   backoff+Hello──┘
//                                 │                        (rc budget/
//   connected ──peer done──> done │   heartbeat silence > timeout, or
//   any ───────────────────> dead <── reconnect attempts > VOCAB_RETRY_MAX
//
// Reliability: data-bearing frames (data / coll-join / coll-result) carry a
// per-link sequence number and stay in a sender-side outbox until the peer's
// cumulative ack — piggybacked on its in-band heartbeats (and on Hello after
// a reconnect) — covers them. On reconnect the outbox is replayed from the
// peer's acked position; the receiver drops any seq it has already accepted,
// so a transient drop (or a deliberately duplicated frame) never delivers a
// message twice and never loses one: training continues bit-identically.
//
// Death escalation: when a peer is declared dead (silent past
// VOCAB_HEARTBEAT_TIMEOUT_MS, or its link exhausted the reconnect budget),
// the supervisor marks the rank dead in the arena, posts the shared abort,
// and aborts the local token — the same coordinated-abort protocol the shm
// backend uses — and blocked transport waits on *this* rank throw
// PeerDeadError (worker exit code 5) so the elastic coordinator can tell a
// partition from a deadlock.
//
// Chaos: a NetChaos layer (driven by the seed-deterministic FaultInjector)
// is polled on the supervisor thread; DropConnection / PartitionPeer /
// DuplicateFrame / TruncateFrame / StallSocket events manipulate the links
// in-band, so every failure mode above is replayable in tests.

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "transport/net_chaos.h"
#include "transport/shm_region.h"
#include "transport/tcp_frame.h"
#include "transport/transport.h"

namespace vocab::transport {

enum class TcpLinkState { kConnecting, kConnected, kReconnecting, kDead, kDone };

[[nodiscard]] const char* to_string(TcpLinkState state);

class TcpSupervisor {
 public:
  /// Binds the listener, advertises the port in the arena, and starts the
  /// supervisor thread. `injector` may be null (no chaos).
  TcpSupervisor(ShmArena& arena, int self_rank, TransportConfig config,
                std::shared_ptr<FaultInjector> injector);
  ~TcpSupervisor();
  TcpSupervisor(const TcpSupervisor&) = delete;
  TcpSupervisor& operator=(const TcpSupervisor&) = delete;

  /// Block until every peer link is connected (or throw CheckError after
  /// VOCAB_TCP_CONNECT_TIMEOUT_MS, or AbortedError if the arena aborts).
  void establish();

  [[nodiscard]] int world() const { return world_; }
  [[nodiscard]] int self() const { return self_; }

  // -- data plane (called from the rank's app thread) -----------------------

  /// Queue a tagged tensor for `peer`'s mailbox `mailbox` (reliable).
  void send_data(int peer, std::uint32_t mailbox, const std::string& tag, const Tensor& t);
  /// Local loopback delivery (owner sending to its own mailbox).
  void enqueue_local(std::uint32_t mailbox, std::string tag, Tensor t);
  [[nodiscard]] bool try_pop(std::uint32_t mailbox, Message* out);
  [[nodiscard]] bool try_pop_tag(std::uint32_t mailbox, const std::string& tag, Tensor* out);
  [[nodiscard]] std::size_t mailbox_size(std::uint32_t mailbox) const;
  std::size_t clear_mailbox(std::uint32_t mailbox);
  [[nodiscard]] std::string describe_mailbox(std::uint32_t mailbox, std::size_t capacity) const;

  struct CollJoin {
    std::uint32_t op = 0;
    std::uint32_t root = 0;
    std::string tag;
    Tensor data;
  };
  void send_coll_join(std::uint64_t index, std::uint32_t op, std::uint32_t root,
                      const std::string& tag, const Tensor& t);
  [[nodiscard]] bool try_pop_coll_join(std::uint64_t index, int peer, CollJoin* out);
  void send_coll_result(int peer, std::uint64_t index, const Tensor& t);
  [[nodiscard]] bool try_pop_coll_result(std::uint64_t index, Tensor* out);

  /// One I/O lap (accept/connect progress, reads, flushes) driven by a
  /// blocked app thread, so message latency is not bounded by the supervisor
  /// thread's cadence.
  void pump();

  // -- failure view ---------------------------------------------------------

  /// Throw PeerDeadError / AbortedError if this rank must stop waiting:
  /// checks (in order) a peer this supervisor declared dead, the local
  /// abort token, and the arena abort block.
  void throw_if_failed(const char* verb, const std::string& tag) const;

  [[nodiscard]] std::string diag_suffix() const;
  [[nodiscard]] std::vector<PeerStatus> peer_status() const;
  [[nodiscard]] long long heartbeat_age_ms(int rank) const;
  [[nodiscard]] int dead_peer() const;
  [[nodiscard]] const NetChaos& chaos() const { return chaos_; }

  void set_abort_token(std::shared_ptr<AbortToken> token);
  void set_heartbeat_suppressed(std::function<bool()> fn);
  /// Clean shutdown: mark this rank done in the arena and stop escalating.
  void mark_done();

 private:
  struct OutFrame {
    std::uint64_t seq = 0;
    std::vector<std::byte> bytes;  ///< fully encoded frame
  };

  struct Link {
    int peer = -1;
    TcpLinkState state = TcpLinkState::kConnecting;
    int fd = -1;
    int connect_fd = -1;  ///< non-blocking connect in flight (connector side)
    bool hello_sent = false;
    bool hello_received = false;
    std::vector<std::byte> inbuf;
    std::vector<std::byte> wbuf;   ///< bytes accepted for the socket, not yet written
    std::deque<OutFrame> outbox;   ///< unacked reliable frames, oldest first
    std::uint64_t seq_out = 0;     ///< last assigned outgoing seq
    std::uint64_t seq_in = 0;      ///< last accepted incoming seq
    std::chrono::steady_clock::time_point last_alive{};  ///< last frame from peer
    int reconnects = 0;
    int connect_attempts = 0;
    std::chrono::steady_clock::time_point next_connect{};
    /// While a freshly attached socket waits for the peer's reply Hello, no
    /// new connect may start (it would attach over the live fd and orphan the
    /// reply — a livelock, see connect_progress_locked). Past this deadline
    /// the half-done handshake is torn down and retried instead.
    std::chrono::steady_clock::time_point handshake_deadline{};
    // chaos effects
    bool partitioned = false;
    bool duplicate_next = false;
    bool truncate_next = false;
    bool fail_after_flush = false;
    std::chrono::steady_clock::time_point stall_until{};

    [[nodiscard]] bool frozen(std::chrono::steady_clock::time_point now) const {
      return partitioned || now < stall_until;
    }
  };

  void supervisor_loop();
  void lap_locked(bool beacon);
  void accept_locked();
  void connect_progress_locked(Link& link);
  void read_link_locked(Link& link);
  void flush_link_locked(Link& link);
  void dispatch_locked(Link& link, const Frame& frame);
  void handle_hello_locked(Link& link, const Frame& frame);
  void link_failure_locked(Link& link, const std::string& why);
  void attach_fd_locked(Link& link, int fd);
  void send_reliable_locked(Link& link, FrameKind kind, std::vector<std::byte> payload);
  void send_heartbeats_locked(std::chrono::steady_clock::time_point now);
  void death_checks_locked(std::chrono::steady_clock::time_point now);
  void apply_chaos_locked();
  void declare_dead_locked(Link& link, const std::string& why);
  [[nodiscard]] Link* link_for(int peer);
  [[nodiscard]] std::string diag_suffix_locked() const;

  ShmArena& arena_;
  const int self_;
  const int world_;
  const TransportConfig config_;
  const std::chrono::milliseconds connect_timeout_;
  NetChaos chaos_;

  mutable std::mutex mutex_;
  TcpListener listener_;
  std::vector<Link> links_;  ///< indexed by peer rank; links_[self] unused
  struct PendingAccept {
    int fd = -1;
    std::vector<std::byte> inbuf;
    std::chrono::steady_clock::time_point since{};
  };
  std::vector<PendingAccept> pending_accepts_;  ///< accepted, Hello not yet seen
  std::vector<std::deque<Message>> mailboxes_;
  std::map<std::uint64_t, CollJoin> coll_joins_;    ///< key: index * world + peer
  std::map<std::uint64_t, Tensor> coll_results_;    ///< key: index
  std::shared_ptr<AbortToken> token_;
  std::function<bool()> suppressed_;
  std::chrono::steady_clock::time_point last_beat_{};
  int dead_peer_ = -1;
  std::string dead_reason_;
  bool done_ = false;
  bool established_ = false;  ///< death checks arm only after the mesh is up

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace vocab::transport
