#include "analysis/verifier.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.h"

namespace vocab::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
  }
  return "?";
}

const char* to_string(Check c) {
  switch (c) {
    case Check::OpIndex: return "op-index";
    case Check::DeviceRange: return "device-range";
    case Check::DepRange: return "dep-range";
    case Check::NegativeDuration: return "negative-duration";
    case Check::NegativeBytes: return "negative-bytes";
    case Check::LaneMembership: return "lane-membership";
    case Check::CollectiveShape: return "collective-shape";
    case Check::CollectiveOrder: return "collective-order";
    case Check::DependencyCycle: return "dependency-cycle";
    case Check::SemanticOrder: return "semantic-order";
    case Check::MemoryBalance: return "memory-balance";
    case Check::PeakActivation: return "peak-activation";
    case Check::StreamDiscipline: return "stream-discipline";
  }
  return "?";
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream oss;
  oss << to_string(d.severity) << " [" << to_string(d.check) << "]";
  if (!d.ops.empty()) {
    oss << " ops{";
    for (std::size_t i = 0; i < d.ops.size(); ++i) oss << (i ? "," : "") << d.ops[i];
    oss << "}";
  }
  oss << ": " << d.message;
  if (!d.hint.empty()) oss << " (hint: " << d.hint << ")";
  return oss.str();
}

std::string render_report(const std::vector<Diagnostic>& diags) {
  std::ostringstream oss;
  for (const Diagnostic& d : diags) oss << to_string(d) << "\n";
  return oss.str();
}

namespace {

bool is_compute_pass(OpKind k) {
  switch (k) {
    case OpKind::Forward:
    case OpKind::BackwardFull:
    case OpKind::BackwardInput:
    case OpKind::BackwardWeight:
    case OpKind::OutputS:
    case OpKind::OutputT:
    case OpKind::InputFwd:
    case OpKind::InputBwd:
      return true;
    case OpKind::Collective:
    case OpKind::Sync:
      return false;
  }
  return false;
}

bool is_backward_pass(OpKind k) {
  return k == OpKind::BackwardFull || k == OpKind::BackwardInput || k == OpKind::BackwardWeight;
}

class Verifier {
 public:
  Verifier(const PipelineSchedule& s, const VerifyOptions& opt) : s_(s), opt_(opt) {}

  std::vector<Diagnostic> run() {
    if (!check_shape()) return std::move(diags_);
    check_ops();
    if (!ids_consistent_) return std::move(diags_);  // indexing by id is unsafe
    check_lanes();
    check_collectives();
    check_cycles();
    check_semantic_order();
    check_memory();
    check_streams();
    return std::move(diags_);
  }

 private:
  void report(Severity sev, Check check, std::vector<int> ops, std::string message,
              std::string hint) {
    diags_.push_back({sev, check, std::move(ops), std::move(message), std::move(hint)});
  }

  // --- schedule-level shape -------------------------------------------------

  bool check_shape() {
    if (s_.num_devices <= 0) {
      report(Severity::Error, Check::DeviceRange, {},
             "schedule has " + std::to_string(s_.num_devices) + " devices",
             "a schedule needs at least one device");
      return false;
    }
    bool ok = true;
    if (static_cast<int>(s_.devices.size()) != s_.num_devices) {
      report(Severity::Error, Check::LaneMembership, {},
             "devices[] has " + std::to_string(s_.devices.size()) + " lane sets for " +
                 std::to_string(s_.num_devices) + " devices",
             "finalize() must emit one DeviceLanes per device");
      ok = false;
    }
    if (static_cast<int>(s_.base_bytes.size()) != s_.num_devices) {
      report(Severity::Error, Check::MemoryBalance, {},
             "base_bytes has " + std::to_string(s_.base_bytes.size()) + " entries for " +
                 std::to_string(s_.num_devices) + " devices",
             "pass one resident-bytes figure per device to finalize()");
    }
    return ok;
  }

  // --- per-op structural checks --------------------------------------------

  void check_ops() {
    const int n = static_cast<int>(s_.ops.size());
    for (int i = 0; i < n; ++i) {
      const Op& o = s_.ops[static_cast<std::size_t>(i)];
      if (o.id != i) {
        report(Severity::Error, Check::OpIndex, {i},
               "op at index " + std::to_string(i) + " carries id " + std::to_string(o.id),
               "ScheduleBuilder::add assigns ids; do not renumber ops");
        ids_consistent_ = false;
      }
      if (o.device < 0 || o.device >= s_.num_devices) {
        report(Severity::Error, Check::DeviceRange, {i},
               "op " + std::to_string(i) + " placed on device " + std::to_string(o.device) +
                   " of " + std::to_string(s_.num_devices),
               "device must be in [0, num_devices)");
      }
      if (o.duration < 0) {
        report(Severity::Error, Check::NegativeDuration, {i},
               "op " + std::to_string(i) + " has negative duration", "durations are seconds >= 0");
      }
      if (o.alloc_bytes < 0 || o.free_bytes < 0) {
        report(Severity::Error, Check::NegativeBytes, {i},
               "op " + std::to_string(i) + " has a negative memory delta",
               "model frees via free_bytes, not negative allocs");
      }
      for (const int d : o.deps) {
        if (d < 0 || d >= n) {
          report(Severity::Error, Check::DepRange, {i, d},
                 "op " + std::to_string(i) + " depends on nonexistent op " + std::to_string(d),
                 "dangling dependency edge; the dep was never added to the schedule");
        } else if (d == i) {
          report(Severity::Error, Check::DepRange, {i},
                 "op " + std::to_string(i) + " depends on itself",
                 "an op cannot wait for its own completion");
        }
      }
    }
  }

  // --- lane membership -------------------------------------------------------

  void check_lanes() {
    const int n = static_cast<int>(s_.ops.size());
    std::vector<int> seen(static_cast<std::size_t>(n), 0);
    for (int dev = 0; dev < s_.num_devices; ++dev) {
      const DeviceLanes& lanes = s_.devices[static_cast<std::size_t>(dev)];
      for (const Stream st : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
        for (const int id : lanes.lane(st)) {
          if (id < 0 || id >= n) {
            report(Severity::Error, Check::LaneMembership, {id},
                   "device " + std::to_string(dev) + " lane references nonexistent op " +
                       std::to_string(id),
                   "lanes may only name ops of this schedule");
            continue;
          }
          const Op& o = s_.ops[static_cast<std::size_t>(id)];
          if (o.device != dev) {
            report(Severity::Error, Check::LaneMembership, {id},
                   "op " + std::to_string(id) + " issued on device " + std::to_string(dev) +
                       " but belongs to device " + std::to_string(o.device),
                   "issue each op on its own device");
          }
          if (o.stream != st) {
            report(Severity::Error, Check::LaneMembership, {id},
                   "op " + std::to_string(id) + " issued on the wrong stream lane",
                   "lane(stream) must only hold ops of that stream");
          }
          ++seen[static_cast<std::size_t>(id)];
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      if (seen[static_cast<std::size_t>(i)] != 1) {
        report(Severity::Error, Check::LaneMembership, {i},
               "op " + std::to_string(i) + " (" + s_.ops[static_cast<std::size_t>(i)].label +
                   ") issued " + std::to_string(seen[static_cast<std::size_t>(i)]) + " times",
               "every op must appear exactly once across all lanes");
      }
    }
  }

  // --- collective membership -------------------------------------------------

  void check_collectives() {
    for (const Op& o : s_.ops) {
      if (o.collective >= 0) groups_[o.collective].push_back(o.id);
    }
    for (const auto& [cid, members] : groups_) {
      const Op& first = s_.ops[static_cast<std::size_t>(members[0])];
      if (members.size() < 2) {
        report(Severity::Error, Check::CollectiveShape, members,
               "collective " + std::to_string(cid) + " has a single member",
               "a collective must rendezvous >= 2 devices");
      }
      std::set<int> devs;
      for (const int id : members) {
        const Op& o = s_.ops[static_cast<std::size_t>(id)];
        if (o.kind != OpKind::Collective) {
          report(Severity::Error, Check::CollectiveShape, {id},
                 "op " + std::to_string(id) + " carries collective id " + std::to_string(cid) +
                     " but has kind " + vocab::to_string(o.kind),
                 "only OpKind::Collective ops may join a collective group");
        }
        if (o.stream != first.stream) {
          report(Severity::Error, Check::CollectiveShape, {id, first.id},
                 "collective " + std::to_string(cid) + " spans streams",
                 "all members of a group must share one stream");
        }
        const double dur_tol = opt_.collective_duration_rtol *
                               std::max({std::abs(o.duration), std::abs(first.duration), 1.0});
        if (std::abs(o.duration - first.duration) > dur_tol) {
          report(Severity::Error, Check::CollectiveShape, {id, first.id},
                 "collective " + std::to_string(cid) + " members disagree on duration",
                 "members start and end together, so durations must match");
        }
        if (!devs.insert(o.device).second) {
          report(Severity::Error, Check::CollectiveShape, {id},
                 "collective " + std::to_string(cid) + " has two ops on device " +
                     std::to_string(o.device),
                 "one member per participating device");
        }
      }
    }

    // Cross-device relative order of shared collectives (the classic NCCL
    // deadlock: two ranks enqueue the same pair of collectives in opposite
    // orders). Project each device's lanes onto collective ids and demand
    // every pair of devices agree on the subsequence of shared groups.
    std::vector<std::vector<int>> order(static_cast<std::size_t>(s_.num_devices));
    for (int dev = 0; dev < s_.num_devices; ++dev) {
      for (const Stream st : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
        for (const int id : s_.devices[static_cast<std::size_t>(dev)].lane(st)) {
          if (id < 0 || id >= static_cast<int>(s_.ops.size())) continue;
          if (s_.ops[static_cast<std::size_t>(id)].collective >= 0) {
            order[static_cast<std::size_t>(dev)].push_back(
                s_.ops[static_cast<std::size_t>(id)].collective);
          }
        }
      }
    }
    for (int a = 0; a < s_.num_devices; ++a) {
      for (int b = a + 1; b < s_.num_devices; ++b) {
        const std::set<int> on_a(order[static_cast<std::size_t>(a)].begin(),
                                 order[static_cast<std::size_t>(a)].end());
        const std::set<int> on_b(order[static_cast<std::size_t>(b)].begin(),
                                 order[static_cast<std::size_t>(b)].end());
        std::vector<int> sub_a, sub_b;
        for (const int c : order[static_cast<std::size_t>(a)]) {
          if (on_b.contains(c)) sub_a.push_back(c);
        }
        for (const int c : order[static_cast<std::size_t>(b)]) {
          if (on_a.contains(c)) sub_b.push_back(c);
        }
        if (sub_a != sub_b) {
          report(Severity::Error, Check::CollectiveOrder, {a, b},
                 "devices " + std::to_string(a) + " and " + std::to_string(b) +
                     " issue shared collectives in different orders",
                 "reorder the issue slots so every rank enqueues groups identically");
          return;  // one pair suffices; further pairs repeat the same story
        }
      }
    }
  }

  // --- deadlock-freedom as acyclicity ---------------------------------------
  //
  // Execution model: each lane runs serially in issue order; an op starts
  // when its lane predecessor finished and its deps finished; a collective's
  // members start (and end) together. Contract every collective group to a
  // single node; add dep edges and lane-successor edges between nodes. The
  // schedule can always make progress iff this condensed graph is acyclic —
  // so a topological sort here is a deadlock-freedom proof for the
  // simulator and for a real stream-ordered runtime alike.

  int rep_of(int id) const {
    const Op& o = s_.ops[static_cast<std::size_t>(id)];
    if (o.collective < 0) return id;
    const auto it = groups_.find(o.collective);
    return it == groups_.end() ? id : it->second.front();
  }

  void check_cycles() {
    const int n = static_cast<int>(s_.ops.size());
    std::vector<std::set<int>> adj(static_cast<std::size_t>(n));
    auto add_edge = [&](int from, int to, bool from_dep, int dep_from, int dep_to) {
      if (from == to) {
        if (from_dep) {
          report(Severity::Error, Check::DependencyCycle, {dep_to, dep_from},
                 "op " + std::to_string(dep_to) + " depends on op " + std::to_string(dep_from) +
                     ", a member of its own collective group",
                 "collective members start together, so an intra-group dep can never be "
                 "satisfied; depend on the producer of the group instead");
        }
        return;
      }
      adj[static_cast<std::size_t>(from)].insert(to);
    };
    for (const Op& o : s_.ops) {
      for (const int d : o.deps) {
        if (d < 0 || d >= n || d == o.id) continue;  // reported by check_ops
        add_edge(rep_of(d), rep_of(o.id), /*from_dep=*/true, d, o.id);
      }
    }
    for (int dev = 0; dev < s_.num_devices; ++dev) {
      for (const Stream st : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
        const auto& lane = s_.devices[static_cast<std::size_t>(dev)].lane(st);
        for (std::size_t i = 1; i < lane.size(); ++i) {
          if (lane[i - 1] < 0 || lane[i - 1] >= n || lane[i] < 0 || lane[i] >= n) continue;
          add_edge(rep_of(lane[i - 1]), rep_of(lane[i]), /*from_dep=*/false, 0, 0);
        }
      }
    }

    // Kahn's algorithm over the condensed graph.
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (int u = 0; u < n; ++u) {
      for (const int v : adj[static_cast<std::size_t>(u)]) ++indeg[static_cast<std::size_t>(v)];
    }
    std::vector<int> queue;
    for (int u = 0; u < n; ++u) {
      if (rep_of(u) == u && indeg[static_cast<std::size_t>(u)] == 0) queue.push_back(u);
    }
    int processed = 0;
    int node_count = 0;
    for (int u = 0; u < n; ++u) {
      if (rep_of(u) == u) ++node_count;
    }
    while (!queue.empty()) {
      const int u = queue.back();
      queue.pop_back();
      ++processed;
      for (const int v : adj[static_cast<std::size_t>(u)]) {
        if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
      }
    }
    if (processed == node_count) return;

    // Nodes Kahn never processed (indeg still > 0) are everything on *or
    // downstream of* a cycle; walking from an arbitrary one can dead-end at
    // an unprocessed sink and report a non-cycle path. Peel that downstream
    // tail first — iteratively drop unprocessed nodes with no unprocessed
    // successor (reverse Kahn) — so only true cycle members remain, then
    // walk within them.
    std::vector<char> on_cycle(static_cast<std::size_t>(n), 0);
    for (int u = 0; u < n; ++u) {
      on_cycle[static_cast<std::size_t>(u)] =
          rep_of(u) == u && indeg[static_cast<std::size_t>(u)] > 0;
    }
    bool peeled = true;
    while (peeled) {
      peeled = false;
      for (int u = 0; u < n; ++u) {
        if (!on_cycle[static_cast<std::size_t>(u)]) continue;
        const auto& succs = adj[static_cast<std::size_t>(u)];
        const bool has_live_succ = std::any_of(succs.begin(), succs.end(), [&](int v) {
          return on_cycle[static_cast<std::size_t>(v)] != 0;
        });
        if (!has_live_succ) {
          on_cycle[static_cast<std::size_t>(u)] = 0;
          peeled = true;
        }
      }
    }
    int start = -1;
    for (int u = 0; u < n; ++u) {
      if (on_cycle[static_cast<std::size_t>(u)]) {
        start = u;
        break;
      }
    }
    if (start < 0) {  // defensive; the peel cannot remove genuine cycle members
      report(Severity::Error, Check::DependencyCycle, {},
             "dependency + issue-order + collective-coupling graph has a cycle",
             "this schedule deadlocks on any stream-ordered runtime");
      return;
    }
    std::vector<int> path;
    std::vector<int> pos_in_path(static_cast<std::size_t>(n), -1);
    int cur = start;
    while (pos_in_path[static_cast<std::size_t>(cur)] < 0) {
      pos_in_path[static_cast<std::size_t>(cur)] = static_cast<int>(path.size());
      path.push_back(cur);
      int next = -1;
      for (const int v : adj[static_cast<std::size_t>(cur)]) {
        if (on_cycle[static_cast<std::size_t>(v)]) {
          next = v;
          break;
        }
      }
      if (next < 0) break;  // defensive; after the peel every node has a live successor
      cur = next;
    }
    std::vector<int> cycle_ops;
    std::ostringstream msg;
    msg << "dependency + issue-order + collective-coupling graph has a cycle:";
    if (pos_in_path[static_cast<std::size_t>(cur)] >= 0) {
      for (std::size_t i = static_cast<std::size_t>(pos_in_path[static_cast<std::size_t>(cur)]);
           i < path.size(); ++i) {
        const int repr = path[i];
        const Op& ro = s_.ops[static_cast<std::size_t>(repr)];
        msg << " " << (ro.label.empty() ? std::to_string(repr) : ro.label) << "(id "
            << repr << ")";
        if (ro.collective >= 0) {
          for (const int m : groups_.at(ro.collective)) cycle_ops.push_back(m);
        } else {
          cycle_ops.push_back(repr);
        }
      }
    }
    report(Severity::Error, Check::DependencyCycle, cycle_ops, msg.str(),
           "this schedule deadlocks on any stream-ordered runtime; break the cycle by "
           "reordering issue slots or removing the offending dep");
  }

  // --- per-microbatch semantic ordering -------------------------------------
  //
  // All per-microbatch pass pairs we constrain live on the *same* device and
  // stream, where issue order equals execution order (a lane is serial), so
  // a simple lane-position comparison is a sound proof of the runtime order.

  void check_semantic_order() {
    const int n = static_cast<int>(s_.ops.size());
    // lane_pos[id] = position of op id within its lane, or -1 if not issued.
    std::vector<int> lane_pos(static_cast<std::size_t>(n), -1);
    for (int dev = 0; dev < s_.num_devices; ++dev) {
      for (const Stream st : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
        const auto& lane = s_.devices[static_cast<std::size_t>(dev)].lane(st);
        for (std::size_t i = 0; i < lane.size(); ++i) {
          if (lane[i] >= 0 && lane[i] < n) {
            lane_pos[static_cast<std::size_t>(lane[i])] = static_cast<int>(i);
          }
        }
      }
    }
    auto same_lane = [&](const Op& a, const Op& b) {
      return a.device == b.device && a.stream == b.stream &&
             lane_pos[static_cast<std::size_t>(a.id)] >= 0 &&
             lane_pos[static_cast<std::size_t>(b.id)] >= 0;
    };
    auto require_before = [&](const Op& first, const Op& second, const std::string& what,
                              const std::string& hint) {
      if (!same_lane(first, second)) return;  // odd placement; stream checks cover it
      if (lane_pos[static_cast<std::size_t>(first.id)] >=
          lane_pos[static_cast<std::size_t>(second.id)]) {
        report(Severity::Error, Check::SemanticOrder, {second.id, first.id},
               what + " violated for microbatch " + std::to_string(first.microbatch) +
                   " on device " + std::to_string(first.device) + ": " + second.label +
                   " (id " + std::to_string(second.id) + ") issued before " + first.label +
                   " (id " + std::to_string(first.id) + ")",
               hint);
      }
    };

    // Bucket compute passes by (device, microbatch).
    std::map<std::pair<int, int>, std::vector<const Op*>> buckets;
    for (const Op& o : s_.ops) {
      if (is_compute_pass(o.kind) && o.microbatch >= 0 && o.device >= 0 &&
          o.device < s_.num_devices) {
        buckets[{o.device, o.microbatch}].push_back(&o);
      }
    }
    for (const auto& [key, ops] : buckets) {
      (void)key;
      for (const Op* a : ops) {
        for (const Op* b : ops) {
          if (a->kind == OpKind::Forward && is_backward_pass(b->kind) && a->chunk == b->chunk &&
              b->kind != OpKind::BackwardWeight) {
            require_before(*a, *b, "forward-before-backward",
                           "a microbatch's B/BI cannot be issued ahead of its F");
          }
          if (a->kind == OpKind::BackwardInput && b->kind == OpKind::BackwardWeight &&
              a->chunk == b->chunk) {
            require_before(*a, *b, "activation-grad-before-weight-grad",
                           "W consumes BI's intermediate; issue BI first");
          }
          if (a->kind == OpKind::OutputS && b->kind == OpKind::OutputT) {
            require_before(*a, *b, "S-before-T",
                           "the T pass consumes the S pass's shard state (softmax "
                           "statistics); issue S first");
          }
          if (a->kind == OpKind::InputFwd && b->kind == OpKind::InputBwd) {
            require_before(*a, *b, "input-layer fwd/bwd bracketing",
                           "the input layer's backward must follow its forward");
          }
          if (a->kind == OpKind::InputFwd && b->kind == OpKind::Forward && b->chunk == 0) {
            require_before(*a, *b, "input-before-first-forward",
                           "the sharded input layer feeds stage 0's F via the "
                           "embedding all-reduce; issue i ahead of F");
          }
        }
      }
    }
  }

  // --- memory accounting -----------------------------------------------------

  void check_memory() {
    std::vector<double> alloc(static_cast<std::size_t>(s_.num_devices), 0.0);
    std::vector<double> freed(static_cast<std::size_t>(s_.num_devices), 0.0);
    for (const Op& o : s_.ops) {
      if (o.device < 0 || o.device >= s_.num_devices) continue;
      alloc[static_cast<std::size_t>(o.device)] += std::max(0.0, o.alloc_bytes);
      freed[static_cast<std::size_t>(o.device)] += std::max(0.0, o.free_bytes);
    }
    for (int d = 0; d < s_.num_devices; ++d) {
      const double a = alloc[static_cast<std::size_t>(d)];
      const double f = freed[static_cast<std::size_t>(d)];
      const double tol = opt_.memory_balance_rtol * std::max({a, f, 1.0});
      if (std::abs(a - f) > tol) {
        report(Severity::Error, Check::MemoryBalance, {d},
               "device " + std::to_string(d) + " allocates " + std::to_string(a) +
                   " bytes but frees " + std::to_string(f) + " over the iteration",
               "every transient allocation must be released before the next iteration, "
               "or peak memory grows without bound across iterations");
      }
    }

    if (opt_.expected_peak_microbatches >= 0) {
      const std::vector<double> peaks = activation_peak_microbatches(s_);
      const double got = peaks.empty() ? 0.0 : *std::max_element(peaks.begin(), peaks.end());
      if (std::abs(got - opt_.expected_peak_microbatches) > 1e-6) {
        report(Severity::Error, Check::PeakActivation, {},
               "symbolic peak activation is " + std::to_string(got) +
                   " microbatches, expected " +
                   std::to_string(opt_.expected_peak_microbatches),
               "the paper's closed forms are p (1F1B), p+1 (Vocab Alg2), p+2 (Vocab "
               "Alg1): one extra in-flight microbatch per communication barrier");
      }
    }
  }

  // --- stream discipline -----------------------------------------------------

  void check_streams() {
    for (const Op& o : s_.ops) {
      if (is_compute_pass(o.kind) && o.stream != Stream::Compute) {
        report(Severity::Error, Check::StreamDiscipline, {o.id},
               std::string("compute pass ") + vocab::to_string(o.kind) + " (id " +
                   std::to_string(o.id) + ") issued on a communication stream",
               "comm streams model NCCL queues; compute kernels belong on "
               "Stream::Compute");
      }
      if (opt_.require_comm_stream_collectives && o.kind == OpKind::Collective &&
          o.stream == Stream::Compute) {
        report(Severity::Warning, Check::StreamDiscipline, {o.id},
               "collective (id " + std::to_string(o.id) + ", '" + o.label +
                   "') issued on the compute stream",
               "synchronous collectives serialize with compute; move the barrier to "
               "Stream::Comm/CommAlt so it overlaps (paper section 6.1)");
      }
    }
  }

  const PipelineSchedule& s_;
  const VerifyOptions& opt_;
  std::vector<Diagnostic> diags_;
  bool ids_consistent_ = true;
  std::map<int, std::vector<int>> groups_;  // collective id -> member op ids
};

}  // namespace

std::vector<Diagnostic> verify(const PipelineSchedule& schedule, const VerifyOptions& options) {
  return Verifier(schedule, options).run();
}

void verify_or_throw(const PipelineSchedule& schedule, const VerifyOptions& options) {
  const std::vector<Diagnostic> diags = verify(schedule, options);
  const bool fatal = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
  if (fatal) {
    VOCAB_FAIL("schedule '" << schedule.name << "' failed static verification:\n"
                            << render_report(diags));
  }
}

std::vector<double> activation_peak_microbatches(const PipelineSchedule& schedule) {
  std::vector<double> peaks(static_cast<std::size_t>(std::max(0, schedule.num_devices)), 0.0);
  const int n = static_cast<int>(schedule.ops.size());
  for (int dev = 0; dev < schedule.num_devices; ++dev) {
    const auto& lane = schedule.devices[static_cast<std::size_t>(dev)].lane(Stream::Compute);
    // Unit = one forward pass's activation allocation on this device; the
    // generators emit homogeneous forwards per device, so the first one
    // defines the microbatch unit.
    double unit = 0.0;
    for (const int id : lane) {
      if (id < 0 || id >= n) continue;
      const Op& o = schedule.ops[static_cast<std::size_t>(id)];
      if (o.kind == OpKind::Forward && o.alloc_bytes > 0) {
        unit = o.alloc_bytes;
        break;
      }
    }
    if (unit <= 0) continue;
    double live = 0.0, peak = 0.0;
    for (const int id : lane) {
      if (id < 0 || id >= n) continue;
      const Op& o = schedule.ops[static_cast<std::size_t>(id)];
      if (o.kind == OpKind::Forward && o.alloc_bytes > 0) {
        live += o.alloc_bytes / unit;
        peak = std::max(peak, live);
      } else if (is_backward_pass(o.kind) && o.free_bytes > 0) {
        live -= o.free_bytes / unit;
      }
    }
    peaks[static_cast<std::size_t>(dev)] = peak;
  }
  return peaks;
}

}  // namespace vocab::analysis
