#pragma once

// Static schedule verifier: proves the pipeline invariants of a
// PipelineSchedule without simulating it.
//
// The simulator (src/sim) observes properties dynamically — a dropped
// dependency edge or a mis-grouped collective shows up as a deadlock timeout
// or mysterious makespan drift. This pass instead *decides* them on the IR:
//
//   (a) graph well-formedness — ids/deps in range, and acyclicity of the
//       dependency graph augmented with the per-stream issue-order edges and
//       the start/end-together coupling of collectives (members contracted
//       to one node). Acyclicity of that condensed graph is exactly
//       deadlock-freedom of the stream-ordered execution model, so the
//       simulator terminating becomes a theorem rather than a timeout.
//   (b) semantic ordering per (device, microbatch) — F before B/BI, BI
//       before BW, OutputS before OutputT, input-layer fwd/bwd bracketing,
//       and collective membership consistency (same id => same kind, one op
//       per member device, one stream).
//   (c) memory accounting — alloc/free balance per device, plus a symbolic
//       peak-activation count (in microbatches of lifespan) that reproduces
//       the paper's closed forms: p for 1F1B, p+1 for 1F1B-vocab Algorithm 2,
//       p+2 for Algorithm 1 (one extra microbatch per communication barrier).
//   (d) stream discipline — compute passes never issue on a communication
//       stream; optionally, collectives never issue on the compute stream
//       (the interlaced baseline violates this *by design*, which is the
//       paper's Appendix B.2 ablation, so that check is opt-in).
//
// All checks report machine-readable Diagnostics (op ids, severity, fix
// hint) instead of throwing, so corrupted schedules can be inspected; use
// verify_or_throw for the precondition form.

#include <string>
#include <vector>

#include "schedule/ops.h"

namespace vocab::analysis {

enum class Severity { Error, Warning };

/// Which invariant a diagnostic belongs to (stable codes for tests/tools).
enum class Check {
  OpIndex,           ///< op id != its index in `ops`
  DeviceRange,       ///< op device outside [0, num_devices)
  DepRange,          ///< dangling or self dependency edge
  NegativeDuration,  ///< duration < 0
  NegativeBytes,     ///< alloc/free bytes < 0
  LaneMembership,    ///< op missing from / duplicated on / on the wrong lane
  CollectiveShape,   ///< group membership inconsistent (kind/stream/devices)
  CollectiveOrder,   ///< shared collectives issued in different orders
  DependencyCycle,   ///< cycle through deps + issue order + collective coupling
  SemanticOrder,     ///< per-microbatch pass ordering violated
  MemoryBalance,     ///< per-device alloc/free totals diverge
  PeakActivation,    ///< symbolic peak-activation count != expectation
  StreamDiscipline,  ///< compute pass on a comm stream (or barrier on compute)
};

[[nodiscard]] const char* to_string(Severity s);
[[nodiscard]] const char* to_string(Check c);

/// One finding. `ops` lists the implicated op ids (primary first).
struct Diagnostic {
  Severity severity = Severity::Error;
  Check check = Check::OpIndex;
  std::vector<int> ops;
  std::string message;
  std::string hint;  ///< how to fix the generator, e.g. "add a dep edge"
};

[[nodiscard]] std::string to_string(const Diagnostic& d);

/// Multi-line report, one diagnostic per line; empty string when clean.
[[nodiscard]] std::string render_report(const std::vector<Diagnostic>& diags);

struct VerifyOptions {
  /// Report Collective ops issued on Stream::Compute as warnings. Off by
  /// default: the interlaced schedule places its rendezvous there on purpose
  /// (Appendix B.2); turn on for schedules that promise async barriers.
  bool require_comm_stream_collectives = false;

  /// Relative tolerance for the per-device alloc/free balance check.
  double memory_balance_rtol = 1e-9;

  /// Relative tolerance for the collective members' duration-match check
  /// (per-device durations may be computed through different arithmetic
  /// paths and differ by an ULP without being a real shape error).
  double collective_duration_rtol = 1e-9;

  /// When >= 0, additionally assert max-over-devices of
  /// activation_peak_microbatches() equals this (paper closed forms:
  /// p / p+1 / p+2). < 0 skips the check.
  double expected_peak_microbatches = -1.0;
};

/// Run every check; returns all findings (empty == certified).
[[nodiscard]] std::vector<Diagnostic> verify(const PipelineSchedule& schedule,
                                             const VerifyOptions& options = {});

/// Throw CheckError with the rendered report if verify() finds any
/// Error-severity diagnostic (warnings are allowed through).
void verify_or_throw(const PipelineSchedule& schedule, const VerifyOptions& options = {});

/// Symbolic peak activation memory per device, in microbatches of lifespan:
/// scan each device's compute lane in issue order, counting transformer
/// Forward passes (+1 each) against the backward passes that release them
/// (weighted by the fraction of a forward's allocation they free, so split
/// B/W backwards contribute 2/3 + 1/3). Because a lane executes serially,
/// the lane-order maximum of this count *is* the runtime maximum — no
/// simulation involved. Devices with no Forward allocation report 0.
[[nodiscard]] std::vector<double> activation_peak_microbatches(const PipelineSchedule& schedule);

}  // namespace vocab::analysis
