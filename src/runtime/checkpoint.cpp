#include "runtime/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/error.h"

namespace vocab {

namespace {

constexpr std::uint64_t kMagic = 0x564f434142435031ULL;  // "VOCABCP1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t size, const std::string& path) {
  VOCAB_CHECK(std::fwrite(data, 1, size, f) == size, "short write to " << path);
}

void read_bytes(std::FILE* f, void* data, std::size_t size, const std::string& path) {
  VOCAB_CHECK(std::fread(data, 1, size, f) == size, "short read from " << path
                                                                       << " (truncated?)");
}

void write_u64(std::FILE* f, std::uint64_t v, const std::string& path) {
  write_bytes(f, &v, sizeof(v), path);
}

std::uint64_t read_u64(std::FILE* f, const std::string& path) {
  std::uint64_t v = 0;
  read_bytes(f, &v, sizeof(v), path);
  return v;
}

void write_tensor(std::FILE* f, const Tensor& t, const std::string& path) {
  write_u64(f, static_cast<std::uint64_t>(t.rank()), path);
  for (int i = 0; i < t.rank(); ++i) {
    write_u64(f, static_cast<std::uint64_t>(t.dim(i)), path);
  }
  write_bytes(f, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float), path);
}

Tensor read_tensor(std::FILE* f, const std::string& path) {
  const auto rank = read_u64(f, path);
  VOCAB_CHECK(rank >= 1 && rank <= 4, "checkpoint tensor has invalid rank " << rank);
  std::vector<std::int64_t> shape;
  shape.reserve(rank);
  for (std::uint64_t i = 0; i < rank; ++i) {
    shape.push_back(static_cast<std::int64_t>(read_u64(f, path)));
  }
  Tensor t(std::move(shape));
  read_bytes(f, t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float), path);
  return t;
}

}  // namespace

void save_checkpoint(const std::string& path, const GptWeights& weights) {
  File f(std::fopen(path.c_str(), "wb"));
  VOCAB_CHECK(f != nullptr, "cannot open " << path << " for writing");
  write_u64(f.get(), kMagic, path);
  const GptConfig& c = weights.config;
  write_u64(f.get(), static_cast<std::uint64_t>(c.num_layers), path);
  write_u64(f.get(), static_cast<std::uint64_t>(c.heads), path);
  write_u64(f.get(), static_cast<std::uint64_t>(c.hidden), path);
  write_u64(f.get(), static_cast<std::uint64_t>(c.seq_len), path);
  write_u64(f.get(), static_cast<std::uint64_t>(c.vocab), path);
  write_u64(f.get(), c.tie_embeddings ? 1 : 0, path);
  write_tensor(f.get(), weights.input_embedding, path);
  write_tensor(f.get(), weights.pos_embedding, path);
  for (const auto& layer : weights.layers) {
    for (const Tensor* t : {&layer.ln1_g, &layer.ln1_b, &layer.wq, &layer.wk, &layer.wv,
                            &layer.wo, &layer.ln2_g, &layer.ln2_b, &layer.w1, &layer.b1,
                            &layer.w2, &layer.b2}) {
      write_tensor(f.get(), *t, path);
    }
  }
  write_tensor(f.get(), weights.output_weight, path);
  VOCAB_CHECK(std::fflush(f.get()) == 0, "flush failed for " << path);
}

GptWeights load_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  VOCAB_CHECK(f != nullptr, "cannot open checkpoint " << path);
  VOCAB_CHECK(read_u64(f.get(), path) == kMagic, path << " is not a vocab checkpoint");
  GptWeights w;
  w.config.num_layers = static_cast<int>(read_u64(f.get(), path));
  w.config.heads = static_cast<int>(read_u64(f.get(), path));
  w.config.hidden = static_cast<std::int64_t>(read_u64(f.get(), path));
  w.config.seq_len = static_cast<std::int64_t>(read_u64(f.get(), path));
  w.config.vocab = static_cast<std::int64_t>(read_u64(f.get(), path));
  w.config.tie_embeddings = read_u64(f.get(), path) != 0;
  w.input_embedding = read_tensor(f.get(), path);
  w.pos_embedding = read_tensor(f.get(), path);
  w.layers.resize(static_cast<std::size_t>(w.config.num_layers));
  for (auto& layer : w.layers) {
    for (Tensor* t : {&layer.ln1_g, &layer.ln1_b, &layer.wq, &layer.wk, &layer.wv, &layer.wo,
                      &layer.ln2_g, &layer.ln2_b, &layer.w1, &layer.b1, &layer.w2,
                      &layer.b2}) {
      *t = read_tensor(f.get(), path);
    }
  }
  w.output_weight = read_tensor(f.get(), path);
  return w;
}

}  // namespace vocab
