#include "runtime/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include <unistd.h>

#include "common/crc32.h"
#include "common/error.h"

namespace vocab {

namespace {

// "VOCABCP2": version 2 appends a CRC32 trailer and is written via a temp
// file + atomic rename, so a crash mid-save can never leave a torn file at
// the destination path and a torn/bit-flipped file is rejected at load.
constexpr std::uint64_t kMagic = 0x564f434142435032ULL;
constexpr std::uint64_t kMagicV1 = 0x564f434142435031ULL;
// "VOCABCP3": v2 plus a training-state section (loss-scaler state) between
// the output weight and the CRC trailer. v2 files remain loadable.
constexpr std::uint64_t kMagicV3 = 0x564f434142435033ULL;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// FILE wrapper that maintains a running CRC32 of every payload byte written
/// or read after the magic, so save can append — and load can verify — the
/// integrity trailer without buffering the file.
struct Stream {
  std::FILE* f = nullptr;
  const std::string& path;
  std::uint32_t crc = 0;

  void write(const void* data, std::size_t size) {
    VOCAB_CHECK(std::fwrite(data, 1, size, f) == size, "short write to " << path);
    crc = crc32_update(crc, data, size);
  }
  void read(void* data, std::size_t size) {
    VOCAB_CHECK(std::fread(data, 1, size, f) == size,
                "short read from " << path << " at byte " << std::ftell(f)
                                   << " (truncated checkpoint?)");
    crc = crc32_update(crc, data, size);
  }
  void write_u64(std::uint64_t v) { write(&v, sizeof(v)); }
  [[nodiscard]] std::uint64_t read_u64() {
    std::uint64_t v = 0;
    read(&v, sizeof(v));
    return v;
  }
};

void write_tensor(Stream& s, const Tensor& t) {
  s.write_u64(static_cast<std::uint64_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) {
    s.write_u64(static_cast<std::uint64_t>(t.dim(i)));
  }
  s.write(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor read_tensor(Stream& s) {
  const auto rank = s.read_u64();
  VOCAB_CHECK(rank >= 1 && rank <= 4, "checkpoint tensor has invalid rank " << rank);
  std::vector<std::int64_t> shape;
  shape.reserve(rank);
  std::uint64_t numel = 1;
  for (std::uint64_t i = 0; i < rank; ++i) {
    const std::uint64_t dim = s.read_u64();
    // A corrupted dimension must fail here, not as a giant allocation (the
    // CRC check only runs once the payload has been read).
    VOCAB_CHECK(dim >= 1 && dim <= (1ULL << 32),
                "checkpoint tensor has implausible dim " << dim << " (corrupted?)");
    numel *= dim;
    VOCAB_CHECK(numel <= (1ULL << 33), "checkpoint tensor has implausible size (corrupted?)");
    shape.push_back(static_cast<std::int64_t>(dim));
  }
  Tensor t(std::move(shape));
  s.read(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

void write_raw_u64(std::FILE* f, std::uint64_t v, const std::string& path) {
  VOCAB_CHECK(std::fwrite(&v, 1, sizeof(v), f) == sizeof(v), "short write to " << path);
}

std::uint64_t read_raw_u64(std::FILE* f, const std::string& path) {
  std::uint64_t v = 0;
  VOCAB_CHECK(std::fread(&v, 1, sizeof(v), f) == sizeof(v),
              "short read from " << path << " (truncated checkpoint?)");
  return v;
}

}  // namespace

namespace {

void save_checkpoint_impl(const std::string& path, const GptWeights& weights,
                          const CheckpointTrainState* state) {
  // Write to a sibling temp file and rename into place: the destination
  // either keeps its previous (complete) contents or atomically becomes the
  // new complete checkpoint — never a torn intermediate.
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    VOCAB_CHECK(f != nullptr, "cannot open " << tmp << " for writing");
    write_raw_u64(f.get(), state != nullptr ? kMagicV3 : kMagic, tmp);
    Stream s{f.get(), tmp};
    const GptConfig& c = weights.config;
    s.write_u64(static_cast<std::uint64_t>(c.num_layers));
    s.write_u64(static_cast<std::uint64_t>(c.heads));
    s.write_u64(static_cast<std::uint64_t>(c.hidden));
    s.write_u64(static_cast<std::uint64_t>(c.seq_len));
    s.write_u64(static_cast<std::uint64_t>(c.vocab));
    s.write_u64(c.tie_embeddings ? 1 : 0);
    write_tensor(s, weights.input_embedding);
    write_tensor(s, weights.pos_embedding);
    for (const auto& layer : weights.layers) {
      for (const Tensor* t : {&layer.ln1_g, &layer.ln1_b, &layer.wq, &layer.wk, &layer.wv,
                              &layer.wo, &layer.ln2_g, &layer.ln2_b, &layer.w1, &layer.b1,
                              &layer.w2, &layer.b2}) {
        write_tensor(s, *t);
      }
    }
    write_tensor(s, weights.output_weight);
    if (state != nullptr) {
      std::uint32_t scale_bits = 0;
      static_assert(sizeof(scale_bits) == sizeof(state->loss_scale));
      std::memcpy(&scale_bits, &state->loss_scale, sizeof(scale_bits));
      s.write_u64(scale_bits);
      s.write_u64(static_cast<std::uint64_t>(state->scaler_good_steps));
      s.write_u64(static_cast<std::uint64_t>(state->scaler_overflows));
    }
    write_raw_u64(f.get(), s.crc, tmp);
    VOCAB_CHECK(std::fflush(f.get()) == 0, "flush failed for " << tmp);
    VOCAB_CHECK(::fsync(::fileno(f.get())) == 0, "fsync failed for " << tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    VOCAB_FAIL("cannot rename " << tmp << " into " << path);
  }
}

}  // namespace

void save_checkpoint(const std::string& path, const GptWeights& weights) {
  save_checkpoint_impl(path, weights, nullptr);
}

void save_checkpoint(const std::string& path, const GptWeights& weights,
                     const CheckpointTrainState& state) {
  save_checkpoint_impl(path, weights, &state);
}

GptWeights load_checkpoint(const std::string& path) {
  CheckpointTrainState ignored;
  return load_checkpoint(path, ignored);
}

GptWeights load_checkpoint(const std::string& path, CheckpointTrainState& state) {
  File f(std::fopen(path.c_str(), "rb"));
  VOCAB_CHECK(f != nullptr, "cannot open checkpoint " << path);
  const std::uint64_t magic = read_raw_u64(f.get(), path);
  VOCAB_CHECK(magic != kMagicV1,
              path << " is a v1 checkpoint (no integrity trailer); re-save it with this "
                      "version to upgrade");
  VOCAB_CHECK(magic == kMagic || magic == kMagicV3, path << " is not a vocab checkpoint");
  const bool v3 = magic == kMagicV3;
  Stream s{f.get(), path};
  GptWeights w;
  w.config.num_layers = static_cast<int>(s.read_u64());
  w.config.heads = static_cast<int>(s.read_u64());
  w.config.hidden = static_cast<std::int64_t>(s.read_u64());
  w.config.seq_len = static_cast<std::int64_t>(s.read_u64());
  w.config.vocab = static_cast<std::int64_t>(s.read_u64());
  w.config.tie_embeddings = s.read_u64() != 0;
  VOCAB_CHECK(w.config.num_layers >= 0 && w.config.num_layers <= 1 << 20,
              path << " has implausible layer count " << w.config.num_layers
                   << " (corrupted?)");
  w.input_embedding = read_tensor(s);
  w.pos_embedding = read_tensor(s);
  w.layers.resize(static_cast<std::size_t>(w.config.num_layers));
  for (auto& layer : w.layers) {
    for (Tensor* t : {&layer.ln1_g, &layer.ln1_b, &layer.wq, &layer.wk, &layer.wv, &layer.wo,
                      &layer.ln2_g, &layer.ln2_b, &layer.w1, &layer.b1, &layer.w2,
                      &layer.b2}) {
      *t = read_tensor(s);
    }
  }
  w.output_weight = read_tensor(s);
  state = CheckpointTrainState{};
  if (v3) {
    const std::uint64_t scale_u64 = s.read_u64();
    VOCAB_CHECK(scale_u64 <= 0xFFFFFFFFULL, path << " has a corrupt loss-scale field");
    const auto scale_bits = static_cast<std::uint32_t>(scale_u64);
    std::memcpy(&state.loss_scale, &scale_bits, sizeof(state.loss_scale));
    state.scaler_good_steps = static_cast<int>(s.read_u64());
    state.scaler_overflows = static_cast<int>(s.read_u64());
  }
  const std::uint64_t stored_crc = read_raw_u64(f.get(), path);
  VOCAB_CHECK(stored_crc == s.crc,
              path << " failed its CRC32 integrity check: stored " << stored_crc
                   << ", computed " << s.crc << " (bit-flipped or corrupted checkpoint)");
  VOCAB_CHECK(std::fgetc(f.get()) == EOF, path << " has trailing bytes after the CRC trailer");
  return w;
}

}  // namespace vocab
