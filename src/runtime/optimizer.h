#pragma once

// Optimizers for the trainers: plain SGD and Adam (the paper's experiments
// train GPT with Adam under Megatron's mixed-precision recipe; our cost
// model's 18 bytes/param assumes exactly the m/v/master-weight state this
// module materialises).
//
// A ParamOptimizer owns the per-parameter state lazily, so a trainer keeps
// one per tensor and calls step(param, grad) once per iteration. Vocabulary
// shards keep their state sharded — no optimizer communication is needed,
// which is part of the paper's "native to pipeline parallelism" story.

#include <cstdint>

#include "tensor/bf16.h"
#include "tensor/tensor.h"

namespace vocab {

enum class OptimizerKind { Sgd, Adam };

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::Sgd;
  float lr = 0.1f;
  float beta1 = 0.9f;    // Adam only
  float beta2 = 0.999f;  // Adam only
  float eps = 1e-8f;     // Adam only

  /// Global gradient-norm clip threshold; <= 0 disables clipping. Applied by
  /// the trainers before any step: gradients are scaled by
  /// max_grad_norm / norm when the global norm (all parameters, all shards)
  /// exceeds the threshold. See guard/grad_clip.h for how the sharded norm
  /// stays bit-identical to the single-device one.
  float max_grad_norm = 0.0f;

  static OptimizerConfig sgd(float lr) { return {OptimizerKind::Sgd, lr}; }
  static OptimizerConfig adam(float lr) { return {OptimizerKind::Adam, lr}; }
};

/// Optimizer state for one parameter tensor.
class ParamOptimizer {
 public:
  /// Apply one update of `grad` to `param` under `cfg`. Adam state buffers
  /// are allocated on first use and sized to the parameter.
  void step(Tensor& param, const Tensor& grad, const OptimizerConfig& cfg);

  /// Mixed-precision step: `param` is the bf16 working copy; the fp32 master
  /// weight lives here (seeded exactly from the bf16 values on first use).
  /// The update runs entirely in fp32 on the master, which is then rounded
  /// back into `param` — the Megatron master-weight recipe, so repeated tiny
  /// updates cannot be swallowed by bf16's 8-bit significand.
  void step_master(Bf16Tensor& param, const Tensor& grad, const OptimizerConfig& cfg);

  /// The fp32 master (empty until the first step_master call).
  [[nodiscard]] const Tensor& master() const { return master_; }

  [[nodiscard]] int steps_taken() const { return t_; }

 private:
  Tensor m_;
  Tensor v_;
  Tensor master_;  // step_master only
  int t_ = 0;
};

}  // namespace vocab
