#include "runtime/schedule_executor.h"

#include <chrono>
#include <exception>
#include <queue>
#include <thread>
#include <utility>

#include "analysis/verifier.h"
#include "common/error.h"
#include "parallel/thread_pool.h"
#include "sim/pipeline_sim.h"

namespace vocab {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Union collective members into one condensed node (all members start and
/// end together, so they execute as a unit of the order). Representative =
/// smallest member id.
std::vector<int> condensed_representatives(const PipelineSchedule& s) {
  std::vector<int> rep(s.ops.size());
  for (std::size_t i = 0; i < s.ops.size(); ++i) rep[i] = static_cast<int>(i);
  std::vector<int> first_member;  // by collective id
  for (const Op& op : s.ops) {
    if (op.collective < 0) continue;
    if (op.collective >= static_cast<int>(first_member.size())) {
      first_member.resize(static_cast<std::size_t>(op.collective) + 1, -1);
    }
    int& f = first_member[static_cast<std::size_t>(op.collective)];
    if (f < 0) f = op.id;
    rep[static_cast<std::size_t>(op.id)] = f;
  }
  return rep;
}

}  // namespace

double ExecutorStats::idle_fraction(int device) const {
  if (wall_seconds <= 0.0) return 0.0;
  const double busy = compute_seconds[static_cast<std::size_t>(device)];
  return busy >= wall_seconds ? 0.0 : 1.0 - busy / wall_seconds;
}

ScheduleExecutor::ScheduleExecutor(PipelineSchedule schedule, int total_threads)
    : schedule_(std::move(schedule)) {
  // Precondition: the static verifier must certify the schedule — the
  // topological order below only exists (and the no-deadlock argument only
  // holds) for the acyclic condensed graph the verifier proves.
  analysis::verify_or_throw(schedule_);

  // Predicted start times key the tie-breaking so the common linearization
  // tracks the simulator's intended overlap instead of op creation order.
  const SimResult sim = simulate(schedule_, /*memory_capacity=*/0.0, SimVerify::kOff);

  const std::vector<int> rep = condensed_representatives(schedule_);
  const std::size_t n = schedule_.ops.size();
  std::vector<std::vector<int>> adj(n);
  std::vector<int> indegree(n, 0);
  auto add_edge = [&](int from, int to) {
    const int u = rep[static_cast<std::size_t>(from)];
    const int v = rep[static_cast<std::size_t>(to)];
    if (u == v) return;
    adj[static_cast<std::size_t>(u)].push_back(v);
    ++indegree[static_cast<std::size_t>(v)];
  };
  for (const Op& op : schedule_.ops) {
    for (const int dep : op.deps) add_edge(dep, op.id);
  }
  for (const DeviceLanes& lanes : schedule_.devices) {
    for (const Stream stream : {Stream::Compute, Stream::Comm, Stream::CommAlt}) {
      const std::vector<int>& lane = lanes.lane(stream);
      for (std::size_t i = 1; i < lane.size(); ++i) add_edge(lane[i - 1], lane[i]);
    }
  }

  // Kahn's algorithm over condensed nodes, min-heap keyed by (simulated
  // start, id). Every member op of a popped node lands on its own device's
  // sequence; devices thereby agree on the relative order of all shared
  // collectives.
  using Key = std::pair<double, int>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (rep[i] == static_cast<int>(i) && indegree[i] == 0) {
      ready.emplace(sim.times[i].start, static_cast<int>(i));
    }
  }
  // Collect each condensed node's member ops up front.
  std::vector<std::vector<int>> members(n);
  for (const Op& op : schedule_.ops) members[static_cast<std::size_t>(rep[static_cast<std::size_t>(op.id)])].push_back(op.id);

  sequences_.assign(static_cast<std::size_t>(schedule_.num_devices), {});
  std::size_t emitted = 0;
  while (!ready.empty()) {
    const int node = ready.top().second;
    ready.pop();
    for (const int id : members[static_cast<std::size_t>(node)]) {
      sequences_[static_cast<std::size_t>(schedule_.op(id).device)].push_back(id);
      ++emitted;
    }
    for (const int next : adj[static_cast<std::size_t>(node)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.emplace(sim.times[static_cast<std::size_t>(next)].start, next);
      }
    }
  }
  VOCAB_CHECK(emitted == n, "topological order incomplete: " << emitted << " of " << n
                                                             << " ops emitted");

  // Partition the intra-op thread budget across the device threads.
  const int total = total_threads > 0 ? total_threads : parallel::num_threads();
  const int per_device = total / std::max(schedule_.num_devices, 1);
  if (per_device >= 2) {
    threads_per_device_ = per_device;
    for (int d = 0; d < schedule_.num_devices; ++d) {
      pools_.push_back(std::make_unique<parallel::ThreadPool>(per_device));
    }
  }
}

ScheduleExecutor::~ScheduleExecutor() = default;

const std::vector<int>& ScheduleExecutor::device_sequence(int device) const {
  VOCAB_CHECK(device >= 0 && device < schedule_.num_devices,
              "device " << device << " out of range");
  return sequences_[static_cast<std::size_t>(device)];
}

void ScheduleExecutor::set_abort_token(std::shared_ptr<AbortToken> token) {
  abort_ = std::move(token);
}

void ScheduleExecutor::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
}

void ScheduleExecutor::set_nan_fence(std::shared_ptr<guard::NanFence> fence) {
  fence_ = std::move(fence);
}

void ScheduleExecutor::enable_watchdog(WatchdogConfig config) {
  watchdog_config_ = config;
  watchdog_enabled_ = true;
}

void ScheduleExecutor::set_comm_snapshot(std::function<std::string()> snapshot) {
  comm_snapshot_ = std::move(snapshot);
}

void ScheduleExecutor::run(OpRunner& runner) {
  const int p = schedule_.num_devices;
  stats_.wall_seconds = 0.0;
  stats_.compute_seconds.assign(static_cast<std::size_t>(p), 0.0);
  watchdog_report_.clear();

  // A run over an already-aborted token would have every comm wait throw
  // immediately; the owner must rebuild (or reset) first.
  const std::shared_ptr<AbortToken> token =
      abort_ != nullptr ? abort_ : std::make_shared<AbortToken>();
  VOCAB_CHECK(!token->aborted(),
              "executor started on an aborted runtime: " << token->reason().what
                                                         << " — rebuild before retrying");

  std::unique_ptr<Watchdog> watchdog;
  if (watchdog_enabled_) {
    watchdog = std::make_unique<Watchdog>(
        p, watchdog_config_, token,
        [this](int device, int op_id) {
          const Op& op = schedule_.op(op_id);
          return "op '" + op.label + "' (id " + std::to_string(op_id) + ", " +
                 to_string(op.kind) + ") on device " + std::to_string(device);
        },
        comm_snapshot_);
    watchdog->start();
  }

  // Per-device outcome of this run. kKilled threads raise no abort: the
  // fault model for a silently-dying rank is that only the watchdog's stall
  // deadline can discover it.
  enum class Outcome { kOk, kFailed, kAborted, kKilled };
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<Outcome> outcomes(static_cast<std::size_t>(p), Outcome::kOk);

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    threads.emplace_back([&, d] {
      // Route this device thread's parallel_for to its private pool slice
      // (or force serial when the machine is narrower than the pipeline).
      parallel::ScopedPool scope(pools_.empty() ? nullptr : pools_[static_cast<std::size_t>(d)].get());
      double compute = 0.0;
      int current_op = -1;
      try {
        for (const int id : sequences_[static_cast<std::size_t>(d)]) {
          const Op& op = schedule_.op(id);
          current_op = id;
          // Devices busy computing (not blocked in a wait) still stop at the
          // next op boundary after a peer fails.
          token->throw_if_aborted("device " + std::to_string(d) + " before op '" + op.label +
                                  "'");
          if (watchdog != nullptr) watchdog->heartbeat(d, id);
          if (injector_ != nullptr) injector_->on_op(d, id, op.label, token.get());
          if (fence_ != nullptr && fence_->active()) fence_->begin_op(d, op.label, op.microbatch);
          if (op.stream == Stream::Compute) {
            const auto op_t0 = Clock::now();
            runner.run_op(op);
            compute += seconds_since(op_t0);
          } else {
            runner.run_op(op);
          }
        }
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (const ThreadKilledFault&) {
        // Simulated silent thread death: no abort, no mark_done — the
        // watchdog must discover the stall from the missing heartbeats.
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] = Outcome::kKilled;
      } catch (const AbortedError&) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] = Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        // Only the thread whose abort() wins is the originating failure; a
        // losing abort means this exception is secondary fallout (e.g. a
        // poisoned-communicator error raised after a peer already aborted).
        outcomes[static_cast<std::size_t>(d)] =
            token->abort(AbortReason{d, current_op, e.what()}) ? Outcome::kFailed
                                                               : Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (...) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] =
            token->abort(AbortReason{d, current_op, "non-standard exception"})
                ? Outcome::kFailed
                : Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      }
      stats_.compute_seconds[static_cast<std::size_t>(d)] = compute;
    });
  }
  for (auto& t : threads) t.join();
  if (watchdog != nullptr) {
    watchdog->stop();
    watchdog_report_ = watchdog->last_report();
  }
  stats_.wall_seconds = seconds_since(t0);

  // Rethrow the originating failure, not a peer's secondary AbortedError.
  // Priority: a real op failure, then a silent kill, then the first abort
  // observation (e.g. all survivors of a watchdog-detected stall).
  for (const Outcome target : {Outcome::kFailed, Outcome::kKilled, Outcome::kAborted}) {
    for (int d = 0; d < p; ++d) {
      if (outcomes[static_cast<std::size_t>(d)] == target &&
          errors[static_cast<std::size_t>(d)] != nullptr) {
        std::rethrow_exception(errors[static_cast<std::size_t>(d)]);
      }
    }
  }
}

}  // namespace vocab
