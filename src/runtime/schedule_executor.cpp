#include "runtime/schedule_executor.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "comm/channel.h"  // default_comm_timeout
#include "common/env.h"
#include "common/error.h"
#include "parallel/thread_pool.h"
#include "program/compiler.h"
#include "program/program_verifier.h"

namespace vocab {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

ExecutorBackend backend_from_env() {
  const std::string choice =
      choice_from_env("VOCAB_EXECUTOR", "structs", {"structs", "program"});
  return choice == "program" ? ExecutorBackend::kProgram : ExecutorBackend::kStructs;
}

}  // namespace

const char* to_string(ExecutorBackend backend) {
  switch (backend) {
    case ExecutorBackend::kStructs: return "structs";
    case ExecutorBackend::kProgram: return "program";
  }
  return "?";
}

double ExecutorStats::idle_fraction(int device) const {
  if (wall_seconds <= 0.0) return 0.0;
  const double busy = compute_seconds[static_cast<std::size_t>(device)];
  return busy >= wall_seconds ? 0.0 : 1.0 - busy / wall_seconds;
}

/// Per-run interpreter comm state: one tag mailbox per lane (SEND posts,
/// RECV blocks) and shared barrier arrival counts. Waits slice their comm
/// timeout by kAbortPollInterval so an abort anywhere unblocks them fast.
struct ScheduleExecutor::TokenBoxes {
  struct Box {
    std::mutex mutex;
    std::condition_variable cv;
    std::multiset<int> tags;
  };

  explicit TokenBoxes(int num_lanes) : boxes(static_cast<std::size_t>(num_lanes)) {}

  std::vector<Box> boxes;
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  std::map<int, int> barrier_arrivals;  // barrier id -> lanes arrived

  void post(int lane, int tag) {
    Box& box = boxes[static_cast<std::size_t>(lane)];
    {
      const std::lock_guard<std::mutex> lock(box.mutex);
      box.tags.insert(tag);
    }
    box.cv.notify_all();
  }

  void wait(int lane, int tag, const AbortToken& token, const std::string& context) {
    Box& box = boxes[static_cast<std::size_t>(lane)];
    const auto t0 = Clock::now();
    const auto deadline = t0 + default_comm_timeout();
    std::unique_lock<std::mutex> lock(box.mutex);
    for (;;) {
      const auto it = box.tags.find(tag);
      if (it != box.tags.end()) {
        box.tags.erase(it);
        return;
      }
      token.throw_if_aborted(context);
      if (Clock::now() >= deadline) {
        throw DeadlockError("interpreter RECV timed out: " + context);
      }
      box.cv.wait_for(lock, kAbortPollInterval);
    }
  }

  void barrier(int id, int num_lanes, const AbortToken& token, const std::string& context) {
    std::unique_lock<std::mutex> lock(barrier_mutex);
    const int arrived = ++barrier_arrivals[id];
    if (arrived >= num_lanes) {
      barrier_cv.notify_all();
      return;
    }
    const auto deadline = Clock::now() + default_comm_timeout();
    while (barrier_arrivals[id] < num_lanes) {
      token.throw_if_aborted(context);
      if (Clock::now() >= deadline) {
        throw DeadlockError("interpreter BARRIER timed out: " + context);
      }
      barrier_cv.wait_for(lock, kAbortPollInterval);
    }
  }
};

ScheduleExecutor::ScheduleExecutor(PipelineSchedule schedule, int total_threads)
    : schedule_(std::move(schedule)) {
  // Lowering: the compiler verifies the schedule (precondition — the
  // projection only exists for the proven-acyclic condensed graph), derives
  // the common linearization and emits per-device bytecode. Translation
  // validation: the program verifier then re-decides every invariant on the
  // compiled artifact, with the source schedule for the dependency-
  // realization check — a compiler bug cannot reach run().
  program_ = program::compile_schedule(schedule_);
  program::verify_program_or_throw(program_, &schedule_);
  sequences_ = program::device_sequences(program_);
  backend_ = backend_from_env();

  // Partition the intra-op thread budget across the device threads.
  const int total = total_threads > 0 ? total_threads : parallel::num_threads();
  const int per_device = total / std::max(schedule_.num_devices, 1);
  if (per_device >= 2) {
    threads_per_device_ = per_device;
    for (int d = 0; d < schedule_.num_devices; ++d) {
      pools_.push_back(std::make_unique<parallel::ThreadPool>(per_device));
    }
  }
}

ScheduleExecutor::~ScheduleExecutor() = default;

const std::vector<int>& ScheduleExecutor::device_sequence(int device) const {
  VOCAB_CHECK(device >= 0 && device < schedule_.num_devices,
              "device " << device << " out of range");
  return sequences_[static_cast<std::size_t>(device)];
}

void ScheduleExecutor::set_abort_token(std::shared_ptr<AbortToken> token) {
  abort_ = std::move(token);
}

void ScheduleExecutor::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
}

void ScheduleExecutor::set_nan_fence(std::shared_ptr<guard::NanFence> fence) {
  fence_ = std::move(fence);
}

void ScheduleExecutor::enable_watchdog(WatchdogConfig config) {
  watchdog_config_ = config;
  watchdog_enabled_ = true;
}

void ScheduleExecutor::set_comm_snapshot(std::function<std::string()> snapshot) {
  comm_snapshot_ = std::move(snapshot);
}

void ScheduleExecutor::set_peer_probe(std::function<std::vector<WatchdogPeerLink>()> probe) {
  peer_probe_ = std::move(probe);
}

void ScheduleExecutor::set_program(program::CompiledProgram prog) {
  program::verify_program_or_throw(prog, &schedule_);
  const std::vector<std::vector<int>> sequences = program::device_sequences(prog);
  VOCAB_CHECK(sequences == sequences_,
              "loaded program '" << prog.schedule_name
                                 << "' dispatches different per-device kernel sequences "
                                    "than the compiled schedule '"
                                 << schedule_.name << "'");
  program_ = std::move(prog);
}

namespace {

/// The per-op dispatch protocol shared by both backends: abort check,
/// watchdog heartbeat, fault injection, fence attribution, compute timing.
void dispatch_op(OpRunner& runner, const Op& op, int device, AbortToken& token,
                 Watchdog* watchdog, FaultInjector* injector, guard::NanFence* fence,
                 double& compute_seconds) {
  // Devices busy computing (not blocked in a wait) still stop at the next
  // op boundary after a peer fails.
  token.throw_if_aborted("device " + std::to_string(device) + " before op '" + op.label +
                         "'");
  if (watchdog != nullptr) watchdog->heartbeat(device, op.id);
  if (injector != nullptr) injector->on_op(device, op.id, op.label, &token);
  if (fence != nullptr && fence->active()) fence->begin_op(device, op.label, op.microbatch);
  if (op.stream == Stream::Compute) {
    const auto op_t0 = Clock::now();
    runner.run_op(op);
    compute_seconds += seconds_since(op_t0);
  } else {
    runner.run_op(op);
  }
}

}  // namespace

void ScheduleExecutor::run_structs_lane(OpRunner& runner, int device, Watchdog* watchdog,
                                        AbortToken& token, double& compute_seconds,
                                        int& current_op) {
  for (const int id : sequences_[static_cast<std::size_t>(device)]) {
    current_op = id;
    dispatch_op(runner, schedule_.op(id), device, token, watchdog, injector_.get(),
                fence_.get(), compute_seconds);
  }
}

void ScheduleExecutor::run_program_lane(OpRunner& runner, int device, Watchdog* watchdog,
                                        AbortToken& token, TokenBoxes& boxes,
                                        double& compute_seconds, int& current_op) {
  const std::vector<program::Instr>& code = program_.lanes[static_cast<std::size_t>(device)];
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const program::Instr& in = code[pc];
    switch (in.op) {
      case program::Opcode::kCall:
        current_op = in.a;
        dispatch_op(runner, schedule_.op(in.a), device, token, watchdog, injector_.get(),
                    fence_.get(), compute_seconds);
        break;
      case program::Opcode::kColl:
        // The OpRunner rendezvouses collective members itself (DeviceGroup);
        // the instruction only fixes this lane's issue position.
        current_op = in.b;
        dispatch_op(runner, schedule_.op(in.b), device, token, watchdog, injector_.get(),
                    fence_.get(), compute_seconds);
        break;
      case program::Opcode::kSend:
        boxes.post(in.b, in.a);
        break;
      case program::Opcode::kRecv:
        boxes.wait(device, in.a, token,
                   "device " + std::to_string(device) + " pc " + std::to_string(pc) +
                       " RECV tag " + std::to_string(in.a) + " from lane " +
                       std::to_string(in.b));
        break;
      case program::Opcode::kAlloc:
      case program::Opcode::kFree:
        // Memory accounting instructions carry no runtime action here; the
        // program verifier has already proven their balance and peak.
        break;
      case program::Opcode::kBarrier:
        boxes.barrier(in.a, schedule_.num_devices, token,
                      "device " + std::to_string(device) + " pc " + std::to_string(pc) +
                          " BARRIER " + std::to_string(in.a));
        break;
      case program::Opcode::kHalt:
        return;
    }
  }
}

void ScheduleExecutor::run_lane(OpRunner& runner, int device) {
  const int p = schedule_.num_devices;
  VOCAB_CHECK(device >= 0 && device < p, "lane device " << device << " out of range [0, " << p
                                                        << ")");
  VOCAB_CHECK(backend_ == ExecutorBackend::kStructs,
              "run_lane requires the structs backend: the program interpreter's token "
              "mailboxes are in-process and cannot span worker processes");
  stats_.wall_seconds = 0.0;
  stats_.compute_seconds.assign(static_cast<std::size_t>(p), 0.0);
  watchdog_report_.clear();

  const std::shared_ptr<AbortToken> token =
      abort_ != nullptr ? abort_ : std::make_shared<AbortToken>();
  VOCAB_CHECK(!token->aborted(),
              "executor started on an aborted runtime: " << token->reason().what
                                                         << " — rebuild before retrying");

  std::unique_ptr<Watchdog> watchdog;
  if (watchdog_enabled_) {
    watchdog = std::make_unique<Watchdog>(
        p, watchdog_config_, token,
        [this](int d, int op_id) {
          const Op& op = schedule_.op(op_id);
          return "op '" + op.label + "' (id " + std::to_string(op_id) + ", " +
                 to_string(op.kind) + ") on device " + std::to_string(d);
        },
        comm_snapshot_);
    if (peer_probe_) watchdog->set_peer_probe(peer_probe_);
    // The other lanes live in other processes and never heartbeat here; the
    // local watchdog only monitors this lane (peer death is the transport's
    // heartbeat monitor's job).
    for (int d = 0; d < p; ++d) {
      if (d != device) watchdog->mark_done(d);
    }
    watchdog->start();
  }

  const auto t0 = Clock::now();
  parallel::ScopedPool scope(
      pools_.empty() ? nullptr : pools_[static_cast<std::size_t>(device)].get());
  double compute = 0.0;
  int current_op = -1;
  try {
    run_structs_lane(runner, device, watchdog.get(), *token, compute, current_op);
    if (watchdog != nullptr) watchdog->mark_done(device);
  } catch (const AbortedError&) {
    if (watchdog != nullptr) {
      watchdog->mark_done(device);
      watchdog->stop();
      watchdog_report_ = watchdog->last_report();
    }
    stats_.compute_seconds[static_cast<std::size_t>(device)] = compute;
    stats_.wall_seconds = seconds_since(t0);
    throw;
  } catch (const std::exception& e) {
    token->abort(AbortReason{device, current_op, e.what()});
    if (watchdog != nullptr) {
      watchdog->mark_done(device);
      watchdog->stop();
      watchdog_report_ = watchdog->last_report();
    }
    stats_.compute_seconds[static_cast<std::size_t>(device)] = compute;
    stats_.wall_seconds = seconds_since(t0);
    throw;
  }
  if (watchdog != nullptr) {
    watchdog->stop();
    watchdog_report_ = watchdog->last_report();
  }
  stats_.compute_seconds[static_cast<std::size_t>(device)] = compute;
  stats_.wall_seconds = seconds_since(t0);
}

void ScheduleExecutor::run(OpRunner& runner) {
  const int p = schedule_.num_devices;
  stats_.wall_seconds = 0.0;
  stats_.compute_seconds.assign(static_cast<std::size_t>(p), 0.0);
  watchdog_report_.clear();

  // A run over an already-aborted token would have every comm wait throw
  // immediately; the owner must rebuild (or reset) first.
  const std::shared_ptr<AbortToken> token =
      abort_ != nullptr ? abort_ : std::make_shared<AbortToken>();
  VOCAB_CHECK(!token->aborted(),
              "executor started on an aborted runtime: " << token->reason().what
                                                         << " — rebuild before retrying");

  std::unique_ptr<Watchdog> watchdog;
  if (watchdog_enabled_) {
    watchdog = std::make_unique<Watchdog>(
        p, watchdog_config_, token,
        [this](int device, int op_id) {
          const Op& op = schedule_.op(op_id);
          return "op '" + op.label + "' (id " + std::to_string(op_id) + ", " +
                 to_string(op.kind) + ") on device " + std::to_string(device);
        },
        comm_snapshot_);
    if (peer_probe_) watchdog->set_peer_probe(peer_probe_);
    watchdog->start();
  }

  // Fresh interpreter comm state per run: tokens from a previous (possibly
  // aborted) run must not satisfy this run's RECVs.
  TokenBoxes boxes(p);

  // Per-device outcome of this run. kKilled threads raise no abort: the
  // fault model for a silently-dying rank is that only the watchdog's stall
  // deadline can discover it.
  enum class Outcome { kOk, kFailed, kAborted, kKilled };
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<Outcome> outcomes(static_cast<std::size_t>(p), Outcome::kOk);

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    threads.emplace_back([&, d] {
      // Route this device thread's parallel_for to its private pool slice
      // (or force serial when the machine is narrower than the pipeline).
      parallel::ScopedPool scope(pools_.empty() ? nullptr : pools_[static_cast<std::size_t>(d)].get());
      double compute = 0.0;
      int current_op = -1;
      try {
        if (backend_ == ExecutorBackend::kProgram) {
          run_program_lane(runner, d, watchdog.get(), *token, boxes, compute, current_op);
        } else {
          run_structs_lane(runner, d, watchdog.get(), *token, compute, current_op);
        }
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (const ThreadKilledFault&) {
        // Simulated silent thread death: no abort, no mark_done — the
        // watchdog must discover the stall from the missing heartbeats.
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] = Outcome::kKilled;
      } catch (const AbortedError&) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] = Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        // Only the thread whose abort() wins is the originating failure; a
        // losing abort means this exception is secondary fallout (e.g. a
        // poisoned-communicator error raised after a peer already aborted).
        outcomes[static_cast<std::size_t>(d)] =
            token->abort(AbortReason{d, current_op, e.what()}) ? Outcome::kFailed
                                                               : Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      } catch (...) {
        errors[static_cast<std::size_t>(d)] = std::current_exception();
        outcomes[static_cast<std::size_t>(d)] =
            token->abort(AbortReason{d, current_op, "non-standard exception"})
                ? Outcome::kFailed
                : Outcome::kAborted;
        if (watchdog != nullptr) watchdog->mark_done(d);
      }
      stats_.compute_seconds[static_cast<std::size_t>(d)] = compute;
    });
  }
  for (auto& t : threads) t.join();
  if (watchdog != nullptr) {
    watchdog->stop();
    watchdog_report_ = watchdog->last_report();
  }
  stats_.wall_seconds = seconds_since(t0);

  // Rethrow the originating failure, not a peer's secondary AbortedError.
  // Priority: a real op failure, then a silent kill, then the first abort
  // observation (e.g. all survivors of a watchdog-detected stall).
  for (const Outcome target : {Outcome::kFailed, Outcome::kKilled, Outcome::kAborted}) {
    for (int d = 0; d < p; ++d) {
      if (outcomes[static_cast<std::size_t>(d)] == target &&
          errors[static_cast<std::size_t>(d)] != nullptr) {
        std::rethrow_exception(errors[static_cast<std::size_t>(d)]);
      }
    }
  }
}

}  // namespace vocab
