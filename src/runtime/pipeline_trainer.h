#pragma once

// Multi-threaded vocabulary-parallel pipeline trainer with real numerics.
//
// Each simulated pipeline device is an OS thread holding:
//   * its shard of the input embedding (InputLayerShard),
//   * its contiguous run of transformer layers (TransformerStack; V-Half
//     devices hold two chunks),
//   * its shard of the output layer (OutputLayerShard, Alg1 or Alg2).
// Activations flow stage-to-stage over Channels; the output/input layers'
// collectives run over a DeviceGroup — exactly the communication structure
// the paper's Megatron implementation uses, so dependency mistakes surface
// as tag mismatches or deadlock timeouts rather than silent corruption.
//
// Two execution paths share the same shards and optimizer state:
//   * Naive: the original synchronous loop — one microbatch at a time with a
//     rendezvous broadcast per microbatch. No pipelining; kept as the A/B
//     baseline the wall-clock bench compares against.
//   * Scheduled: a generator-emitted PipelineSchedule (GPipe / 1F1B /
//     1F1B-vocab / V-Half), statically verified, driven by the
//     ScheduleExecutor — microbatches genuinely in flight together, P2P
//     sends non-blocking, collective barriers overlapped with compute.

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/abort_token.h"
#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "core/input_layer_shard.h"
#include "core/output_layer_shard.h"
#include "guard/nan_fence.h"
#include "model/gpt.h"
#include "model/transformer.h"
#include "runtime/loss_scaler.h"
#include "runtime/optimizer.h"
#include "runtime/schedule_executor.h"

namespace vocab {

namespace transport {
class Transport;
}

/// Which execution strategy train_iteration uses.
enum class PipelineFlavor {
  Naive,         ///< synchronous per-microbatch loop (no pipelining)
  Baseline1F1B,  ///< plain 1F1B schedule, vocab layers whole on first/last stage
  Gpipe,         ///< GPipe + Vocabulary Parallelism schedule
  OneFOneBVocab, ///< 1F1B + Vocabulary Parallelism schedule (the paper's main result)
  VHalf,         ///< V-Half + Vocabulary Parallelism schedule (Vocab-1)
  ZbVocab,       ///< zero-bubble family: BI/BW split backward + Vocabulary Parallelism
  Auto,          ///< cost-model-driven schedule search picks the executed schedule
};

[[nodiscard]] const char* to_string(PipelineFlavor flavor);

/// Resolve the VOCAB_SCHEDULE env var — one of naive / 1f1b / gpipe /
/// 1f1b-vocab / v-half / zb-vocab / auto — into a flavor. Unset (or empty)
/// returns `fallback`; any other value throws. The PipelineTrainer
/// constructor applies this, so exporting VOCAB_SCHEDULE=auto reroutes any
/// trainer without a code change.
[[nodiscard]] PipelineFlavor flavor_from_env(PipelineFlavor fallback);

/// Knobs for the generated schedule (ZbVocab and Auto flavors).
struct ScheduleTuning {
  /// ZbVocab: whole cycles each BW lags its BI (controllable-memory dial).
  /// 0 keeps 1F1B-vocab's peak activation memory; each +1 adds 1/3 mb.
  int zb_w_delay = 1;
  /// Override the inserted-interval count; -1 = the algorithm's default.
  int inserted_intervals = -1;
  /// Auto: peak-memory cap (bytes/device) the search filters by; 0 = uncapped.
  double memory_cap_bytes = 0.0;
};

/// bf16 mixed-precision knobs (vocab-sharded flavors only).
struct MixedPrecisionConfig {
  bool bf16_vocab = true;  ///< store input/output shard weights as bf16
  bool bf16_comm = true;   ///< quantize stage-boundary act/grad payloads to bf16
  LossScalerConfig loss_scale = {};
};

class PipelineTrainer {
 public:
  /// Shards `weights` across `p` pipeline devices; requires p | num_layers
  /// (2p | num_layers for VHalf). Baseline1F1B keeps the vocabulary layers
  /// whole on the first/last device instead of sharding them.
  ///
  /// `transport` (nullable) selects the comm backend the trainer's channels
  /// and collective group are built on: null uses the process default
  /// (VOCAB_TRANSPORT); an attached shm transport makes this trainer one
  /// lane of a multi-process group (see train_iteration_lane). The trainer
  /// borrows the pointer — the transport must outlive it.
  PipelineTrainer(GptWeights weights, int p, OutputAlgo algo,
                  PipelineFlavor flavor = PipelineFlavor::Naive,
                  transport::Transport* transport = nullptr);
  ~PipelineTrainer();

  PipelineTrainer(const PipelineTrainer&) = delete;
  PipelineTrainer& operator=(const PipelineTrainer&) = delete;

  /// One optimizer step over `microbatches`; returns the mean loss (identical
  /// on every device by construction of the loss all-reduce).
  float train_iteration(const std::vector<Sample>& microbatches, const OptimizerConfig& opt);

  /// SGD convenience overload.
  float train_iteration(const std::vector<Sample>& microbatches, float lr) {
    return train_iteration(microbatches, OptimizerConfig::sgd(lr));
  }

  /// Multi-process entry point: run ONLY `rank`'s share of one training
  /// iteration on the calling thread. Every rank of the group must call this
  /// with the same microbatches and optimizer config — each worker process
  /// owns one trainer built over the same attached shm transport, and the
  /// cross-rank ordering that sibling threads provide under train_iteration
  /// comes from the transport's blocking recvs and collective rendezvous
  /// instead. Scheduled flavors only (structs executor backend); mixed
  /// precision and the naive flavor are not supported in lane mode. Returns
  /// the mean loss (meaningful on rank 0; the folded baseline forwards its
  /// last-stage losses to rank 0 first).
  float train_iteration_lane(int rank, const std::vector<Sample>& microbatches,
                             const OptimizerConfig& opt);

  /// Lane-mode companion to export_weights(): rank 0 returns the full model
  /// with every other rank's shards gathered over the mailboxes (tagged with
  /// `seq` so successive gathers cannot alias); other ranks send their
  /// shards and return an empty GptWeights. Collective: every rank must
  /// call it with the same `seq`.
  GptWeights gather_weights_lane(int rank, std::uint64_t seq);

  [[nodiscard]] int num_devices() const { return p_; }
  [[nodiscard]] OutputAlgo algo() const { return algo_; }
  [[nodiscard]] PipelineFlavor flavor() const { return flavor_; }
  [[nodiscard]] const GptConfig& config() const { return config_; }

  /// Stats of the most recent scheduled train_iteration (null for the Naive
  /// flavor or before the first iteration).
  [[nodiscard]] const ExecutorStats* last_executor_stats() const;

  /// The trainer's shared abort token. The first device-thread failure in a
  /// train_iteration aborts it, which unblocks every channel/collective wait
  /// in milliseconds; the trainer is then poisoned — further iterations
  /// throw until the owner rebuilds from a checkpoint (see ResilientTrainer).
  [[nodiscard]] const std::shared_ptr<AbortToken>& abort_token() const { return abort_; }

  /// Tune the generated schedule (ZbVocab w_delay, Auto memory cap). Clears
  /// the executor cache so the next train_iteration rebuilds with the new
  /// knobs; call between iterations, not during one.
  void set_schedule_tuning(const ScheduleTuning& tuning);
  [[nodiscard]] const ScheduleTuning& schedule_tuning() const { return tuning_; }

  /// Name of the schedule the most recent executor ran (e.g. what Auto
  /// picked); empty before the first scheduled iteration.
  [[nodiscard]] const std::string& selected_schedule() const { return selected_schedule_; }

  /// Select the dispatch backend (struct-walking vs bytecode interpreter)
  /// for every cached and future executor. Both backends are bit-identical
  /// numerically; default comes from VOCAB_EXECUTOR.
  void set_executor_backend(ExecutorBackend backend);

  /// Install a fault plan (scheduled flavors only; each executor op dispatch
  /// consults it). The caller drives FaultInjector::begin_iteration.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Run a stall watchdog inside every scheduled train_iteration; on a stall
  /// past the deadline it aborts with a snapshot of per-device ops, mailbox
  /// occupancy and collective waiters.
  void enable_watchdog(WatchdogConfig config);

  /// Set the NaN/Inf fence level (default: VOCAB_GUARD_LEVEL, off when
  /// unset). At level 0 the fence object is inert and the executor's hot
  /// loop makes no guard calls at all.
  void set_guard_level(guard::GuardLevel level);
  [[nodiscard]] const std::shared_ptr<guard::NanFence>& nan_fence() const { return fence_; }

  /// Enable bf16 mixed precision: shard weights (and optionally the
  /// stage-boundary payloads) drop to bf16 storage, gradients are produced
  /// under a dynamic loss scale, the optimizer steps fp32 master weights,
  /// and an overflowed iteration skips the step and backs the scale off.
  /// Vocab-sharded flavors only; call before the first train_iteration.
  /// With the NaN fence at level >= 1 an overflow aborts the iteration
  /// before the scaler can react — run mixed precision at guard level 0.
  void set_mixed_precision(const MixedPrecisionConfig& mp);
  [[nodiscard]] bool mixed_precision() const { return mp_enabled_; }
  [[nodiscard]] const LossScaler& loss_scaler() const { return scaler_; }
  /// Whether the most recent train_iteration skipped its step on overflow.
  [[nodiscard]] bool last_overflow() const { return mp_iter_overflow_; }
  /// Total bytes of vocabulary-shard parameter storage across devices
  /// (halves under bf16 — the acceptance number for mixed precision).
  [[nodiscard]] std::size_t vocab_param_bytes() const;
  /// Total bf16 payload bytes sent over stage-boundary channels so far.
  [[nodiscard]] std::size_t comm_bf16_bytes() const { return comm_bf16_bytes_.load(); }

  /// Compute the global gradient norm every iteration even when
  /// OptimizerConfig::max_grad_norm is 0, so last_grad_norm feeds anomaly
  /// monitors. Adds the clip all-reduce to the executed schedule.
  void set_grad_norm_monitor(bool on) { monitor_grad_norm_ = on; }

  /// Global (cross-shard) gradient norm of the most recent train_iteration;
  /// NaN until one has been computed (clipping or the monitor enabled).
  [[nodiscard]] float last_grad_norm() const { return last_grad_norm_; }

  /// Extra state appended to watchdog stall snapshots (e.g. the resilient
  /// trainer's rolling loss/grad-norm anomaly windows).
  void set_extra_snapshot(std::function<std::string()> snapshot);

  /// Drop every queued mailbox / stage-channel payload. Called on the abort
  /// paths so a failed iteration cannot leak messages; exposed for the
  /// abort-hygiene tests.
  void drain_comm();

  /// Total payloads currently queued across all channels (0 after a clean or
  /// cleanly-aborted iteration).
  [[nodiscard]] std::size_t comm_in_flight() const;

  /// The trainer's collective group (null for single-device folded layouts);
  /// abort-hygiene tests assert no rank is left waiting in it.
  [[nodiscard]] const class DeviceGroup* device_group() const { return group_.get(); }

  /// Reassembled full tensors (gathered from the shards) for equivalence
  /// checks against the reference trainer.
  [[nodiscard]] Tensor gathered_input_embedding() const;
  [[nodiscard]] Tensor gathered_output_weight() const;

  /// Reassemble a full checkpointable copy of the model from the shards —
  /// loadable onto any pipeline width (see runtime/checkpoint.h).
  [[nodiscard]] GptWeights export_weights() const;

 private:
  struct Device;
  struct ScheduledIteration;

  [[nodiscard]] bool vocab_sharded() const { return flavor_ != PipelineFlavor::Baseline1F1B; }
  [[nodiscard]] int num_stages() const { return flavor_ == PipelineFlavor::VHalf ? 2 * p_ : p_; }
  [[nodiscard]] int device_of_stage(int stage) const;
  TransformerStack& stack_of_stage(int stage) const;

  float train_iteration_naive(const std::vector<Sample>& microbatches,
                              const OptimizerConfig& opt);
  float train_iteration_scheduled(const std::vector<Sample>& microbatches,
                                  const OptimizerConfig& opt);
  /// Per-device optimizer step; shared by both paths (the shards own their
  /// parameters, so no optimizer communication is needed — §6.1).
  void optimizer_step_device(int d, const OptimizerConfig& opt);
  /// Build (or fetch the cached) executor for `m` microbatches; `with_clip`
  /// variants run the schedule with the appended clip all-reduce.
  ScheduleExecutor& executor_for(int m, bool with_clip);
  /// Fill this device's clip units, all-reduce them, and record the clip
  /// decision in clip_state_[d]. Runs on device d's thread; every device
  /// must call it (collectively) when clipping is active and p > 1.
  void compute_clip_device(int d);
  /// Fault-corruption + NaN-fence point for a tensor device `d` just
  /// produced (applies any armed data fault first, then fences).
  void guard_boundary(int d, Tensor& t, const char* what);
  /// bf16_comm: round-trip a stage-boundary payload through bf16 so the
  /// receiver sees exactly the values a half-width wire would deliver.
  void maybe_quantize_comm(Tensor& t);
  /// Cross-device mailbox send with the injector's transport faults applied
  /// first: an armed DropMessage on `from` discards the payload (the
  /// receiver's retry/timeout path then owns the outcome); an armed
  /// DelayMessage sleeps before sending.
  void send_cross_device(int from, int to, const std::string& tag, Tensor&& t);
  /// True when any gradient this device owns contains a NaN/Inf.
  [[nodiscard]] bool device_grads_nonfinite(int d) const;

  GptConfig config_;
  int p_;
  OutputAlgo algo_;
  PipelineFlavor flavor_;
  transport::Transport* transport_ = nullptr;  ///< null: default_transport() per use
  std::shared_ptr<AbortToken> abort_;
  std::shared_ptr<FaultInjector> injector_;
  WatchdogConfig watchdog_config_;
  bool watchdog_enabled_ = false;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<class DeviceGroup> group_;
  // Naive path: fwd_[d] carries activations d -> d+1; bwd_[d] carries grads
  // d+1 -> d. Scheduled path: mail_[d] is device d's tag-addressed mailbox.
  std::vector<std::unique_ptr<class Channel>> fwd_;
  std::vector<std::unique_ptr<class Channel>> bwd_;
  std::vector<std::unique_ptr<class Channel>> mail_;
  // Keyed by (microbatch count, clip collective appended).
  std::map<std::pair<int, bool>, std::unique_ptr<ScheduleExecutor>> executors_;
  ScheduleExecutor* last_executor_ = nullptr;
  std::optional<ExecutorBackend> backend_override_;  // unset: VOCAB_EXECUTOR
  ScheduleTuning tuning_;
  std::string selected_schedule_;
  // Naive path: the same per-device slice of the intra-op thread budget the
  // executor gives its device threads, so every flavor models p devices of
  // equal fixed capacity (idle devices cannot lend cores to busy ones).
  std::vector<std::unique_ptr<parallel::ThreadPool>> naive_pools_;
  Tensor pos_embedding_;       // whole, on device 0 (paper §6.4)
  Tensor pos_embedding_grad_;
  ParamOptimizer pos_opt_;

  // ---- numeric guardrails (src/guard) ----
  std::shared_ptr<guard::NanFence> fence_;
  std::function<std::string()> extra_snapshot_;
  bool monitor_grad_norm_ = false;
  float last_grad_norm_ = std::numeric_limits<float>::quiet_NaN();
  // Per-iteration clip coordination. Reset single-threaded at iteration
  // start; clip_state_[d] is then written only by device d's thread, and the
  // optimizer phase reads it after the executor's thread join.
  struct ClipState {
    bool computed = false;
    float scale = 1.0f;
    float norm = 0.0f;
    bool tied_combined = false;  // folded tied: grads already merged pre-clip
    Tensor combined_grad;        // vocab-sharded tied: out+in grad, pre-scale
  };
  bool clip_active_ = false;     // this iteration computes the global norm
  float clip_max_norm_ = 0.0f;
  std::vector<ClipState> clip_state_;

  // ---- bf16 mixed precision ----
  bool mp_enabled_ = false;
  bool mp_bf16_comm_ = false;
  LossScaler scaler_;
  bool mp_iter_overflow_ = false;          // written by device 0's step thread
  std::atomic<std::size_t> comm_bf16_bytes_{0};
};

}  // namespace vocab
