#pragma once

// Multi-threaded vocabulary-parallel pipeline trainer with real numerics.
//
// Each simulated pipeline device is an OS thread holding:
//   * its shard of the input embedding (InputLayerShard),
//   * its contiguous run of transformer layers (TransformerStack),
//   * its shard of the output layer (OutputLayerShard, Alg1 or Alg2).
// Activations flow stage-to-stage over Channels; the output/input layers'
// collectives run over a DeviceGroup — exactly the communication structure
// the paper's Megatron implementation uses, so dependency mistakes surface
// as tag mismatches or deadlock timeouts rather than silent corruption.
//
// This trainer exists to establish numerical equivalence with the
// single-device ReferenceTrainer (Appendix E / Figure 17); scheduling
// efficiency questions are the simulator's job.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/input_layer_shard.h"
#include "core/output_layer_shard.h"
#include "model/gpt.h"
#include "model/transformer.h"
#include "runtime/optimizer.h"

namespace vocab {

class PipelineTrainer {
 public:
  /// Shards `weights` across `p` pipeline devices; requires p | num_layers.
  PipelineTrainer(GptWeights weights, int p, OutputAlgo algo);
  ~PipelineTrainer();

  PipelineTrainer(const PipelineTrainer&) = delete;
  PipelineTrainer& operator=(const PipelineTrainer&) = delete;

  /// One optimizer step over `microbatches`; returns the mean loss (identical
  /// on every device by construction of the loss all-reduce).
  float train_iteration(const std::vector<Sample>& microbatches, const OptimizerConfig& opt);

  /// SGD convenience overload.
  float train_iteration(const std::vector<Sample>& microbatches, float lr) {
    return train_iteration(microbatches, OptimizerConfig::sgd(lr));
  }

  [[nodiscard]] int num_devices() const { return p_; }
  [[nodiscard]] OutputAlgo algo() const { return algo_; }
  [[nodiscard]] const GptConfig& config() const { return config_; }

  /// Reassembled full tensors (gathered from the shards) for equivalence
  /// checks against the reference trainer.
  [[nodiscard]] Tensor gathered_input_embedding() const;
  [[nodiscard]] Tensor gathered_output_weight() const;

  /// Reassemble a full checkpointable copy of the model from the shards —
  /// loadable onto any pipeline width (see runtime/checkpoint.h).
  [[nodiscard]] GptWeights export_weights() const;

 private:
  struct Device;

  GptConfig config_;
  int p_;
  OutputAlgo algo_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<class DeviceGroup> group_;
  // Channels: fwd_[d] carries activations d -> d+1; bwd_[d] carries grads
  // d+1 -> d.
  std::vector<std::unique_ptr<class Channel>> fwd_;
  std::vector<std::unique_ptr<class Channel>> bwd_;
  Tensor pos_embedding_;       // whole, on device 0 (paper §6.4)
  Tensor pos_embedding_grad_;
  ParamOptimizer pos_opt_;
};

}  // namespace vocab
