#pragma once

// Multi-threaded vocabulary-parallel pipeline trainer with real numerics.
//
// Each simulated pipeline device is an OS thread holding:
//   * its shard of the input embedding (InputLayerShard),
//   * its contiguous run of transformer layers (TransformerStack; V-Half
//     devices hold two chunks),
//   * its shard of the output layer (OutputLayerShard, Alg1 or Alg2).
// Activations flow stage-to-stage over Channels; the output/input layers'
// collectives run over a DeviceGroup — exactly the communication structure
// the paper's Megatron implementation uses, so dependency mistakes surface
// as tag mismatches or deadlock timeouts rather than silent corruption.
//
// Two execution paths share the same shards and optimizer state:
//   * Naive: the original synchronous loop — one microbatch at a time with a
//     rendezvous broadcast per microbatch. No pipelining; kept as the A/B
//     baseline the wall-clock bench compares against.
//   * Scheduled: a generator-emitted PipelineSchedule (GPipe / 1F1B /
//     1F1B-vocab / V-Half), statically verified, driven by the
//     ScheduleExecutor — microbatches genuinely in flight together, P2P
//     sends non-blocking, collective barriers overlapped with compute.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "fault/abort_token.h"
#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "core/input_layer_shard.h"
#include "core/output_layer_shard.h"
#include "model/gpt.h"
#include "model/transformer.h"
#include "runtime/optimizer.h"
#include "runtime/schedule_executor.h"

namespace vocab {

/// Which execution strategy train_iteration uses.
enum class PipelineFlavor {
  Naive,         ///< synchronous per-microbatch loop (no pipelining)
  Baseline1F1B,  ///< plain 1F1B schedule, vocab layers whole on first/last stage
  Gpipe,         ///< GPipe + Vocabulary Parallelism schedule
  OneFOneBVocab, ///< 1F1B + Vocabulary Parallelism schedule (the paper's main result)
  VHalf,         ///< V-Half + Vocabulary Parallelism schedule (Vocab-1)
};

[[nodiscard]] const char* to_string(PipelineFlavor flavor);

class PipelineTrainer {
 public:
  /// Shards `weights` across `p` pipeline devices; requires p | num_layers
  /// (2p | num_layers for VHalf). Baseline1F1B keeps the vocabulary layers
  /// whole on the first/last device instead of sharding them.
  PipelineTrainer(GptWeights weights, int p, OutputAlgo algo,
                  PipelineFlavor flavor = PipelineFlavor::Naive);
  ~PipelineTrainer();

  PipelineTrainer(const PipelineTrainer&) = delete;
  PipelineTrainer& operator=(const PipelineTrainer&) = delete;

  /// One optimizer step over `microbatches`; returns the mean loss (identical
  /// on every device by construction of the loss all-reduce).
  float train_iteration(const std::vector<Sample>& microbatches, const OptimizerConfig& opt);

  /// SGD convenience overload.
  float train_iteration(const std::vector<Sample>& microbatches, float lr) {
    return train_iteration(microbatches, OptimizerConfig::sgd(lr));
  }

  [[nodiscard]] int num_devices() const { return p_; }
  [[nodiscard]] OutputAlgo algo() const { return algo_; }
  [[nodiscard]] PipelineFlavor flavor() const { return flavor_; }
  [[nodiscard]] const GptConfig& config() const { return config_; }

  /// Stats of the most recent scheduled train_iteration (null for the Naive
  /// flavor or before the first iteration).
  [[nodiscard]] const ExecutorStats* last_executor_stats() const;

  /// The trainer's shared abort token. The first device-thread failure in a
  /// train_iteration aborts it, which unblocks every channel/collective wait
  /// in milliseconds; the trainer is then poisoned — further iterations
  /// throw until the owner rebuilds from a checkpoint (see ResilientTrainer).
  [[nodiscard]] const std::shared_ptr<AbortToken>& abort_token() const { return abort_; }

  /// Install a fault plan (scheduled flavors only; each executor op dispatch
  /// consults it). The caller drives FaultInjector::begin_iteration.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Run a stall watchdog inside every scheduled train_iteration; on a stall
  /// past the deadline it aborts with a snapshot of per-device ops, mailbox
  /// occupancy and collective waiters.
  void enable_watchdog(WatchdogConfig config);

  /// Reassembled full tensors (gathered from the shards) for equivalence
  /// checks against the reference trainer.
  [[nodiscard]] Tensor gathered_input_embedding() const;
  [[nodiscard]] Tensor gathered_output_weight() const;

  /// Reassemble a full checkpointable copy of the model from the shards —
  /// loadable onto any pipeline width (see runtime/checkpoint.h).
  [[nodiscard]] GptWeights export_weights() const;

 private:
  struct Device;
  struct ScheduledIteration;

  [[nodiscard]] bool vocab_sharded() const { return flavor_ != PipelineFlavor::Baseline1F1B; }
  [[nodiscard]] int num_stages() const { return flavor_ == PipelineFlavor::VHalf ? 2 * p_ : p_; }
  [[nodiscard]] int device_of_stage(int stage) const;
  TransformerStack& stack_of_stage(int stage) const;

  float train_iteration_naive(const std::vector<Sample>& microbatches,
                              const OptimizerConfig& opt);
  float train_iteration_scheduled(const std::vector<Sample>& microbatches,
                                  const OptimizerConfig& opt);
  /// Per-device optimizer step; shared by both paths (the shards own their
  /// parameters, so no optimizer communication is needed — §6.1).
  void optimizer_step_device(int d, const OptimizerConfig& opt);
  /// Build (or fetch the cached) executor for `m` microbatches.
  ScheduleExecutor& executor_for(int m);

  GptConfig config_;
  int p_;
  OutputAlgo algo_;
  PipelineFlavor flavor_;
  std::shared_ptr<AbortToken> abort_;
  std::shared_ptr<FaultInjector> injector_;
  WatchdogConfig watchdog_config_;
  bool watchdog_enabled_ = false;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unique_ptr<class DeviceGroup> group_;
  // Naive path: fwd_[d] carries activations d -> d+1; bwd_[d] carries grads
  // d+1 -> d. Scheduled path: mail_[d] is device d's tag-addressed mailbox.
  std::vector<std::unique_ptr<class Channel>> fwd_;
  std::vector<std::unique_ptr<class Channel>> bwd_;
  std::vector<std::unique_ptr<class Channel>> mail_;
  std::map<int, std::unique_ptr<ScheduleExecutor>> executors_;  // by microbatch count
  ScheduleExecutor* last_executor_ = nullptr;
  // Naive path: the same per-device slice of the intra-op thread budget the
  // executor gives its device threads, so every flavor models p devices of
  // equal fixed capacity (idle devices cannot lend cores to busy ones).
  std::vector<std::unique_ptr<parallel::ThreadPool>> naive_pools_;
  Tensor pos_embedding_;       // whole, on device 0 (paper §6.4)
  Tensor pos_embedding_grad_;
  ParamOptimizer pos_opt_;
};

}  // namespace vocab
