#include "runtime/reference_trainer.h"

#include "common/error.h"
#include "core/reference_input_layer.h"
#include "core/reference_output_layer.h"
#include "guard/grad_clip.h"
#include "guard/tensor_stats.h"
#include "tensor/tensor_ops.h"

namespace vocab {

ReferenceTrainer::ReferenceTrainer(GptWeights weights)
    : config_(weights.config),
      input_embedding_(std::move(weights.input_embedding)),
      pos_embedding_(std::move(weights.pos_embedding)),
      input_embedding_grad_(input_embedding_.shape()),
      pos_embedding_grad_(pos_embedding_.shape()),
      stack_(std::move(weights.layers), weights.config.heads),
      output_weight_(std::move(weights.output_weight)),
      output_weight_grad_(output_weight_.shape()) {}

Tensor ReferenceTrainer::forward_backbone(int mb, const Sample& sample, bool record) {
  VOCAB_CHECK(static_cast<std::int64_t>(sample.tokens.size()) == config_.seq_len,
              "sample length mismatch");
  Tensor x = reference_embedding_forward(input_embedding_, sample.tokens);
  add_inplace(x, pos_embedding_);
  if (record) return stack_.forward(mb, x);
  // Evaluation path: forward then immediately drop the tape.
  Tensor y = stack_.forward(mb, x);
  stack_.backward(mb, Tensor(y.shape()));  // zero seed: clears tape, no grads
  return y;
}

float ReferenceTrainer::train_iteration(const std::vector<Sample>& microbatches,
                                        const OptimizerConfig& opt) {
  VOCAB_CHECK(!microbatches.empty(), "need at least one microbatch");
  const auto m = static_cast<float>(microbatches.size());
  const float grad_scale = 1.0f / (static_cast<float>(config_.seq_len) * m);

  double total_loss = 0.0;
  for (int mb = 0; mb < static_cast<int>(microbatches.size()); ++mb) {
    const Sample& sample = microbatches[static_cast<std::size_t>(mb)];
    const Tensor y = forward_backbone(mb, sample, /*record=*/true);
    const OutputLayerResult out =
        reference_output_layer(y, output_weight_, sample.targets, grad_scale);
    total_loss += out.loss;
    add_inplace(output_weight_grad_, out.grad_w);
    const Tensor grad_x = stack_.backward(mb, out.grad_x);
    add_inplace(pos_embedding_grad_, grad_x);
    reference_embedding_backward(input_embedding_grad_, sample.tokens, grad_x);
  }

  const auto params = stack_.parameters();
  if (stack_opt_.size() != params.size()) stack_opt_.resize(params.size());

  if (config_.tie_embeddings) {
    // One shared parameter: both layers' gradients flow into it and a single
    // optimizer state drives the update. Combined *before* the clip so the
    // clip scales the same bytes the optimizer will consume (fp scaling is
    // not distributive over the later add).
    add_inplace(output_weight_grad_, input_embedding_grad_);
  }
  if (opt.max_grad_norm > 0.0f || monitor_grad_norm_) {
    // Canonical clip-unit vector (guard/grad_clip.h): this single-device
    // fill is the ground truth the sharded trainers must reproduce
    // bit-for-bit through their all-reduce.
    const guard::ClipUnitLayout layout{config_.num_layers, config_.vocab,
                                       config_.tie_embeddings};
    std::vector<float> units(static_cast<std::size_t>(layout.total_units()), 0.0f);
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (params[i]->grad.empty()) continue;
      units[i] = static_cast<float>(guard::squared_norm(params[i]->grad));
    }
    units[static_cast<std::size_t>(layout.pos_unit())] =
        static_cast<float>(guard::squared_norm(pos_embedding_grad_));
    guard::row_squared_norms(output_weight_grad_, 0, config_.vocab,
                             &units[static_cast<std::size_t>(layout.output_row_unit(0))]);
    if (!config_.tie_embeddings) {
      guard::row_squared_norms(input_embedding_grad_, 0, config_.vocab,
                               &units[static_cast<std::size_t>(layout.input_row_unit(0))]);
    }
    const guard::ClipResult clip = guard::clip_decision(units, opt.max_grad_norm);
    last_grad_norm_ = clip.norm;
    if (clip.scale != 1.0f) {
      for (const auto& p : params) {
        if (!p->grad.empty()) scale_inplace(p->grad, clip.scale);
      }
      scale_inplace(pos_embedding_grad_, clip.scale);
      scale_inplace(output_weight_grad_, clip.scale);
      if (!config_.tie_embeddings) scale_inplace(input_embedding_grad_, clip.scale);
    }
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i]->grad.empty()) continue;
    stack_opt_[i].step(params[i]->value, params[i]->grad, opt);
    params[i]->grad.fill(0.0f);
  }
  if (config_.tie_embeddings) {
    output_opt_.step(output_weight_, output_weight_grad_, opt);
    input_embedding_ = output_weight_;
  } else {
    output_opt_.step(output_weight_, output_weight_grad_, opt);
    input_opt_.step(input_embedding_, input_embedding_grad_, opt);
  }
  pos_opt_.step(pos_embedding_, pos_embedding_grad_, opt);
  output_weight_grad_.fill(0.0f);
  input_embedding_grad_.fill(0.0f);
  pos_embedding_grad_.fill(0.0f);

  return static_cast<float>(total_loss / m);
}

float ReferenceTrainer::evaluate(const Sample& sample) {
  const Tensor y = forward_backbone(/*mb=*/-1, sample, /*record=*/false);
  return reference_output_loss(y, output_weight_, sample.targets);
}

}  // namespace vocab
