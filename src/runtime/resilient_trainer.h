#pragma once

// Iteration-level fault recovery around PipelineTrainer.
//
// The pipeline's failure protocol (fault/abort_token.h) gets every device
// thread out of a failed iteration in milliseconds, but it deliberately does
// NOT try to salvage the iteration: partial gradients, in-flight mailbox
// tensors and half-run collectives are unrecoverable state, so the trainer
// stays poisoned. This wrapper implements the recovery story on top:
//
//   1. save a checkpoint every `checkpoint_every` successful iterations
//      (atomic rename + CRC32, see runtime/checkpoint.h);
//   2. on a failed iteration, reload the last good checkpoint, rebuild a
//      fresh PipelineTrainer from it, and retry the same iteration;
//   3. after `retries_before_downgrade` failed attempts of one iteration,
//      optionally restart *elastically* on a smaller pipeline width p' < p —
//      possible precisely because Vocabulary Parallelism keeps the
//      vocabulary logically contiguous, so a full checkpoint reshard onto
//      any admissible width (checkpoint.h's reshard property).
//
// Retries are deterministic with respect to a FaultInjector plan: the
// wrapper drives FaultInjector::begin_iteration with the *global* iteration
// index, so a rebuilt trainer does not restart the injection clock, and
// one-shot fault specs do not re-fire on the retry.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "guard/anomaly.h"
#include "runtime/pipeline_trainer.h"

namespace vocab {

/// What to do when the loss / grad-norm anomaly detector flags an iteration.
enum class AnomalyAction {
  kNone,       ///< detection off
  kSkipBatch,  ///< discard the anomalous update, advance to the next batch
  kRollback,   ///< discard the update and replay the same iteration
};

/// Rolling-statistics anomaly detection over the per-iteration loss and
/// global gradient norm (guard/anomaly.h). Detection runs *after* the
/// optimizer step, so acting on a verdict means undoing the step — both
/// actions reload the last good checkpoint, which is why an active policy
/// requires checkpoint_every == 1.
struct AnomalyPolicy {
  AnomalyAction action = AnomalyAction::kNone;
  std::size_t window = 16;      ///< accepted samples kept per stream
  std::size_t min_samples = 4;  ///< warm-up before finite values can spike
  double threshold = 8.0;       ///< robust z-score cutoff
  bool watch_loss = true;
  bool watch_grad_norm = true;  ///< enables the trainer's grad-norm monitor
  [[nodiscard]] bool active() const { return action != AnomalyAction::kNone; }
};

/// Knobs of the recovery loop.
struct RecoveryPolicy {
  /// Where checkpoints live. Required (the ctor writes the initial one).
  std::string checkpoint_path;
  /// Save after every N successful iterations (1 = every iteration).
  int checkpoint_every = 1;
  /// Give up (rethrow) after this many failed attempts of one iteration.
  int max_retries_per_iteration = 3;
  /// Failed attempts of one iteration before elastic downgrade kicks in.
  int retries_before_downgrade = 2;
  /// Permit restarting on a smaller pipeline width after repeated failures.
  bool allow_elastic_downgrade = false;
  /// Run the stall watchdog inside every iteration (rebuilds inherit it).
  bool enable_watchdog = false;
  WatchdogConfig watchdog;
  /// Loss / grad-norm anomaly detection; requires checkpoint_every == 1
  /// when active.
  AnomalyPolicy anomaly;
};

/// What the recovery loop observed; one human-readable line per event.
struct RecoveryStats {
  int faults_observed = 0;   ///< failed train_iteration attempts
  int recoveries = 0;        ///< successful checkpoint reload + rebuild
  int downgrades = 0;        ///< elastic restarts onto a smaller width
  int anomalies = 0;         ///< iterations flagged by the anomaly detector
  int skipped_batches = 0;   ///< anomalous updates discarded (kSkipBatch)
  int rollbacks = 0;         ///< anomalous iterations replayed (kRollback)
  std::vector<std::string> events;
};

class ResilientTrainer {
 public:
  /// Builds the initial PipelineTrainer and saves the iteration-0 checkpoint
  /// (so the very first iteration already has a good state to fall back to).
  ResilientTrainer(GptWeights weights, int p, OutputAlgo algo, PipelineFlavor flavor,
                   RecoveryPolicy policy);
  ~ResilientTrainer();

  ResilientTrainer(const ResilientTrainer&) = delete;
  ResilientTrainer& operator=(const ResilientTrainer&) = delete;

  /// One training iteration with recovery: on failure, reload the last good
  /// checkpoint, rebuild, retry (possibly on a smaller width). Throws the
  /// last failure once max_retries_per_iteration attempts are exhausted.
  float train_iteration(const std::vector<Sample>& microbatches, const OptimizerConfig& opt);

  float train_iteration(const std::vector<Sample>& microbatches, float lr) {
    return train_iteration(microbatches, OptimizerConfig::sgd(lr));
  }

  /// Deterministic fault plan, consulted by every (re)built trainer. The
  /// wrapper drives begin_iteration with the global iteration index.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  [[nodiscard]] GptWeights export_weights() const;
  /// Current pipeline width (smaller than the initial p after a downgrade).
  [[nodiscard]] int pipeline_width() const { return width_; }
  [[nodiscard]] std::uint64_t iterations_completed() const { return iteration_; }
  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }
  [[nodiscard]] PipelineTrainer& trainer() { return *trainer_; }

  /// The next admissible smaller width for `flavor` below `width` (halving),
  /// or 0 if none exists. Exposed for tests.
  [[nodiscard]] static int next_smaller_width(int width, int num_layers, PipelineFlavor flavor);

  /// The anomaly windows + counters as one human-readable block (appended to
  /// watchdog stall snapshots; exposed for tests).
  [[nodiscard]] std::string anomaly_snapshot() const;

 private:
  void rebuild(GptWeights weights, int width);
  /// Classify this iteration's (loss, grad norm); returns a non-empty
  /// description when it is anomalous.
  [[nodiscard]] std::string classify_anomaly(float loss, float grad_norm);

  OutputAlgo algo_;
  PipelineFlavor flavor_;
  RecoveryPolicy policy_;
  int width_;
  std::uint64_t iteration_ = 0;
  std::unique_ptr<PipelineTrainer> trainer_;
  std::shared_ptr<FaultInjector> injector_;
  RecoveryStats stats_;
  guard::AnomalyDetector loss_detector_;
  guard::AnomalyDetector grad_detector_;
};

}  // namespace vocab
