#include "runtime/shm_elastic_trainer.h"

#include <signal.h>

#include <cstdio>

#include <algorithm>
#include <thread>
#include <utility>

#include "common/error.h"
#include "parallel/thread_pool.h"
#include "runtime/checkpoint.h"
#include "runtime/resilient_trainer.h"
#include "transport/process_group.h"
#include "transport/shm_region.h"
#include "transport/shm_transport.h"

namespace vocab {

ShmElasticTrainer::ShmElasticTrainer(GptWeights weights, int p, OutputAlgo algo,
                                     PipelineFlavor flavor, ElasticOptions options)
    : algo_(algo), flavor_(flavor_from_env(flavor)), options_(std::move(options)), width_(p),
      num_layers_(weights.config.num_layers) {
  VOCAB_CHECK(!options_.checkpoint_path.empty(),
              "elastic training requires a checkpoint path (recovery IS the checkpoint)");
  VOCAB_CHECK(flavor_ != PipelineFlavor::Naive,
              "elastic lane workers drive the scheduled flavors only (not naive)");
  // The initial checkpoint: even a death in the very first iteration has a
  // good state to restart from.
  save_checkpoint(options_.checkpoint_path, weights);
}

void ShmElasticTrainer::set_fault_plan(FaultPlan plan) { plan_ = std::move(plan); }

void ShmElasticTrainer::worker_main(int rank, transport::ShmArena& arena, int width,
                                    std::uint64_t start_iteration, std::uint64_t end_iteration,
                                    const BatchFn& batch, const OptimizerConfig& opt,
                                    const FaultPlan& plan) const {
  // The fork inherited the parent's ThreadPool singleton WITHOUT its worker
  // threads; route any parallel_for outside the executor's own (freshly
  // constructed) per-device pools to serial execution — same chunks, same
  // order, same bytes.
  parallel::ScopedPool serial(nullptr);

  auto transport = transport::ShmTransport::attach(arena, rank, options_.transport);
  auto injector = std::make_shared<FaultInjector>(plan);
  transport->set_heartbeat_suppressed(
      [injector, rank] { return injector->heartbeat_suppressed(rank); });

  GptWeights weights = load_checkpoint(options_.checkpoint_path);
  PipelineTrainer trainer(std::move(weights), width, algo_, flavor_, transport.get());
  transport->set_abort_token(trainer.abort_token());
  trainer.set_fault_injector(injector);
  if (options_.enable_watchdog) trainer.enable_watchdog(options_.watchdog);

  transport::ShmProgressBlock& progress = arena.progress();
  for (std::uint64_t it = start_iteration; it < end_iteration; ++it) {
    injector->begin_iteration(it);
    const std::vector<Sample> microbatches = batch(it);
    const float loss = trainer.train_iteration_lane(rank, microbatches, opt);
    GptWeights full = trainer.gather_weights_lane(rank, it);
    if (rank == 0) {
      // Checkpoint FIRST, publish second: `completed` must never point at an
      // iteration whose state could not be reloaded.
      save_checkpoint(options_.checkpoint_path, full);
      progress.losses[it] = loss;
      progress.completed.store(static_cast<std::int64_t>(it) + 1, std::memory_order_release);
    }
  }
  transport->mark_done();
}

ElasticResult ShmElasticTrainer::train(std::uint64_t iterations, const BatchFn& batch,
                                       const OptimizerConfig& opt) {
  VOCAB_CHECK(iterations >= 1, "need at least one iteration");
  VOCAB_CHECK(iterations <= transport::kShmProgressSlots,
              "elastic progress block holds " << transport::kShmProgressSlots
                                              << " iterations, asked for " << iterations);
  VOCAB_CHECK(transport::shm_transport_supported(),
              "shared-memory transport unsupported on this platform");

  ElasticResult result;
  FaultPlan plan = plan_;
  int width = width_;
  std::uint64_t next_iteration = 0;

  while (next_iteration < iterations) {
    VOCAB_CHECK(result.generations < options_.max_generations,
                "elastic training exhausted " << options_.max_generations
                                              << " generations at iteration " << next_iteration);
    ++result.generations;
    result.history.push_back({next_iteration, width});
    result.events.push_back("generation " + std::to_string(result.generations) + ": width " +
                            std::to_string(width) + " from iteration " +
                            std::to_string(next_iteration));

    transport::ShmArenaOptions arena_options;
    arena_options.world = width;
    arena_options.num_mailboxes = static_cast<std::size_t>(width);
    arena_options.ring_bytes = options_.ring_bytes;
    arena_options.slot_bytes = options_.slot_bytes;
    auto arena = transport::ShmArena::create(arena_options);
    VOCAB_CHECK(arena != nullptr, "failed to create the shared arena");
    arena->progress().completed.store(static_cast<std::int64_t>(next_iteration),
                                      std::memory_order_release);

    // Workers leave via _exit (no stdio flush): drain the parent's buffers
    // first or every child re-emits whatever the caller had pending.
    std::fflush(nullptr);
    auto group = transport::ProcessGroup::spawn(width, [&](int rank) {
      worker_main(rank, *arena, width, next_iteration, iterations, batch, opt, plan);
    });

    // Monitor: waitpid is the authoritative death signal (faster and surer
    // than heartbeat loss when the coordinator is alive); the workers' own
    // beacons back it up when the coordinator is starved or gone.
    bool killed = false;
    bool aborted = false;
    for (;;) {
      for (const transport::ProcessExit& exit : group.poll()) {
        if (exit.exited && exit.status == transport::kWorkerExitOk) continue;
        result.events.push_back(exit.describe());
        if (exit.exited) {
          // Exit codes 3/4 are voluntary unwinds (abort protocol / clean
          // exception): the peers already know or will know via the mirrored
          // abort — retry at the same width.
          aborted = true;
          continue;
        }
        // Signal: real death. Mark the rank dead and post the shared abort
        // so every survivor's blocking wait ends promptly.
        killed = true;
        ++result.kills;
        arena->rank_state(exit.rank).dead.store(1, std::memory_order_release);
        arena->abort_block().post(exit.rank, -1, exit.describe().c_str());
      }
      if (group.all_done()) break;
      if (killed || aborted) {
        if (!group.wait_all(options_.worker_exit_timeout)) {
          result.events.push_back("survivors did not unwind in time; sending SIGKILL");
          group.kill_all(SIGKILL);
          group.wait_all(options_.worker_exit_timeout);
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Late exits can still reclassify the generation; sweep once more.
    for (const transport::ProcessExit& exit : group.poll()) {
      if (exit.exited && exit.status == transport::kWorkerExitOk) continue;
      result.events.push_back(exit.describe());
      if (exit.exited) {
        aborted = true;
      } else {
        killed = true;
        ++result.kills;
      }
    }
    if (aborted) ++result.aborts;

    // Harvest the generation's published progress.
    const auto completed =
        static_cast<std::uint64_t>(arena->progress().completed.load(std::memory_order_acquire));
    for (std::uint64_t it = next_iteration; it < completed; ++it) {
      result.losses.push_back(arena->progress().losses[it]);
    }
    next_iteration = completed;
    if (!killed && !aborted) continue;  // clean generation (or finished)

    // The retry of iteration `completed` must run clean: the one-shot fired
    // state died with the workers, so drop every spec at-or-before it.
    plan.faults.erase(std::remove_if(plan.faults.begin(), plan.faults.end(),
                                     [&](const FaultSpec& spec) {
                                       return spec.iteration <= completed;
                                     }),
                      plan.faults.end());

    if (killed) {
      const int smaller = ResilientTrainer::next_smaller_width(width, num_layers_, flavor_);
      if (smaller > 0) {
        ++result.downgrades;
        result.events.push_back("downgrading width " + std::to_string(width) + " -> " +
                                std::to_string(smaller));
        width = smaller;
      } else {
        result.events.push_back("no smaller admissible width; retrying at " +
                                std::to_string(width));
      }
    }
    // An abort without a death retries at the same width from the last
    // checkpoint — the generation loop IS the retry.
  }

  result.final_width = width;
  return result;
}

}  // namespace vocab
