#pragma once

// Live elastic downgrade over real OS processes, over a pluggable
// multi-process transport (shm rings or supervised tcp sockets).
//
// ResilientTrainer recovers from *exceptions* inside one process; this
// coordinator recovers from *process death* and *network partitions*. It
// fans one training run out as one worker process per pipeline device, all
// attached to a pre-fork shared arena (transport/shm_region.h):
//
//   coordinator                         worker rank r
//   -----------                         -------------
//   save initial checkpoint             attach Shm/TcpTransport(arena, r)
//   create ShmArena(world=width)        load checkpoint, build PipelineTrainer
//   fork x width ------------------->   per iteration:
//   poll waitpid + arena progress         train_iteration_lane(r, ...)
//                                         gather_weights_lane(r, it)
//                                       rank 0: save checkpoint, publish
//                                         loss + completed into the arena
//
// With `backend = kShm` the arena carries the data plane too (one ring per
// mailbox). With `backend = kTcp` the data plane is a supervised full mesh
// of loopback TCP connections and the arena shrinks to the control plane:
// abort block, rank liveness/done flags, progress block, and the tcp port
// advertisement — exactly the subset a future cross-machine deployment would
// move onto a rendezvous service.
//
// Failure taxonomy, per generation:
//   - worker killed by signal (waitpid says so): mark dead, post abort,
//     downgrade width. The workers' own failure detectors (shm heartbeat
//     beacon / tcp connection supervisor) back the coordinator up.
//   - worker exits kWorkerExitPeerDead (5): its transport *itself* declared
//     a peer dead — over tcp that is a partition (heartbeat silence) or an
//     exhausted reconnect budget. The process mesh is unreliable even though
//     every process may still be alive, so the coordinator downgrades
//     exactly as it does for a real death.
//   - worker exits 3/4 (abort protocol / clean exception): voluntary unwind;
//     retry at the same width.
//
// Every iteration is checkpointed (CRC32 + atomic rename) BEFORE rank 0
// publishes it as completed, so a generation that dies mid-iteration resumes
// exactly at the last published iteration and the loss sequence is
// bit-identical to a clean run over the same generation widths — over either
// backend (the fault_stress soak and the transport suite assert this).
//
// Survivability: the coordinator itself holds no training state — a
// coordinator death loses only the monitor; the checkpoint file plus the
// ElasticResult history is everything needed to resume (see DESIGN.md §16).

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "model/gpt.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_trainer.h"
#include "transport/transport.h"

namespace vocab::transport {
class ShmArena;
}

namespace vocab {

/// Knobs of the multi-process elastic loop.
struct ElasticOptions {
  /// Where the (single) rolling checkpoint lives. Required.
  std::string checkpoint_path;
  /// Data-plane transport the workers attach to: kShm (arena rings) or kTcp
  /// (supervised socket mesh). kThreads is not spawnable across fork().
  transport::TransportKind backend = transport::TransportKind::kShm;
  /// Heartbeat / retry knobs handed to every worker's attached transport.
  transport::TransportConfig transport = {};
  /// Run the per-lane stall watchdog inside every worker iteration.
  bool enable_watchdog = false;
  WatchdogConfig watchdog;
  /// After a death is observed, how long the survivors get to unwind via the
  /// coordinated abort before the coordinator SIGKILLs the stragglers.
  std::chrono::milliseconds worker_exit_timeout{10000};
  /// Hard bound on process-group spawns (first generation included); the
  /// loop throws CheckError when exceeded instead of respawning forever.
  int max_generations = 16;
  /// Shared-arena sizing (per-mailbox ring data bytes / max serialized
  /// tensor); the defaults fit the test-scale models comfortably. The tcp
  /// backend allocates no rings (its data plane is the socket mesh).
  std::size_t ring_bytes = std::size_t{8} << 20;
  std::size_t slot_bytes = std::size_t{4} << 20;
};

/// One process-group lifetime: which global iteration it started at and at
/// what pipeline width — the replay recipe for the bit-identity reference.
struct ElasticGeneration {
  std::uint64_t start_iteration = 0;
  int width = 0;
};

/// What an elastic run observed.
struct ElasticResult {
  std::vector<float> losses;  ///< per iteration, bitwise as rank 0 published them
  int kills = 0;              ///< workers that died by signal
  int partitions = 0;         ///< workers whose transport declared a peer dead
  int aborts = 0;             ///< workers that exited via the abort protocol
  int downgrades = 0;         ///< width reductions
  int generations = 0;        ///< process groups spawned
  int final_width = 0;
  std::vector<ElasticGeneration> history;  ///< one entry per generation
  std::vector<std::string> events;         ///< human-readable log
};

/// Coordinator for multi-process training with fault tolerance. Construct
/// once (writes the initial checkpoint), then train(). Thread-free by
/// design: fork() from a multi-threaded coordinator would be a minefield.
class ElasticTrainer {
 public:
  /// Produce iteration `it`'s microbatches. Must be deterministic in `it`
  /// (the batch is re-derived inside every worker process and on retries).
  using BatchFn = std::function<std::vector<Sample>(std::uint64_t)>;

  ElasticTrainer(GptWeights weights, int p, OutputAlgo algo, PipelineFlavor flavor,
                 ElasticOptions options);

  ElasticTrainer(const ElasticTrainer&) = delete;
  ElasticTrainer& operator=(const ElasticTrainer&) = delete;

  /// Deterministic fault plan every worker's injector is built from. Specs
  /// whose iteration has already been attempted are dropped between
  /// generations (the one-shot `fired` state dies with the process that
  /// fired it, so the coordinator must keep retries clean). Over tcp, the
  /// network-chaos specs (DropConnection/PartitionPeer/...) are applied by
  /// each worker's connection supervisor.
  void set_fault_plan(FaultPlan plan);

  /// Run `iterations` training iterations across worker processes, surviving
  /// worker death and network partition by elastic downgrade. Throws
  /// CheckError when the platform lacks shared-memory (or, for kTcp,
  /// loopback-socket) support, when max_generations is exhausted, or when a
  /// generation fails with no admissible recovery.
  ElasticResult train(std::uint64_t iterations, const BatchFn& batch,
                      const OptimizerConfig& opt);

  [[nodiscard]] int initial_width() const { return width_; }

 private:
  void worker_main(int rank, transport::ShmArena& arena, int width,
                   std::uint64_t start_iteration, std::uint64_t end_iteration,
                   const BatchFn& batch, const OptimizerConfig& opt,
                   const FaultPlan& plan) const;

  OutputAlgo algo_;
  PipelineFlavor flavor_;
  ElasticOptions options_;
  int width_;
  int num_layers_;
  FaultPlan plan_;
};

}  // namespace vocab
