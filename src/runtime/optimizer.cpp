#include "runtime/optimizer.h"

#include <cmath>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace vocab {

void ParamOptimizer::step(Tensor& param, const Tensor& grad, const OptimizerConfig& cfg) {
  VOCAB_CHECK(param.same_shape(grad), "optimizer param/grad shape mismatch: "
                                          << param.shape_str() << " vs " << grad.shape_str());
  ++t_;
  if (cfg.kind == OptimizerKind::Sgd) {
    axpy_inplace(param, -cfg.lr, grad);
    return;
  }
  if (m_.empty()) {
    m_ = Tensor(param.shape());
    v_ = Tensor(param.shape());
  }
  // Adam with bias correction (Kingma & Ba).
  const float b1 = cfg.beta1, b2 = cfg.beta2;
  const float corr1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float corr2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  float* pp = param.data();
  float* pm = m_.data();
  float* pv = v_.data();
  const float* pg = grad.data();
  for (std::int64_t i = 0; i < param.numel(); ++i) {
    pm[i] = b1 * pm[i] + (1.0f - b1) * pg[i];
    pv[i] = b2 * pv[i] + (1.0f - b2) * pg[i] * pg[i];
    const float mhat = pm[i] / corr1;
    const float vhat = pv[i] / corr2;
    pp[i] -= cfg.lr * mhat / (std::sqrt(vhat) + cfg.eps);
  }
}

void ParamOptimizer::step_master(Bf16Tensor& param, const Tensor& grad,
                                 const OptimizerConfig& cfg) {
  if (master_.empty()) master_ = param.to_tensor();  // exact widening
  VOCAB_CHECK(master_.same_shape(grad), "optimizer master/grad shape mismatch: "
                                            << master_.shape_str() << " vs "
                                            << grad.shape_str());
  step(master_, grad, cfg);
  param.assign_from(master_);
}

}  // namespace vocab
