#pragma once

// Live elastic downgrade over real OS processes (the tentpole of the
// transport/fault-tolerance PR).
//
// ResilientTrainer recovers from *exceptions* inside one process; this
// coordinator recovers from *process death*. It fans one training run out as
// one worker process per pipeline device, all attached to a pre-fork shared
// arena (transport/shm_region.h):
//
//   coordinator                         worker rank r
//   -----------                         -------------
//   save initial checkpoint             attach ShmTransport(arena, r)
//   create ShmArena(world=width)        load checkpoint, build PipelineTrainer
//   fork x width ------------------->   per iteration:
//   poll waitpid + arena progress         train_iteration_lane(r, ...)
//                                         gather_weights_lane(r, it)
//                                       rank 0: save checkpoint, publish
//                                         loss + completed into the arena
//
// When a worker dies abnormally (SIGKILL, crash, nonzero exit), the
// coordinator marks the rank dead in the arena and posts the shared abort so
// the survivors unblock within kAbortPollInterval — the same coordinated
// abort the in-thread fault machinery uses; a worker's own beacon thread
// detects the loss independently via heartbeat timeout, so detection does
// not depend on the coordinator being scheduled. The coordinator then reaps
// everyone, picks the next admissible width (ResilientTrainer::
// next_smaller_width — halving, possible because vocabulary parallelism
// keeps the vocabulary logically contiguous across shards), reloads from the
// last good checkpoint and spawns the next generation at the reduced width:
// live elastic downgrade. An abort without a killed process (e.g. an
// injected throw) retries at the same width.
//
// Every iteration is checkpointed (CRC32 + atomic rename) BEFORE rank 0
// publishes it as completed, so a generation that dies mid-iteration resumes
// exactly at the last published iteration and the loss sequence is
// bit-identical to a clean run over the same generation widths (the
// fault_stress soak asserts this).
//
// Survivability: the coordinator itself holds no training state — a
// coordinator death loses only the monitor; the checkpoint file plus the
// ElasticResult history is everything needed to resume (see DESIGN.md §16).

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/watchdog.h"
#include "model/gpt.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_trainer.h"
#include "transport/transport.h"

namespace vocab::transport {
class ShmArena;
}

namespace vocab {

/// Knobs of the multi-process elastic loop.
struct ElasticOptions {
  /// Where the (single) rolling checkpoint lives. Required.
  std::string checkpoint_path;
  /// Heartbeat / retry knobs handed to every worker's attached transport.
  transport::TransportConfig transport = {};
  /// Run the per-lane stall watchdog inside every worker iteration.
  bool enable_watchdog = false;
  WatchdogConfig watchdog;
  /// After a death is observed, how long the survivors get to unwind via the
  /// coordinated abort before the coordinator SIGKILLs the stragglers.
  std::chrono::milliseconds worker_exit_timeout{10000};
  /// Hard bound on process-group spawns (first generation included); the
  /// loop throws CheckError when exceeded instead of respawning forever.
  int max_generations = 16;
  /// Shared-arena sizing (per-mailbox ring data bytes / max serialized
  /// tensor); the defaults fit the test-scale models comfortably.
  std::size_t ring_bytes = std::size_t{8} << 20;
  std::size_t slot_bytes = std::size_t{4} << 20;
};

/// One process-group lifetime: which global iteration it started at and at
/// what pipeline width — the replay recipe for the bit-identity reference.
struct ElasticGeneration {
  std::uint64_t start_iteration = 0;
  int width = 0;
};

/// What an elastic run observed.
struct ElasticResult {
  std::vector<float> losses;  ///< per iteration, bitwise as rank 0 published them
  int kills = 0;              ///< workers that died by signal
  int aborts = 0;             ///< workers that exited via the abort protocol
  int downgrades = 0;         ///< width reductions
  int generations = 0;        ///< process groups spawned
  int final_width = 0;
  std::vector<ElasticGeneration> history;  ///< one entry per generation
  std::vector<std::string> events;         ///< human-readable log
};

/// Coordinator for multi-process training with fault tolerance. Construct
/// once (writes the initial checkpoint), then train(). Thread-free by
/// design: fork() from a multi-threaded coordinator would be a minefield.
class ShmElasticTrainer {
 public:
  /// Produce iteration `it`'s microbatches. Must be deterministic in `it`
  /// (the batch is re-derived inside every worker process and on retries).
  using BatchFn = std::function<std::vector<Sample>(std::uint64_t)>;

  ShmElasticTrainer(GptWeights weights, int p, OutputAlgo algo, PipelineFlavor flavor,
                    ElasticOptions options);

  ShmElasticTrainer(const ShmElasticTrainer&) = delete;
  ShmElasticTrainer& operator=(const ShmElasticTrainer&) = delete;

  /// Deterministic fault plan every worker's injector is built from. Specs
  /// whose iteration has already been attempted are dropped between
  /// generations (the one-shot `fired` state dies with the process that
  /// fired it, so the coordinator must keep retries clean).
  void set_fault_plan(FaultPlan plan);

  /// Run `iterations` training iterations across worker processes, surviving
  /// worker death by elastic downgrade. Throws CheckError when the platform
  /// has no shared-memory support, when max_generations is exhausted, or
  /// when a generation fails with no admissible recovery.
  ElasticResult train(std::uint64_t iterations, const BatchFn& batch,
                      const OptimizerConfig& opt);

  [[nodiscard]] int initial_width() const { return width_; }

 private:
  void worker_main(int rank, transport::ShmArena& arena, int width,
                   std::uint64_t start_iteration, std::uint64_t end_iteration,
                   const BatchFn& batch, const OptimizerConfig& opt,
                   const FaultPlan& plan) const;

  OutputAlgo algo_;
  PipelineFlavor flavor_;
  ElasticOptions options_;
  int width_;
  int num_layers_;
  FaultPlan plan_;
};

}  // namespace vocab
