#pragma once

// Checkpoint I/O for GPT weights.
//
// A simple self-describing binary format (v2): a magic header, the model
// config, each tensor as (rank, dims..., fp32 data), then a CRC32 trailer
// over everything after the magic. Saves go through a temp file + atomic
// rename, so a crash mid-save can never tear the destination; loads verify
// the CRC and reject truncated or bit-flipped files with a precise error.
// Because Vocabulary Parallelism keeps the whole (padded) vocabulary
// logically contiguous across shards, a full checkpoint can always be
// reassembled from a pipeline's shards and re-sharded onto a *different*
// pipeline width — the property the paper's Redis baseline lacks (its
// placement depends on the model/pipeline configuration), and exactly the
// recovery primitive the elastic restart path in resilient_trainer uses.

#include <string>

#include "model/gpt.h"

namespace vocab {

/// Serialize `weights` to `path`. Throws vocab::Error on I/O failure.
void save_checkpoint(const std::string& path, const GptWeights& weights);

/// Load a checkpoint written by save_checkpoint. Throws vocab::Error on
/// missing file, bad magic, or truncated data.
GptWeights load_checkpoint(const std::string& path);

}  // namespace vocab
