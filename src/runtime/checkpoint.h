#pragma once

// Checkpoint I/O for GPT weights.
//
// A simple self-describing binary format: a magic header, the model config,
// then each tensor as (rank, dims..., fp32 data). Because Vocabulary
// Parallelism keeps the whole (padded) vocabulary logically contiguous
// across shards, a full checkpoint can always be reassembled from a
// pipeline's shards and re-sharded onto a *different* pipeline width — the
// property the paper's Redis baseline lacks (its placement depends on the
// model/pipeline configuration).

#include <string>

#include "model/gpt.h"

namespace vocab {

/// Serialize `weights` to `path`. Throws vocab::Error on I/O failure.
void save_checkpoint(const std::string& path, const GptWeights& weights);

/// Load a checkpoint written by save_checkpoint. Throws vocab::Error on
/// missing file, bad magic, or truncated data.
GptWeights load_checkpoint(const std::string& path);

}  // namespace vocab
