#pragma once

// Checkpoint I/O for GPT weights.
//
// A simple self-describing binary format (v2): a magic header, the model
// config, each tensor as (rank, dims..., fp32 data), then a CRC32 trailer
// over everything after the magic. Saves go through a temp file + atomic
// rename, so a crash mid-save can never tear the destination; loads verify
// the CRC and reject truncated or bit-flipped files with a precise error.
// Because Vocabulary Parallelism keeps the whole (padded) vocabulary
// logically contiguous across shards, a full checkpoint can always be
// reassembled from a pipeline's shards and re-sharded onto a *different*
// pipeline width — the property the paper's Redis baseline lacks (its
// placement depends on the model/pipeline configuration), and exactly the
// recovery primitive the elastic restart path in resilient_trainer uses.

#include <string>

#include "model/gpt.h"

namespace vocab {

/// Training state carried by v3 checkpoints alongside the weights. Today
/// that is the dynamic loss-scaler state, so a mixed-precision run resumes
/// at the scale it had converged to rather than re-descending from 2^16.
/// loss_scale == 0 means "no mixed-precision state recorded".
struct CheckpointTrainState {
  float loss_scale = 0.0f;
  int scaler_good_steps = 0;
  int scaler_overflows = 0;
};

/// Serialize `weights` to `path`. Throws vocab::Error on I/O failure.
/// With `state` the file is written as v3 (weights + training state);
/// without it the v2 layout is emitted unchanged.
void save_checkpoint(const std::string& path, const GptWeights& weights);
void save_checkpoint(const std::string& path, const GptWeights& weights,
                     const CheckpointTrainState& state);

/// Load a checkpoint written by save_checkpoint (v2 or v3). Throws
/// vocab::Error on missing file, bad magic, or truncated data. The overload
/// taking `state` fills it from a v3 file and leaves it default for v2.
GptWeights load_checkpoint(const std::string& path);
GptWeights load_checkpoint(const std::string& path, CheckpointTrainState& state);

}  // namespace vocab
