#include "runtime/loss_scaler.h"

#include <algorithm>

#include "common/env.h"
#include "common/error.h"

namespace vocab {

LossScalerConfig LossScalerConfig::from_env() {
  LossScalerConfig cfg;
  cfg.init_scale = static_cast<float>(positive_int_from_env(
      "VOCAB_LOSS_SCALE_INIT", static_cast<std::int64_t>(cfg.init_scale),
      /*max_value=*/std::int64_t{1} << 40));
  cfg.growth_interval = static_cast<int>(
      positive_int_from_env("VOCAB_LOSS_SCALE_GROWTH_INTERVAL", cfg.growth_interval));
  return cfg;
}

LossScaler::LossScaler(LossScalerConfig cfg) : cfg_(cfg), scale_(cfg.init_scale) {
  VOCAB_CHECK(cfg_.init_scale >= cfg_.min_scale && cfg_.min_scale > 0.0f,
              "loss scale must start at or above its floor");
  VOCAB_CHECK(cfg_.growth_factor > 1.0f && cfg_.backoff_factor > 0.0f &&
                  cfg_.backoff_factor < 1.0f,
              "growth factor must exceed 1, backoff must sit in (0, 1)");
  VOCAB_CHECK(cfg_.growth_interval >= 1, "growth interval must be positive");
}

void LossScaler::update(bool overflow) {
  if (overflow) {
    ++overflows_;
    good_steps_ = 0;
    scale_ = std::max(cfg_.min_scale, scale_ * cfg_.backoff_factor);
    return;
  }
  if (++good_steps_ >= cfg_.growth_interval) {
    good_steps_ = 0;
    scale_ *= cfg_.growth_factor;
  }
}

void LossScaler::restore(float scale, int good_steps, int overflows) {
  VOCAB_CHECK(scale >= cfg_.min_scale, "restored loss scale below the floor");
  scale_ = scale;
  good_steps_ = good_steps;
  overflows_ = overflows;
}

}  // namespace vocab
